//! Property tests for the discrete-event kernel.

use parspeed_desim::{
    processor_sharing, run, FcfsServer, PsArrival, PsQueue, Scheduler, Time, World,
};
use proptest::prelude::*;

struct Recorder {
    seen: Vec<(f64, u32)>,
}

impl World<u32> for Recorder {
    fn handle(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
        self.seen.push((sched.now().as_secs(), ev));
    }
}

proptest! {
    /// Events always fire in nondecreasing time order, FIFO among ties,
    /// regardless of insertion order.
    #[test]
    fn events_fire_in_order(times in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule(Time::from_secs(t), i as u32);
        }
        let mut w = Recorder { seen: vec![] };
        run(&mut w, &mut sched);
        prop_assert_eq!(w.seen.len(), times.len());
        for pair in w.seen.windows(2) {
            prop_assert!(pair[1].0 >= pair[0].0);
            if pair[1].0 == pair[0].0 {
                // FIFO: schedule order (== id order here) preserved.
                prop_assert!(pair[1].1 > pair[0].1);
            }
        }
    }

    /// The FCFS server conserves work and never overlaps jobs.
    #[test]
    fn fcfs_server_serializes(jobs in prop::collection::vec((0.0f64..50.0, 0.0f64..5.0), 1..50)) {
        let mut sorted = jobs.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut s = FcfsServer::new();
        let mut last_end = Time::ZERO;
        let mut total = 0.0;
        for &(at, dur) in &sorted {
            let (start, end) = s.serve(Time::from_secs(at), dur);
            prop_assert!(start >= last_end, "job started before the previous ended");
            prop_assert!(start >= Time::from_secs(at));
            prop_assert!((end - start - dur).abs() < 1e-12);
            last_end = end;
            total += dur;
        }
        prop_assert!((s.busy_time() - total).abs() < 1e-9);
        prop_assert_eq!(s.served(), sorted.len() as u64);
    }

    /// Processor sharing: completions are permutation-invariant in the
    /// input order and bounded below by serial-fair bounds.
    #[test]
    fn ps_order_invariance(jobs in prop::collection::vec((0.0f64..20.0, 0.01f64..5.0), 2..30)) {
        let fwd: Vec<PsArrival> = jobs.iter().map(|&(at, w)| PsArrival { at, work: w }).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let cf = processor_sharing(&fwd);
        let cr = processor_sharing(&rev);
        for (i, (&f, &r)) in cf.iter().zip(cr.iter().rev()).enumerate() {
            prop_assert!((f - r).abs() < 1e-9, "job {i} moved");
        }
        // Each job sees at least its own work, at most total work + wait.
        let total: f64 = jobs.iter().map(|j| j.1).sum();
        let t_max = jobs.iter().map(|j| j.0).fold(0.0, f64::max);
        for (i, &(at, w)) in jobs.iter().enumerate() {
            prop_assert!(cf[i] >= at + w - 1e-9);
            prop_assert!(cf[i] <= t_max + total + 1e-9);
        }
    }

    /// PS with identical simultaneous batches: everyone finishes together
    /// at work × P — the paper's b·P contention law.
    #[test]
    fn ps_symmetric_batches(p in 1usize..40, work in 0.01f64..10.0) {
        let arrivals: Vec<PsArrival> =
            (0..p).map(|_| PsArrival { at: 0.0, work }).collect();
        let done = processor_sharing(&arrivals);
        for &d in &done {
            prop_assert!((d - work * p as f64).abs() < 1e-6 * work * p as f64 + 1e-12);
        }
    }

    /// The incremental queue reproduces the closed-batch solver exactly
    /// for any job set offered up front.
    #[test]
    fn psqueue_matches_closed_solver(
        jobs in prop::collection::vec((0.0f64..20.0, 0.0f64..5.0), 1..40)
    ) {
        let arrivals: Vec<PsArrival> =
            jobs.iter().map(|&(at, work)| PsArrival { at, work }).collect();
        let closed = processor_sharing(&arrivals);
        let mut q = PsQueue::new();
        for a in &arrivals {
            q.offer(a.at, a.work);
        }
        let mut by_id = vec![f64::NAN; arrivals.len()];
        for (id, t) in q.drain() {
            by_id[id] = t;
        }
        for i in 0..closed.len() {
            prop_assert!((closed[i] - by_id[i]).abs() < 1e-9, "job {i}: {} vs {}", closed[i], by_id[i]);
        }
    }

    /// The truly incremental case the closed solver cannot express: jobs
    /// are offered in waves, each wave only after the previous wave's
    /// completions have been *pulled* (so the fluid has already advanced
    /// past them), with the second wave's arrivals placed after the
    /// observed makespan. The union of completions must still agree,
    /// job for job, with the closed-form solver run on the combined batch.
    #[test]
    fn psqueue_incremental_waves_match_closed_solver(
        wave1 in prop::collection::vec((0.0f64..5.0, 0.0f64..4.0), 1..20),
        wave2 in prop::collection::vec((0.0f64..5.0, 0.0f64..4.0), 1..20),
    ) {
        let mut q = PsQueue::new();
        for &(at, work) in &wave1 {
            q.offer(at, work);
        }
        let mut by_id = vec![f64::NAN; wave1.len() + wave2.len()];
        let mut makespan = 0.0f64;
        for (id, t) in q.drain() {
            by_id[id] = t;
            makespan = makespan.max(t);
        }
        // Second wave: known only now, legally offered after the clock.
        let mut arrivals: Vec<PsArrival> =
            wave1.iter().map(|&(at, work)| PsArrival { at, work }).collect();
        for &(dt, work) in &wave2 {
            q.offer(makespan + dt, work);
            arrivals.push(PsArrival { at: makespan + dt, work });
        }
        for (id, t) in q.drain() {
            by_id[id] = t;
        }
        let closed = processor_sharing(&arrivals);
        for i in 0..closed.len() {
            prop_assert!(
                (closed[i] - by_id[i]).abs() < 1e-9,
                "job {i}: closed {} vs incremental {}", closed[i], by_id[i]
            );
        }
    }

    /// Dependent chains terminate and conserve work: every read spawns a
    /// write at its completion, and the last completion is at least the
    /// total offered work (one unit-rate server).
    #[test]
    fn psqueue_dependent_chains_conserve_work(
        reads in prop::collection::vec(0.01f64..3.0, 1..20),
        gap in 0.0f64..2.0,
    ) {
        let mut q = PsQueue::new();
        for &w in &reads {
            q.offer(0.0, w);
        }
        let p = reads.len();
        let mut total = reads.iter().sum::<f64>();
        let mut last = 0.0f64;
        let mut completions = 0usize;
        while let Some((id, t)) = q.next_completion() {
            completions += 1;
            prop_assert!(t + 1e-9 >= last, "time went backwards");
            last = t;
            if id < p {
                // Write of the same size, posted after a local gap.
                q.offer(t + gap, reads[id]);
                total += reads[id];
            }
        }
        prop_assert_eq!(completions, 2 * p);
        // One unit-rate server: finishing all offered work takes at least
        // `total` seconds no matter how the arrivals interleave.
        prop_assert!(last + 1e-9 >= total, "work vanished: {last} < {total}");
    }
}
