//! A small deterministic discrete-event simulation kernel.
//!
//! The paper's authors measured real machines (Intel iPSC, FLEX/32,
//! Butterfly-class networks); this workspace replaces them with event-level
//! simulators built on this crate (see `parspeed-arch`). The kernel is
//! deliberately minimal and fully deterministic:
//!
//! * [`Time`] — totally ordered simulation time (seconds, `f64`, NaN-free);
//! * [`Scheduler`] — a future-event list with FIFO tie-breaking, so equal
//!   timestamps replay in schedule order;
//! * [`World`] — the event-handling trait; [`run`] drives a world to
//!   quiescence;
//! * [`FcfsServer`] — a single first-come-first-served resource (a message
//!   port, a switch stage);
//! * [`processor_sharing`] — exact fluid completion times for a
//!   processor-sharing resource (the shared bus: `P` concurrent requesters
//!   each see `1/P` of the bandwidth, which is precisely the paper's
//!   `c + b·P` per-word contention model);
//! * [`PsQueue`] — the same fluid, incrementally: arrivals may depend on
//!   earlier completions of the same resource (a bus write posted after
//!   the read completes), which the closed-batch solver cannot express;
//! * [`stats`] — scalar accumulators for simulation outputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ps;
mod psq;
mod resource;
mod sched;
pub mod stats;
mod time;

pub use ps::{processor_sharing, PsArrival};
pub use psq::{JobId, PsQueue};
pub use resource::FcfsServer;
pub use sched::{run, run_until, Scheduler, World};
pub use time::Time;

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end world: a ping-pong message pair with a fixed hop
    /// latency; checks the harness plumbing end to end.
    struct PingPong {
        hops: u32,
        max_hops: u32,
        last_at: Time,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Ping,
        Pong,
    }

    impl World<Ev> for PingPong {
        fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
            self.hops += 1;
            self.last_at = sched.now();
            if self.hops >= self.max_hops {
                return;
            }
            match ev {
                Ev::Ping => sched.schedule_in(2.0, Ev::Pong),
                Ev::Pong => sched.schedule_in(3.0, Ev::Ping),
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut world = PingPong { hops: 0, max_hops: 5, last_at: Time::ZERO };
        let mut sched = Scheduler::new();
        sched.schedule(Time::ZERO, Ev::Ping);
        run(&mut world, &mut sched);
        // ping@0, pong@2, ping@5, pong@7, ping@10.
        assert_eq!(world.hops, 5);
        assert_eq!(world.last_at, Time::from_secs(10.0));
        assert_eq!(sched.processed(), 5);
    }
}
