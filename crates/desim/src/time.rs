//! Simulation time.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation time in seconds.
///
/// A thin wrapper over `f64` that is totally ordered (construction rejects
/// NaN), so it can key the future-event list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(f64);

impl Time {
    /// The origin.
    pub const ZERO: Time = Time(0.0);

    /// Builds a time; panics on NaN or negative values.
    pub fn from_secs(s: f64) -> Time {
        assert!(s.is_finite(), "non-finite time {s}");
        assert!(s >= 0.0, "negative time {s}");
        Time(s)
    }

    /// Seconds since the origin.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for Time {
    type Output = Time;
    fn add(self, rhs: f64) -> Time {
        Time::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for Time {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = f64;
    fn sub(self, rhs: Time) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!((a + 1.5), b);
        assert_eq!(b - a, 1.5);
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(Time::from_secs(0.5).to_string(), "0.500000000s");
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn rejects_negative() {
        let _ = Time::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = Time::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_overflowing_add() {
        let _ = Time::from_secs(f64::MAX) + f64::MAX;
    }
}
