//! Exact processor-sharing (fluid) resource.
//!
//! The shared bus serves all concurrent requesters by interleaving words;
//! with `P` active requesters each sees `1/P` of the bandwidth. That is a
//! processor-sharing queue, and for piecewise-constant populations the
//! completion times have an exact fluid solution computed here — no
//! per-word events needed, which keeps `n³`-word iterations simulable.
//!
//! With `P` equal batches of `W` words arriving together, every batch
//! completes at `W·b·P`: exactly the paper's `c + b·P` per-word contention
//! model (the `c` part is local to the requester and added by the caller).

/// One batch offered to the processor-sharing resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsArrival {
    /// Arrival time, seconds.
    pub at: f64,
    /// Service demand at unit rate, seconds (e.g. `words × b`).
    pub work: f64,
}

/// Exact completion times for `arrivals` under processor sharing, in input
/// order.
///
/// Runs the fluid dynamics event by event: between arrivals/completions the
/// `m` active batches all drain at rate `1/m`. `O(n²)` worst case, which is
/// ample for per-iteration machine simulations (one batch per processor).
pub fn processor_sharing(arrivals: &[PsArrival]) -> Vec<f64> {
    let n = arrivals.len();
    for a in arrivals {
        assert!(a.at.is_finite() && a.at >= 0.0, "bad arrival time {}", a.at);
        assert!(a.work.is_finite() && a.work >= 0.0, "bad work {}", a.work);
    }
    // Indices sorted by arrival (stable: FIFO among ties).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| arrivals[i].at.total_cmp(&arrivals[j].at));

    let mut completion = vec![0.0f64; n];
    let mut remaining = vec![0.0f64; n];
    let mut active: Vec<usize> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    loop {
        // Next arrival time, if any.
        let t_arr = order.get(next_arrival).map(|&i| arrivals[i].at);
        // Earliest completion among active batches at current rate; keep the
        // argmin so it can be retired unconditionally (when `now` is large
        // and the residual tiny, `now + r·m` can round back to `now`, and
        // retiring by threshold alone would loop forever).
        let t_done = if active.is_empty() {
            None
        } else {
            let m = active.len() as f64;
            active.iter().map(|&i| (i, now + remaining[i] * m)).min_by(|a, b| a.1.total_cmp(&b.1))
        };
        match (t_arr, t_done) {
            (None, None) => break,
            (Some(ta), None) => {
                now = ta;
            }
            (Some(ta), Some((_, td))) if ta <= td => {
                // Drain to the arrival instant, then admit.
                let dt = ta - now;
                let m = active.len() as f64;
                for &i in &active {
                    remaining[i] -= dt / m;
                }
                now = ta;
            }
            (_, Some((j, td))) => {
                // Drain to the completion instant and retire finished work.
                let dt = td - now;
                let m = active.len() as f64;
                for &i in &active {
                    remaining[i] = (remaining[i] - dt / m).max(0.0);
                }
                remaining[j] = 0.0; // the argmin batch is done by construction
                now = td;
                active.retain(|&i| {
                    if remaining[i] <= 1e-15 {
                        completion[i] = now;
                        false
                    } else {
                        true
                    }
                });
                continue;
            }
        }
        // Admit every batch arriving exactly now.
        while next_arrival < n && arrivals[order[next_arrival]].at <= now {
            let i = order[next_arrival];
            if arrivals[i].work == 0.0 {
                completion[i] = arrivals[i].at.max(now);
            } else {
                remaining[i] = arrivals[i].work;
                active.push(i);
            }
            next_arrival += 1;
        }
    }
    completion
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_batch_runs_at_full_rate() {
        let c = processor_sharing(&[PsArrival { at: 1.0, work: 3.0 }]);
        assert!((c[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn equal_simultaneous_batches_model_bus_contention() {
        // P batches of W words arriving together finish at W·P — the
        // paper's b·P per word.
        for p in [2usize, 4, 16] {
            let arr: Vec<PsArrival> = (0..p).map(|_| PsArrival { at: 0.0, work: 2.0 }).collect();
            let c = processor_sharing(&arr);
            for &t in &c {
                assert!((t - 2.0 * p as f64).abs() < 1e-9, "P={p}: {t}");
            }
        }
    }

    #[test]
    fn work_is_conserved() {
        // Busy the whole time ⇒ makespan equals total work.
        let arr = vec![
            PsArrival { at: 0.0, work: 1.0 },
            PsArrival { at: 0.0, work: 2.0 },
            PsArrival { at: 0.5, work: 0.25 },
        ];
        let c = processor_sharing(&arr);
        let makespan = c.iter().cloned().fold(0.0, f64::max);
        assert!((makespan - 3.25).abs() < 1e-9, "makespan {makespan}");
    }

    #[test]
    fn hand_computed_two_job_case() {
        // Job A: work 2 at t=0. Job B: work 1 at t=1.
        // [0,1): A alone, drains 1 (1 left). [1,?): rate ½ each.
        // A needs 2 more shared seconds, B needs 2: both finish at t=3.
        let c = processor_sharing(&[
            PsArrival { at: 0.0, work: 2.0 },
            PsArrival { at: 1.0, work: 1.0 },
        ]);
        assert!((c[0] - 3.0).abs() < 1e-9);
        assert!((c[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn short_job_overtakes_long_job() {
        // PS lets a tiny batch slip past a huge one.
        let c = processor_sharing(&[
            PsArrival { at: 0.0, work: 100.0 },
            PsArrival { at: 0.0, work: 0.1 },
        ]);
        assert!(c[1] < 1.0, "short batch done at {}", c[1]);
        assert!((c[0] - 100.1).abs() < 1e-9);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let c = processor_sharing(&[
            PsArrival { at: 5.0, work: 0.0 },
            PsArrival { at: 0.0, work: 1.0 },
        ]);
        assert_eq!(c[0], 5.0);
        assert!((c[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn input_order_is_preserved_in_output() {
        // Results are positional regardless of arrival order.
        let a = vec![PsArrival { at: 2.0, work: 1.0 }, PsArrival { at: 0.0, work: 1.0 }];
        let c = processor_sharing(&a);
        assert!(c[1] < c[0]);
    }

    #[test]
    fn idle_gap_then_second_wave() {
        let c = processor_sharing(&[
            PsArrival { at: 0.0, work: 1.0 },
            PsArrival { at: 10.0, work: 1.0 },
            PsArrival { at: 10.0, work: 1.0 },
        ]);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 12.0).abs() < 1e-9);
        assert!((c[2] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        assert!(processor_sharing(&[]).is_empty());
    }
}
