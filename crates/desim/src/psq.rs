//! Incremental processor-sharing queue.
//!
//! [`processor_sharing`](crate::processor_sharing) solves a *closed* batch:
//! every arrival is known up front. The shared-bus simulations need more —
//! a partition's boundary **write** is posted only after its boundary
//! **read** completes (plus compute), so later arrivals depend on earlier
//! completions of the *same* resource. [`PsQueue`] runs the same exact
//! fluid dynamics incrementally: the caller offers jobs as they become
//! known and pulls completions one at a time, injecting new arrivals
//! between pulls. Offering everything up front and draining reproduces
//! `processor_sharing` exactly (tested).
//!
//! Determinism: completions are returned in (time, offer-order) order, and
//! the fluid update is identical for any interleaving of offers with the
//! same arrival times.

/// Identifier of a job offered to a [`PsQueue`], assigned in offer order.
pub type JobId = usize;

/// An exact fluid processor-sharing resource that accepts arrivals
/// incrementally.
#[derive(Debug, Clone)]
pub struct PsQueue {
    /// Jobs not yet admitted, sorted lazily by arrival time.
    pending: Vec<(f64, JobId, f64)>, // (arrival, id, work)
    /// Admitted jobs still draining: (id, remaining work).
    active: Vec<(JobId, f64)>,
    now: f64,
    next_id: JobId,
    served: usize,
}

impl Default for PsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl PsQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self { pending: Vec::new(), active: Vec::new(), now: 0.0, next_id: 0, served: 0 }
    }

    /// Offers a job arriving at `at` (≥ the last returned completion time)
    /// with `work` seconds of demand at unit rate. Returns its id.
    pub fn offer(&mut self, at: f64, work: f64) -> JobId {
        assert!(at.is_finite() && at >= 0.0, "bad arrival time {at}");
        assert!(work.is_finite() && work >= 0.0, "bad work {work}");
        assert!(
            at + 1e-18 >= self.now,
            "arrival at {at} is before the simulation clock {}",
            self.now
        );
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((at.max(self.now), id, work));
        id
    }

    /// Number of jobs offered so far.
    pub fn offered(&self) -> usize {
        self.next_id
    }

    /// Number of completions already returned.
    pub fn served(&self) -> usize {
        self.served
    }

    /// Advances the fluid to the next completion and returns it, or `None`
    /// when no offered job remains. New arrivals may be offered between
    /// calls; they must not predate the returned completion times.
    pub fn next_completion(&mut self) -> Option<(JobId, f64)> {
        loop {
            // Earliest pending arrival.
            let arr = self
                .pending
                .iter()
                .enumerate()
                .min_by(|a, b| (a.1 .0, a.1 .1).partial_cmp(&(b.1 .0, b.1 .1)).unwrap())
                .map(|(idx, &(at, _, _))| (idx, at));
            // Earliest completion among active jobs (argmin kept so it can
            // be retired unconditionally — see `processor_sharing`).
            let done = if self.active.is_empty() {
                None
            } else {
                let m = self.active.len() as f64;
                self.active
                    .iter()
                    .enumerate()
                    .map(|(slot, &(_, rem))| (slot, self.now + rem * m))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
            };
            let arrival_first = match (arr, done) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((_, at)), Some((_, td))) => at <= td,
            };
            if arrival_first {
                let (idx, at) = arr.expect("arrival_first implies a pending arrival");
                {
                    // Drain to the arrival instant and admit every pending
                    // job at or before it (offer order among ties).
                    let dt = at - self.now;
                    let m = self.active.len() as f64;
                    if dt > 0.0 && !self.active.is_empty() {
                        for j in &mut self.active {
                            j.1 -= dt / m;
                        }
                    }
                    self.now = at;
                    let mut due: Vec<(f64, JobId, f64)> = Vec::new();
                    self.pending.retain(|&(t, id, w)| {
                        if t <= at {
                            due.push((t, id, w));
                            false
                        } else {
                            true
                        }
                    });
                    due.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
                    for (_, id, w) in due {
                        self.active.push((id, w));
                    }
                    let _ = idx;
                }
            } else {
                let (slot, td) = done.expect("completion branch requires an active job");
                {
                    let dt = td - self.now;
                    let m = self.active.len() as f64;
                    for j in &mut self.active {
                        j.1 = (j.1 - dt / m).max(0.0);
                    }
                    self.active[slot].1 = 0.0; // argmin is done by construction
                    self.now = td;
                    // Return exactly one completion: the finished job with
                    // the smallest id (deterministic among simultaneous).
                    let pos = self
                        .active
                        .iter()
                        .enumerate()
                        .filter(|(_, &(_, rem))| rem <= 1e-15)
                        .min_by_key(|(_, &(id, _))| id)
                        .map(|(p, _)| p)
                        .expect("argmin batch just retired");
                    let (id, _) = self.active.swap_remove(pos);
                    self.served += 1;
                    return Some((id, self.now));
                }
            }
        }
    }

    /// Drains every remaining completion into a vector of
    /// `(job, completion_time)` pairs.
    pub fn drain(&mut self) -> Vec<(JobId, f64)> {
        let mut v = Vec::new();
        while let Some(c) = self.next_completion() {
            v.push(c);
        }
        v
    }

    /// The simulation clock (time of the last returned completion or
    /// admitted arrival).
    pub fn now(&self) -> f64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{processor_sharing, PsArrival};

    /// Offering everything up front must reproduce the closed-form solver
    /// exactly, job by job.
    #[test]
    fn matches_closed_processor_sharing() {
        let arrivals = [
            PsArrival { at: 0.0, work: 2.0 },
            PsArrival { at: 1.0, work: 1.0 },
            PsArrival { at: 1.0, work: 0.5 },
            PsArrival { at: 10.0, work: 3.0 },
            PsArrival { at: 0.0, work: 0.0 },
        ];
        let closed = processor_sharing(&arrivals);
        let mut q = PsQueue::new();
        for a in &arrivals {
            q.offer(a.at, a.work);
        }
        let mut by_id = vec![0.0; arrivals.len()];
        for (id, t) in q.drain() {
            by_id[id] = t;
        }
        for (i, (&a, &b)) in closed.iter().zip(by_id.iter()).enumerate() {
            assert!((a - b).abs() < 1e-12, "job {i}: closed {a} vs incremental {b}");
        }
    }

    /// The motivating pattern: a second job is offered only after the
    /// first completes (read → compute → write on one bus).
    #[test]
    fn dependent_arrival_after_completion() {
        let mut q = PsQueue::new();
        q.offer(0.0, 2.0);
        let (id, t) = q.next_completion().unwrap();
        assert_eq!(id, 0);
        assert!((t - 2.0).abs() < 1e-12);
        q.offer(t + 1.0, 4.0); // posted after compute
        let (id2, t2) = q.next_completion().unwrap();
        assert_eq!(id2, 1);
        assert!((t2 - 7.0).abs() < 1e-12);
        assert!(q.next_completion().is_none());
    }

    /// Two dependent chains share the resource: completions of the write
    /// wave reflect the contention of overlapping posts.
    #[test]
    fn coupled_chains_share_bandwidth() {
        let mut q = PsQueue::new();
        q.offer(0.0, 1.0);
        q.offer(0.0, 1.0);
        // Both reads complete at 2.0 (shared). Writes post immediately.
        let (_, t1) = q.next_completion().unwrap();
        q.offer(t1, 1.0);
        let (_, t2) = q.next_completion().unwrap();
        q.offer(t2, 1.0);
        assert!((t1 - 2.0).abs() < 1e-12 && (t2 - 2.0).abs() < 1e-12);
        let c = q.drain();
        assert_eq!(c.len(), 2);
        // Two unit writes sharing: both end at 4.0.
        assert!((c[0].1 - 4.0).abs() < 1e-12);
        assert!((c[1].1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_jobs_complete_at_arrival() {
        let mut q = PsQueue::new();
        q.offer(3.0, 0.0);
        q.offer(0.0, 1.0);
        let (id, t) = q.next_completion().unwrap();
        assert_eq!((id, t), (1, 1.0));
        let (id, t) = q.next_completion().unwrap();
        assert_eq!(id, 0);
        assert_eq!(t, 3.0);
    }

    #[test]
    fn simultaneous_completions_return_in_id_order() {
        let mut q = PsQueue::new();
        q.offer(0.0, 1.0);
        q.offer(0.0, 1.0);
        q.offer(0.0, 1.0);
        let order: Vec<JobId> = q.drain().iter().map(|&(id, _)| id).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn served_and_offered_counters() {
        let mut q = PsQueue::new();
        q.offer(0.0, 1.0);
        q.offer(0.0, 2.0);
        assert_eq!(q.offered(), 2);
        assert_eq!(q.served(), 0);
        let _ = q.next_completion();
        assert_eq!(q.served(), 1);
        let _ = q.drain();
        assert_eq!(q.served(), 2);
    }

    #[test]
    #[should_panic(expected = "before the simulation clock")]
    fn rejects_arrivals_in_the_past() {
        let mut q = PsQueue::new();
        q.offer(0.0, 5.0);
        let _ = q.next_completion();
        q.offer(1.0, 1.0); // clock is at 5.0
    }

    #[test]
    fn empty_queue_is_done() {
        assert!(PsQueue::new().next_completion().is_none());
    }
}
