//! The future-event list and the run loop.

use crate::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event handler: a machine model advancing its state on each event.
pub trait World<E> {
    /// Handles one event at `sched.now()`, possibly scheduling more.
    fn handle(&mut self, ev: E, sched: &mut Scheduler<E>);
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    ev: E,
}

// Ordering: earliest time first; FIFO among equal times (seq ascending).
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic future-event list.
///
/// Events fire in timestamp order; events with equal timestamps fire in the
/// order they were scheduled, making every simulation in this workspace
/// exactly replayable.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: Time,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Self { now: Time::ZERO, queue: BinaryHeap::new(), seq: 0, processed: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events handed out so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `ev` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current time (causality violation).
    pub fn schedule(&mut self, at: Time, ev: E) {
        assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        self.queue.push(Reverse(Scheduled { at, seq: self.seq, ev }));
        self.seq += 1;
    }

    /// Schedules `ev` after a nonnegative `delay` from now.
    pub fn schedule_in(&mut self, delay: f64, ev: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule(self.now + delay, ev);
    }

    /// Removes and returns the next event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(s) = self.queue.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.ev))
    }
}

/// Runs `world` until no events remain. Returns the final time.
pub fn run<E, W: World<E>>(world: &mut W, sched: &mut Scheduler<E>) -> Time {
    while let Some((_, ev)) = sched.pop() {
        world.handle(ev, sched);
    }
    sched.now()
}

/// Runs until the event list empties or `limit` events have fired
/// (a runaway guard for models under development). Returns the final time.
pub fn run_until<E, W: World<E>>(world: &mut W, sched: &mut Scheduler<E>, limit: u64) -> Time {
    let start = sched.processed();
    while sched.processed() - start < limit {
        match sched.pop() {
            Some((_, ev)) => world.handle(ev, sched),
            None => break,
        }
    }
    sched.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<u32>,
    }

    impl World<u32> for Recorder {
        fn handle(&mut self, ev: u32, _sched: &mut Scheduler<u32>) {
            self.seen.push(ev);
        }
    }

    #[test]
    fn fires_in_time_order() {
        let mut sched = Scheduler::new();
        sched.schedule(Time::from_secs(3.0), 3);
        sched.schedule(Time::from_secs(1.0), 1);
        sched.schedule(Time::from_secs(2.0), 2);
        let mut w = Recorder { seen: vec![] };
        let end = run(&mut w, &mut sched);
        assert_eq!(w.seen, vec![1, 2, 3]);
        assert_eq!(end, Time::from_secs(3.0));
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut sched = Scheduler::new();
        for i in 0..100u32 {
            sched.schedule(Time::from_secs(1.0), i);
        }
        let mut w = Recorder { seen: vec![] };
        run(&mut w, &mut sched);
        assert_eq!(w.seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule(Time::from_secs(5.0), 0);
        sched.schedule(Time::from_secs(2.0), 1);
        let (t1, _) = sched.pop().unwrap();
        let (t2, _) = sched.pop().unwrap();
        assert!(t1 <= t2);
        assert_eq!(sched.now(), Time::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_causality_violation() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule(Time::from_secs(5.0), 0);
        sched.pop();
        sched.schedule(Time::from_secs(1.0), 1);
    }

    #[test]
    fn run_until_respects_limit() {
        struct Chain;
        impl World<u32> for Chain {
            fn handle(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
                sched.schedule_in(1.0, ev + 1); // infinite chain
            }
        }
        let mut sched = Scheduler::new();
        sched.schedule(Time::ZERO, 0);
        let mut w = Chain;
        run_until(&mut w, &mut sched, 10);
        assert_eq!(sched.processed(), 10);
        assert_eq!(sched.pending(), 1);
    }

    #[test]
    fn determinism_two_identical_runs() {
        let trace = |seed_events: &[(f64, u32)]| {
            let mut sched = Scheduler::new();
            for &(t, e) in seed_events {
                sched.schedule(Time::from_secs(t), e);
            }
            let mut w = Recorder { seen: vec![] };
            run(&mut w, &mut sched);
            w.seen
        };
        let evs = [(0.5, 7), (0.5, 8), (0.1, 1), (0.9, 3)];
        assert_eq!(trace(&evs), trace(&evs));
    }
}
