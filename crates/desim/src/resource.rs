//! Single-server FCFS resources.

use crate::Time;

/// A first-come-first-served single server: a hypercube node's
/// communication port, one 2×2 switch stage, a DMA engine.
///
/// Jobs are offered in simulation-time order (the caller's event order);
/// each job starts when both it and the server are ready and holds the
/// server for its service time.
#[derive(Debug, Clone, Copy)]
pub struct FcfsServer {
    next_free: Time,
    busy: f64,
    served: u64,
}

impl Default for FcfsServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsServer {
    /// A new, idle server.
    pub fn new() -> Self {
        Self { next_free: Time::ZERO, busy: 0.0, served: 0 }
    }

    /// Offers a job arriving at `arrival` needing `service` seconds.
    /// Returns `(start, end)`.
    pub fn serve(&mut self, arrival: Time, service: f64) -> (Time, Time) {
        assert!(service >= 0.0, "negative service time");
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.served += 1;
        (start, end)
    }

    /// When the server next becomes idle.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total busy seconds accumulated.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Jobs served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy / horizon.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_overlapping_jobs() {
        let mut s = FcfsServer::new();
        let (a0, a1) = s.serve(Time::ZERO, 2.0);
        let (b0, b1) = s.serve(Time::from_secs(1.0), 2.0);
        assert_eq!(a0, Time::ZERO);
        assert_eq!(a1, Time::from_secs(2.0));
        assert_eq!(b0, Time::from_secs(2.0)); // waits for the first
        assert_eq!(b1, Time::from_secs(4.0));
    }

    #[test]
    fn idle_gaps_are_not_counted_busy() {
        let mut s = FcfsServer::new();
        s.serve(Time::ZERO, 1.0);
        s.serve(Time::from_secs(10.0), 1.0);
        assert_eq!(s.busy_time(), 2.0);
        assert_eq!(s.served(), 2);
        assert!((s.utilization(Time::from_secs(11.0)) - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn zero_service_passes_through() {
        let mut s = FcfsServer::new();
        let (x0, x1) = s.serve(Time::from_secs(3.0), 0.0);
        assert_eq!(x0, x1);
        assert_eq!(s.next_free(), Time::from_secs(3.0));
    }

    #[test]
    fn utilization_at_zero_horizon_is_zero() {
        let s = FcfsServer::new();
        assert_eq!(s.utilization(Time::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative service")]
    fn rejects_negative_service() {
        let mut s = FcfsServer::new();
        s.serve(Time::ZERO, -1.0);
    }
}
