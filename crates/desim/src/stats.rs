//! Scalar accumulators for simulation outputs.

/// Running min / max / mean / count over a stream of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample {x}");
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Max/min ratio — load-imbalance factor of per-node finish times.
    pub fn imbalance(&self) -> Option<f64> {
        (self.count > 0 && self.min > 0.0).then(|| self.max / self.min)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut a = Accumulator::new();
        for x in iter {
            a.add(x);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let a: Accumulator = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), Some(2.5));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(4.0));
        assert_eq!(a.imbalance(), Some(4.0));
    }

    #[test]
    fn empty_is_none() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), None);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.imbalance(), None);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a: Accumulator = [1.0, 5.0].into_iter().collect();
        let b: Accumulator = [0.5, 2.0].into_iter().collect();
        a.merge(&b);
        let c: Accumulator = [1.0, 5.0, 0.5, 2.0].into_iter().collect();
        assert_eq!(a, c);
    }

    #[test]
    fn imbalance_none_for_zero_min() {
        let a: Accumulator = [0.0, 1.0].into_iter().collect();
        assert_eq!(a.imbalance(), None);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_samples() {
        let mut a = Accumulator::new();
        a.add(f64::NAN);
    }
}
