//! Analytic-model throughput: cycle-time evaluation and the full
//! integer-allocation optimizer, per architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parspeed_core::{
    ArchModel, AsyncBus, Banyan, Hypercube, MachineParams, ProcessorBudget, SyncBus, Workload,
};
use parspeed_stencil::{PartitionShape, Stencil};
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    let m = MachineParams::paper_defaults();
    let models: Vec<(&str, Box<dyn ArchModel>)> = vec![
        ("sync_bus", Box::new(SyncBus::new(&m))),
        ("async_bus", Box::new(AsyncBus::new(&m))),
        ("hypercube", Box::new(Hypercube::new(&m))),
        ("banyan", Box::new(Banyan::with_network(&m, 256))),
    ];
    let mut g = c.benchmark_group("optimize");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(400));
    g.warm_up_time(std::time::Duration::from_millis(150));
    let w = Workload::new(1024, &Stencil::five_point(), PartitionShape::Square);
    for (name, model) in &models {
        g.bench_function(BenchmarkId::new("unlimited", name), |b| {
            let wrapped = OptWrap(model.as_ref());
            b.iter(|| wrapped.optimize(black_box(&w), ProcessorBudget::Unlimited))
        });
    }
    g.bench_function("cycle_time_sweep_sync_bus", |b| {
        let bus = SyncBus::new(&m);
        b.iter(|| {
            let mut acc = 0.0;
            for p in 1..=256usize {
                acc += bus.cycle_time(&w, w.points() / p as f64);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// `optimize` needs `Self: Sized`; forward the trait through a wrapper.
#[derive(Clone, Copy)]
struct OptWrap<'a>(&'a dyn ArchModel);
impl ArchModel for OptWrap<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn tfp(&self) -> f64 {
        self.0.tfp()
    }
    fn cycle_time(&self, w: &Workload, area: f64) -> f64 {
        self.0.cycle_time(w, area)
    }
    fn closed_form_optimal_area(&self, w: &Workload) -> Option<f64> {
        self.0.closed_form_optimal_area(w)
    }
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
