//! Halo-plan construction and full partitioned iterations: strips vs
//! near-square blocks — the communication-volume contrast the paper is
//! about, on real memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parspeed_exec::PartitionedJacobi;
use parspeed_grid::{halo, RectDecomposition, StripDecomposition};
use parspeed_solver::PoissonProblem;
use parspeed_stencil::Stencil;
use std::hint::black_box;

fn bench_plan_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_plan");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let n = 256usize;
    let strips = StripDecomposition::new(n, 16);
    let rect = RectDecomposition::new(n, 4, 4);
    for stencil in [Stencil::five_point(), Stencil::nine_point_box()] {
        g.bench_function(BenchmarkId::new("strips16", stencil.name()), |b| {
            b.iter(|| halo::plan(black_box(&strips), &stencil))
        });
        g.bench_function(BenchmarkId::new("rect4x4", stencil.name()), |b| {
            b.iter(|| halo::plan(black_box(&rect), &stencil))
        });
    }
    g.finish();
}

fn bench_partitioned_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioned_iterate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(800));
    g.warm_up_time(std::time::Duration::from_millis(300));
    let n = 256usize;
    let p = PoissonProblem::laplace(n, 0.0);
    let s = Stencil::five_point();
    {
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        g.bench_function("strips8_n256", |b| b.iter(|| exec.iterate(false)));
    }
    {
        let d = RectDecomposition::new(n, 4, 2);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        g.bench_function("rect4x2_n256", |b| b.iter(|| exec.iterate(false)));
    }
    {
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        g.bench_function("strips8_n256_with_check", |b| b.iter(|| exec.iterate(true)));
    }
    g.finish();
}

criterion_group!(benches, bench_plan_construction, bench_partitioned_iteration);
criterion_main!(benches);
