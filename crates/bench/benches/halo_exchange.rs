//! Halo-plan construction and full partitioned iterations: strips vs
//! near-square blocks — the communication-volume contrast the paper is
//! about, on real memory — plus depth-k communication-avoiding blocks
//! (one deep exchange funding a block of local sub-iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parspeed_exec::PartitionedJacobi;
use parspeed_grid::{halo, RectDecomposition, StripDecomposition};
use parspeed_solver::PoissonProblem;
use parspeed_stencil::Stencil;
use std::hint::black_box;

fn bench_plan_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_plan");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let n = 256usize;
    let strips = StripDecomposition::new(n, 16);
    let rect = RectDecomposition::new(n, 4, 4);
    for stencil in [Stencil::five_point(), Stencil::nine_point_box()] {
        g.bench_function(BenchmarkId::new("strips16", stencil.name()), |b| {
            b.iter(|| halo::plan(black_box(&strips), &stencil))
        });
        g.bench_function(BenchmarkId::new("rect4x4", stencil.name()), |b| {
            b.iter(|| halo::plan(black_box(&rect), &stencil))
        });
    }
    g.finish();
}

fn bench_partitioned_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioned_iterate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(800));
    g.warm_up_time(std::time::Duration::from_millis(300));
    let n = 256usize;
    let p = PoissonProblem::laplace(n, 0.0);
    let s = Stencil::five_point();
    {
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        g.bench_function("strips8_n256", |b| b.iter(|| exec.iterate(false)));
    }
    {
        let d = RectDecomposition::new(n, 4, 2);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        g.bench_function("rect4x2_n256", |b| b.iter(|| exec.iterate(false)));
    }
    {
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        g.bench_function("strips8_n256_with_check", |b| b.iter(|| exec.iterate(true)));
    }
    // Reach-2 star with diagonals: the widest halo the catalogue needs —
    // per-region sweeps route through the fused 13-point kernel.
    {
        let s13 = Stencil::thirteen_point_star();
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::new(&p, &s13, &d);
        g.bench_function("strips8_n256_13pt", |b| b.iter(|| exec.iterate(false)));
    }
    g.finish();
}

/// Communication-avoiding blocks: `depth` iterations on one exchange vs
/// the same iterations as classic one-exchange-per-iteration rounds —
/// the per-iteration overhead knob of the paper's speedup model, measured
/// on real memory. Each bench advances the same iterate count, so
/// throughput differences are purely exchange amortization vs redundant
/// ghost arithmetic.
fn bench_deep_halo_blocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("deep_halo_block");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(800));
    g.warm_up_time(std::time::Duration::from_millis(300));
    let n = 256usize;
    let p = PoissonProblem::laplace(n, 0.0);
    let s = Stencil::five_point();
    for depth in [1usize, 2, 4, 8] {
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::with_depth(&p, &s, &d, depth);
        g.bench_function(BenchmarkId::new("strips8_n256_4iters", format!("depth{depth}")), |b| {
            b.iter(|| {
                // Always advance 4 iterations: depth-1 pays 4 exchanges,
                // depth-4+ pays one.
                let mut left = 4usize;
                while left > 0 {
                    let block = left.min(depth);
                    exec.iterate_block(block, false);
                    left -= block;
                }
            })
        });
    }
    // The 13-point star doubles the reach (4-row-deep ghost frames at
    // depth 2): the worst-case redundant-arithmetic trade.
    {
        let s13 = Stencil::thirteen_point_star();
        let d = StripDecomposition::new(n, 8);
        let mut exec = PartitionedJacobi::with_depth(&p, &s13, &d, 2);
        g.bench_function("strips8_n256_13pt_depth2", |b| b.iter(|| exec.iterate_block(2, false)));
    }
    g.finish();
}

/// The per-partition region sweep itself: fused dispatch vs the generic
/// tap loop on a strip-shaped region with an executor-style offset.
fn bench_region_sweep(c: &mut Criterion) {
    use parspeed_grid::{Grid2D, Region};
    use parspeed_solver::apply::{jacobi_sweep_region, jacobi_sweep_region_generic};
    let mut g = c.benchmark_group("region_sweep");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(600));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let n = 256usize;
    let rows = n / 8; // one of 8 strips
    for stencil in [Stencil::nine_point_star(), Stencil::thirteen_point_star()] {
        let halo = stencil.reach();
        let region = Region::new(3 * rows, 4 * rows, 0, n);
        let mut src = Grid2D::from_fn(rows, n, halo, |r, c| ((r * 31 + c * 17) % 97) as f64);
        src.fill_halo(0.25);
        let mut dst = Grid2D::new(rows, n, halo);
        let f = Grid2D::from_fn(n, n, 0, |r, c| ((r + c) % 5) as f64);
        let offset = (region.r0, region.c0);
        g.bench_function(BenchmarkId::new("fused", stencil.name()), |b| {
            b.iter(|| {
                jacobi_sweep_region(&stencil, black_box(&src), &mut dst, &f, 1e-4, &region, offset)
            })
        });
        g.bench_function(BenchmarkId::new("generic", stencil.name()), |b| {
            b.iter(|| {
                jacobi_sweep_region_generic(
                    &stencil,
                    black_box(&src),
                    &mut dst,
                    &f,
                    1e-4,
                    &region,
                    offset,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_plan_construction,
    bench_partitioned_iteration,
    bench_deep_halo_blocks,
    bench_region_sweep
);
criterion_main!(benches);
