//! Microbenchmarks for the §8 scheduling extension: the incremental
//! processor-sharing queue, the scheduled-bus simulator across slot
//! orders, and the analytic scheduled-bus optimizer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parspeed_arch::{IterationSpec, ScheduledBusSim, SlotOrder, SyncBusSim};
use parspeed_core::{ArchModel, MachineParams, ProcessorBudget, ScheduledBus, Workload};
use parspeed_desim::PsQueue;
use parspeed_grid::StripDecomposition;
use parspeed_stencil::{PartitionShape, Stencil};
use std::hint::black_box;

fn bench_psqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("psqueue");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    // The coupled read→compute→write pattern both bus sims run.
    for p in [64usize, 256] {
        g.throughput(Throughput::Elements(2 * p as u64));
        g.bench_function(format!("coupled_chain_p{p}"), |b| {
            b.iter(|| {
                let mut q = PsQueue::new();
                for i in 0..p {
                    q.offer(0.0, 1.0 + (i % 5) as f64);
                }
                let mut last = 0.0;
                while let Some((id, t)) = q.next_completion() {
                    if id < p {
                        q.offer(t + 0.25, 1.0 + (id % 5) as f64);
                    }
                    last = t;
                }
                black_box(last)
            })
        });
    }
    g.finish();
}

fn bench_scheduled_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduled_bus");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let m = MachineParams::paper_defaults();
    let d = StripDecomposition::new(512, 64);
    let spec = IterationSpec::new(&d, &Stencil::five_point());
    g.bench_function("sync_ps_512x64", |b| {
        let sim = SyncBusSim::new(&m);
        b.iter(|| black_box(sim.simulate(&spec).cycle_time))
    });
    for (name, order) in
        [("staggered_512x64", SlotOrder::Index), ("largest_first_512x64", SlotOrder::LargestFirst)]
    {
        let sim = ScheduledBusSim::with_order(&m, order);
        g.bench_function(name, |b| b.iter(|| black_box(sim.simulate(&spec).cycle_time)));
    }
    g.finish();
}

fn bench_scheduled_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduled_model");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let m = MachineParams::paper_defaults();
    let sched = ScheduledBus::new(&m);
    for shape in [PartitionShape::Strip, PartitionShape::Square] {
        let w = Workload::new(1024, &Stencil::five_point(), shape);
        g.bench_function(format!("optimize_{}", shape.name()), |b| {
            b.iter(|| black_box(sched.optimize(&w, ProcessorBudget::Unlimited).cycle_time))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_psqueue, bench_scheduled_sim, bench_scheduled_optimizer);
criterion_main!(benches);
