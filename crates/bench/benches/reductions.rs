//! Convergence-check reductions: sequential vs rayon norms — the real
//! cost behind the paper's §4 "local check" term.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parspeed_grid::Grid2D;
use parspeed_solver::norms::{l2, l2_par, linf, linf_diff_par, linf_par};
use std::hint::black_box;

fn bench_norms(c: &mut Criterion) {
    let mut g = c.benchmark_group("norms");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    for n in [256usize, 512] {
        let a = Grid2D::from_fn(n, n, 1, |r, c| ((r * 13 + c * 7) % 101) as f64 * 0.01);
        let b = Grid2D::from_fn(n, n, 1, |r, c| ((r * 13 + c * 7) % 101) as f64 * 0.01 + 1e-9);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_function(BenchmarkId::new("linf_seq", n), |bch| bch.iter(|| linf(black_box(&a))));
        g.bench_function(BenchmarkId::new("linf_par", n), |bch| {
            bch.iter(|| linf_par(black_box(&a)))
        });
        g.bench_function(BenchmarkId::new("l2_seq", n), |bch| bch.iter(|| l2(black_box(&a))));
        g.bench_function(BenchmarkId::new("l2_par", n), |bch| bch.iter(|| l2_par(black_box(&a))));
        g.bench_function(BenchmarkId::new("linf_diff_par", n), |bch| {
            bch.iter(|| linf_diff_par(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_norms);
criterion_main!(benches);
