//! Discrete-event kernel throughput: event scheduling, the
//! processor-sharing solver, and a full machine-iteration simulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parspeed_arch::{IterationSpec, NeighborExchangeSim, SyncBusSim};
use parspeed_core::MachineParams;
use parspeed_desim::{processor_sharing, run, PsArrival, Scheduler, Time, World};
use parspeed_grid::StripDecomposition;
use parspeed_stencil::Stencil;
use std::hint::black_box;

struct Sink(u64);
impl World<u32> for Sink {
    fn handle(&mut self, ev: u32, _s: &mut Scheduler<u32>) {
        self.0 += ev as u64;
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let n_events = 10_000u32;
    g.throughput(Throughput::Elements(n_events as u64));
    g.bench_function("schedule_and_drain_10k", |b| {
        b.iter(|| {
            let mut sched = Scheduler::new();
            for i in 0..n_events {
                sched.schedule(Time::from_secs(((i * 2654435761) % 1000) as f64), i);
            }
            let mut w = Sink(0);
            run(&mut w, &mut sched);
            black_box(w.0)
        })
    });
    let arrivals: Vec<PsArrival> = (0..256)
        .map(|i| PsArrival { at: (i % 7) as f64 * 0.5, work: 1.0 + (i % 13) as f64 })
        .collect();
    g.throughput(Throughput::Elements(arrivals.len() as u64));
    g.bench_function("processor_sharing_256", |b| {
        b.iter(|| processor_sharing(black_box(&arrivals)))
    });
    g.finish();
}

fn bench_machine_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_sim");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let m = MachineParams::paper_defaults();
    let d = StripDecomposition::new(256, 32);
    let spec = IterationSpec::new(&d, &Stencil::five_point());
    g.bench_function("hypercube_32strips", |b| {
        let sim = NeighborExchangeSim::hypercube(&m);
        b.iter(|| sim.simulate(black_box(&spec)))
    });
    g.bench_function("sync_bus_32strips", |b| {
        let sim = SyncBusSim::new(&m);
        b.iter(|| sim.simulate(black_box(&spec)))
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_machine_iteration);
criterion_main!(benches);
