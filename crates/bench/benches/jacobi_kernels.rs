//! Stencil sweep kernels: generic tap-driven vs fused row-slice vs rayon
//! row-parallel, for all four catalogue stencils.
//!
//! The acceptance bar for PR 3 lives here: at n = 1024 the fused 9-point
//! and 13-point sweeps must be ≥ 3× the generic tap kernel single-thread
//! (`perf_snapshot` records the same comparison into `BENCH_PR3.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parspeed_grid::{Grid2D, Region};
use parspeed_solver::apply::{
    jacobi_sweep, jacobi_sweep_5pt, jacobi_sweep_par, jacobi_sweep_region_generic,
};
use parspeed_stencil::Stencil;
use std::hint::black_box;

fn setup(n: usize, halo: usize) -> (Grid2D, Grid2D, Grid2D) {
    let mut src = Grid2D::from_fn(n, n, halo, |r, c| ((r * 31 + c * 17) % 97) as f64 * 0.01);
    src.fill_halo(0.5);
    let dst = Grid2D::new(n, n, halo);
    let f = Grid2D::from_fn(n, n, 0, |r, c| ((r + c) % 5) as f64);
    (src, dst, f)
}

fn bench_kernels(c: &mut Criterion) {
    for n in [256usize, 1024] {
        let mut g = c.benchmark_group(format!("jacobi_sweep_n{n}"));
        g.sample_size(10);
        g.measurement_time(std::time::Duration::from_millis(600));
        g.warm_up_time(std::time::Duration::from_millis(200));
        g.throughput(Throughput::Elements((n * n) as u64));

        for stencil in Stencil::catalog() {
            let halo = stencil.reach();
            let (src, mut dst, f) = setup(n, halo);
            let region = Region::new(0, n, 0, n);
            g.bench_function(BenchmarkId::new("generic", stencil.name()), |b| {
                b.iter(|| {
                    jacobi_sweep_region_generic(
                        &stencil,
                        black_box(&src),
                        &mut dst,
                        &f,
                        1e-4,
                        &region,
                        (0, 0),
                    )
                })
            });
            g.bench_function(BenchmarkId::new("fused", stencil.name()), |b| {
                b.iter(|| jacobi_sweep(&stencil, black_box(&src), &mut dst, &f, 1e-4))
            });
            g.bench_function(BenchmarkId::new("parallel", stencil.name()), |b| {
                b.iter(|| jacobi_sweep_par(&stencil, black_box(&src), &mut dst, &f, 1e-4))
            });
        }

        // The statically-typed 5-point fast path, for reference.
        let (src, mut dst, f) = setup(n, 1);
        g.bench_function(BenchmarkId::new("fused_static", "5-point"), |b| {
            b.iter(|| jacobi_sweep_5pt(black_box(&src), &mut dst, &f, 1e-4))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
