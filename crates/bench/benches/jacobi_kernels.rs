//! Stencil sweep kernels: fused 5-point fast path vs the generic
//! tap-driven sweep, and the wider catalogue stencils.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parspeed_grid::Grid2D;
use parspeed_solver::apply::{jacobi_sweep, jacobi_sweep_5pt};
use parspeed_stencil::Stencil;
use std::hint::black_box;

fn setup(n: usize, halo: usize) -> (Grid2D, Grid2D, Grid2D) {
    let mut src = Grid2D::from_fn(n, n, halo, |r, c| ((r * 31 + c * 17) % 97) as f64 * 0.01);
    src.fill_halo(0.5);
    let dst = Grid2D::new(n, n, halo);
    let f = Grid2D::from_fn(n, n, 0, |r, c| ((r + c) % 5) as f64);
    (src, dst, f)
}

fn bench_kernels(c: &mut Criterion) {
    let n = 256usize;
    let mut g = c.benchmark_group("jacobi_sweep");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(600));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.throughput(Throughput::Elements((n * n) as u64));

    let (src, mut dst, f) = setup(n, 1);
    g.bench_function(BenchmarkId::new("5pt_fused", n), |b| {
        b.iter(|| jacobi_sweep_5pt(black_box(&src), &mut dst, &f, 1e-4))
    });
    let five = Stencil::five_point();
    g.bench_function(BenchmarkId::new("5pt_generic", n), |b| {
        b.iter(|| jacobi_sweep(&five, black_box(&src), &mut dst, &f, 1e-4))
    });
    let nine = Stencil::nine_point_box();
    g.bench_function(BenchmarkId::new("9pt_box_generic", n), |b| {
        b.iter(|| jacobi_sweep(&nine, black_box(&src), &mut dst, &f, 1e-4))
    });
    let (src2, mut dst2, f2) = setup(n, 2);
    let star = Stencil::nine_point_star();
    g.bench_function(BenchmarkId::new("9pt_star_generic", n), |b| {
        b.iter(|| jacobi_sweep(&star, black_box(&src2), &mut dst2, &f2, 1e-4))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
