//! Engine throughput: a 10k-query sweep-shaped batch with heavy
//! duplication through the naive sequential per-query loop vs. the
//! batched engine (dedup + cache + rayon sharding), plus the steady-state
//! warm-cache path. The acceptance bar for this workload is engine ≥ 4×
//! naive at equal (bit-identical) answers; in practice dedup alone buys
//! the batch far more.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parspeed_engine::{
    eval_naive, ArchKind, Engine, MachineSpec, Query, ShapeKey, StencilSpec, WorkloadSpec,
};
use std::hint::black_box;

const BATCH: usize = 10_000;

/// 10k-atom batch cycling over 400 unique optimizer queries — the shape
/// of sweep traffic hitting a capacity-planning service.
fn duplicated_batch() -> Vec<Query> {
    let stencils = [StencilSpec::FivePoint, StencilSpec::NinePointBox];
    let shapes = [ShapeKey::Strip, ShapeKey::Square];
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let budgets = [Some(8), Some(16), Some(32), Some(64), None];
    let archs = [ArchKind::SyncBus, ArchKind::AsyncBus, ArchKind::Hypercube, ArchKind::Banyan];
    let mut unique = Vec::new();
    for arch in archs {
        for stencil in stencils {
            for shape in shapes {
                for n in sizes {
                    for procs in budgets {
                        unique.push(Query::Optimize {
                            arch,
                            machine: MachineSpec::default(),
                            workload: WorkloadSpec { n, stencil, shape },
                            procs,
                            memory_words: None,
                        });
                    }
                }
            }
        }
    }
    (0..BATCH).map(|i| unique[i % unique.len()].clone()).collect()
}

fn bench_engine_vs_naive(c: &mut Criterion) {
    let batch = duplicated_batch();

    // Headline comparison, printed before the per-path timings: one
    // measured naive pass vs one cold engine pass, with the identity of
    // the answers checked on the spot.
    let t0 = std::time::Instant::now();
    let naive = eval_naive(&batch);
    let naive_secs = t0.elapsed().as_secs_f64();
    let engine = Engine::builder().build();
    let t1 = std::time::Instant::now();
    let out = engine.run_batch(&batch);
    let engine_secs = t1.elapsed().as_secs_f64();
    assert_eq!(out.responses, naive, "engine must be bit-identical to the naive loop");
    println!(
        "engine_throughput: {} queries ({} unique, {:.0}× dedup) — naive {:.2} ms, \
         engine cold {:.2} ms → {:.1}× ; telemetry: {}",
        BATCH,
        out.telemetry.unique,
        out.telemetry.dedup_factor(),
        naive_secs * 1e3,
        engine_secs * 1e3,
        naive_secs / engine_secs,
        out.telemetry,
    );

    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.throughput(Throughput::Elements(BATCH as u64));

    g.bench_function("naive_sequential_loop", |b| b.iter(|| eval_naive(black_box(&batch))));
    g.bench_function("engine_cold_cache", |b| {
        // A fresh engine per iteration: measures plan + dedup + parallel
        // evaluation with no carried-over cache.
        b.iter(|| Engine::builder().build().run_batch(black_box(&batch)))
    });
    let warm = Engine::builder().build();
    warm.run_batch(&batch);
    g.bench_function("engine_warm_cache", |b| {
        // Steady-state serving: every unique key is already cached.
        b.iter(|| warm.run_batch(black_box(&batch)))
    });
    g.finish();
}

criterion_group!(benches, bench_engine_vs_naive);
criterion_main!(benches);
