//! Engine throughput: a 10k-query mixed-kind batch with heavy duplication
//! through the naive sequential per-query loop vs. the batched engine
//! (dedup + cache + rayon sharding), plus the steady-state warm-cache
//! path. Since the service redesign the batch mixes every cacheable query
//! kind — optimizer points plus `table1`, `compare`, `minsize`, `isoeff`,
//! `leverage`, `simulate`, and `solve`. The acceptance bar for this
//! workload is engine ≥ 4× naive at equal (bit-identical) answers; in
//! practice dedup alone buys the batch far more.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parspeed_engine::{eval_naive, Engine};
use std::hint::black_box;

const BATCH: usize = 10_000;

fn bench_engine_vs_naive(c: &mut Criterion) {
    let batch = parspeed_engine::workloads::mixed_batch(BATCH);

    // Headline comparison, printed before the per-path timings: one
    // measured naive pass vs one cold engine pass, with the identity of
    // the answers checked on the spot.
    let t0 = std::time::Instant::now();
    let naive = eval_naive(&batch);
    let naive_secs = t0.elapsed().as_secs_f64();
    let engine = Engine::builder().build();
    let t1 = std::time::Instant::now();
    let out = engine.run_batch(&batch);
    let engine_secs = t1.elapsed().as_secs_f64();
    assert_eq!(out.responses, naive, "engine must be bit-identical to the naive loop");
    println!(
        "engine_throughput: {} queries ({} unique, {:.0}× dedup) — naive {:.2} ms, \
         engine cold {:.2} ms → {:.1}× ; telemetry: {}",
        BATCH,
        out.telemetry.unique,
        out.telemetry.dedup_factor(),
        naive_secs * 1e3,
        engine_secs * 1e3,
        naive_secs / engine_secs,
        out.telemetry,
    );

    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.throughput(Throughput::Elements(BATCH as u64));

    g.bench_function("naive_sequential_loop", |b| b.iter(|| eval_naive(black_box(&batch))));
    g.bench_function("engine_cold_cache", |b| {
        // A fresh engine per iteration: measures plan + dedup + parallel
        // evaluation with no carried-over cache.
        b.iter(|| Engine::builder().build().run_batch(black_box(&batch)))
    });
    let warm = Engine::builder().build();
    warm.run_batch(&batch);
    g.bench_function("engine_warm_cache", |b| {
        // Steady-state serving: every unique key is already cached.
        b.iter(|| warm.run_batch(black_box(&batch)))
    });
    g.finish();
}

criterion_group!(benches, bench_engine_vs_naive);
criterion_main!(benches);
