//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each module under [`experiments`] reproduces one artifact (see
//! `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results). Every experiment exposes
//! `run(quick: bool) -> String`: the returned report is printed by the
//! matching binary (`cargo run -p parspeed-bench --bin <name>`), and CSV
//! series are written under `target/experiments/`. `--bin run_all`
//! regenerates everything.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
