//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec8_scheduling`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec8_scheduling::run(quick));
}
