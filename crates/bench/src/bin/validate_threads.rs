//! Regenerates one paper artifact; see `parspeed_bench::experiments::validate_threads`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::validate_threads::run(quick));
}
