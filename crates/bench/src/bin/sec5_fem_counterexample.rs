//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec5_fem`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec5_fem::run(quick));
}
