//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec4_embedding`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec4_embedding::run(quick));
}
