//! Regenerates the ablation studies; see `parspeed_bench::experiments::ablations`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::ablations::run(quick));
}
