//! Regenerates one paper artifact; see `parspeed_bench::experiments::fig6`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::fig6::run(quick));
}
