//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec62_async`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec62_async::run(quick));
}
