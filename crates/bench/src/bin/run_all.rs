//! Regenerates every table and figure of the paper in one pass.
//! CSV series land in `target/experiments/`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::run_all(quick));
}
