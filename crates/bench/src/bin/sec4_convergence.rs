//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec4_convergence`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec4_convergence::run(quick));
}
