//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec7_switching`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec7_switching::run(quick));
}
