//! Regenerates one paper artifact; see `parspeed_bench::experiments::validate_desim`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::validate_desim::run(quick));
}
