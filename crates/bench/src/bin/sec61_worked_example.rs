//! Regenerates one paper artifact; see `parspeed_bench::experiments::sec61_worked`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", parspeed_bench::experiments::sec61_worked::run(quick));
}
