//! Machine-readable kernel-throughput snapshot → `BENCH_PR3.json`.
//!
//! Measures, for each catalogue stencil, the full-interior Jacobi sweep in
//! three configurations — generic tap-driven, fused row-slice, and fused
//! rayon row-parallel — and writes the numbers as JSON so the repo carries
//! a perf trajectory across PRs. Throughput is reported in million point
//! updates per second (`mpts`) and derived MFLOP/s (`mpts ×`
//! [`Stencil::flops_per_point`]).
//!
//! ```text
//! cargo run --release -p parspeed-bench --bin perf_snapshot            # n=1024 → BENCH_PR3.json
//! cargo run --release -p parspeed-bench --bin perf_snapshot -- --quick --check --out target/smoke.json
//! ```
//!
//! `--quick` shrinks the grid and measurement time (the CI smoke
//! configuration); `--check` re-parses the written JSON and fails unless
//! every fused kernel is at least as fast as the generic sweep and
//! bit-identical to it; `--out PATH` overrides the output path.

use parspeed_engine::jsonl::{self, Json};
use parspeed_grid::{Grid2D, Region};
use parspeed_solver::apply::{jacobi_sweep, jacobi_sweep_par, jacobi_sweep_region_generic};
use parspeed_stencil::Stencil;
use std::hint::black_box;
use std::time::Instant;

struct Config {
    n: usize,
    min_time: f64,
    trials: usize,
    check: bool,
    out: String,
}

struct Row {
    stencil: &'static str,
    taps: usize,
    flops_per_point: f64,
    generic_mpts: f64,
    fused_mpts: f64,
    par_mpts: f64,
}

fn parse_args() -> Config {
    let mut cfg =
        Config { n: 1024, min_time: 0.25, trials: 3, check: false, out: "BENCH_PR3.json".into() };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                cfg.n = 256;
                cfg.min_time = 0.04;
                cfg.trials = 2;
            }
            "--check" => cfg.check = true,
            "--out" => cfg.out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (expected --quick, --check, --out PATH)"),
        }
    }
    cfg
}

fn setup(n: usize, halo: usize) -> (Grid2D, Grid2D) {
    let mut src = Grid2D::from_fn(n, n, halo, |r, c| ((r * 31 + c * 17) % 97) as f64 * 0.01);
    src.fill_halo(0.5);
    let f = Grid2D::from_fn(n, n, 0, |r, c| ((r + c) % 5) as f64);
    (src, f)
}

/// Best observed sweep rate (million point updates per second) over
/// `trials` timed windows of at least `min_time` seconds each.
fn measure(cfg: &Config, mut sweep: impl FnMut()) -> f64 {
    sweep(); // warm up caches and the rayon pool
    let points = (cfg.n * cfg.n) as f64;
    let mut best = 0.0f64;
    for _ in 0..cfg.trials {
        let mut reps = 0u64;
        let start = Instant::now();
        loop {
            sweep();
            reps += 1;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= cfg.min_time {
                best = best.max(points * reps as f64 / elapsed / 1e6);
                break;
            }
        }
    }
    best
}

fn snapshot(cfg: &Config) -> (Vec<Row>, bool) {
    let mut rows = Vec::new();
    let mut identical = true;
    for s in Stencil::catalog() {
        let halo = s.reach();
        let (src, f) = setup(cfg.n, halo);
        let mut dst = Grid2D::new(cfg.n, cfg.n, halo);
        let h2 = 1e-4;
        let region = Region::new(0, cfg.n, 0, cfg.n);

        let mut generic_out = Grid2D::new(cfg.n, cfg.n, halo);
        jacobi_sweep_region_generic(&s, &src, &mut generic_out, &f, h2, &region, (0, 0));
        let mut fused_out = Grid2D::new(cfg.n, cfg.n, halo);
        jacobi_sweep(&s, &src, &mut fused_out, &f, h2);
        if fused_out.max_abs_diff(&generic_out) != 0.0 {
            eprintln!("BIT-IDENTITY VIOLATION: {} fused differs from generic", s.name());
            identical = false;
        }

        let generic_mpts = measure(cfg, || {
            jacobi_sweep_region_generic(&s, black_box(&src), &mut dst, &f, h2, &region, (0, 0))
        });
        let fused_mpts = measure(cfg, || jacobi_sweep(&s, black_box(&src), &mut dst, &f, h2));
        let par_mpts = measure(cfg, || jacobi_sweep_par(&s, black_box(&src), &mut dst, &f, h2));

        rows.push(Row {
            stencil: s.name(),
            taps: s.tap_count(),
            flops_per_point: s.flops_per_point(),
            generic_mpts,
            fused_mpts,
            par_mpts,
        });
    }
    (rows, identical)
}

fn to_json(cfg: &Config, rows: &[Row], identical: bool) -> Json {
    let kernels = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("stencil".into(), Json::Str(r.stencil.into())),
                ("taps".into(), Json::Num(r.taps as f64)),
                ("flops_per_point".into(), Json::Num(r.flops_per_point)),
                ("generic_mpts".into(), Json::Num(round3(r.generic_mpts))),
                ("fused_mpts".into(), Json::Num(round3(r.fused_mpts))),
                ("parallel_mpts".into(), Json::Num(round3(r.par_mpts))),
                ("fused_speedup".into(), Json::Num(round3(r.fused_mpts / r.generic_mpts))),
                ("fused_mflops".into(), Json::Num(round3(r.fused_mpts * r.flops_per_point))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("parspeed-perf-snapshot/v1".into())),
        ("pr".into(), Json::Num(3.0)),
        ("bench".into(), Json::Str("full-interior Jacobi sweep".into())),
        ("n".into(), Json::Num(cfg.n as f64)),
        ("threads".into(), Json::Num(rayon::current_num_threads() as f64)),
        ("bit_identical".into(), Json::Bool(identical)),
        ("kernels".into(), Json::Arr(kernels)),
    ])
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn main() {
    let cfg = parse_args();
    let (rows, identical) = snapshot(&cfg);
    // A drifted kernel must never produce a committable snapshot, with or
    // without --check: fail after writing (the file records the evidence).
    let json = to_json(&cfg, &rows, identical);
    let text = json.render();
    if let Some(dir) = std::path::Path::new(&cfg.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&cfg.out, &text).expect("write snapshot");

    println!("kernel throughput at n={} ({} thread(s)):", cfg.n, rayon::current_num_threads());
    println!(
        "  {:<16}{:>14}{:>12}{:>12}{:>10}{:>14}",
        "stencil", "generic Mp/s", "fused Mp/s", "par Mp/s", "fused×", "fused MFLOP/s"
    );
    for r in &rows {
        println!(
            "  {:<16}{:>14.1}{:>12.1}{:>12.1}{:>10.2}{:>14.0}",
            r.stencil,
            r.generic_mpts,
            r.fused_mpts,
            r.par_mpts,
            r.fused_mpts / r.generic_mpts,
            r.fused_mpts * r.flops_per_point
        );
    }
    println!("wrote {}", cfg.out);
    assert!(identical, "fused kernels must be bit-identical to generic (snapshot records details)");

    if cfg.check {
        let reparsed = jsonl::parse(&std::fs::read_to_string(&cfg.out).expect("re-read snapshot"))
            .expect("snapshot JSON must re-parse");
        let kernels = reparsed.get("kernels").and_then(Json::as_arr).expect("kernels array");
        assert_eq!(kernels.len(), rows.len(), "snapshot lost kernels");
        for k in kernels {
            let name = k.get("stencil").and_then(Json::as_str).expect("stencil name");
            let speedup = k.get("fused_speedup").and_then(Json::as_f64).expect("fused_speedup");
            assert!(speedup >= 1.0, "{name}: fused slower than generic ({speedup:.3}×)");
        }
        println!("check passed: JSON round-trips, fused ≥ generic on all stencils");
    }
}
