//! Machine-readable performance snapshot → `BENCH_PR10.json`.
//!
//! Sections, each a paper-relevant hot path:
//!
//! * **kernels** (PR 3): for each catalogue stencil, the full-interior
//!   Jacobi sweep — generic tap-driven vs fused row-slice vs fused rayon
//!   row-parallel — in million point updates per second (`mpts`) and
//!   derived MFLOP/s;
//! * **solver_loop** (PR 4): the end-to-end weighted-Jacobi iteration at
//!   n = 1024, single thread — the historical three-pass loop (sweep,
//!   ω-blend, convergence-diff, each streaming the whole grid) against
//!   the fused single-pass loop, and against the temporally tiled
//!   block-of-k loop under a sparse (geometric) check schedule;
//! * **deep_halo** (PR 4): the partitioned executor at equal iterates —
//!   exchange rounds with depth-1 halos vs depth-4 halos (one exchange
//!   funding a block of local sub-iterations), the paper's per-iteration
//!   communication-overhead knob;
//! * **server** (PR 5): the serving layer's problem-size tradeoff — a
//!   10 000-request duplicated workload dispatched one request at a time
//!   (every dispatch pays the whole per-batch coordination cost for a
//!   problem of size 1) vs the same requests pipelined by concurrent
//!   clients through the cross-client micro-batcher (≥ 2× required);
//! * **observability** (PR 6): the same micro-batched workload with
//!   per-stage latency recording off vs on — the instrumentation
//!   overhead (≤ 5% required at full size) — plus the per-stage p50s of
//!   the observed run, the paper's `k(P,S)` overhead term measured
//!   instead of modeled;
//! * **sharding** (PR 7): the paper's optimal-`P` argument replayed on
//!   the serving fleet — a duplicated workload over `D` distinct cache
//!   keys against `C`-entry shard caches, swept across fleet sizes
//!   through the consistent-hash router. Small fleets thrash (the
//!   aggregate cache cannot hold the working set: the per-processor
//!   memory constraint of §3), large fleets fragment the same traffic
//!   into more, smaller micro-batches (per-batch coordination paid more
//!   often: `k(P,S)` rising with `P` — Gunther's retrograde region), and
//!   `parspeed route --predict`'s `Query::Optimize` pipeline must land
//!   within ±1 of the empirically best fleet size (≥ 2× single-server
//!   throughput at 4 shards required);
//! * **robustness** (PR 8): the resilience layer under a scripted fault
//!   — a 4-shard fleet loses one shard to a seeded
//!   [`parspeed_chaos::FaultPlan`] kill halfway through the duplicated
//!   workload, and every reply slot must still answer, bit-identical to
//!   the serial engine, with the fault run's goodput at least 0.7× a
//!   clean 3-shard fleet's (the post-kill steady state); a serial
//!   closed-loop replay of the same seeded plan must produce the same
//!   event trace twice;
//! * **self_healing** (PR 9): the supervised fleet — a 4-shard fleet
//!   with the shard supervisor enabled loses shard 0 to a seeded kill
//!   halfway through the workload; the supervisor respawns it, replays
//!   its hot keys into the replacement's cache, and readmits it to the
//!   ring, and the *healed* fleet must then serve the same workload at
//!   ≥ 0.95× the throughput of a fleet that never faulted (≥ 0.8×
//!   under --quick noise), with zero dropped requests, bit-identical
//!   replies, and a reproducible kill → respawn → warmup → rejoin
//!   event trace;
//! * **server_io** (PR 10): the TCP frontends head-to-head over real
//!   sockets — the legacy thread-per-connection frontend at `C`
//!   concurrent connections against the readiness-driven event loop at
//!   `10 C` connections, same per-connection workload. The event loop
//!   must *serve* the 10× connection count (every reply delivered) on a
//!   flat thread budget (one loop thread, measured as process
//!   thread-count growth while the connections are open, vs two threads
//!   per connection), without collapsing on throughput.
//!
//! ```text
//! cargo run --release -p parspeed-bench --bin perf_snapshot            # n=1024 → BENCH_PR10.json
//! cargo run --release -p parspeed-bench --bin perf_snapshot -- --quick --check --out target/smoke.json
//! ```
//!
//! `--quick` shrinks the grids, request counts, and measurement time
//! (the CI smoke configuration); `--check` re-parses the written JSON
//! and fails unless every fused kernel is at least as fast as the
//! generic sweep, the fused solver loop beats the three-pass loop, deep
//! halos at least halve the exchange count, the micro-batched server
//! beats per-request dispatch (≥ 2× full-size, ≥ 1.3× under the noisy
//! quick configuration), stage recording stays within its overhead
//! budget with every stage histogram populated, the sharded fleet beats
//! the single server (≥ 2× at 4 shards full-size, ≥ 1.3× quick) with
//! the predicted fleet size within ±1 of the measured best, the fault
//! run drops zero requests with a reproducible event trace and recovers
//! ≥ 0.7× the 3-shard baseline (≥ 0.5× under --quick noise), and
//! everything is bit-identical; `--out PATH` overrides the output path.

use parspeed_chaos::FaultPlan;
use parspeed_engine::jsonl::{self, Json};
use parspeed_engine::{ArchKind, Engine, Query, Request, Response, SolverKind};
use parspeed_exec::PartitionedJacobi;
use parspeed_grid::{Grid2D, Region, StripDecomposition};
use parspeed_router::predict::{predict, FleetModel, SweepPoint, WorkloadProfile};
use parspeed_router::{Router, RouterConfig, SupervisorPolicy};
use parspeed_server::{Server, ServerConfig};
use parspeed_solver::apply::{jacobi_sweep, jacobi_sweep_par, jacobi_sweep_region_generic};
use parspeed_solver::{CheckPolicy, JacobiSolver, PoissonProblem};
use parspeed_stencil::Stencil;
use std::hint::black_box;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Config {
    n: usize,
    solve_iters: usize,
    halo_n: usize,
    min_time: f64,
    trials: usize,
    server_requests: usize,
    /// Sharding section: requests, distinct cache keys, per-shard cache
    /// capacity, fleet sizes to sweep, and the largest fleet `--predict`
    /// may propose.
    shard_requests: usize,
    shard_distinct: usize,
    shard_capacity: usize,
    shard_sweep: &'static [usize],
    shard_max: usize,
    /// server_io section: thread-frontend connection count (the event
    /// loop runs 10× this) and requests per connection.
    io_conns: usize,
    io_requests_per_conn: usize,
    quick: bool,
    check: bool,
    out: String,
}

struct Row {
    stencil: &'static str,
    taps: usize,
    flops_per_point: f64,
    generic_mpts: f64,
    fused_mpts: f64,
    par_mpts: f64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        n: 1024,
        solve_iters: 60,
        halo_n: 256,
        min_time: 0.25,
        trials: 3,
        server_requests: 10_000,
        shard_requests: 10_000,
        shard_distinct: 144,
        shard_capacity: 36,
        shard_sweep: &[1, 2, 3, 4, 6, 8],
        shard_max: 8,
        io_conns: 100,
        io_requests_per_conn: 50,
        quick: false,
        check: false,
        out: "BENCH_PR10.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                cfg.n = 256;
                cfg.solve_iters = 24;
                cfg.halo_n = 96;
                cfg.min_time = 0.04;
                cfg.trials = 2;
                cfg.server_requests = 2_000;
                cfg.shard_requests = 2_000;
                cfg.shard_distinct = 64;
                cfg.shard_capacity = 16;
                cfg.shard_sweep = &[1, 2, 4];
                cfg.shard_max = 4;
                cfg.io_conns = 50;
                cfg.io_requests_per_conn = 10;
                cfg.quick = true;
            }
            "--check" => cfg.check = true,
            "--out" => cfg.out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (expected --quick, --check, --out PATH)"),
        }
    }
    cfg
}

fn setup(n: usize, halo: usize) -> (Grid2D, Grid2D) {
    let mut src = Grid2D::from_fn(n, n, halo, |r, c| ((r * 31 + c * 17) % 97) as f64 * 0.01);
    src.fill_halo(0.5);
    let f = Grid2D::from_fn(n, n, 0, |r, c| ((r + c) % 5) as f64);
    (src, f)
}

/// Best observed sweep rate (million point updates per second) over
/// `trials` timed windows of at least `min_time` seconds each.
fn measure(cfg: &Config, mut sweep: impl FnMut()) -> f64 {
    sweep(); // warm up caches and the rayon pool
    let points = (cfg.n * cfg.n) as f64;
    let mut best = 0.0f64;
    for _ in 0..cfg.trials {
        let mut reps = 0u64;
        let start = Instant::now();
        loop {
            sweep();
            reps += 1;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= cfg.min_time {
                best = best.max(points * reps as f64 / elapsed / 1e6);
                break;
            }
        }
    }
    best
}

fn snapshot(cfg: &Config) -> (Vec<Row>, bool) {
    let mut rows = Vec::new();
    let mut identical = true;
    for s in Stencil::catalog() {
        let halo = s.reach();
        let (src, f) = setup(cfg.n, halo);
        let mut dst = Grid2D::new(cfg.n, cfg.n, halo);
        let h2 = 1e-4;
        let region = Region::new(0, cfg.n, 0, cfg.n);

        let mut generic_out = Grid2D::new(cfg.n, cfg.n, halo);
        jacobi_sweep_region_generic(&s, &src, &mut generic_out, &f, h2, &region, (0, 0));
        let mut fused_out = Grid2D::new(cfg.n, cfg.n, halo);
        jacobi_sweep(&s, &src, &mut fused_out, &f, h2);
        if fused_out.max_abs_diff(&generic_out) != 0.0 {
            eprintln!("BIT-IDENTITY VIOLATION: {} fused differs from generic", s.name());
            identical = false;
        }

        let generic_mpts = measure(cfg, || {
            jacobi_sweep_region_generic(&s, black_box(&src), &mut dst, &f, h2, &region, (0, 0))
        });
        let fused_mpts = measure(cfg, || jacobi_sweep(&s, black_box(&src), &mut dst, &f, h2));
        let par_mpts = measure(cfg, || jacobi_sweep_par(&s, black_box(&src), &mut dst, &f, h2));

        rows.push(Row {
            stencil: s.name(),
            taps: s.tap_count(),
            flops_per_point: s.flops_per_point(),
            generic_mpts,
            fused_mpts,
            par_mpts,
        });
    }
    (rows, identical)
}

struct SolverLoop {
    omega: f64,
    three_pass_mpts: f64,
    fused_mpts: f64,
    temporal_three_pass_mpts: f64,
    temporal_mpts: f64,
    identical: bool,
}

/// The historical weighted-Jacobi loop: one whole-grid sweep, a separate
/// whole-grid ω-blend pass, and a separate whole-grid max-diff pass at
/// every scheduled check — exactly what `JacobiSolver::solve` did before
/// the passes were fused.
fn three_pass_iterates(
    p: &PoissonProblem,
    s: &Stencil,
    omega: f64,
    iters: usize,
    check: CheckPolicy,
) -> Grid2D {
    let halo = s.reach();
    let h2 = p.h() * p.h();
    let mut u = p.initial_grid(halo);
    let mut next = p.initial_grid(halo);
    let f = p.forcing();
    let mut next_check = check.first_check();
    let mut diff = f64::INFINITY;
    for it in 1..=iters {
        jacobi_sweep(s, &u, &mut next, f, h2);
        if omega != 1.0 {
            for r in 0..u.rows() {
                let urow = u.interior_row(r).to_vec();
                for (nv, &uv) in next.interior_row_mut(r).iter_mut().zip(&urow) {
                    *nv = omega * *nv + (1.0 - omega) * uv;
                }
            }
        }
        if it >= next_check.min(iters) {
            diff = u.max_abs_diff(&next);
            while next_check <= it {
                next_check = check.next_check(next_check);
            }
        }
        u.swap(&mut next);
    }
    black_box(diff);
    u
}

/// Best observed iteration rate (million point updates per second) of a
/// closure running `iters` whole-grid iterations.
fn measure_solve(cfg: &Config, iters: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm up
    let points = (cfg.n * cfg.n * iters) as f64;
    let mut best = 0.0f64;
    for _ in 0..cfg.trials {
        let start = Instant::now();
        run();
        best = best.max(points / start.elapsed().as_secs_f64() / 1e6);
    }
    best
}

/// End-to-end solver-loop measurement: pass fusion under an every-
/// iteration schedule, temporal tiling under the sparse geometric one.
fn snapshot_solver_loop(cfg: &Config) -> SolverLoop {
    let omega = 0.8;
    let s = Stencil::five_point();
    let p = PoissonProblem::laplace(cfg.n, 1.0);
    let iters = cfg.solve_iters;
    let solver =
        |check| JacobiSolver { tol: 0.0, max_iters: iters, check, omega, ..Default::default() };

    // Bit-identity first: the fused/tiled solves must reproduce the
    // three-pass loop exactly under both schedules.
    let mut identical = true;
    for check in [CheckPolicy::Every(1), CheckPolicy::geometric()] {
        let reference = three_pass_iterates(&p, &s, omega, iters, check);
        let (u, status) = solver(check).solve(&p, &s);
        if status.iterations != iters || u.max_abs_diff(&reference) != 0.0 {
            eprintln!("BIT-IDENTITY VIOLATION: fused solver loop differs under {check:?}");
            identical = false;
        }
    }

    let three_pass_mpts = measure_solve(cfg, iters, || {
        black_box(three_pass_iterates(&p, &s, omega, iters, CheckPolicy::Every(1)));
    });
    let fused_mpts = measure_solve(cfg, iters, || {
        black_box(solver(CheckPolicy::Every(1)).solve(&p, &s));
    });
    let temporal_three_pass_mpts = measure_solve(cfg, iters, || {
        black_box(three_pass_iterates(&p, &s, omega, iters, CheckPolicy::geometric()));
    });
    let temporal_mpts = measure_solve(cfg, iters, || {
        black_box(solver(CheckPolicy::geometric()).solve(&p, &s));
    });
    SolverLoop {
        omega,
        three_pass_mpts,
        fused_mpts,
        temporal_three_pass_mpts,
        temporal_mpts,
        identical,
    }
}

struct DeepHalo {
    strips: usize,
    depth: usize,
    iterations: usize,
    check_period: usize,
    exchanges_depth1: usize,
    exchanges_deep: usize,
    identical: bool,
}

/// Exchange-round counts at equal iterates: depth-1 vs deep halos under
/// the same check schedule (the counts are deterministic; wall time is
/// covered by the criterion benches).
fn snapshot_deep_halo(cfg: &Config) -> DeepHalo {
    let (strips, depth, check_period) = (8usize, 4usize, 8usize);
    let iterations = 64usize;
    let s = Stencil::five_point();
    let p = PoissonProblem::laplace(cfg.halo_n, 1.0);
    let policy = CheckPolicy::Every(check_period);
    let decomp = StripDecomposition::new(cfg.halo_n, strips);
    let mut shallow = PartitionedJacobi::new(&p, &s, &decomp);
    let mut deep = PartitionedJacobi::with_depth(&p, &s, &decomp, depth);
    // tol = 0 never converges: both run exactly `iterations` iterations
    // under the same schedule.
    shallow.solve(0.0, iterations, policy);
    deep.solve(0.0, iterations, policy);
    let identical = shallow.solution().max_abs_diff(&deep.solution()) == 0.0
        && shallow.iterations() == iterations
        && deep.iterations() == iterations;
    if !identical {
        eprintln!("BIT-IDENTITY VIOLATION: deep-halo run differs from depth-1");
    }
    DeepHalo {
        strips,
        depth,
        iterations,
        check_period,
        exchanges_depth1: shallow.exchanges(),
        exchanges_deep: deep.exchanges(),
        identical,
    }
}

struct ServerBench {
    requests: usize,
    clients: usize,
    distinct: usize,
    serial_seconds: f64,
    batched_seconds: f64,
    batches: u64,
    avg_batch_fill: f64,
    cross_client_dedup_hits: u64,
    identical: bool,
}

impl ServerBench {
    fn speedup(&self) -> f64 {
        self.serial_seconds / self.batched_seconds
    }
}

/// The duplicated serving workload: a small distinct pool cycled to
/// `total` requests, so most traffic is a near-duplicate of somebody
/// else's — the regime where cross-client dedup pays. The pool mixes
/// cheap point queries with the service's genuinely expensive kinds
/// (all-architecture compares, grid sweeps, real numerical solves), the
/// mix a capacity-planning service actually fields.
fn server_workload(total: usize) -> (Vec<Query>, usize) {
    let mut pool: Vec<Query> = (0..16)
        .map(|i| Request::optimize(ArchKind::SyncBus, 64 + 16 * i).procs(32 + i).query())
        .collect();
    for i in 0..6 {
        pool.push(Request::compare(96 + 32 * i).query());
    }
    for i in 0..4 {
        pool.push(Request::sweep(64, 256 + 64 * i).query());
        pool.push(
            Request::solve(15)
                .solver(SolverKind::Cg)
                .tol(1e-6 / (i + 1) as f64)
                .max_iters(10_000)
                .query(),
        );
    }
    for n in [9, 11] {
        pool.push(Request::solve(n).solver(SolverKind::Jacobi).tol(1e-6).max_iters(10_000).query());
    }
    let distinct = pool.len();
    let queries = (0..total).map(|i| pool[i % distinct].clone()).collect();
    (queries, distinct)
}

/// Cross-client micro-batching vs per-request serial dispatch on the
/// same duplicated workload, best of `cfg.trials` runs each. The serial
/// baseline is the workspace's canonical one (the PR-1/PR-2 acceptance
/// gates use it too): [`eval_naive`](parspeed_engine::eval_naive), each
/// request dispatched alone, straight into the models — no batch to
/// plan, no dedup, no cache, exactly what a frontend answering every
/// request independently would do. The micro-batcher's whole point is
/// that coalescing concurrent requests into one batch buys back that
/// amortization *across clients*; this measures how much.
fn snapshot_server(cfg: &Config) -> ServerBench {
    let clients = 8usize;
    let (queries, distinct) = server_workload(cfg.server_requests);

    // Reference answers for the bit-identity check.
    let reference = Engine::default().run_batch(&queries[..distinct.min(queries.len())]);
    let expect = |i: usize| &reference.responses[i % distinct];

    let mut serial_seconds = f64::INFINITY;
    let mut identical = true;
    for _ in 0..cfg.trials {
        let start = Instant::now();
        for q in &queries {
            let out = parspeed_engine::eval_naive(std::slice::from_ref(q));
            black_box(&out);
        }
        serial_seconds = serial_seconds.min(start.elapsed().as_secs_f64());
    }

    let mut batched_seconds = f64::INFINITY;
    let mut batches = 0u64;
    let mut avg_batch_fill = 0.0f64;
    let mut cross_client_dedup_hits = 0u64;
    for _ in 0..cfg.trials {
        let server = Server::start(
            Arc::new(Engine::default()),
            ServerConfig {
                window: Duration::from_micros(200),
                max_batch: 1024,
                workers: 2,
                queue_depth: cfg.server_requests,
                ..ServerConfig::default()
            },
        );
        let barrier = Arc::new(Barrier::new(clients + 1));
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = server.client();
                let barrier = Arc::clone(&barrier);
                // Deal the workload round-robin so every client's stream
                // duplicates every other client's.
                let share: Vec<Query> = queries.iter().skip(c).step_by(clients).cloned().collect();
                let offsets: Vec<usize> = (0..queries.len()).skip(c).step_by(clients).collect();
                std::thread::spawn(move || {
                    barrier.wait();
                    for q in &share {
                        client.submit(q.clone());
                    }
                    let replies: Vec<Response> =
                        (0..share.len()).map(|_| client.recv().1).collect();
                    (offsets, replies)
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("client")).collect();
        let elapsed = start.elapsed().as_secs_f64();
        for (offsets, replies) in &results {
            for (offset, reply) in offsets.iter().zip(replies) {
                if reply != expect(*offset) {
                    eprintln!("BIT-IDENTITY VIOLATION: server reply for request {offset} differs");
                    identical = false;
                }
            }
        }
        let stats = server.shutdown();
        if stats.completed as usize != cfg.server_requests || stats.overloaded != 0 {
            eprintln!("SERVER BENCH ANOMALY: {stats}");
            identical = false;
        }
        // Keep the batching telemetry of the same trial whose time is
        // reported, so the snapshot's fill/dedup numbers describe the
        // run behind the recorded speedup.
        if elapsed < batched_seconds {
            batched_seconds = elapsed;
            batches = stats.batches;
            avg_batch_fill = stats.avg_batch_fill();
            cross_client_dedup_hits = stats.cross_client_dedup_hits;
        }
    }

    ServerBench {
        requests: cfg.server_requests,
        clients,
        distinct,
        serial_seconds,
        batched_seconds,
        batches,
        avg_batch_fill,
        cross_client_dedup_hits,
        identical,
    }
}

struct ObsBench {
    requests: usize,
    clients: usize,
    unobserved_seconds: f64,
    observed_seconds: f64,
    /// Per stage: (name, sample count, p50 in microseconds), from the
    /// best observed run.
    stages: Vec<(&'static str, u64, f64)>,
}

impl ObsBench {
    fn overhead_frac(&self) -> f64 {
        self.observed_seconds / self.unobserved_seconds - 1.0
    }
}

/// One micro-batched run of the duplicated workload: fan the queries out
/// round-robin over `clients` pipelined in-process connections, return
/// the wall seconds and (when observing) the final metrics snapshot.
fn obs_trial(
    cfg: &Config,
    queries: &[Query],
    clients: usize,
    observe: bool,
) -> (f64, Option<parspeed_server::MetricsSnapshot>) {
    let server = Server::start(
        Arc::new(Engine::default()),
        ServerConfig {
            window: Duration::from_micros(200),
            max_batch: 1024,
            workers: 2,
            queue_depth: cfg.server_requests,
            observe,
            ..ServerConfig::default()
        },
    );
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = server.client();
            let barrier = Arc::clone(&barrier);
            let share: Vec<Query> = queries.iter().skip(c).step_by(clients).cloned().collect();
            std::thread::spawn(move || {
                barrier.wait();
                for q in &share {
                    client.submit(q.clone());
                }
                for _ in 0..share.len() {
                    black_box(client.recv());
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("client");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let metrics = observe.then(|| server.metrics());
    let stats = server.shutdown();
    assert_eq!(stats.completed as usize, queries.len(), "observability trial lost requests");
    (elapsed, metrics)
}

/// The instrumentation-overhead measurement: the PR-5 server workload
/// with stage recording off vs on, best of `cfg.trials` each, plus the
/// per-stage medians of the best observed run — the measured `k(P,S)`
/// breakdown the snapshot exists to record.
fn snapshot_observability(cfg: &Config) -> ObsBench {
    let clients = 8usize;
    let (queries, _) = server_workload(cfg.server_requests);

    let mut unobserved_seconds = f64::INFINITY;
    for _ in 0..cfg.trials {
        unobserved_seconds = unobserved_seconds.min(obs_trial(cfg, &queries, clients, false).0);
    }
    let mut observed_seconds = f64::INFINITY;
    let mut best_metrics = None;
    for _ in 0..cfg.trials {
        let (elapsed, metrics) = obs_trial(cfg, &queries, clients, true);
        if elapsed < observed_seconds {
            observed_seconds = elapsed;
            best_metrics = metrics;
        }
    }
    let metrics = best_metrics.expect("at least one observed trial");
    let stages = metrics
        .stages
        .iter()
        .map(|(stage, s)| (stage.name(), s.count, s.p50_ns as f64 / 1e3))
        .collect();
    ObsBench {
        requests: cfg.server_requests,
        clients,
        unobserved_seconds,
        observed_seconds,
        stages,
    }
}

struct ShardingBench {
    requests: usize,
    clients: usize,
    distinct: usize,
    capacity: usize,
    single_seconds: f64,
    /// Best wall seconds per swept fleet size, in sweep order.
    sweep: Vec<SweepPoint>,
    memory_floor: usize,
    predicted: usize,
    empirical_best: usize,
    model: Option<FleetModel>,
    identical: bool,
}

impl ShardingBench {
    /// Throughput of the 4-shard fleet over the single server with the
    /// same per-node cache — the acceptance ratio.
    fn speedup4(&self) -> f64 {
        let t4 =
            self.sweep.iter().find(|p| p.shards == 4).expect("sweep includes 4 shards").seconds;
        self.single_seconds / t4
    }
}

/// The sharding workload: `distinct` cache keys, a mix of point
/// optimizations and real numerical solves, each distinct in its
/// parameters, so a key evicted from a C-entry shard cache costs real
/// model or solver work to recompute. Every query is a single atom, so
/// cache entries count workload keys 1:1 and the per-shard capacity is
/// exactly the paper's per-processor memory constraint. The solves
/// carry the miss cost: an unreachable tolerance never converges, so
/// each runs its exact `max_iters` budget — deterministic work,
/// bit-identical replies.
fn sharding_pool(distinct: usize) -> Vec<Query> {
    (0..distinct)
        .map(|i| match i % 4 {
            0 => Request::optimize(ArchKind::SyncBus, 64 + i).procs(16 + (i % 48)).query(),
            _ => {
                Request::solve(31).solver(SolverKind::Jacobi).tol(1e-300).max_iters(200 + i).query()
            }
        })
        .collect()
}

/// One in-process connection into either a single server or a routed
/// fleet — the sweep drives both through the same closed-credit loop.
trait FleetConn: Send + 'static {
    fn submit_query(&self, q: Query);
    fn recv_reply(&self) -> Response;
}

impl FleetConn for parspeed_server::Client {
    fn submit_query(&self, q: Query) {
        self.submit(q);
    }
    fn recv_reply(&self) -> Response {
        self.recv().1
    }
}

impl FleetConn for parspeed_router::RouterClient {
    fn submit_query(&self, q: Query) {
        self.submit(q);
    }
    fn recv_reply(&self) -> Response {
        self.recv().1
    }
}

/// Drives the duplicated workload through `conns` with a bounded credit
/// window per client (submit up to `credit` ahead, then one new request
/// per reply) and checks every reply against the serial reference.
/// Bounded in-flight credit is what real clients do, and it is what
/// makes the coordination cost visible: the fleet only ever holds
/// `clients × credit` requests, so more shards means each micro-batch
/// window closes over fewer requests and the per-batch cost is paid
/// more often — `k(P,S)` rising with `P`.
///
/// Returns wall seconds and whether every reply matched the reference.
fn drive_fleet<C: FleetConn>(
    conns: Vec<C>,
    shares: &[Vec<usize>],
    pool: &[Query],
    reference: &[Response],
    credit: usize,
) -> (f64, bool) {
    let clients = conns.len();
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = conns
        .into_iter()
        .zip(shares)
        .map(|(conn, share)| {
            let share = share.clone();
            let queries: Vec<Query> = share.iter().map(|&i| pool[i].clone()).collect();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut next = credit.min(queries.len());
                for q in &queries[..next] {
                    conn.submit_query(q.clone());
                }
                let mut replies = Vec::with_capacity(queries.len());
                for _ in 0..queries.len() {
                    replies.push(conn.recv_reply());
                    if next < queries.len() {
                        conn.submit_query(queries[next].clone());
                        next += 1;
                    }
                }
                (share, replies)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("client")).collect();
    let seconds = start.elapsed().as_secs_f64();
    let mut identical = true;
    for (share, replies) in &results {
        for (&idx, reply) in share.iter().zip(replies) {
            if reply != &reference[idx] {
                eprintln!("BIT-IDENTITY VIOLATION: fleet reply for pool key {idx} differs");
                identical = false;
            }
        }
    }
    (seconds, identical)
}

/// The paper's optimal-`P` experiment on the serving fleet: sweep the
/// router across fleet sizes on a duplicated workload whose `D` distinct
/// keys outsize one `C`-entry shard cache, measure the single-server
/// baseline with the same per-node cache, then hand the measured sweep
/// to `parspeed route --predict`'s pipeline and record where the
/// optimizer lands against the empirically best fleet size.
fn snapshot_sharding(cfg: &Config) -> ShardingBench {
    let clients = 8usize;
    let credit = 8usize;
    let (requests, distinct, capacity) =
        (cfg.shard_requests, cfg.shard_distinct, cfg.shard_capacity);
    let pool = sharding_pool(distinct);
    let reference = Engine::default().run_batch(&pool).responses;

    // Every client draws its share from the pool by its own LCG stream:
    // duplicated traffic in a smooth random order, so an over-capacity
    // LRU misses at the textbook rate instead of thrashing cyclically.
    let shares: Vec<Vec<usize>> = (0..clients)
        .map(|c| {
            let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1);
            (0..requests / clients)
                .map(|_| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    ((state >> 33) % distinct as u64) as usize
                })
                .collect()
        })
        .collect();

    // The per-node serving configuration, identical for the single
    // server and every shard: the cache capacity is the paper's
    // per-processor memory constraint.
    let node_config = ServerConfig {
        window: Duration::from_micros(50),
        max_batch: 512,
        workers: 2,
        queue_depth: requests,
        ..ServerConfig::default()
    };
    let node_engine =
        move || Arc::new(Engine::builder().cache_capacity(capacity).cache_shards(1).build());

    let mut identical = true;
    let mut single_seconds = f64::INFINITY;
    for _ in 0..cfg.trials {
        let server = Server::start(node_engine(), node_config);
        let conns: Vec<_> = (0..clients).map(|_| server.client()).collect();
        let (seconds, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
        identical &= ok;
        let stats = server.shutdown();
        if stats.completed as usize != requests || stats.overloaded != 0 {
            eprintln!("SHARDING BENCH ANOMALY (single server): {stats}");
            identical = false;
        }
        single_seconds = single_seconds.min(seconds);
    }

    let mut sweep = Vec::new();
    for &shards in cfg.shard_sweep {
        let mut best = f64::INFINITY;
        for _ in 0..cfg.trials {
            // 256 ring points per shard keeps the key split close to
            // even, so the cache-capacity knee lands where D/C says.
            let router = Router::start_with(
                RouterConfig {
                    shards,
                    replicas: 256,
                    backend: node_config,
                    ..RouterConfig::default()
                },
                move |_| node_engine(),
            );
            let conns: Vec<_> = (0..clients).map(|_| router.client()).collect();
            let (seconds, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
            identical &= ok;
            let stats = router.shutdown();
            let completed: u64 = stats.iter().map(|(_, s)| s.completed).sum();
            let overloaded: u64 = stats.iter().map(|(_, s)| s.overloaded).sum();
            if completed as usize != requests || overloaded != 0 {
                eprintln!("SHARDING BENCH ANOMALY ({shards} shards): {completed} completed");
                identical = false;
            }
            best = best.min(seconds);
        }
        sweep.push(SweepPoint { shards, seconds: best, degraded: false });
    }

    // The empirically best fleet size, with the optimizer's own
    // tie-break: among fleet sizes within measurement noise (5%) of the
    // fastest, the smallest wins — same time on fewer processors is
    // higher efficiency, exactly how the engine breaks model ties.
    let fastest = sweep.iter().map(|p| p.seconds).fold(f64::INFINITY, f64::min);
    let empirical_best = sweep
        .iter()
        .filter(|p| p.seconds <= fastest * 1.05)
        .map(|p| p.shards)
        .min()
        .expect("non-empty sweep");

    let profile = WorkloadProfile { distinct_keys: distinct, shard_capacity: capacity };
    let prediction =
        predict(profile, &sweep, cfg.shard_max).expect("the swept workload is feasible");

    ShardingBench {
        requests,
        clients,
        distinct,
        capacity,
        single_seconds,
        sweep,
        memory_floor: prediction.memory_floor,
        predicted: prediction.shards,
        empirical_best,
        model: prediction.model,
        identical,
    }
}

struct RobustnessBench {
    requests: usize,
    clients: usize,
    kill_at: usize,
    /// Clean 3-shard fleet on the same workload: the post-kill steady
    /// state the fault run must recover toward.
    baseline3_seconds: f64,
    /// 4-shard fleet with shard 0 killed at request `kill_at`.
    fault_seconds: f64,
    replies: usize,
    retries: u64,
    failovers: u64,
    trace_reproducible: bool,
    identical: bool,
}

impl RobustnessBench {
    /// Goodput of the fault run relative to the clean 3-shard baseline.
    /// The fault run has four shards for its first half, so anything
    /// below 1.0 is pure failover cost; the acceptance floor is 0.7.
    fn recovery_ratio(&self) -> f64 {
        self.baseline3_seconds / self.fault_seconds
    }
}

/// The resilience layer under a scripted fault: a 4-shard fleet loses
/// shard 0 to a seeded [`FaultPlan`] kill halfway through the same
/// duplicated workload the sharding section drives. Every in-flight
/// slot on the dying shard must fail over and answer bit-identical to
/// the serial engine — zero dropped requests — and the run's goodput
/// must hold at least 0.7× a clean 3-shard fleet's. A serial
/// closed-loop replay of a seeded kill plan then checks determinism:
/// the same seed must produce the same event trace twice.
fn snapshot_robustness(cfg: &Config) -> RobustnessBench {
    let clients = 8usize;
    let credit = 8usize;
    let (requests, distinct) = (cfg.shard_requests, cfg.shard_distinct);
    let kill_at = requests / 2;
    let pool = sharding_pool(distinct);
    let reference = Engine::default().run_batch(&pool).responses;
    let shares: Vec<Vec<usize>> = (0..clients)
        .map(|c| {
            let mut state = 0xA076_1D64_78BD_642Fu64.wrapping_mul(c as u64 + 1);
            (0..requests / clients)
                .map(|_| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    ((state >> 33) % distinct as u64) as usize
                })
                .collect()
        })
        .collect();

    // Full-capacity caches on every node: the measurement isolates the
    // failover machinery, not cache thrash (the sharding section owns
    // that axis).
    let node_config = ServerConfig {
        window: Duration::from_micros(50),
        max_batch: 512,
        workers: 2,
        queue_depth: requests,
        ..ServerConfig::default()
    };
    let node_engine = move || {
        Arc::new(Engine::builder().cache_capacity(distinct.max(64)).cache_shards(1).build())
    };
    let fleet_config = |shards: usize| RouterConfig {
        shards,
        replicas: 256,
        backend: node_config,
        ..RouterConfig::default()
    };

    let mut identical = true;
    let mut baseline3_seconds = f64::INFINITY;
    for _ in 0..cfg.trials {
        let router = Router::start_with(fleet_config(3), move |_| node_engine());
        let conns: Vec<_> = (0..clients).map(|_| router.client()).collect();
        let (seconds, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
        identical &= ok;
        router.shutdown();
        baseline3_seconds = baseline3_seconds.min(seconds);
    }

    let mut fault_seconds = f64::INFINITY;
    let mut replies = 0usize;
    let mut retries = 0u64;
    let mut failovers = 0u64;
    for _ in 0..cfg.trials {
        let router = Router::start_with(fleet_config(4), move |_| node_engine());
        let plan =
            Arc::new(FaultPlan::parse(&format!("kill:0@{kill_at}"), 42).expect("plan parses"));
        router.install_fault_plan(Some(Arc::clone(&plan)));
        let conns: Vec<_> = (0..clients).map(|_| router.client()).collect();
        // drive_fleet blocks until every slot answers, so completing at
        // all is the zero-drop proof; `ok` is the bit-identity proof.
        let (seconds, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
        identical &= ok;
        if !plan.events().iter().any(|e| e.contains("shard 0 lost")) {
            eprintln!("ROBUSTNESS BENCH ANOMALY: the scripted kill never fired");
            identical = false;
        }
        let snap = router.resilience().snapshot();
        router.shutdown();
        if seconds < fault_seconds {
            fault_seconds = seconds;
            replies = requests;
            retries = snap.retries;
            failovers = snap.failovers;
        }
    }

    // Determinism of the event trace: a serial closed loop (so in-flight
    // depth is itself deterministic) through a fresh seeded plan, twice.
    let replay = || {
        let router = Router::start_with(fleet_config(2), move |_| node_engine());
        let plan = Arc::new(FaultPlan::parse("drop:0@2,kill:1@4", 11).expect("plan parses"));
        router.install_fault_plan(Some(Arc::clone(&plan)));
        let client = router.client();
        for i in 0..6 {
            let q = pool[i % pool.len()].clone();
            let _ = client.call(q);
        }
        router.shutdown();
        plan.trace()
    };
    let trace_reproducible = replay() == replay();

    RobustnessBench {
        requests,
        clients,
        kill_at,
        baseline3_seconds,
        fault_seconds,
        replies,
        retries,
        failovers,
        trace_reproducible,
        identical,
    }
}

struct SelfHealingBench {
    requests: usize,
    clients: usize,
    kill_at: usize,
    /// Clean supervised 4-shard fleet, never faulted: the full-strength
    /// throughput the healed fleet must recover.
    baseline4_seconds: f64,
    /// The faulted run itself: shard 0 killed at `kill_at`, the
    /// supervisor respawning and rejoining it mid-workload.
    fault_seconds: f64,
    /// The same workload replayed on the healed fleet (shard 0 back in
    /// the ring, cache warm): the post-rejoin measurement.
    healed_seconds: f64,
    respawns: u64,
    warmup_keys_replayed: u64,
    replies: usize,
    trace_reproducible: bool,
    identical: bool,
}

impl SelfHealingBench {
    /// Post-rejoin throughput relative to the never-faulted baseline.
    /// The acceptance floor is 0.95 — a healed fleet is a whole fleet.
    fn post_rejoin_ratio(&self) -> f64 {
        self.baseline4_seconds / self.healed_seconds
    }
}

/// The self-healing tentpole, measured: a supervised 4-shard fleet
/// loses shard 0 to a seeded kill mid-workload; the supervisor must
/// respawn it, warm its cache from the hot keys, and readmit it — with
/// zero dropped requests and bit-identical replies — and the *healed*
/// fleet must then serve the same workload at ≥ 0.95× the throughput of
/// a fleet that never faulted. A serial closed-loop replay of a seeded
/// kill-plus-respawn plan checks the event trace is reproducible.
fn snapshot_self_healing(cfg: &Config) -> SelfHealingBench {
    let clients = 8usize;
    let credit = 8usize;
    let (requests, distinct) = (cfg.shard_requests, cfg.shard_distinct);
    let kill_at = requests / 2;
    let pool = sharding_pool(distinct);
    let reference = Engine::default().run_batch(&pool).responses;
    let shares: Vec<Vec<usize>> = (0..clients)
        .map(|c| {
            let mut state = 0xA076_1D64_78BD_642Fu64.wrapping_mul(c as u64 + 1);
            (0..requests / clients)
                .map(|_| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    ((state >> 33) % distinct as u64) as usize
                })
                .collect()
        })
        .collect();

    let node_config = ServerConfig {
        window: Duration::from_micros(50),
        max_batch: 512,
        workers: 2,
        queue_depth: requests,
        ..ServerConfig::default()
    };
    let node_engine = move || {
        Arc::new(Engine::builder().cache_capacity(distinct.max(64)).cache_shards(1).build())
    };
    let supervisor = SupervisorPolicy {
        respawn_after: Duration::from_millis(10),
        max_respawns: 3,
        respawn_backoff: Duration::from_millis(10),
        warm_fraction: 0.5,
    };
    let fleet_config = || RouterConfig {
        shards: 4,
        replicas: 256,
        backend: node_config,
        poll: Duration::from_millis(5),
        supervisor: Some(supervisor),
        ..RouterConfig::default()
    };
    let wait_for_rejoin = |router: &Router| {
        let start = Instant::now();
        loop {
            if router.topology().render().contains(r#""lost":[]"#) {
                return;
            }
            assert!(
                start.elapsed() < Duration::from_secs(60),
                "the killed shard never rejoined the ring"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };

    let mut identical = true;
    let mut baseline4_seconds = f64::INFINITY;
    for _ in 0..cfg.trials {
        let router = Router::start_with(fleet_config(), move |_| node_engine());
        let conns: Vec<_> = (0..clients).map(|_| router.client()).collect();
        let (seconds, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
        identical &= ok;
        router.shutdown();
        baseline4_seconds = baseline4_seconds.min(seconds);
    }

    let mut fault_seconds = f64::INFINITY;
    let mut healed_seconds = f64::INFINITY;
    let mut respawns = 0u64;
    let mut warmup_keys_replayed = 0u64;
    let mut replies = 0usize;
    for _ in 0..cfg.trials {
        let router = Router::start_with(fleet_config(), move |_| node_engine());
        let plan =
            Arc::new(FaultPlan::parse(&format!("kill:0@{kill_at}"), 42).expect("plan parses"));
        router.install_fault_plan(Some(Arc::clone(&plan)));
        // The faulted run: drive_fleet blocks until every slot answers,
        // so completing is the zero-drop proof; `ok` is bit-identity.
        let conns: Vec<_> = (0..clients).map(|_| router.client()).collect();
        let (seconds, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
        identical &= ok;
        if !plan.events().iter().any(|e| e.contains("shard 0 lost")) {
            eprintln!("SELF-HEALING BENCH ANOMALY: the scripted kill never fired");
            identical = false;
        }
        // Post-rejoin: the healed fleet serves the same workload again.
        wait_for_rejoin(&router);
        let conns: Vec<_> = (0..clients).map(|_| router.client()).collect();
        let (healed, ok) = drive_fleet(conns, &shares, &pool, &reference, credit);
        identical &= ok;
        let snap = router.resilience().snapshot();
        router.shutdown();
        fault_seconds = fault_seconds.min(seconds);
        if healed < healed_seconds {
            healed_seconds = healed;
            respawns = snap.respawns;
            warmup_keys_replayed = snap.warmup_keys_replayed;
            replies = requests;
        }
    }

    // Determinism across the whole recovery lifecycle: a serial closed
    // loop through kill → respawn → warmup → rejoin, twice, must record
    // the same event trace (the rejoin is awaited at a fixed request
    // index, so the warm-key count is deterministic too).
    let replay = || {
        let router = Router::start_with(fleet_config(), move |_| node_engine());
        let plan = Arc::new(FaultPlan::parse("kill:0@3", 11).expect("plan parses"));
        router.install_fault_plan(Some(Arc::clone(&plan)));
        let client = router.client();
        for i in 0..6 {
            let _ = client.call(pool[i % pool.len()].clone());
            if i == 2 {
                wait_for_rejoin(&router);
            }
        }
        router.shutdown();
        plan.trace()
    };
    let trace_reproducible = replay() == replay();

    SelfHealingBench {
        requests,
        clients,
        kill_at,
        baseline4_seconds,
        fault_seconds,
        healed_seconds,
        respawns,
        warmup_keys_replayed,
        replies,
        trace_reproducible,
        identical,
    }
}

struct IoModeRun {
    connections: usize,
    requests: usize,
    seconds: f64,
    /// Process thread-count growth while every connection was open —
    /// the frontend's per-connection thread bill (client threads are
    /// zero in both modes: the driver is single-threaded).
    extra_threads: i64,
    complete: bool,
}

impl IoModeRun {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.seconds
    }
}

struct ServerIoBench {
    requests_per_conn: usize,
    threads: IoModeRun,
    event_loop: IoModeRun,
}

/// Reads a numeric `/proc/self/status` field (Linux; the only platform
/// the snapshot runs on).
fn proc_status(field: &str) -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix(field))
                .and_then(|rest| rest.trim_start_matches(':').split_whitespace().next())
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// One frontend run over real TCP: open `conns` concurrent connections,
/// write every request line (keeping all connections open — this is
/// where thread-per-connection pays its bill), sample the thread count,
/// then half-close and drain every reply stream. Single-threaded
/// driver, identical for both modes, so the comparison isolates the
/// frontend.
fn run_io_mode(
    io: parspeed_server::IoModel,
    conns: usize,
    per_conn: usize,
    trials: usize,
) -> IoModeRun {
    use std::io::{BufRead, BufReader, Write};
    let request = b"{\"op\":\"table1\",\"version\":2,\"n\":64,\"stencil\":\"5pt\"}\n";
    let mut best: Option<IoModeRun> = None;
    for _ in 0..trials {
        let mut server = Server::start(
            Arc::new(Engine::default()),
            ServerConfig {
                window: Duration::from_micros(200),
                max_batch: 1024,
                workers: 2,
                queue_depth: conns * per_conn,
                io,
                ..ServerConfig::default()
            },
        );
        let addr = server.listen(("127.0.0.1", 0)).expect("bind");
        let threads_before = proc_status("Threads");
        let start = Instant::now();
        let mut streams = Vec::with_capacity(conns);
        for _ in 0..conns {
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            for _ in 0..per_conn {
                stream.write_all(request).expect("write");
            }
            streams.push(stream);
        }
        // Wait until the frontend has *accepted* every connection (the
        // kernel completes handshakes into the backlog long before the
        // acceptor gets to them), then sample: every connection is open
        // and loaded, and the gap between the two frontends is the
        // per-connection thread bill, visible right here.
        let accept_deadline = Instant::now() + Duration::from_secs(60);
        while (server.stats().connections as usize) < conns {
            assert!(Instant::now() < accept_deadline, "frontend never accepted the fleet");
            std::thread::sleep(Duration::from_millis(1));
        }
        let extra_threads = proc_status("Threads") - threads_before;
        let mut complete = true;
        for stream in &streams {
            stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        }
        for stream in streams {
            let replies = BufReader::new(stream).lines().filter(|l| l.is_ok()).count();
            if replies != per_conn {
                eprintln!("SERVER_IO ANOMALY ({io:?}): {replies} of {per_conn} replies");
                complete = false;
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        let stats = server.shutdown();
        if stats.completed as usize != conns * per_conn || stats.overloaded != 0 {
            eprintln!("SERVER_IO ANOMALY ({io:?}): {stats}");
            complete = false;
        }
        let run = IoModeRun {
            connections: conns,
            requests: conns * per_conn,
            seconds,
            extra_threads,
            complete,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                (run.complete && !b.complete)
                    || (run.complete == b.complete && run.seconds < b.seconds)
            }
        };
        if better {
            best = Some(run);
        }
    }
    best.expect("at least one trial")
}

/// The frontends head-to-head: the legacy thread frontend at `C`
/// connections vs the event loop at `10 C` — the connection-scaling
/// claim of the readiness-driven rewrite, measured.
fn snapshot_server_io(cfg: &Config) -> ServerIoBench {
    use parspeed_server::IoModel;
    let per_conn = cfg.io_requests_per_conn;
    let threads = run_io_mode(IoModel::Threads, cfg.io_conns, per_conn, cfg.trials);
    let event_loop = run_io_mode(IoModel::EventLoop, cfg.io_conns * 10, per_conn, cfg.trials);
    ServerIoBench { requests_per_conn: per_conn, threads, event_loop }
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    cfg: &Config,
    rows: &[Row],
    identical: bool,
    lp: &SolverLoop,
    dh: &DeepHalo,
    sv: &ServerBench,
    ob: &ObsBench,
    sh: &ShardingBench,
    rb: &RobustnessBench,
    heal: &SelfHealingBench,
    io: &ServerIoBench,
) -> Json {
    let kernels = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("stencil".into(), Json::Str(r.stencil.into())),
                ("taps".into(), Json::Num(r.taps as f64)),
                ("flops_per_point".into(), Json::Num(r.flops_per_point)),
                ("generic_mpts".into(), Json::Num(round3(r.generic_mpts))),
                ("fused_mpts".into(), Json::Num(round3(r.fused_mpts))),
                ("parallel_mpts".into(), Json::Num(round3(r.par_mpts))),
                ("fused_speedup".into(), Json::Num(round3(r.fused_mpts / r.generic_mpts))),
                ("fused_mflops".into(), Json::Num(round3(r.fused_mpts * r.flops_per_point))),
            ])
        })
        .collect();
    let solver_loop = Json::Obj(vec![
        ("n".into(), Json::Num(cfg.n as f64)),
        ("iters".into(), Json::Num(cfg.solve_iters as f64)),
        ("omega".into(), Json::Num(lp.omega)),
        ("three_pass_mpts".into(), Json::Num(round3(lp.three_pass_mpts))),
        ("fused_mpts".into(), Json::Num(round3(lp.fused_mpts))),
        ("fused_speedup".into(), Json::Num(round3(lp.fused_mpts / lp.three_pass_mpts))),
        ("temporal_three_pass_mpts".into(), Json::Num(round3(lp.temporal_three_pass_mpts))),
        ("temporal_mpts".into(), Json::Num(round3(lp.temporal_mpts))),
        (
            "temporal_speedup".into(),
            Json::Num(round3(lp.temporal_mpts / lp.temporal_three_pass_mpts)),
        ),
        ("bit_identical".into(), Json::Bool(lp.identical)),
    ]);
    let deep_halo = Json::Obj(vec![
        ("n".into(), Json::Num(cfg.halo_n as f64)),
        ("strips".into(), Json::Num(dh.strips as f64)),
        ("depth".into(), Json::Num(dh.depth as f64)),
        ("iterations".into(), Json::Num(dh.iterations as f64)),
        ("check_period".into(), Json::Num(dh.check_period as f64)),
        ("exchanges_depth1".into(), Json::Num(dh.exchanges_depth1 as f64)),
        ("exchanges_deep".into(), Json::Num(dh.exchanges_deep as f64)),
        (
            "exchange_ratio".into(),
            Json::Num(round3(dh.exchanges_depth1 as f64 / dh.exchanges_deep as f64)),
        ),
        ("bit_identical".into(), Json::Bool(dh.identical)),
    ]);
    let server = Json::Obj(vec![
        ("requests".into(), Json::Num(sv.requests as f64)),
        ("clients".into(), Json::Num(sv.clients as f64)),
        ("distinct_queries".into(), Json::Num(sv.distinct as f64)),
        ("serial_seconds".into(), Json::Num(round3(sv.serial_seconds * 1e3) / 1e3)),
        ("serial_rps".into(), Json::Num(round3(sv.requests as f64 / sv.serial_seconds))),
        ("batched_seconds".into(), Json::Num(round3(sv.batched_seconds * 1e3) / 1e3)),
        ("batched_rps".into(), Json::Num(round3(sv.requests as f64 / sv.batched_seconds))),
        ("speedup".into(), Json::Num(round3(sv.speedup()))),
        ("batches".into(), Json::Num(sv.batches as f64)),
        ("avg_batch_fill".into(), Json::Num(round3(sv.avg_batch_fill))),
        ("cross_client_dedup_hits".into(), Json::Num(sv.cross_client_dedup_hits as f64)),
        ("bit_identical".into(), Json::Bool(sv.identical)),
    ]);
    let observability = Json::Obj(vec![
        ("requests".into(), Json::Num(ob.requests as f64)),
        ("clients".into(), Json::Num(ob.clients as f64)),
        ("unobserved_seconds".into(), Json::Num(round3(ob.unobserved_seconds * 1e3) / 1e3)),
        ("observed_seconds".into(), Json::Num(round3(ob.observed_seconds * 1e3) / 1e3)),
        ("overhead_frac".into(), Json::Num(round3(ob.overhead_frac()))),
        (
            "stages".into(),
            Json::Obj(
                ob.stages
                    .iter()
                    .map(|&(name, count, p50_us)| {
                        (
                            name.to_string(),
                            Json::Obj(vec![
                                ("count".into(), Json::Num(count as f64)),
                                ("p50_us".into(), Json::Num(round3(p50_us))),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);
    let sharding = Json::Obj(vec![
        ("requests".into(), Json::Num(sh.requests as f64)),
        ("clients".into(), Json::Num(sh.clients as f64)),
        ("distinct_keys".into(), Json::Num(sh.distinct as f64)),
        ("shard_capacity".into(), Json::Num(sh.capacity as f64)),
        ("single_seconds".into(), Json::Num(round3(sh.single_seconds * 1e3) / 1e3)),
        (
            "sweep".into(),
            Json::Arr(
                sh.sweep
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("shards".into(), Json::Num(p.shards as f64)),
                            ("seconds".into(), Json::Num(round3(p.seconds * 1e3) / 1e3)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("speedup_at_4_shards".into(), Json::Num(round3(sh.speedup4()))),
        ("memory_floor".into(), Json::Num(sh.memory_floor as f64)),
        ("predicted_shards".into(), Json::Num(sh.predicted as f64)),
        ("empirical_best_shards".into(), Json::Num(sh.empirical_best as f64)),
        (
            "model".into(),
            match &sh.model {
                Some(m) => Json::Obj(vec![
                    ("scatter".into(), Json::Num(round3(m.scatter * 1e3) / 1e3)),
                    ("coordination".into(), Json::Num(round3(m.coordination * 1e3) / 1e3)),
                    ("floor".into(), Json::Num(round3(m.floor * 1e3) / 1e3)),
                ]),
                None => Json::Null,
            },
        ),
        ("bit_identical".into(), Json::Bool(sh.identical)),
    ]);
    let robustness = Json::Obj(vec![
        ("requests".into(), Json::Num(rb.requests as f64)),
        ("clients".into(), Json::Num(rb.clients as f64)),
        ("kill_at_request".into(), Json::Num(rb.kill_at as f64)),
        ("baseline3_seconds".into(), Json::Num(round3(rb.baseline3_seconds * 1e3) / 1e3)),
        ("fault_seconds".into(), Json::Num(round3(rb.fault_seconds * 1e3) / 1e3)),
        ("recovery_ratio".into(), Json::Num(round3(rb.recovery_ratio()))),
        ("replies".into(), Json::Num(rb.replies as f64)),
        ("dropped".into(), Json::Num((rb.requests - rb.replies) as f64)),
        ("retries".into(), Json::Num(rb.retries as f64)),
        ("failovers".into(), Json::Num(rb.failovers as f64)),
        ("trace_reproducible".into(), Json::Bool(rb.trace_reproducible)),
        ("bit_identical".into(), Json::Bool(rb.identical)),
    ]);
    let self_healing = Json::Obj(vec![
        ("requests".into(), Json::Num(heal.requests as f64)),
        ("clients".into(), Json::Num(heal.clients as f64)),
        ("kill_at_request".into(), Json::Num(heal.kill_at as f64)),
        ("baseline4_seconds".into(), Json::Num(round3(heal.baseline4_seconds * 1e3) / 1e3)),
        ("fault_seconds".into(), Json::Num(round3(heal.fault_seconds * 1e3) / 1e3)),
        ("healed_seconds".into(), Json::Num(round3(heal.healed_seconds * 1e3) / 1e3)),
        ("post_rejoin_ratio".into(), Json::Num(round3(heal.post_rejoin_ratio()))),
        ("respawns".into(), Json::Num(heal.respawns as f64)),
        ("warmup_keys_replayed".into(), Json::Num(heal.warmup_keys_replayed as f64)),
        ("replies".into(), Json::Num(heal.replies as f64)),
        ("dropped".into(), Json::Num((heal.requests - heal.replies) as f64)),
        ("trace_reproducible".into(), Json::Bool(heal.trace_reproducible)),
        ("bit_identical".into(), Json::Bool(heal.identical)),
    ]);
    let io_mode = |run: &IoModeRun| {
        Json::Obj(vec![
            ("connections".into(), Json::Num(run.connections as f64)),
            ("requests".into(), Json::Num(run.requests as f64)),
            ("seconds".into(), Json::Num(round3(run.seconds * 1e3) / 1e3)),
            ("rps".into(), Json::Num(round3(run.rps()))),
            ("extra_threads".into(), Json::Num(run.extra_threads as f64)),
            ("complete".into(), Json::Bool(run.complete)),
        ])
    };
    let server_io = Json::Obj(vec![
        ("requests_per_conn".into(), Json::Num(io.requests_per_conn as f64)),
        ("threads".into(), io_mode(&io.threads)),
        ("event_loop".into(), io_mode(&io.event_loop)),
        (
            "connection_ratio".into(),
            Json::Num(round3(io.event_loop.connections as f64 / io.threads.connections as f64)),
        ),
        ("rps_ratio".into(), Json::Num(round3(io.event_loop.rps() / io.threads.rps()))),
    ]);
    Json::Obj(vec![
        ("schema".into(), Json::Str("parspeed-perf-snapshot/v8".into())),
        ("pr".into(), Json::Num(10.0)),
        (
            "bench".into(),
            Json::Str(
                "Jacobi kernels, fused solver loop, deep halos, serving layer, observability, \
                 sharded fleet, fault robustness, self-healing fleet, event-loop frontend"
                    .into(),
            ),
        ),
        ("n".into(), Json::Num(cfg.n as f64)),
        ("threads".into(), Json::Num(rayon::current_num_threads() as f64)),
        ("bit_identical".into(), Json::Bool(identical)),
        ("kernels".into(), Json::Arr(kernels)),
        ("solver_loop".into(), solver_loop),
        ("deep_halo".into(), deep_halo),
        ("server".into(), server),
        ("observability".into(), observability),
        ("sharding".into(), sharding),
        ("robustness".into(), robustness),
        ("self_healing".into(), self_healing),
        ("server_io".into(), server_io),
    ])
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn main() {
    let cfg = parse_args();
    let (rows, identical) = snapshot(&cfg);
    let lp = snapshot_solver_loop(&cfg);
    let dh = snapshot_deep_halo(&cfg);
    let sv = snapshot_server(&cfg);
    let ob = snapshot_observability(&cfg);
    let sh = snapshot_sharding(&cfg);
    let rb = snapshot_robustness(&cfg);
    let heal = snapshot_self_healing(&cfg);
    let io = snapshot_server_io(&cfg);
    // A drifted kernel must never produce a committable snapshot, with or
    // without --check: fail after writing (the file records the evidence).
    let json = to_json(&cfg, &rows, identical, &lp, &dh, &sv, &ob, &sh, &rb, &heal, &io);
    let text = json.render();
    if let Some(dir) = std::path::Path::new(&cfg.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&cfg.out, &text).expect("write snapshot");

    println!("kernel throughput at n={} ({} thread(s)):", cfg.n, rayon::current_num_threads());
    println!(
        "  {:<16}{:>14}{:>12}{:>12}{:>10}{:>14}",
        "stencil", "generic Mp/s", "fused Mp/s", "par Mp/s", "fused×", "fused MFLOP/s"
    );
    for r in &rows {
        println!(
            "  {:<16}{:>14.1}{:>12.1}{:>12.1}{:>10.2}{:>14.0}",
            r.stencil,
            r.generic_mpts,
            r.fused_mpts,
            r.par_mpts,
            r.fused_mpts / r.generic_mpts,
            r.fused_mpts * r.flops_per_point
        );
    }
    println!(
        "solver loop at n={} (ω={}, single thread, {} iterations):",
        cfg.n, lp.omega, cfg.solve_iters
    );
    println!(
        "  every-iteration checks: three-pass {:.1} Mp/s → fused {:.1} Mp/s ({:.2}×)",
        lp.three_pass_mpts,
        lp.fused_mpts,
        lp.fused_mpts / lp.three_pass_mpts
    );
    println!(
        "  geometric checks:       three-pass {:.1} Mp/s → temporal-tiled {:.1} Mp/s ({:.2}×)",
        lp.temporal_three_pass_mpts,
        lp.temporal_mpts,
        lp.temporal_mpts / lp.temporal_three_pass_mpts
    );
    println!(
        "deep halos at n={} ({} strips, check every {}): {} exchanges at depth 1 vs {} at \
         depth {} ({:.2}× fewer) over {} iterations",
        cfg.halo_n,
        dh.strips,
        dh.check_period,
        dh.exchanges_depth1,
        dh.exchanges_deep,
        dh.depth,
        dh.exchanges_depth1 as f64 / dh.exchanges_deep as f64,
        dh.iterations
    );
    println!(
        "serving layer: {} duplicated requests ({} distinct) from {} clients: \
         per-request dispatch {:.1} ms ({:.0} req/s) → micro-batched {:.1} ms \
         ({:.0} req/s, {:.2}×) in {} batch(es), {:.0} avg fill, {} cross-client dedup hits",
        sv.requests,
        sv.distinct,
        sv.clients,
        sv.serial_seconds * 1e3,
        sv.requests as f64 / sv.serial_seconds,
        sv.batched_seconds * 1e3,
        sv.requests as f64 / sv.batched_seconds,
        sv.speedup(),
        sv.batches,
        sv.avg_batch_fill,
        sv.cross_client_dedup_hits
    );
    println!(
        "observability: same workload unobserved {:.1} ms → observed {:.1} ms ({:+.1}% overhead); \
         stage p50s (µs): {}",
        ob.unobserved_seconds * 1e3,
        ob.observed_seconds * 1e3,
        ob.overhead_frac() * 100.0,
        ob.stages
            .iter()
            .map(|&(name, _, p50)| format!("{name} {p50:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "sharding: {} requests over {} distinct keys vs {}-entry shard caches: \
         single server {:.1} ms; sweep {}; 4 shards {:.2}× single; \
         memory floor {}, predicted {} vs empirical best {}",
        sh.requests,
        sh.distinct,
        sh.capacity,
        sh.single_seconds * 1e3,
        sh.sweep
            .iter()
            .map(|p| format!("P={} {:.1}ms", p.shards, p.seconds * 1e3))
            .collect::<Vec<_>>()
            .join(", "),
        sh.speedup4(),
        sh.memory_floor,
        sh.predicted,
        sh.empirical_best
    );
    println!(
        "robustness: {} requests, shard 0 killed at request {}: clean 3-shard fleet {:.1} ms vs \
         fault run {:.1} ms ({:.2}× recovery); {} dropped, {} retries, {} failovers; \
         trace reproducible: {}",
        rb.requests,
        rb.kill_at,
        rb.baseline3_seconds * 1e3,
        rb.fault_seconds * 1e3,
        rb.recovery_ratio(),
        rb.requests - rb.replies,
        rb.retries,
        rb.failovers,
        rb.trace_reproducible
    );
    println!(
        "self-healing: supervised 4-shard fleet, shard 0 killed at request {}: clean run \
         {:.1} ms, faulted run {:.1} ms, healed rerun {:.1} ms ({:.2}× post-rejoin); \
         {} respawn(s), {} warm key(s) replayed, {} dropped; trace reproducible: {}",
        heal.kill_at,
        heal.baseline4_seconds * 1e3,
        heal.fault_seconds * 1e3,
        heal.healed_seconds * 1e3,
        heal.post_rejoin_ratio(),
        heal.respawns,
        heal.warmup_keys_replayed,
        heal.requests - heal.replies,
        heal.trace_reproducible
    );
    println!(
        "server io: thread frontend {} conns × {} reqs {:.1} ms ({:.0} req/s, +{} threads) vs \
         event loop {} conns × {} reqs {:.1} ms ({:.0} req/s, +{} threads) — {:.0}× the \
         connections on a flat thread budget",
        io.threads.connections,
        io.requests_per_conn,
        io.threads.seconds * 1e3,
        io.threads.rps(),
        io.threads.extra_threads,
        io.event_loop.connections,
        io.requests_per_conn,
        io.event_loop.seconds * 1e3,
        io.event_loop.rps(),
        io.event_loop.extra_threads,
        io.event_loop.connections as f64 / io.threads.connections as f64
    );
    println!("wrote {}", cfg.out);
    assert!(identical, "fused kernels must be bit-identical to generic (snapshot records details)");
    assert!(lp.identical, "fused solver loop must be bit-identical to the three-pass loop");
    assert!(dh.identical, "deep-halo executor must be bit-identical to depth-1");
    assert!(sv.identical, "micro-batched replies must be bit-identical to serial dispatch");
    assert!(sh.identical, "routed replies must be bit-identical to serial dispatch");
    assert!(rb.identical, "failed-over replies must be bit-identical to serial dispatch");
    assert!(heal.identical, "healed-fleet replies must be bit-identical to serial dispatch");

    if cfg.check {
        let reparsed = jsonl::parse(&std::fs::read_to_string(&cfg.out).expect("re-read snapshot"))
            .expect("snapshot JSON must re-parse");
        let kernels = reparsed.get("kernels").and_then(Json::as_arr).expect("kernels array");
        assert_eq!(kernels.len(), rows.len(), "snapshot lost kernels");
        for k in kernels {
            let name = k.get("stencil").and_then(Json::as_str).expect("stencil name");
            let speedup = k.get("fused_speedup").and_then(Json::as_f64).expect("fused_speedup");
            assert!(speedup >= 1.0, "{name}: fused slower than generic ({speedup:.3}×)");
        }
        let sl = reparsed.get("solver_loop").expect("solver_loop section");
        let fused_x = sl.get("fused_speedup").and_then(Json::as_f64).expect("fused_speedup");
        // 1.1 is the noisy-CI floor; the committed full-size snapshot
        // records the ≥1.5× pass-fusion result.
        assert!(fused_x >= 1.1, "pass fusion regressed: {fused_x:.3}× over the three-pass loop");
        let dhj = reparsed.get("deep_halo").expect("deep_halo section");
        let ratio = dhj.get("exchange_ratio").and_then(Json::as_f64).expect("exchange_ratio");
        assert!(ratio >= 2.0, "deep halos must at least halve exchanges, got {ratio:.3}×");
        let svj = reparsed.get("server").expect("server section");
        let sv_x = svj.get("speedup").and_then(Json::as_f64).expect("server speedup");
        // 1.3 is the noisy-CI floor for the shrunken --quick workload;
        // the committed full-size snapshot records the ≥ 2× result the
        // acceptance criteria require.
        let sv_floor = if cfg.quick { 1.3 } else { 2.0 };
        assert!(
            sv_x >= sv_floor,
            "cross-client batching regressed: {sv_x:.3}× over per-request dispatch (≥ {sv_floor}×)"
        );
        let obj = reparsed.get("observability").expect("observability section");
        let overhead = obj.get("overhead_frac").and_then(Json::as_f64).expect("overhead_frac");
        // 5% is the acceptance budget; the shrunken --quick workload is
        // too noisy to resolve it, so CI gates a looser ceiling and the
        // committed full-size snapshot records the real number.
        let overhead_ceiling = if cfg.quick { 0.25 } else { 0.05 };
        assert!(
            overhead <= overhead_ceiling,
            "stage recording costs {:.1}% (> {:.0}% budget)",
            overhead * 100.0,
            overhead_ceiling * 100.0
        );
        let stages = obj.get("stages").expect("observability stages");
        for name in ["queue", "window", "plan", "dedup", "cache", "exec", "route"] {
            let count = stages
                .get(name)
                .and_then(|s| s.get("count"))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("stage {name} missing from snapshot"));
            assert!(count > 0.0, "stage {name} histogram is empty");
        }
        let shj = reparsed.get("sharding").expect("sharding section");
        let sh_x =
            shj.get("speedup_at_4_shards").and_then(Json::as_f64).expect("speedup_at_4_shards");
        // Same CI-noise split as the server section: the committed
        // full-size snapshot records the ≥ 2× result.
        let sh_floor = if cfg.quick { 1.3 } else { 2.0 };
        assert!(
            sh_x >= sh_floor,
            "sharded fleet regressed: {sh_x:.3}× over the single server (≥ {sh_floor}×)"
        );
        let predicted =
            shj.get("predicted_shards").and_then(Json::as_f64).expect("predicted_shards");
        let best =
            shj.get("empirical_best_shards").and_then(Json::as_f64).expect("empirical_best_shards");
        assert!(
            (predicted - best).abs() <= 1.0,
            "the optimizer sized the fleet at {predicted} shards but the sweep's best is {best}"
        );
        let rbj = reparsed.get("robustness").expect("robustness section");
        let dropped = rbj.get("dropped").and_then(Json::as_f64).expect("dropped");
        assert_eq!(dropped, 0.0, "the fault run dropped {dropped} request(s)");
        assert_eq!(
            rbj.get("trace_reproducible"),
            Some(&Json::Bool(true)),
            "the same seed produced two different fault event traces"
        );
        let recovery = rbj.get("recovery_ratio").and_then(Json::as_f64).expect("recovery_ratio");
        // 0.5 is the noisy-CI floor; the committed full-size snapshot
        // records the ≥ 0.7× result the acceptance criteria require.
        let recovery_floor = if cfg.quick { 0.5 } else { 0.7 };
        assert!(
            recovery >= recovery_floor,
            "fault-run goodput is {recovery:.3}× the 3-shard baseline (≥ {recovery_floor}×)"
        );
        let healj = reparsed.get("self_healing").expect("self_healing section");
        let heal_dropped = healj.get("dropped").and_then(Json::as_f64).expect("dropped");
        assert_eq!(heal_dropped, 0.0, "the self-healing run dropped {heal_dropped} request(s)");
        assert_eq!(
            healj.get("trace_reproducible"),
            Some(&Json::Bool(true)),
            "the same seed produced two different recovery-lifecycle traces"
        );
        let heal_respawns = healj.get("respawns").and_then(Json::as_f64).expect("respawns");
        assert!(heal_respawns >= 1.0, "the supervisor never respawned the killed shard");
        let rejoin =
            healj.get("post_rejoin_ratio").and_then(Json::as_f64).expect("post_rejoin_ratio");
        // 0.8 is the noisy-CI floor; the committed full-size snapshot
        // records the ≥ 0.95× result the acceptance criteria require.
        let rejoin_floor = if cfg.quick { 0.8 } else { 0.95 };
        assert!(
            rejoin >= rejoin_floor,
            "post-rejoin throughput is {rejoin:.3}× the never-faulted baseline (≥ {rejoin_floor}×)"
        );
        let ioj = reparsed.get("server_io").expect("server_io section");
        let conn_ratio =
            ioj.get("connection_ratio").and_then(Json::as_f64).expect("connection_ratio");
        assert!(
            conn_ratio >= 10.0,
            "the event loop served only {conn_ratio:.1}× the thread frontend's connections"
        );
        for mode in ["threads", "event_loop"] {
            assert_eq!(
                ioj.get(mode).and_then(|m| m.get("complete")),
                Some(&Json::Bool(true)),
                "the {mode} frontend dropped replies"
            );
        }
        let loop_threads = ioj
            .get("event_loop")
            .and_then(|m| m.get("extra_threads"))
            .and_then(Json::as_f64)
            .expect("extra_threads");
        assert!(
            loop_threads <= 8.0,
            "the event loop grew {loop_threads} threads — readiness multiplexing is gone"
        );
        let rps_ratio = ioj.get("rps_ratio").and_then(Json::as_f64).expect("rps_ratio");
        // The claim is connection *scaling*, not raw speed, but the loop
        // must not collapse while scaling: a loose throughput floor
        // (this box may be single-core, so both frontends serialize).
        let rps_floor = if cfg.quick { 0.3 } else { 0.5 };
        assert!(
            rps_ratio >= rps_floor,
            "event-loop throughput collapsed: {rps_ratio:.3}× the thread frontend (≥ {rps_floor}×)"
        );
        for (section, ok) in [
            ("solver_loop", sl.get("bit_identical")),
            ("deep_halo", dhj.get("bit_identical")),
            ("server", svj.get("bit_identical")),
            ("sharding", shj.get("bit_identical")),
            ("robustness", rbj.get("bit_identical")),
            ("self_healing", healj.get("bit_identical")),
        ] {
            assert_eq!(ok, Some(&Json::Bool(true)), "{section} lost bit-identity");
        }
        println!(
            "check passed: JSON round-trips, fused ≥ generic on all stencils, fused loop \
             {fused_x:.2}× ≥ 1.1×, deep halos {ratio:.2}× ≥ 2× fewer exchanges, \
             micro-batched serving {sv_x:.2}× ≥ {sv_floor}× over per-request dispatch, \
             stage recording {:+.1}% ≤ {:.0}% with every histogram populated, \
             sharded fleet {sh_x:.2}× ≥ {sh_floor}× over one server with the predicted \
             fleet size {predicted} within ±1 of the measured best {best}, the fault run \
             dropped nothing at {recovery:.2}× ≥ {recovery_floor}× recovery with a \
             reproducible trace, the self-healed fleet dropped nothing at \
             {rejoin:.2}× ≥ {rejoin_floor}× post-rejoin throughput after {heal_respawns:.0} \
             respawn(s), and the event loop served {conn_ratio:.0}× the thread frontend's \
             connections on +{loop_threads:.0} thread(s) at {rps_ratio:.2}× ≥ {rps_floor}× \
             its throughput",
            overhead * 100.0,
            overhead_ceiling * 100.0
        );
    }
}
