//! E14 — model vs real rayon threads on the host machine.
//!
//! Runs the partitioned Jacobi executor under growing thread pools and
//! checks the model's *shape* claims against the wall clock: per-iteration
//! time falls then saturates, speedup never exceeds the thread count by a
//! real margin, and (communication-volume claim) square blocks never
//! trail strips by much at equal parallelism. Absolute constants are not
//! comparable — the host memory system is not a 1987 bus.

use crate::report::{secs, Table};
use parspeed_exec::measure::measure_scaling;
use parspeed_solver::PoissonProblem;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the real-thread validation.
pub fn run(quick: bool) -> String {
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4);
    let n = if quick { 256 } else { 768 };
    let iters = if quick { 8 } else { 30 };
    let repeats = if quick { 2 } else { 3 };
    let problem = PoissonProblem::laplace(n, 0.0);
    let stencil = Stencil::five_point();

    let mut counts = vec![1usize, 2];
    let mut c = 4;
    while c <= cores {
        counts.push(c);
        c *= 2;
    }
    counts.dedup();

    let mut out = String::new();
    let mut t = Table::new(
        format!("Measured cycle time vs threads (n = {n}, 5-point, host has {cores} cores)"),
        &["threads", "strips s/iter", "strips speedup", "squares s/iter", "squares speedup"],
    );
    let strips =
        measure_scaling(&problem, &stencil, PartitionShape::Strip, &counts, iters, repeats);
    let squares =
        measure_scaling(&problem, &stencil, PartitionShape::Square, &counts, iters, repeats);
    for (s, q) in strips.iter().zip(&squares) {
        t.row(vec![
            s.threads.to_string(),
            secs(s.secs_per_iter),
            format!("{:.2}", s.speedup),
            secs(q.secs_per_iter),
            format!("{:.2}", q.speedup),
        ]);
    }
    let _ = t.write_csv("e14_validate_threads.csv");
    out.push_str(&t.render());

    let best_strip = strips.iter().map(|p| p.speedup).fold(0.0, f64::max);
    let best_square = squares.iter().map(|p| p.speedup).fold(0.0, f64::max);
    out.push_str(&format!(
        "\nShape checks: best measured speedups {best_strip:.2} (strips) and\n\
         {best_square:.2} (squares) on {cores} cores. The model's qualitative\n\
         claims — speedup grows then saturates with the processor count, and\n\
         block partitions communicate less than strips — are what these\n\
         numbers validate; the host is a cache-coherent multicore, not a\n\
         FLEX/32, so constants are not comparable.\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn produces_measurements() {
        let r = super::run(true);
        assert!(r.contains("Measured cycle time"));
        assert!(r.contains("strips"));
    }
}
