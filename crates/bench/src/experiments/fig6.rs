//! E2 — Figure 6: working-rectangle approximation errors.
//!
//! For a 256×256 grid (and companions), sweep every even target area `A`
//! in `[1024, 16384]` (decompositions of 4–64 processors), pick the
//! working rectangle with the closest area, and report the relative
//! errors in area (Fig 6a) and perimeter (Fig 6b). The paper reads the bar
//! graphs as "usually less than 3% for area and less than 6% for
//! perimeter"; the coverage holes between divisor-width bands produce the
//! tall bars.

use crate::report::{ascii_chart, pct, Series, Table};
use parspeed_grid::WorkingRectangles;

struct ErrStats {
    max: f64,
    median: f64,
    frac_under: f64,
}

fn stats(errs: &mut [f64], bar: f64) -> ErrStats {
    errs.sort_by(f64::total_cmp);
    let max = *errs.last().unwrap();
    let median = errs[errs.len() / 2];
    let under = errs.iter().filter(|e| **e < bar).count();
    ErrStats { max, median, frac_under: under as f64 / errs.len() as f64 }
}

/// Regenerates Fig 6 for n = 256 (full sweep) plus summary rows for other
/// grid sizes the paper mentions (128, 512, 1024).
pub fn run(quick: bool) -> String {
    let mut out = String::new();

    // Full Fig-6 sweep on 256².
    let w = WorkingRectangles::new(256);
    let mut rows = Table::new(
        "Fig 6 raw series (n = 256, every even A in [1024, 16384])",
        &["A", "area_err", "perimeter_err"],
    );
    let mut area_errs = Vec::new();
    let mut per_errs = Vec::new();
    let mut area_pts = Vec::new();
    let mut per_pts = Vec::new();
    let mut a = 1024usize;
    while a <= 16384 {
        let ae = w.area_error(a).unwrap();
        let pe = w.perimeter_error(a).unwrap();
        rows.row(vec![a.to_string(), format!("{ae:.5}"), format!("{pe:.5}")]);
        area_pts.push((a as f64, ae));
        per_pts.push((a as f64, pe));
        area_errs.push(ae);
        per_errs.push(pe);
        a += 2;
    }
    let _ = rows.write_csv("e2_fig6_n256.csv");

    out.push_str(&ascii_chart(
        "Fig 6a — relative area error vs target A (n = 256)",
        &[Series { label: "area error".into(), marker: '|', points: area_pts }],
        72,
        12,
    ));
    out.push('\n');
    out.push_str(&ascii_chart(
        "Fig 6b — relative perimeter error vs target A (n = 256)",
        &[Series { label: "perimeter error".into(), marker: '|', points: per_pts }],
        72,
        12,
    ));
    out.push('\n');

    let sa = stats(&mut area_errs, 0.03);
    let sp = stats(&mut per_errs, 0.06);
    let mut summary = Table::new(
        "Fig 6 summary vs paper's reading",
        &["metric", "median", "max", "share under paper bar", "paper"],
    );
    summary.row(vec![
        "area error".into(),
        pct(sa.median),
        pct(sa.max),
        format!("{} under 3%", pct(sa.frac_under)),
        "usually < 3%".into(),
    ]);
    summary.row(vec![
        "perimeter error".into(),
        pct(sp.median),
        pct(sp.max),
        format!("{} under 6%", pct(sp.frac_under)),
        "usually < 6%".into(),
    ]);
    out.push_str(&summary.render());

    // Companion grids: "similar results were obtained for 128×128, 512×512
    // and 1024×1024 size grids."
    let sides: &[usize] = if quick { &[128] } else { &[128, 512, 1024] };
    let mut companions = Table::new(
        "Companion grids (same A-range scaled by (n/256)²)",
        &["n", "median area err", "median perim err", "share under 3%/6%"],
    );
    for &n in sides {
        let w = WorkingRectangles::new(n);
        let scale = (n * n) as f64 / (256.0 * 256.0);
        let (lo, hi) = ((1024.0 * scale) as usize, (16384.0 * scale) as usize);
        let mut ae = Vec::new();
        let mut pe = Vec::new();
        let step = ((hi - lo) / 2000).max(2);
        let mut a = lo;
        while a <= hi {
            ae.push(w.area_error(a).unwrap());
            pe.push(w.perimeter_error(a).unwrap());
            a += step;
        }
        let sa = stats(&mut ae, 0.03);
        let sp = stats(&mut pe, 0.06);
        companions.row(vec![
            n.to_string(),
            pct(sa.median),
            pct(sp.median),
            format!("{} / {}", pct(sa.frac_under), pct(sp.frac_under)),
        ]);
    }
    let _ = companions.write_csv("e2_fig6_companions.csv");
    out.push_str(&companions.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_reproduces_paper_reading() {
        let r = super::run(true);
        assert!(r.contains("Fig 6a"));
        assert!(r.contains("usually < 3%"));
    }
}
