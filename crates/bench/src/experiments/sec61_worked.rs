//! E9 — §6.1's worked example: N = 16, `E·Tfp = b`, `k = 1`, `c = 0`,
//! strips vs squares at n = 256 and n = 1024.
//!
//! The paper quotes strips 16/(1+512/n) and squares 16/(1+128/n) — values
//! consistent with counting *half* the boundary traffic of its own
//! eq. (2). We print both conventions (see `DESIGN.md`, discrepancy #1):
//! the full-volume column follows eq. (2)/(5); the half-volume column
//! reproduces the paper's quoted numbers exactly.

use crate::report::Table;
use parspeed_core::{BusParams, SyncBus, Workload};
use parspeed_stencil::PartitionShape;

/// Regenerates the §6.1 worked example.
pub fn run(_quick: bool) -> String {
    // E·Tfp = b with E = 1 for transparency.
    let b = 1.0e-6;
    let bus = SyncBus::with(b, BusParams::ideal(b));
    let n_procs = 16usize;

    let mut t = Table::new(
        "Worked example (N=16, E·Tfp=b, k=1, c=0)",
        &["n", "shape", "eq.(5) full volume", "half volume (paper's numbers)", "paper quotes"],
    );
    for &n in &[256usize, 1024] {
        for (shape, paper_coeff, quote) in [
            (PartitionShape::Strip, 512.0, if n == 256 { "4 [sic; see note]" } else { "10.6" }),
            (PartitionShape::Square, 128.0, if n == 256 { "10.6" } else { "14.2" }),
        ] {
            let w = Workload::with_constants(n, shape, 1.0, 1);
            let full = bus.all_n_speedup(&w, n_procs);
            let half = n_procs as f64 / (1.0 + paper_coeff / n as f64);
            t.row(vec![
                n.to_string(),
                shape.name().into(),
                format!("{full:.2}"),
                format!("{half:.2}"),
                quote.into(),
            ]);
        }
    }
    let _ = t.write_csv("e9_worked_example.csv");
    let mut out = t.render();
    out.push_str(
        "\nNotes: the paper's in-text formulas 16/(1+512/n) and 16/(1+128/n)\n\
         correspond to 2nk words per strip iteration (half of eq. (2)'s 4nk)\n\
         and 4sk per square (half of 8sk); its 1024-grid values (10.6, 14.2)\n\
         match the half-volume column exactly. The n=256 strip value printed\n\
         as '4' in the scan is 5.33 by the paper's own formula — a typo.\n\
         Either convention shows the §6.1 qualitative claim: squares beat\n\
         strips, and both approach N as the grid grows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_paper_quotes() {
        let r = super::run(true);
        assert!(r.contains("10.6"));
        assert!(r.contains("14.2"));
        // Half-volume column values:
        assert!(r.contains("10.67") || r.contains("10.66"));
        assert!(r.contains("14.22") || r.contains("14.21"));
    }
}
