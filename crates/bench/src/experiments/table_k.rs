//! E1 — the §3 table of perimeter counts `k(Partition, Stencil)`.

use crate::report::Table;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the k-table, annotated with reach, tap counts and the two
/// `E(S)` accountings.
pub fn run(_quick: bool) -> String {
    let mut t = Table::new(
        "k(Partition, Stencil) — paper §3",
        &[
            "stencil",
            "taps",
            "reach",
            "diag?",
            "k(strip)",
            "k(square)",
            "E natural",
            "E calibrated",
        ],
    );
    for s in Stencil::catalog() {
        t.row(vec![
            s.name().to_string(),
            s.tap_count().to_string(),
            s.reach().to_string(),
            if s.has_diagonal() { "yes" } else { "no" }.to_string(),
            s.perimeters(PartitionShape::Strip).to_string(),
            s.perimeters(PartitionShape::Square).to_string(),
            format!("{:.0}", s.flops_per_point()),
            s.calibrated_e().map(|e| format!("{e:.0}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    let _ = t.write_csv("e1_table_k.csv");
    let mut out = t.render();
    out.push_str(
        "\nPaper values: 5-point and 9-point box communicate 1 perimeter;\n\
         the 9-point star and 13-point star communicate 2 (Fig. 3).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_stencils() {
        let r = super::run(true);
        for name in ["5-point", "9-point box", "9-point star", "13-point star"] {
            assert!(r.contains(name), "missing {name}");
        }
    }
}
