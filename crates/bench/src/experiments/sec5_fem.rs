//! E8 — §5: the Adams–Crockett counter-example.
//!
//! A CG iteration's all-to-all scalar reduction makes execution time
//! *non-monotone* in the processor count: past `P* ≈ √(E·n²·Tfp/t_exch)`
//! adding processors slows the solve. Model curve plus the real CG
//! solver's reduction counts.

use crate::report::{ascii_chart, secs, Series, Table};
use parspeed_core::fem::FemModel;
use parspeed_core::MachineParams;
use parspeed_solver::{Boundary, CgSolver, PoissonProblem};

/// Regenerates the FEM counter-example.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let fem = FemModel::new(&m);
    let mut out = String::new();

    let n = 128usize;
    let mut t =
        Table::new(format!("CG iteration time vs processors (n = {n})"), &["P", "t(P)", "note"]);
    let p_star = fem.optimal_processors(n, 1 << 20);
    let mut pts = Vec::new();
    let ps: Vec<usize> =
        [1, 4, 16, 64, 256, p_star, 4 * p_star, 16 * p_star, 64 * p_star].into_iter().collect();
    let mut sorted = ps.clone();
    sorted.sort_unstable();
    sorted.dedup();
    for p in sorted {
        let tt = fem.iteration_time(n, p);
        pts.push(((p as f64).log2(), tt.log10()));
        t.row(vec![
            p.to_string(),
            secs(tt),
            if p == p_star { "← interior optimum".into() } else { String::new() },
        ]);
    }
    let _ = t.write_csv("e8_fem_curve.csv");
    out.push_str(&t.render());
    out.push_str(&ascii_chart(
        "log₁₀ t(P) vs log₂ P — the U-shape of §5",
        &[Series { label: "t(P)".into(), marker: '*', points: pts }],
        60,
        12,
    ));

    let mut opt = Table::new(
        "Interior optimum grows like √(n²)",
        &["n", "P* (scan)", "P* (continuous)", "t(P*)", "t(16·P*)"],
    );
    for nn in if quick { vec![64usize, 256] } else { vec![64usize, 128, 256, 512] } {
        let p = fem.optimal_processors(nn, 1 << 22);
        opt.row(vec![
            nn.to_string(),
            p.to_string(),
            format!("{:.0}", fem.optimal_processors_continuous(nn)),
            secs(fem.iteration_time(nn, p)),
            secs(fem.iteration_time(nn, 16 * p)),
        ]);
    }
    out.push_str(&opt.render());

    // Real CG run: count the global reductions the model prices.
    let nn = if quick { 16 } else { 32 };
    let problem = PoissonProblem::new(
        nn,
        |x, y| (x * 7919.0).sin() * (y * 6101.0).cos(),
        Boundary::Const(0.0),
    );
    let (_, status, stats) = CgSolver::default().solve(&problem);
    out.push_str(&format!(
        "\nReal CG on {nn}×{nn}: converged = {}, {} iterations, {} global\n\
         reductions (2 per iteration — the §5 all-to-all traffic the model\n\
         charges (P−1)·t_exch + P·t_add for).\n",
        status.converged, status.iterations, stats.global_reductions
    ));
    out.push_str(
        "\nContrast with Jacobi (§§4–6): nearest-neighbour-only communication\n\
         keeps cycle time monotone in P, so allocation is extremal; the\n\
         global reduction breaks that and creates the interior optimum.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shows_interior_optimum() {
        let r = super::run(true);
        assert!(r.contains("interior optimum"));
        assert!(r.contains("global"));
    }
}
