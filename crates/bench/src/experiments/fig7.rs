//! E3 — Figure 7: minimal problem size that gainfully uses all N
//! processors, as a function of N.
//!
//! Three curves per stencil, in the paper's panel order: (a) synchronous
//! bus + strips, (b) asynchronous bus + strips, (c) synchronous bus +
//! squares. Ordinate is `log₂(n²)`; the paper's axis spans ≈ 8…24 over
//! N = 4…24. Closed forms from `parspeed-core::minsize`, cross-checked
//! against the integer optimizer.

use crate::report::{ascii_chart, Series, Table};
use parspeed_core::minsize::{
    min_grid_side, min_grid_side_verified, min_problem_size_log2, BusVariant,
};
use parspeed_core::MachineParams;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates Fig 7 for the 5-point and 9-point stencils.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let mut out = String::new();
    let variants = [BusVariant::SyncStrip, BusVariant::AsyncStrip, BusVariant::SyncSquare];
    let markers = ['a', 'b', 'c'];

    for stencil in [Stencil::five_point(), Stencil::nine_point_box()] {
        let e = stencil.calibrated_e().unwrap();
        let mut table = Table::new(
            format!("Fig 7 — minimal log₂(n²) using all N processors ({})", stencil.name()),
            &["N", "(a) sync strip", "(b) async strip", "(c) sync square"],
        );
        let mut series: Vec<Series> = variants
            .iter()
            .zip(markers)
            .map(|(v, mk)| Series { label: v.label().into(), marker: mk, points: vec![] })
            .collect();
        for n_procs in (4..=24).step_by(2) {
            let k = |shape| stencil.perimeters(shape) as f64;
            let vals: Vec<f64> = variants
                .iter()
                .map(|&v| {
                    let kk = match v {
                        BusVariant::SyncStrip | BusVariant::AsyncStrip => k(PartitionShape::Strip),
                        _ => k(PartitionShape::Square),
                    };
                    min_problem_size_log2(&m, e, kk, n_procs, v)
                })
                .collect();
            for (s, v) in series.iter_mut().zip(&vals) {
                s.points.push((n_procs as f64, *v));
            }
            table.row(vec![
                n_procs.to_string(),
                format!("{:.2}", vals[0]),
                format!("{:.2}", vals[1]),
                format!("{:.2}", vals[2]),
            ]);
        }
        let _ =
            table.write_csv(&format!("e3_fig7_{}.csv", stencil.name().replace([' ', '-'], "_")));
        out.push_str(&table.render());
        out.push_str(&ascii_chart(
            &format!("Fig 7 ({}) — log₂(n²) vs N", stencil.name()),
            &series,
            64,
            14,
        ));
        out.push('\n');
    }

    // Paper anchor: 256×256 with squares should saturate at 14 (5-point)
    // and 22 (9-point) processors.
    let mut anchors = Table::new(
        "Anchor check: N that makes n_min = 256 (paper: 14 and 22)",
        &["stencil", "closed-form n_min(N)", "N solving n_min = 256"],
    );
    for (stencil, paper_n) in [(Stencil::five_point(), 14.0), (Stencil::nine_point_box(), 22.0)] {
        let e = stencil.calibrated_e().unwrap();
        // Invert n = 4kbN^{3/2}/(E·Tfp).
        let n_solving = (256.0 * e * m.tfp / (4.0 * 1.0 * m.bus.b)).powf(2.0 / 3.0);
        anchors.row(vec![
            stencil.name().into(),
            format!("{:.1}", min_grid_side(&m, e, 1.0, paper_n as usize, BusVariant::SyncSquare)),
            format!("{n_solving:.1} (paper: {paper_n})"),
        ]);
    }
    out.push_str(&anchors.render());

    if !quick {
        let mut verify = Table::new(
            "Closed form vs integer-optimizer verification (5-point)",
            &["variant", "N", "closed-form n_min", "verified n_min"],
        );
        for (v, np) in [
            (BusVariant::SyncSquare, 8usize),
            (BusVariant::SyncSquare, 14),
            (BusVariant::AsyncSquare, 8),
            (BusVariant::SyncStrip, 8),
        ] {
            let closed = min_grid_side(&m, 6.0, 1.0, np, v);
            let verified = min_grid_side_verified(&m, 6.0, 1, np, v);
            verify.row(vec![
                v.label().into(),
                np.to_string(),
                format!("{closed:.0}"),
                verified.to_string(),
            ]);
        }
        out.push_str(&verify.render());
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_both_stencil_panels() {
        let r = super::run(true);
        assert!(r.contains("5-point"));
        assert!(r.contains("9-point box"));
        assert!(r.contains("paper: 14"));
    }
}
