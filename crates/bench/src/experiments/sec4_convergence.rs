//! E7 — §4: convergence-checking cost and scheduling (after Saltz, Naik &
//! Nicol \[13\]).
//!
//! Model side: naive per-iteration checking on a large hypercube costs
//! more than the iteration itself; the optimal period makes it
//! insignificant. Executor side: the real partitioned solver under lazy
//! policies converges with a bounded iteration overshoot and a fraction of
//! the checks.

use crate::report::{pct, secs, Table};
use parspeed_core::convergence::ConvergenceModel;
use parspeed_core::MachineParams;
use parspeed_exec::{CheckPolicy, PartitionedJacobi};
use parspeed_grid::StripDecomposition;
use parspeed_solver::{Manufactured, PoissonProblem};
use parspeed_stencil::Stencil;

/// Regenerates the convergence-checking analysis.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let mut out = String::new();

    // Model: n = 1024 over 64 processors, ~937 iterations to converge.
    let c = ConvergenceModel::hypercube(&m);
    let area = 16_384.0;
    let cycle = 6.0 * area * m.tfp;
    let iters = 937usize;
    let p = 64usize;
    let mut t = Table::new(
        "Hypercube checking cost (n=1024, P=64, 937 iterations)",
        &["period", "total time", "overhead vs check-free"],
    );
    let d_star = c.optimal_period(iters, cycle, area, p);
    for d in [1usize, 4, 16, d_star, 256, iters] {
        t.row(vec![
            if d == d_star { format!("{d} (optimal)") } else { d.to_string() },
            secs(c.total_time(iters, cycle, area, p, d)),
            pct(c.overhead_fraction(iters, cycle, area, p, d)),
        ]);
    }
    let _ = t.write_csv("e7_convergence_model.csv");
    out.push_str(&t.render());
    out.push_str(
        "Paper: naive checking is 'extremely high [cost] due to message\n\
         packaging and handling'; scheduled checks 'reduce that cost to an\n\
         insignificant amount'.\n\n",
    );

    // Executor: real solves under the policies.
    let n = if quick { 24 } else { 48 };
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);
    let stencil = Stencil::five_point();
    let mut e = Table::new(
        format!("Real partitioned solves on {n}×{n} (4 strips, tol 1e-8)"),
        &["policy", "iterations", "checks", "converged"],
    );
    let policies: Vec<(String, CheckPolicy)> = vec![
        ("every iteration".into(), CheckPolicy::Every(1)),
        ("every 32".into(), CheckPolicy::Every(32)),
        ("geometric".into(), CheckPolicy::geometric()),
    ];
    for (label, policy) in policies {
        let d = StripDecomposition::new(n, 4);
        let mut exec = PartitionedJacobi::new(&problem, &stencil, &d);
        let run = exec.solve(1e-8, 500_000, policy);
        e.row(vec![
            label,
            run.iterations.to_string(),
            run.checks.to_string(),
            run.converged.to_string(),
        ]);
    }
    let _ = e.write_csv("e7_convergence_exec.csv");
    out.push_str(&e.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shows_scheduling_benefit() {
        let r = super::run(true);
        assert!(r.contains("(optimal)"));
        assert!(r.contains("geometric"));
    }
}
