//! E6 — §4: hypercube behaviour.
//!
//! Three claims reproduced: (1) cycle time is monotone decreasing in the
//! processor count, so allocation is extremal; (2) at fixed points per
//! processor the cycle time is constant and speedup is linear in `n²`;
//! (3) with `N` fixed, speedup approaches `N` as the problem grows. Each
//! model row is paired with the event-level simulation.

use crate::report::{secs, Table};
use parspeed_arch::{IterationSpec, NeighborExchangeSim};
use parspeed_core::{ArchModel, Hypercube, MachineParams, ProcessorBudget, Workload};
use parspeed_grid::RectDecomposition;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the §4 hypercube analyses.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let cube = Hypercube::new(&m);
    let stencil = Stencil::five_point();
    let mut out = String::new();

    // (1) Monotone cycle time, model and simulation side by side.
    let n = 256usize;
    let w = Workload::new(n, &stencil, PartitionShape::Square);
    let mut t = Table::new(
        "Cycle time vs processors (n = 256, squares): decreasing ⇒ extremal allocation",
        &["P", "model t_cycle", "sim t_cycle", "model speedup"],
    );
    let sim = NeighborExchangeSim::hypercube(&m);
    for q in [2usize, 4, 8, 16] {
        let p = q * q;
        let model = cube.cycle_time(&w, w.points() / p as f64);
        let spec = IterationSpec::new(&RectDecomposition::new(n, q, q), &stencil);
        let simulated = sim.simulate(&spec).cycle_time;
        t.row(vec![
            p.to_string(),
            secs(model),
            secs(simulated),
            format!("{:.1}", cube.speedup_at(&w, w.points() / p as f64)),
        ]);
    }
    let _ = t.write_csv("e6_hypercube_monotone.csv");
    out.push_str(&t.render());

    // Extremal allocation across problem sizes.
    let mut extremal = Table::new(
        "Optimal allocation is extremal: 1 processor or all of them",
        &["n", "budget N", "optimal P", "speedup"],
    );
    for (nn, budget) in [(8usize, 64usize), (64, 64), (1024, 256)] {
        let w = Workload::new(nn, &stencil, PartitionShape::Square);
        let opt = cube.optimize(&w, ProcessorBudget::Limited(budget));
        extremal.row(vec![
            nn.to_string(),
            budget.to_string(),
            opt.processors.to_string(),
            format!("{:.1}", opt.speedup),
        ]);
    }
    out.push_str(&extremal.render());

    // (2) Fixed F ⇒ constant cycle, linear speedup.
    let mut scaled = Table::new(
        "Machine grows with the problem (F = 64 points/processor)",
        &["n", "cycle time", "speedup", "speedup / n²"],
    );
    let sides: &[usize] = if quick { &[256, 1024] } else { &[256, 512, 1024, 2048, 4096] };
    for &nn in sides {
        let w = Workload::new(nn, &stencil, PartitionShape::Square);
        let c = cube.scaled_cycle(&w, 64.0);
        let s = cube.scaled_speedup(&w, 64.0);
        scaled.row(vec![
            nn.to_string(),
            secs(c),
            format!("{s:.0}"),
            format!("{:.3e}", s / (nn * nn) as f64),
        ]);
    }
    let _ = scaled.write_csv("e6_hypercube_scaled.csv");
    out.push_str(&scaled.render());
    out.push_str("Constant cycle time and constant speedup/n² certify the linear law.\n\n");

    // (3) Fixed N: speedup → N.
    let mut fixed = Table::new(
        "Fixed machine N = 64: speedup approaches N as n² grows",
        &["n", "speedup (strips)", "speedup (squares)"],
    );
    for &nn in if quick { &[256usize, 4096][..] } else { &[256usize, 1024, 4096, 16384][..] } {
        let ws = Workload::new(nn, &stencil, PartitionShape::Strip);
        let wq = Workload::new(nn, &stencil, PartitionShape::Square);
        fixed.row(vec![
            nn.to_string(),
            format!("{:.2}", cube.speedup_at(&ws, ws.points() / 64.0)),
            format!("{:.2}", cube.speedup_at(&wq, wq.points() / 64.0)),
        ]);
    }
    out.push_str(&fixed.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_three_claims() {
        let r = super::run(true);
        assert!(r.contains("extremal"));
        assert!(r.contains("F = 64"));
        assert!(r.contains("approaches N"));
    }
}
