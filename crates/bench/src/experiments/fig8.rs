//! E4 — Figure 8: optimal speedup and the processors needed to achieve
//! it, as functions of problem size, on the synchronous bus.
//!
//! Four curves per stencil over `log₂(n²) ∈ [12, 20]`: processors at the
//! optimum for squares (a) and strips (b), optimal speedup for squares (c)
//! and strips (d). Squares want `P* ∝ (n²)^{1/3}` with speedup a third of
//! that; strips want `P* ∝ (n²)^{1/4}`.

use crate::report::{ascii_chart, Series, Table};
use parspeed_core::{ArchModel, MachineParams, ProcessorBudget, SyncBus, Workload};
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates Fig 8 for the 5-point and 9-point stencils.
pub fn run(_quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let bus = SyncBus::new(&m);
    let mut out = String::new();

    for stencil in [Stencil::five_point(), Stencil::nine_point_box()] {
        let mut table = Table::new(
            format!("Fig 8 — optimum vs problem size ({}, synchronous bus)", stencil.name()),
            &[
                "log2(n²)",
                "n",
                "(a) procs squares",
                "(b) procs strips",
                "(c) speedup squares",
                "(d) speedup strips",
            ],
        );
        let mut s_procs_sq =
            Series { label: "(a) processors, squares".into(), marker: 'a', points: vec![] };
        let mut s_procs_st =
            Series { label: "(b) processors, strips".into(), marker: 'b', points: vec![] };
        let mut s_sp_sq =
            Series { label: "(c) speedup, squares".into(), marker: 'c', points: vec![] };
        let mut s_sp_st =
            Series { label: "(d) speedup, strips".into(), marker: 'd', points: vec![] };

        for log2_n2 in (12..=20).step_by(1) {
            let n = 2f64.powi(log2_n2).sqrt().round() as usize;
            let wq = Workload::new(n, &stencil, PartitionShape::Square);
            let ws = Workload::new(n, &stencil, PartitionShape::Strip);
            let oq = bus.optimize(&wq, ProcessorBudget::Unlimited);
            let os = bus.optimize(&ws, ProcessorBudget::Unlimited);
            let x = log2_n2 as f64;
            s_procs_sq.points.push((x, oq.processors as f64));
            s_procs_st.points.push((x, os.processors as f64));
            s_sp_sq.points.push((x, oq.speedup));
            s_sp_st.points.push((x, os.speedup));
            table.row(vec![
                log2_n2.to_string(),
                n.to_string(),
                oq.processors.to_string(),
                os.processors.to_string(),
                format!("{:.2}", oq.speedup),
                format!("{:.2}", os.speedup),
            ]);
        }
        let _ =
            table.write_csv(&format!("e4_fig8_{}.csv", stencil.name().replace([' ', '-'], "_")));
        out.push_str(&table.render());
        out.push_str(&ascii_chart(
            &format!("Fig 8 ({})", stencil.name()),
            &[s_procs_sq, s_procs_st, s_sp_sq, s_sp_st],
            64,
            16,
        ));
        out.push('\n');
    }

    // Scaling exponents: the paper's "disheartening" (n²)^{1/4} for strips
    // and (n²)^{1/3} for squares.
    let mut fits = Table::new(
        "Fitted growth exponents d log(speedup)/d log(n²) (paper: ⅓ and ¼)",
        &["shape", "fitted exponent", "paper"],
    );
    let sides: Vec<usize> = vec![128, 256, 512, 1024, 2048];
    for (shape, label, paper) in [
        (PartitionShape::Square, "squares", "1/3 ≈ 0.333"),
        (PartitionShape::Strip, "strips", "1/4 = 0.250"),
    ] {
        let e = parspeed_core::table1::fit_scaling_exponent(&sides, |n| {
            let w = Workload::new(n, &Stencil::five_point(), shape);
            bus.optimal_speedup_unbounded(&w)
        });
        fits.row(vec![label.into(), format!("{e:.4}"), paper.into()]);
    }
    out.push_str(&fits.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn exponents_match_paper() {
        let r = super::run(true);
        assert!(r.contains("0.333") || r.contains("0.33"));
        assert!(r.contains("0.250") || r.contains("0.25"));
    }
}
