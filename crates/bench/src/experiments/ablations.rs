//! E17 — ablations of the reproduction's own design choices.
//!
//! Three knobs the paper fixes without exploring, each varied here:
//!
//! 1. **The working-rectangle 5% rule** (§3): sweep the perimeter
//!    tolerance and watch the trade — a tighter rule leaves too few
//!    achievable areas (the optimizer must round further, Fig-6 area error
//!    grows), a looser rule admits slab-like partitions whose true
//!    perimeter betrays the square-partition cost model.
//! 2. **Speedup over the whole (n, N) plane**: the paper plots slices
//!    (Fig 7 fixes the optimum, Fig 8 fixes the machine); the contour map
//!    shows both regimes and the ridge between them at once.
//! 3. **Mesh combine hardware** (§5): convergence-check dissemination
//!    priced with and without the FEM-style global-combine circuitry, at
//!    the §4-recommended optimal checking period.

use crate::report::Table;
use parspeed_core::convergence::{ConvergenceModel, Dissemination};
use parspeed_core::{ArchModel, MachineParams, ProcessorBudget, SyncBus, Workload};
use parspeed_grid::WorkingRectangles;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the ablation studies.
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&tolerance_ablation(quick));
    out.push_str(&speedup_contours(quick));
    out.push_str(&combine_hardware_ablation());
    out
}

/// Ablation 1: the 5% squareness rule.
fn tolerance_ablation(quick: bool) -> String {
    let n = 256usize;
    let m = MachineParams::paper_defaults();
    let bus = SyncBus::new(&m);
    let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
    // The continuous optimum the catalogue must approximate.
    let a_star = bus.closed_form_optimal_area(&w).expect("bus optimum exists");

    let mut t = Table::new(
        format!("Working-rectangle tolerance ablation (n={n}, A* = {a_star:.0})"),
        &[
            "tolerance",
            "areas kept",
            "median area err",
            "max area err",
            "worst squareness",
            "worst cycle penalty",
        ],
    );
    let tolerances: &[f64] =
        if quick { &[0.0, 0.05, 0.20] } else { &[0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50] };
    // Cycle time of a materialized rectangle charged its TRUE perimeter
    // (the model charges a square's `4√A·k` words one way; a rectangle of
    // the same area moves `perimeter·k`).
    let real_cycle = |r: &parspeed_grid::WorkingRect| -> f64 {
        let p_procs = w.points() / r.area() as f64;
        let comp = w.e_flops * r.area() as f64 * m.tfp;
        let one_way = r.perimeter() as f64 * w.k as f64;
        comp + 2.0 * one_way * (m.bus.c + m.bus.b * p_procs)
    };
    for &tol in tolerances {
        let cat = WorkingRectangles::with_tolerance(n, tol);
        // Fig-6 style error sweep, tracking the end-to-end cost of the
        // substitution: the catalogue's choice for target area A, at its
        // true perimeter, against the ideal square of area A.
        let mut errs: Vec<f64> = Vec::new();
        let mut worst_penalty = f64::NEG_INFINITY;
        let mut a = 1024usize;
        while a <= 16384 {
            if let (Some(e), Some(r)) = (cat.area_error(a), cat.closest(a)) {
                errs.push(e);
                let penalty = real_cycle(&r) / bus.cycle_time(&w, a as f64) - 1.0;
                worst_penalty = worst_penalty.max(penalty);
            }
            a += 64;
        }
        errs.sort_by(f64::total_cmp);
        let median = errs.get(errs.len() / 2).copied().unwrap_or(f64::NAN);
        let max = errs.last().copied().unwrap_or(f64::NAN);
        let worst_sq = cat.all().iter().map(|r| r.squareness()).fold(0.0, f64::max);
        t.row(vec![
            format!("{:.0}%", tol * 100.0),
            cat.all().len().to_string(),
            format!("{:.1}%", median * 100.0),
            format!("{:.1}%", max * 100.0),
            format!("{:.1}%", worst_sq * 100.0),
            format!("{:+.2}%", worst_penalty * 100.0),
        ]);
    }
    let _ = t.write_csv("e17_tolerance_ablation.csv");
    let mut s = t.render();
    s.push_str(
        "Tighter rules shrink the catalogue until the optimizer cannot land\n\
         near the target area and the rounding penalty dominates (+38% with\n\
         only true squares); loosening past ~10% buys nothing — the worst\n\
         penalty bottoms out and creeps back up as slab-like survivors\n\
         betray the square cost model. The paper's 5% sits at the knee.\n\n",
    );
    s
}

/// Ablation 2: speedup contours over the (n, N) plane.
fn speedup_contours(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let bus = SyncBus::new(&m);
    let ns: Vec<usize> =
        if quick { vec![64, 256, 1024] } else { vec![32, 64, 128, 256, 512, 1024, 2048, 4096] };
    let procs: Vec<usize> =
        if quick { vec![4, 16, 64] } else { vec![2, 4, 8, 16, 32, 64, 128, 256] };

    let headers: Vec<String> =
        std::iter::once("N \\ n".to_string()).chain(ns.iter().map(|n| n.to_string())).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Sync-bus optimal speedup over (n, N), squares (5-point)", &header_refs);
    for &cap in &procs {
        let mut row = vec![cap.to_string()];
        for &n in &ns {
            let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
            let opt = bus.optimize(&w, ProcessorBudget::Limited(cap));
            // Mark the regime: '*' when the optimum leaves processors idle
            // (the machine is oversized for the problem, Fig 7's region).
            let mark = if opt.used_all { "" } else { "*" };
            row.push(format!("{:.1}{mark}", opt.speedup));
        }
        t.row(row);
    }
    let _ = t.write_csv("e17_speedup_contours.csv");
    let mut s = t.render();
    s.push_str(
        "Rows: machine size N; columns: grid side n; '*' marks allocations\n\
         that leave processors idle. The ridge where '*' appears is Fig 7's\n\
         minimal-problem-size curve cutting across the plane; below it,\n\
         speedup tracks N (Fig 8's saturated regime); above it, speedup is\n\
         capped by contention no matter how many processors are offered.\n\n",
    );
    s
}

/// Ablation 3: mesh combine hardware for convergence checks (§5).
fn combine_hardware_ablation() -> String {
    let m = MachineParams::paper_defaults();
    let n = 256usize;
    let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
    // A Jacobi solve at this size needs iterations ~ O(n² ln n); use the
    // standard estimate for the error-reduction count.
    let iters = (2.0 * (n as f64 / std::f64::consts::PI).powi(2) * (1e8f64).ln()) as usize;

    let mut t = Table::new(
        format!("Convergence dissemination on the mesh (n={n}, ~{iters} iterations)"),
        &["P", "software combine: d*", "overhead", "combine hardware: d*", "overhead"],
    );
    for p in [16usize, 64, 256, 1024] {
        let area = w.points() / p as f64;
        let cycle = w.e_flops * area * m.tfp; // mesh compute-dominated cycle
        let software = ConvergenceModel {
            check_flops: 3.0,
            tfp: m.tfp,
            dissemination: Dissemination::MeshSoftware(m.mesh),
        };
        let hardware = ConvergenceModel {
            check_flops: 3.0,
            tfp: m.tfp,
            dissemination: Dissemination::CombineHardware,
        };
        let d_sw = software.optimal_period(iters, cycle, area, p);
        let d_hw = hardware.optimal_period(iters, cycle, area, p);
        t.row(vec![
            p.to_string(),
            d_sw.to_string(),
            format!("{:.2}%", 100.0 * software.overhead_fraction(iters, cycle, area, p, d_sw)),
            d_hw.to_string(),
            format!("{:.2}%", 100.0 * hardware.overhead_fraction(iters, cycle, area, p, d_hw)),
        ]);
    }
    let _ = t.write_csv("e17_combine_hardware.csv");
    let mut s = t.render();
    s.push_str(
        "With combine hardware the optimal period and overhead are independent\n\
         of P — only the local pass costs anything (§5: the overhead 'does\n\
         not appear to be as significant a concern'); software combining must\n\
         check ever more sparsely as P grows and still pays more.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_table_shows_the_knee() {
        let r = tolerance_ablation(false);
        assert!(r.contains("5%"), "{r}");
        assert!(r.contains("50%"), "{r}");
    }

    #[test]
    fn contours_mark_both_regimes() {
        let r = speedup_contours(true);
        assert!(r.contains('*'), "some allocation must leave processors idle: {r}");
        // The largest machine on the smallest grid must be starred; the
        // smallest machine on the largest grid must not.
        let lines: Vec<&str> = r.lines().collect();
        let first_data = lines.iter().position(|l| l.trim_start().starts_with('4')).unwrap();
        assert!(!lines[first_data].split_whitespace().last().unwrap().contains('*'), "{r}");
    }

    #[test]
    fn hardware_combining_is_p_independent_and_cheaper() {
        let r = combine_hardware_ablation();
        // Data rows: P, d*_software, overhead_sw, d*_hardware, overhead_hw.
        let rows: Vec<Vec<&str>> = r
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|l| l.split_whitespace().collect())
            .collect();
        assert!(rows.len() >= 3, "{r}");
        let hw_period = rows[0][3];
        for row in &rows {
            assert_eq!(row[3], hw_period, "hardware d* must not depend on P: {r}");
            assert_eq!(row[4], rows[0][4], "hardware overhead must not depend on P: {r}");
            let sw: f64 = row[2].trim_end_matches('%').parse().unwrap();
            let hw: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(hw <= sw, "hardware combining must never lose: {r}");
        }
    }
}
