//! E5 — Table I: optimal speedup per architecture, with scaling-exponent
//! fits certifying the paper's asymptotic columns.

use crate::report::Table;
use parspeed_core::table1::{
    async_bus_speedup, fit_scaling_exponent, hypercube_speedup, rows, switching_speedup,
    sync_bus_speedup,
};
use parspeed_core::{MachineParams, Workload};
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates Table I at several grid sizes plus exponent fits.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let stencil = Stencil::five_point();
    let mut out = String::new();

    let sides: &[usize] = if quick { &[256, 1024] } else { &[256, 512, 1024, 2048, 4096] };
    let mut t = Table::new(
        "Table I — optimal speedup (squares, one point per processor where it applies)",
        &["architecture", "formula", "n=256", &format!("n={}", sides[sides.len() - 1])],
    );
    let first = rows(&m, 256, &stencil);
    let last = rows(&m, sides[sides.len() - 1], &stencil);
    for (a, b) in first.iter().zip(&last) {
        t.row(vec![
            a.architecture.into(),
            a.formula.into(),
            format!("{:.1}", a.optimal_speedup),
            format!("{:.1}", b.optimal_speedup),
        ]);
    }
    let _ = t.write_csv("e5_table1.csv");
    out.push_str(&t.render());

    let w = Workload::new(2, &stencil, PartitionShape::Square);
    let fit_sides: Vec<usize> = vec![256, 512, 1024, 2048, 4096];
    let mut fits = Table::new(
        "Scaling exponents d log(speedup)/d log(n²)",
        &["architecture", "fitted", "paper"],
    );
    fits.row(vec![
        "hypercube".into(),
        format!(
            "{:.4}",
            fit_scaling_exponent(&fit_sides, |n| hypercube_speedup(&m, &w.scaled_to(n)))
        ),
        "1 (linear in n²)".into(),
    ]);
    fits.row(vec![
        "synchronous bus".into(),
        format!(
            "{:.4}",
            fit_scaling_exponent(&fit_sides, |n| sync_bus_speedup(&m, &w.scaled_to(n)))
        ),
        "1/3".into(),
    ]);
    fits.row(vec![
        "asynchronous bus".into(),
        format!(
            "{:.4}",
            fit_scaling_exponent(&fit_sides, |n| async_bus_speedup(&m, &w.scaled_to(n)))
        ),
        "1/3 (constant ×1.5 better)".into(),
    ]);
    fits.row(vec![
        "switching network".into(),
        format!(
            "{:.4}",
            fit_scaling_exponent(&fit_sides, |n| switching_speedup(&m, &w.scaled_to(n)))
        ),
        "just under 1: n²/log n".into(),
    ]);
    out.push_str(&fits.render());

    out.push_str(
        "\nReading (paper §1/§8): hypercube and mesh scale linearly in n²; the\n\
         banyan pays only a log factor; buses are capped at the cube root —\n\
         'bus networks are unsuited for large numerical problems'. At\n\
         practical sizes hypercube-vs-banyan is decided by message startup\n\
         versus switch speed, not by the log factor.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_four_architectures() {
        let r = super::run(true);
        for a in ["hypercube", "synchronous bus", "asynchronous bus", "switching network"] {
            assert!(r.contains(a));
        }
    }
}
