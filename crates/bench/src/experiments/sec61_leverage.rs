//! E10 — §6.1: hardware leverage at the re-optimized configuration.
//!
//! Strips: doubling either the bus or the flop unit gives 1/√2. Squares:
//! bus×2 → 0.63, flop×2 → 0.79 — "more leverage by improving
//! communication speed than computation speed". In the `c`-dominated
//! regime, bus bandwidth is nearly worthless while cutting `c` is linear.

use crate::report::{pct, Table};
use parspeed_core::leverage::{bus_speedup, flop_speedup, ideal_factors, overhead_scaling};
use parspeed_core::{MachineParams, ProcessorBudget, Workload};
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the leverage analysis.
pub fn run(_quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let budget = ProcessorBudget::Unlimited;
    let mut out = String::new();

    let mut t = Table::new(
        "Cycle-time factor after doubling one component (n = 1024, c = 0)",
        &["shape", "bus ×2", "ideal", "flop ×2", "ideal"],
    );
    for shape in [PartitionShape::Strip, PartitionShape::Square] {
        let w = Workload::new(1024, &Stencil::five_point(), shape);
        let (ib, iflop) = ideal_factors(&w);
        t.row(vec![
            shape.name().into(),
            format!("{:.4}", bus_speedup(&m, &w, budget, 2.0).factor()),
            format!("{ib:.4}"),
            format!("{:.4}", flop_speedup(&m, &w, budget, 2.0).factor()),
            format!("{iflop:.4}"),
        ]);
    }
    let _ = t.write_csv("e10_leverage.csv");
    out.push_str(&t.render());
    out.push_str(
        "Paper: 1/√2 ≈ 0.707 for strips from either upgrade; 0.63 (bus) and\n\
         0.79 (flop) for squares — communication is the better lever.\n\n",
    );

    // The c-dominated regime.
    let mc = MachineParams::paper_defaults().with_bus_overhead(1.0e-3);
    let w = Workload::new(16_384, &Stencil::five_point(), PartitionShape::Strip);
    let budget16 = ProcessorBudget::Limited(16);
    let mut t2 = Table::new(
        "Overhead-dominated regime (c = 1000·b, strips, N = 16)",
        &["upgrade", "cycle-time factor"],
    );
    t2.row(vec!["bus ×2".into(), format!("{:.4}", bus_speedup(&mc, &w, budget16, 2.0).factor())]);
    t2.row(vec!["flop ×2".into(), format!("{:.4}", flop_speedup(&mc, &w, budget16, 2.0).factor())]);
    t2.row(vec![
        "c ÷2".into(),
        format!("{:.4}", overhead_scaling(&mc, &w, budget16, 0.5).factor()),
    ]);
    out.push_str(&t2.render());
    out.push_str(&format!(
        "With c/b = {:.0}, shaving fixed overhead is worth {} of the cycle\n\
         while doubling bandwidth saves almost nothing — the paper's point\n\
         that `c` acts linearly on the optimized time.\n",
        mc.bus.c / mc.bus.b,
        pct(1.0 - overhead_scaling(&mc, &w, budget16, 0.5).factor()),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shows_both_regimes() {
        let r = super::run(true);
        assert!(r.contains("0.63") || r.contains("0.62"));
        assert!(r.contains("Overhead-dominated"));
    }
}
