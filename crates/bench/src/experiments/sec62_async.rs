//! E11 — §6.2: asynchronous bus.
//!
//! Posted writes buy a constant factor, never a better exponent: ×√2 for
//! strips, ×1.5 for squares; the optimal strip area shrinks by √2 while
//! the square optimum is unchanged; full read/write overlap buys a further
//! ×1.26 (squares) / ×√2 (strips). Model numbers beside the processor-
//! sharing bus simulation.

use crate::report::{secs, Table};
use parspeed_arch::{AsyncBusSim, IterationSpec, SyncBusSim};
use parspeed_core::{ArchModel, AsyncBus, MachineParams, OverlapMode, SyncBus, Workload};
use parspeed_grid::StripDecomposition;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the asynchronous-bus analysis.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let sync = SyncBus::new(&m);
    let async_ = AsyncBus::new(&m);
    let full = AsyncBus::with_mode(&m, OverlapMode::ReadsAndWrites);
    let mut out = String::new();

    let mut t = Table::new(
        "Optimal speedup, processors unbounded (5-point)",
        &[
            "n",
            "shape",
            "sync",
            "async",
            "ratio (paper √2 / 1.5)",
            "full overlap",
            "extra (paper √2 / 1.26)",
        ],
    );
    for &n in if quick { &[256usize, 1024][..] } else { &[256usize, 512, 1024, 2048][..] } {
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = Workload::new(n, &Stencil::five_point(), shape);
            let s = sync.optimal_speedup_unbounded(&w);
            let a = async_.optimal_speedup_unbounded(&w);
            let f = full.optimal_speedup_unbounded(&w);
            t.row(vec![
                n.to_string(),
                shape.name().into(),
                format!("{s:.2}"),
                format!("{a:.2}"),
                format!("{:.4}", a / s),
                format!("{f:.2}"),
                format!("{:.4}", f / a),
            ]);
        }
    }
    let _ = t.write_csv("e11_async_ratios.csv");
    out.push_str(&t.render());

    // Optimal-area relationship.
    let w = Workload::new(1024, &Stencil::five_point(), PartitionShape::Strip);
    let a_sync = sync.optimal_strip_area(&w);
    let a_async = async_.optimal_area(&w);
    out.push_str(&format!(
        "Optimal strip areas at n=1024: sync {a_sync:.0}, async {a_async:.0} — ratio\n\
         {:.4} (paper: exactly √2 ≈ 1.4142).\n\n",
        a_sync / a_async
    ));

    // Simulation cross-check near the async optimum.
    let n = 256usize;
    let wq = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
    let p = ((n * n) as f64 / async_.optimal_area(&wq)).round() as usize;
    let p = p.clamp(2, n);
    let d = StripDecomposition::new(n, p);
    let spec = IterationSpec::new(&d, &Stencil::five_point());
    let sim_sync = SyncBusSim::new(&m).simulate(&spec).cycle_time;
    let sim_async = AsyncBusSim::new(&m).simulate(&spec).cycle_time;
    let mut t2 = Table::new(
        format!("Processor-sharing bus simulation at the async optimum (n=256, P={p})"),
        &["machine", "model t_cycle", "simulated t_cycle"],
    );
    t2.row(vec![
        "synchronous".into(),
        secs(sync.cycle_time(&wq, wq.points() / p as f64)),
        secs(sim_sync),
    ]);
    t2.row(vec![
        "asynchronous".into(),
        secs(async_.cycle_time(&wq, wq.points() / p as f64)),
        secs(sim_async),
    ]);
    let _ = t2.write_csv("e11_async_sim.csv");
    out.push_str(&t2.render());
    out.push_str(
        "The asynchronous machine hides the write phase under computation in\n\
         both the algebra and the event-level simulation; the exponent of\n\
         the speedup law is unchanged (§6.2's closing observation).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shows_constant_factors() {
        let r = super::run(true);
        assert!(r.contains("1.5000"));
        assert!(r.contains("1.4142"));
        assert!(r.contains("1.2599"));
    }
}
