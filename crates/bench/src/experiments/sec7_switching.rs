//! E12 — §7: banyan switching networks.
//!
//! Fixed machine: cycle time increases with partition size, so use all
//! processors (extremal, like the hypercube). Growing machine at one point
//! per processor: speedup `Θ(n²/log n)`. The word-level butterfly
//! simulation certifies the paper's conflict-free assumption for the
//! dedicated-module assignment — and shows what an adversarial assignment
//! costs.

use crate::report::{secs, Table};
use parspeed_arch::{BanyanSim, IterationSpec, ModuleAssignment};
use parspeed_core::table1::fit_scaling_exponent;
use parspeed_core::{ArchModel, Banyan, MachineParams, Workload};
use parspeed_grid::StripDecomposition;
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the switching-network analysis.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let stencil = Stencil::five_point();
    let mut out = String::new();

    // Fixed machine: monotone in A ⇒ all processors.
    let net = Banyan::with_network(&m, 64);
    let w = Workload::new(256, &stencil, PartitionShape::Square);
    let mut t = Table::new(
        "Fixed 64-endpoint network (n = 256, squares): use every processor",
        &["P", "t_cycle", "speedup"],
    );
    for p in [4usize, 16, 64] {
        let area = w.points() / p as f64;
        t.row(vec![
            p.to_string(),
            secs(net.cycle_time(&w, area)),
            format!("{:.1}", net.speedup_at(&w, area)),
        ]);
    }
    out.push_str(&t.render());

    // Growing machine: Θ(n²/log n).
    let growing = Banyan::new(&m);
    let sides: Vec<usize> =
        if quick { vec![256, 1024, 4096] } else { vec![256, 512, 1024, 2048, 4096, 8192] };
    let mut t2 = Table::new(
        "Machine grows with the problem (1 point per processor)",
        &["n", "speedup", "speedup·log₂(n)/n²  (≈ constant)"],
    );
    for &n in &sides {
        let wn = Workload::new(n, &stencil, PartitionShape::Square);
        let s = growing.scaled_speedup(&wn, 1.0);
        t2.row(vec![
            n.to_string(),
            format!("{s:.3e}"),
            format!("{:.4e}", s * (n as f64).log2() / (n * n) as f64),
        ]);
    }
    let _ = t2.write_csv("e12_switching_scaling.csv");
    out.push_str(&t2.render());
    let exp = fit_scaling_exponent(&sides, |n| {
        growing.scaled_speedup(&Workload::new(n, &stencil, PartitionShape::Square), 1.0)
    });
    out.push_str(&format!(
        "Fitted exponent {exp:.4} — just under 1, the log-factor deficit\n\
         against the hypercube's exact 1.\n\n",
    ));

    // Conflict-freedom certification + adversarial contrast.
    let n = 64usize;
    let d = StripDecomposition::new(n, 16);
    let spec = IterationSpec::new(&d, &stencil);
    let good = BanyanSim::new(&m).simulate(&spec);
    let bad = BanyanSim::new(&m).with_assignment(ModuleAssignment::Adversarial).simulate(&spec);
    let mut t3 = Table::new(
        "Word-level butterfly simulation (n = 64, 16 strips)",
        &["module assignment", "cycle time", "total switch waiting"],
    );
    t3.row(vec![
        "dedicated (paper's assumption)".into(),
        secs(good.cycle.cycle_time),
        secs(good.contention_wait),
    ]);
    t3.row(vec![
        "adversarial (all → module 0)".into(),
        secs(bad.cycle.cycle_time),
        secs(bad.contention_wait),
    ]);
    let _ = t3.write_csv("e12_switching_contention.csv");
    out.push_str(&t3.render());
    out.push_str(
        "Zero waiting under the dedicated assignment certifies assumption\n\
         (1)–(4) of §7; the adversarial row shows the contention those\n\
         assumptions avoid.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn certifies_conflict_freedom() {
        let r = super::run(true);
        assert!(r.contains("dedicated"));
        assert!(r.contains("adversarial"));
        assert!(r.contains("Fitted exponent"));
    }
}
