//! One module per reproduced artifact. See `DESIGN.md` §5 for the index.

pub mod ablations;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod sec4_convergence;
pub mod sec4_embedding;
pub mod sec4_hypercube;
pub mod sec5_fem;
pub mod sec61_leverage;
pub mod sec61_worked;
pub mod sec62_async;
pub mod sec7_switching;
pub mod sec8_scheduling;
pub mod table1;
pub mod table_k;
pub mod validate_desim;
pub mod validate_threads;

/// Runs every experiment and concatenates the reports (the `run_all`
/// binary). `quick` trims sweep sizes for CI.
pub fn run_all(quick: bool) -> String {
    let parts: Vec<(&str, String)> = vec![
        ("E1  k(P,S) table", table_k::run(quick)),
        ("E2  Fig 6 working rectangles", fig6::run(quick)),
        ("E3  Fig 7 minimal problem size", fig7::run(quick)),
        ("E4  Fig 8 optimal speedup", fig8::run(quick)),
        ("E5  Table I", table1::run(quick)),
        ("E6  §4 hypercube", sec4_hypercube::run(quick)),
        ("E7  §4 convergence checking", sec4_convergence::run(quick)),
        ("E8  §5 FEM counter-example", sec5_fem::run(quick)),
        ("E9  §6.1 worked example", sec61_worked::run(quick)),
        ("E10 §6.1 leverage", sec61_leverage::run(quick)),
        ("E11 §6.2 asynchronous bus", sec62_async::run(quick)),
        ("E12 §7 switching network", sec7_switching::run(quick)),
        ("E13 model vs discrete-event simulation", validate_desim::run(quick)),
        ("E14 model vs real threads", validate_threads::run(quick)),
        ("E15 §8 scheduled bus access", sec8_scheduling::run(quick)),
        ("E16 §4 Gray-code embeddings", sec4_embedding::run(quick)),
        ("E17 ablations (tolerance, contours, combine hardware)", ablations::run(quick)),
    ];
    let mut out = String::new();
    for (name, body) in parts {
        out.push_str(&format!("\n═══ {name} ═══\n\n{body}\n"));
    }
    out
}
