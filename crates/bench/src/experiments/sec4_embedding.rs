//! E16 — §4's mapping assumption: Gray-code embeddings on the hypercube.
//!
//! The hypercube analysis assumes logically adjacent partitions sit on
//! physically adjacent nodes "(at least with stencils having no
//! diagonals)". This experiment constructs that mapping, measures its
//! dilation, prices the alternatives (binary counting order, random
//! placement), and confirms the parenthetical: diagonal stencils dilate to
//! exactly 2.

use crate::report::{secs, Table};
use parspeed_arch::{HypercubeEmbedding, IterationSpec, NeighborExchangeSim};
use parspeed_core::MachineParams;
use parspeed_grid::{RectDecomposition, StripDecomposition};
use parspeed_stencil::Stencil;

/// Regenerates the embedding analysis.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let sim = NeighborExchangeSim::hypercube(&m);
    let mut out = String::new();

    // Strip chains: dilation and simulated cycle per embedding.
    let n = 256usize;
    let mut t = Table::new(
        format!("Strip chain on the cube, n={n} (5-point)"),
        &["P", "embedding", "dilation", "mean hops", "cycle time"],
    );
    let ps: &[usize] = if quick { &[8, 12] } else { &[4, 8, 12, 16, 32, 64] };
    for &p in ps {
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let embeddings: Vec<(&str, HypercubeEmbedding)> = vec![
            ("gray", HypercubeEmbedding::strip_chain(p)),
            ("binary order", HypercubeEmbedding::identity(p)),
            ("random", HypercubeEmbedding::random(p, 0x5EED)),
        ];
        for (name, emb) in &embeddings {
            let r = sim.simulate_embedded(&spec, emb);
            t.row(vec![
                p.to_string(),
                (*name).into(),
                emb.dilation(&spec).to_string(),
                format!("{:.2}", emb.mean_hops(&spec)),
                secs(r.cycle_time),
            ]);
        }
    }
    let _ = t.write_csv("e16_embedding_strips.csv");
    out.push_str(&t.render());
    out.push_str(
        "The Gray chain is dilation-1 for every P (power of two or not);\n\
         binary counting order ripple-carries, random placement dilates to\n\
         about half the cube dimension, and both cost real cycle time.\n\n",
    );

    // The parenthetical: diagonal stencils on a Gray×Gray grid.
    let mut t2 = Table::new(
        "Grid of rectangles, Gray×Gray embedding (n=240)",
        &["blocks", "stencil", "dilation", "mean hops"],
    );
    for (pr, pc) in [(4usize, 4usize), (4, 6), (8, 8)] {
        if 240 % pc != 0 {
            continue;
        }
        let d = RectDecomposition::new(240, pr, pc);
        let emb = HypercubeEmbedding::grid(pr, pc);
        for stencil in [Stencil::five_point(), Stencil::nine_point_box()] {
            let spec = IterationSpec::new(&d, &stencil);
            t2.row(vec![
                format!("{pr}×{pc}"),
                stencil.name().into(),
                emb.dilation(&spec).to_string(),
                format!("{:.2}", emb.mean_hops(&spec)),
            ]);
        }
    }
    let _ = t2.write_csv("e16_embedding_diagonals.csv");
    out.push_str(&t2.render());
    out.push_str(
        "Axis-only stencils embed at dilation 1; box stencils' corner\n\
         exchanges cross a row bit and a column bit — dilation exactly 2,\n\
         the caveat the paper tucks into a parenthesis.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn embedding_report_shows_the_caveat() {
        let r = super::run(true);
        assert!(r.contains("gray"));
        assert!(r.contains("9-point box"));
        // A dilation-2 row must exist for the box stencil.
        assert!(r.lines().any(|l| l.contains("9-point box") && l.contains("  2  ")), "{r}");
    }
}
