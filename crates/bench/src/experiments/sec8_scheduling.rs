//! E15 — §8 future work: scheduled bus access.
//!
//! The paper closes with "one possible means for reducing contention is to
//! use clever scheduling to access communication resources. We have not
//! yet explored this possibility." This experiment explores it:
//! batch-granularity slot staggering on a synchronous bus is compared
//! against the unscheduled (processor-sharing) bus, the word-granularity
//! round-robin negative control, and the §6.2 asynchronous-bus machine —
//! in the algebra and at event level. Headline: staggering recovers the
//! asynchronous bus's full constant factor (×√2 strips, ×1.5 squares) on
//! synchronous hardware, and no schedule moves the speedup *exponent*.

use crate::report::{secs, Table};
use parspeed_arch::{AsyncBusSim, IterationSpec, ScheduledBusSim, SlotOrder, SyncBusSim};
use parspeed_core::{ArchModel, AsyncBus, MachineParams, ScheduledBus, SyncBus, Workload};
use parspeed_grid::{RectDecomposition, StripDecomposition};
use parspeed_stencil::{PartitionShape, Stencil};

/// Regenerates the §8 scheduling analysis.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let sync = SyncBus::new(&m);
    let sched = ScheduledBus::new(&m);
    let async_ = AsyncBus::new(&m);
    let mut out = String::new();

    // Optimal cycle times: scheduled-sync vs sync vs async hardware.
    let mut t = Table::new(
        "Optimal cycle time, processors unbounded (5-point, c = 0)",
        &[
            "n",
            "shape",
            "sync bus",
            "scheduled bus",
            "async bus",
            "sched/async",
            "sync/sched (√2 | 1.5)",
        ],
    );
    for &n in if quick { &[512usize, 2048][..] } else { &[256usize, 512, 1024, 2048, 4096][..] } {
        for shape in [PartitionShape::Strip, PartitionShape::Square] {
            let w = Workload::new(n, &Stencil::five_point(), shape);
            let t_sync = sync.optimal_cycle_unbounded(&w);
            let a = sched.closed_form_optimal_area(&w).expect("scheduled bus has an optimum");
            let t_sched = sched.cycle_time(&w, a);
            let t_async = async_.cycle_time(&w, async_.optimal_area(&w));
            t.row(vec![
                n.to_string(),
                shape.name().into(),
                secs(t_sync),
                secs(t_sched),
                secs(t_async),
                format!("{:.4}", t_sched / t_async),
                format!("{:.4}", t_sync / t_sched),
            ]);
        }
    }
    let _ = t.write_csv("e15_scheduling_optima.csv");
    out.push_str(&t.render());
    out.push_str(
        "Staggered slots reproduce the asynchronous machine's optimum on\n\
         synchronous hardware: the ratio to async → 1, the gain over the\n\
         unscheduled bus → √2 (strips) and 1.5 (squares) as n grows.\n\n",
    );

    // Event-level comparison across schedules at a sweep of allocations.
    let n = 256usize;
    let mut t2 = Table::new(
        format!("Event-level cycle times, n={n} strips (5-point)"),
        &[
            "P",
            "PS (unscheduled)",
            "word round-robin",
            "staggered",
            "largest-first",
            "async hardware",
        ],
    );
    let ps = if quick { vec![8usize, 32, 128] } else { vec![4usize, 8, 16, 32, 64, 128, 256] };
    for &p in &ps {
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let t_ps = SyncBusSim::new(&m).simulate(&spec).cycle_time;
        let t_rr = parspeed_arch::word_round_robin(&m, &spec).cycle_time;
        let t_st = ScheduledBusSim::new(&m).simulate(&spec).cycle_time;
        let t_lf =
            ScheduledBusSim::with_order(&m, SlotOrder::LargestFirst).simulate(&spec).cycle_time;
        let t_as = AsyncBusSim::new(&m).simulate(&spec).cycle_time;
        t2.row(vec![p.to_string(), secs(t_ps), secs(t_rr), secs(t_st), secs(t_lf), secs(t_as)]);
    }
    let _ = t2.write_csv("e15_scheduling_sim.csv");
    out.push_str(&t2.render());
    out.push_str(
        "Word-granularity round-robin equals the unscheduled bus exactly\n\
         (fair slicing IS processor sharing); batch staggering tracks the\n\
         posted-write machine across the whole allocation sweep.\n\n",
    );

    // Squares, near each machine's optimum.
    let wq = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
    let s_star = (sched.closed_form_optimal_area(&wq).unwrap()).sqrt();
    let q = (n as f64 / s_star).round().clamp(2.0, 16.0) as usize;
    if let Some(d) = RectDecomposition::near_square(n, q * q) {
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let mut t3 = Table::new(
            format!("Near the square optimum (n={n}, {}×{} blocks)", q, q),
            &["machine", "model t_cycle", "simulated t_cycle"],
        );
        let area = wq.points() / (q * q) as f64;
        t3.row(vec![
            "sync (PS)".into(),
            secs(sync.cycle_time(&wq, area)),
            secs(SyncBusSim::new(&m).simulate(&spec).cycle_time),
        ]);
        t3.row(vec![
            "scheduled".into(),
            secs(sched.cycle_time(&wq, area)),
            secs(ScheduledBusSim::new(&m).simulate(&spec).cycle_time),
        ]);
        t3.row(vec![
            "async".into(),
            secs(async_.cycle_time(&wq, area)),
            secs(AsyncBusSim::new(&m).simulate(&spec).cycle_time),
        ]);
        let _ = t3.write_csv("e15_scheduling_squares.csv");
        out.push_str(&t3.render());
    }

    // Exponent check: scheduling moves constants, never the exponent.
    let mut t4 = Table::new(
        "Optimal speedup growth under staggering (ratio per 4× in n²)",
        &["shape", "ratio", "paper exponent"],
    );
    for shape in [PartitionShape::Strip, PartitionShape::Square] {
        let w1 = Workload::new(2048, &Stencil::five_point(), shape);
        let w2 = Workload::new(4096, &Stencil::five_point(), shape);
        let s1 = sched.speedup_at(&w1, sched.closed_form_optimal_area(&w1).unwrap());
        let s2 = sched.speedup_at(&w2, sched.closed_form_optimal_area(&w2).unwrap());
        let expect = match shape {
            PartitionShape::Strip => "√2 ≈ 1.414 ⇒ Θ((n²)^¼)",
            PartitionShape::Square => "∛4 ≈ 1.587 ⇒ Θ((n²)^⅓)",
        };
        t4.row(vec![shape.name().into(), format!("{:.4}", s2 / s1), expect.into()]);
    }
    let _ = t4.write_csv("e15_scheduling_exponents.csv");
    out.push_str(&t4.render());
    out.push_str(
        "Contention is conserved: scheduling removes idle waiting, not bus\n\
         work, so the (n²)^¼ / (n²)^⅓ ceilings of Table I stand.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_factors_appear() {
        let r = super::run(true);
        // Strips approach √2, squares approach 1.5 over the unscheduled bus.
        assert!(r.contains("1.41") || r.contains("1.40"), "{r}");
        assert!(r.contains("1.4142") || r.contains("1.49") || r.contains("1.50"), "{r}");
        // The negative control and the exponent table render.
        assert!(r.contains("word round-robin"));
        assert!(r.contains("Θ((n²)^¼)"));
    }
}
