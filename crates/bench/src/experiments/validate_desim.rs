//! E13 — model vs discrete-event simulation across every architecture.

use crate::report::{pct, secs, Table};
use parspeed_arch::validate::validate_all;
use parspeed_core::MachineParams;
use parspeed_stencil::Stencil;

/// Regenerates the validation table.
pub fn run(quick: bool) -> String {
    let m = MachineParams::paper_defaults();
    let (n, procs): (usize, &[usize]) = if quick { (64, &[4, 16]) } else { (128, &[4, 16, 64]) };
    let rows = validate_all(&m, n, &Stencil::five_point(), procs);

    let mut t = Table::new(
        format!("Closed form vs event simulation (n = {n}, 5-point)"),
        &["architecture", "shape", "P", "model", "simulated", "rel. dev.", "bound"],
    );
    let mut worst: f64 = 0.0;
    for r in &rows {
        worst = worst.max(r.rel_err() / r.tolerance());
        t.row(vec![
            r.arch.into(),
            r.shape.name().into(),
            r.p.to_string(),
            secs(r.model),
            secs(r.sim),
            pct(r.rel_err()),
            pct(r.tolerance()),
        ]);
    }
    let _ = t.write_csv("e13_validate_desim.csv");
    let mut out = t.render();
    out.push_str(&format!(
        "\nEvery deviation sits inside its bound (worst at {:.0}% of bound).\n\
         The residual gap is the paper's own idealization: closed forms charge\n\
         every partition interior-volume traffic, while domain-edge partitions\n\
         move less — a deficit that decays as 1/P (strips) or 1/√P (squares).\n",
        100.0 * worst
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_within_bounds() {
        let r = super::run(true);
        assert!(r.contains("hypercube"));
        assert!(r.contains("switching network"));
        assert!(!r.contains("NaN"));
    }
}
