//! Plain-text reporting: aligned tables, ASCII charts, CSV output.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// An aligned plain-text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ──", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("  ");
            for i in 0..cols {
                let _ = write!(s, "{:<w$}", cells[i], w = widths[i] + 2);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV next to the experiment outputs.
    pub fn write_csv(&self, filename: &str) -> std::io::Result<PathBuf> {
        let path = out_dir().join(filename);
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ =
            writeln!(s, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot marker.
    pub marker: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series on a shared-axis ASCII scatter chart.
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().cloned()).collect();
    if all.is_empty() {
        return format!("── {title} ── (no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-300 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-300 {
        y1 = y0 + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = s.marker;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "── {title} ──");
    let _ = writeln!(out, "  y ∈ [{y0:.3}, {y1:.3}]");
    for row in &canvas {
        let _ = writeln!(out, "  |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "  +{}", "-".repeat(width));
    let _ = writeln!(out, "  x ∈ [{x0:.3}, {x1:.3}]");
    for s in series {
        let _ = writeln!(out, "   {} {}", s.marker, s.label);
    }
    out
}

/// The experiment output directory (`target/experiments`), created on
/// first use.
pub fn out_dir() -> PathBuf {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&base).expect("cannot create target/experiments");
    base
}

/// Compact scientific formatting for seconds.
pub fn secs(t: f64) -> String {
    if t == 0.0 {
        "0".into()
    } else if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else if t >= 1e-6 {
        format!("{:.3} µs", t * 1e6)
    } else {
        format!("{:.1} ns", t * 1e9)
    }
}

/// Two-significant-digit percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "beta"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("beta"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn chart_places_extremes() {
        let s = Series {
            label: "linear".into(),
            marker: '*',
            points: (0..10).map(|i| (i as f64, i as f64)).collect(),
        };
        let c = ascii_chart("line", &[s], 20, 8);
        assert!(c.contains('*'));
        assert!(c.contains("linear"));
        assert!(c.contains("x ∈ [0.000, 9.000]"));
    }

    #[test]
    fn chart_handles_empty_and_flat() {
        assert!(ascii_chart("none", &[], 20, 5).contains("no data"));
        let flat =
            Series { label: "flat".into(), marker: 'o', points: vec![(1.0, 2.0), (2.0, 2.0)] };
        let c = ascii_chart("flat", &[flat], 20, 5);
        assert!(c.contains('o'));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("csv", &["x", "label"]);
        t.row(vec!["1".into(), "plain".into()]);
        t.row(vec!["2".into(), "with,comma".into()]);
        let p = t.write_csv("report_test.csv").unwrap();
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.starts_with("x,label\n"));
        assert!(s.contains("\"with,comma\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(0.0), "0");
        assert_eq!(secs(2.0), "2.000 s");
        assert_eq!(secs(2.5e-3), "2.500 ms");
        assert_eq!(secs(3.0e-6), "3.000 µs");
        assert_eq!(secs(5.0e-9), "5.0 ns");
        assert_eq!(pct(0.1234), "12.34%");
    }
}
