//! Property tests: the communication-avoiding loop — fused
//! blend/diff kernels, block-of-k temporal tiling, and policy-scheduled
//! checks — is bit-identical to the plain one-sweep-per-iteration loop,
//! for all four catalogue stencils, across degenerate sizes
//! (`n ≤ reach·k`, so the trapezoid never opens) and the offset
//! sub-regions the partitioned executor sweeps.

use parspeed_grid::{Grid2D, Region};
use parspeed_solver::apply::{
    jacobi_sweep, jacobi_sweep_blend_region, jacobi_sweep_region_generic,
};
use parspeed_solver::{CheckPolicy, JacobiSolver, Manufactured, PoissonProblem};
use parspeed_stencil::Stencil;
use proptest::prelude::*;

/// The historical loop: whole-grid sweep, separate blend pass, swap;
/// returns the final iterate and the max-norm diff of the last iteration.
fn reference_iterates(p: &PoissonProblem, s: &Stencil, omega: f64, iters: usize) -> (Grid2D, f64) {
    let halo = s.reach();
    let h2 = p.h() * p.h();
    let mut u = p.initial_grid(halo);
    let mut next = p.initial_grid(halo);
    let f = p.forcing();
    let mut diff = f64::INFINITY;
    for it in 0..iters {
        jacobi_sweep(s, &u, &mut next, f, h2);
        if omega != 1.0 {
            for r in 0..u.rows() {
                let urow = u.interior_row(r).to_vec();
                for (nv, &uv) in next.interior_row_mut(r).iter_mut().zip(&urow) {
                    *nv = omega * *nv + (1.0 - omega) * uv;
                }
            }
        }
        if it + 1 == iters {
            diff = u.max_abs_diff(&next);
        }
        u.swap(&mut next);
    }
    (u, diff)
}

fn assert_bitwise(a: &Grid2D, b: &Grid2D, label: &str) -> Result<(), TestCaseError> {
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if a.get(r, c).to_bits() != b.get(r, c).to_bits() {
                return Err(TestCaseError::fail(format!(
                    "{label}: mismatch at ({r},{c}): {} vs {}",
                    a.get(r, c),
                    b.get(r, c)
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    /// Temporal-tiled block-of-k solves reproduce the plain loop bitwise
    /// — every catalogue stencil, every check policy shape, damped and
    /// undamped, from n = 1 (degenerate: n ≤ reach·k for every block the
    /// solver picks) upward.
    #[test]
    fn block_of_k_solve_matches_plain_loop(
        n in 1usize..20,
        stencil_idx in 0usize..4,
        damped in 0usize..2,
        max_iters in 1usize..40,
        policy_idx in 0usize..4,
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        let omega = if damped == 1 { 0.8 } else { 1.0 };
        let check = [
            CheckPolicy::Every(1),
            CheckPolicy::Every(5),
            CheckPolicy::Every(40), // larger than max_iters: only the forced final check
            CheckPolicy::geometric(),
        ][policy_idx];
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let solver = JacobiSolver { tol: 0.0, max_iters, check, omega, ..Default::default() };
        let (u, status) = solver.solve(&p, s);
        prop_assert_eq!(status.iterations, max_iters);
        let (reference, ref_diff) = reference_iterates(&p, s, omega, max_iters);
        assert_bitwise(&u, &reference, &format!("{} {check:?} ω={omega}", s.name()))?;
        // The final forced check sees exactly the reference's last diff.
        prop_assert_eq!(status.final_diff.to_bits(), ref_diff.to_bits());
    }

    /// The parallel (rayon) path under the same policies is bitwise
    /// identical too (no temporal tiling, but the fused blend/diff pass).
    #[test]
    fn parallel_policy_solve_matches_plain_loop(
        n in 1usize..14,
        stencil_idx in 0usize..4,
        max_iters in 1usize..20,
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let solver = JacobiSolver {
            tol: 0.0,
            max_iters,
            check: CheckPolicy::geometric(),
            omega: 0.8,
            parallel: true,
        };
        let (u, status) = solver.solve(&p, s);
        prop_assert_eq!(status.iterations, max_iters);
        let (reference, _) = reference_iterates(&p, s, 0.8, max_iters);
        assert_bitwise(&u, &reference, s.name())?;
    }

    /// The fused blend/diff region kernel matches the generic sweep plus
    /// manual blend and diff on partitioned-style offset sub-regions.
    #[test]
    fn blend_region_with_offset_matches_generic(
        n in 4usize..16,
        stencil_idx in 0usize..4,
        damped in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        let omega = if damped == 1 { 0.75 } else { 1.0 };
        let halo = s.reach();
        // A strip-like region of global rows r0..r1, full width.
        let r0 = seed as usize % (n / 2);
        let r1 = r0 + 1 + (seed as usize / 7) % (n - r0 - 1).max(1);
        let region = Region::new(r0, r1.min(n), 0, n);
        let offset = (region.r0, region.c0);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next_val = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        let mut src = Grid2D::from_fn(region.rows(), region.cols(), halo, |_, _| next_val());
        let h = halo as isize;
        for r in -h..(region.rows() as isize + h) {
            for c in -h..(region.cols() as isize + h) {
                let interior =
                    r >= 0 && r < region.rows() as isize && c >= 0 && c < region.cols() as isize;
                if !interior {
                    src.set_h(r, c, next_val());
                }
            }
        }
        let f = Grid2D::from_fn(n, n, 0, |r, c| ((r * 3 + c) % 5) as f64 * 0.21);
        let mut fused = Grid2D::new(region.rows(), region.cols(), halo);
        let d = jacobi_sweep_blend_region(
            s, &src, &mut fused, &f, 0.01, &region, offset, omega, true,
        );
        let mut generic = Grid2D::new(region.rows(), region.cols(), halo);
        jacobi_sweep_region_generic(s, &src, &mut generic, &f, 0.01, &region, offset);
        let mut worst = 0.0f64;
        for r in 0..region.rows() {
            for c in 0..region.cols() {
                let old = src.get(r, c);
                let mut v = generic.get(r, c);
                if omega != 1.0 {
                    v = omega * v + (1.0 - omega) * old;
                    generic.set(r, c, v);
                }
                worst = worst.max((old - v).abs());
            }
        }
        assert_bitwise(&fused, &generic, s.name())?;
        prop_assert_eq!(d.to_bits(), worst.to_bits(), "{} diff mismatch", s.name());
    }
}
