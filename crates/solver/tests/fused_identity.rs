//! Property tests: the fused sweep kernels are bit-identical to the
//! generic tap-driven sweep for every catalogue stencil — across grid
//! sizes including degenerate interiors (n = 1, 2, 3) and the offset
//! sub-regions the partitioned executor (`parspeed-exec`) sweeps.

use parspeed_grid::{Grid2D, Region};
use parspeed_solver::apply::{
    jacobi_sweep, jacobi_sweep_par, jacobi_sweep_region, jacobi_sweep_region_generic, sor_sweep,
};
use parspeed_stencil::Stencil;
use proptest::prelude::*;

/// Deterministic pseudo-random grid from a seed (SplitMix64-style mix).
fn seeded_grid(rows: usize, cols: usize, halo: usize, seed: u64) -> Grid2D {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    };
    let mut g = Grid2D::from_fn(rows, cols, halo, |_, _| next());
    // Fill every halo cell with varied values too (boundary data matters).
    let h = halo as isize;
    for r in -h..(rows as isize + h) {
        for c in -h..(cols as isize + h) {
            let interior = r >= 0 && r < rows as isize && c >= 0 && c < cols as isize;
            if !interior {
                g.set_h(r, c, next());
            }
        }
    }
    g
}

fn assert_bitwise(a: &Grid2D, b: &Grid2D, label: &str) -> Result<(), TestCaseError> {
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if a.get(r, c).to_bits() != b.get(r, c).to_bits() {
                return Err(TestCaseError::fail(format!(
                    "{label}: mismatch at ({r},{c}): {} vs {}",
                    a.get(r, c),
                    b.get(r, c)
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    /// Full-interior sweeps: fused (sequential and rayon row-parallel)
    /// match generic bitwise, for all four stencils, down to n = 1.
    #[test]
    fn full_sweep_fused_matches_generic(
        n in 1usize..24,
        stencil_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        prop_assert!(s.kernel_kind().is_some(), "catalogue stencil must fuse");
        let halo = s.reach();
        let src = seeded_grid(n, n, halo, seed);
        let f = seeded_grid(n, n, 0, seed ^ 0xf0f0);
        let h2 = 0.003;
        let region = Region::new(0, n, 0, n);
        let mut generic = Grid2D::new(n, n, halo);
        jacobi_sweep_region_generic(s, &src, &mut generic, &f, h2, &region, (0, 0));
        let mut fused = Grid2D::new(n, n, halo);
        jacobi_sweep(s, &src, &mut fused, &f, h2);
        assert_bitwise(&fused, &generic, s.name())?;
        let mut par = Grid2D::new(n, n, halo);
        jacobi_sweep_par(s, &src, &mut par, &f, h2);
        assert_bitwise(&par, &generic, s.name())?;
    }

    /// Offset sub-region sweeps, as issued by the partitioned executor:
    /// a local grid covering global rows/cols `[r0, r1) × [c0, c1)` with
    /// `offset = (r0, c0)` and global forcing.
    #[test]
    fn offset_region_fused_matches_generic(
        n in 4usize..20,
        r0 in 0usize..6,
        c0 in 0usize..6,
        stencil_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        let halo = s.reach();
        let r0 = r0.min(n - 1);
        let c0 = c0.min(n - 1);
        let region = Region::new(r0, n, c0, n);
        let local_src = seeded_grid(region.rows(), region.cols(), halo, seed);
        let f = seeded_grid(n, n, 0, seed ^ 0xabcd);
        let h2 = 0.01;
        let offset = (r0, c0);
        let mut fused = Grid2D::new(region.rows(), region.cols(), halo);
        jacobi_sweep_region(s, &local_src, &mut fused, &f, h2, &region, offset);
        let mut generic = Grid2D::new(region.rows(), region.cols(), halo);
        jacobi_sweep_region_generic(s, &local_src, &mut generic, &f, h2, &region, offset);
        assert_bitwise(&fused, &generic, s.name())?;
    }

    /// In-place relaxation sweeps: the fused SOR rows yield the same
    /// iterate bitwise as the tap-driven in-place recurrence.
    #[test]
    fn sor_sweep_fused_matches_tap_driven(
        n in 1usize..16,
        stencil_idx in 0usize..4,
        seed in 0u64..1_000_000,
        omega_pct in 20u64..130,
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        let halo = s.reach();
        let omega = omega_pct as f64 / 100.0;
        let h2 = 0.004;
        let rs_h2 = s.rhs_scale() * h2;
        let inv = 1.0 / s.divisor();
        let mut u = seeded_grid(n, n, halo, seed);
        let mut u_ref = u.clone();
        let f = seeded_grid(n, n, 0, seed ^ 0x1234);
        let diff = sor_sweep(s, &mut u, &f, h2, omega);
        // Tap-driven reference recurrence, identical order.
        let mut worst = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                let (ri, ci) = (r as isize, c as isize);
                let mut acc = 0.0;
                for t in s.taps() {
                    acc += t.coeff
                        * u_ref.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
                }
                let jacobi = (acc + rs_h2 * f.get(r, c)) * inv;
                let old = u_ref.get(r, c);
                let new = old + omega * (jacobi - old);
                worst = worst.max((new - old).abs());
                u_ref.set(r, c, new);
            }
        }
        assert_bitwise(&u, &u_ref, s.name())?;
        prop_assert_eq!(diff.to_bits(), worst.to_bits(), "{} sweep diff", s.name());
    }
}

/// The degenerate interiors the issue calls out explicitly, for every
/// stencil: a 1×1, 2×2, and 3×3 interior still dispatches (or falls back)
/// without touching out-of-range halo and matches generic bitwise.
#[test]
fn degenerate_interiors_match_generic() {
    for s in Stencil::catalog() {
        let halo = s.reach();
        for n in 1usize..=3 {
            for seed in 0..8u64 {
                let src = seeded_grid(n, n, halo, seed * 77 + n as u64);
                let f = seeded_grid(n, n, 0, seed * 131 + 5);
                let region = Region::new(0, n, 0, n);
                let mut generic = Grid2D::new(n, n, halo);
                jacobi_sweep_region_generic(&s, &src, &mut generic, &f, 0.02, &region, (0, 0));
                let mut fused = Grid2D::new(n, n, halo);
                jacobi_sweep(&s, &src, &mut fused, &f, 0.02);
                assert_eq!(
                    fused.max_abs_diff(&generic),
                    0.0,
                    "{} differs at degenerate n={n}",
                    s.name()
                );
            }
        }
    }
}
