//! Norms and reductions, sequential and rayon-parallel.
//!
//! The sequential forms are the references (deterministic summation
//! order); the parallel forms are what a production solver would use for
//! convergence checks. Parallel L2 sums may differ from sequential by
//! floating-point reassociation, so equality tests use the max-norm (exact
//! under any association) and tolerance elsewhere.

use parspeed_grid::Grid2D;
use rayon::prelude::*;

/// Sequential max-norm of interior values.
pub fn linf(g: &Grid2D) -> f64 {
    g.interior_fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Sequential L2 norm of interior values.
pub fn l2(g: &Grid2D) -> f64 {
    g.interior_fold(0.0, |acc, v| acc + v * v).sqrt()
}

/// Sequential max-norm of the interior difference of two grids.
pub fn linf_diff(a: &Grid2D, b: &Grid2D) -> f64 {
    a.max_abs_diff(b)
}

fn interior_rows(g: &Grid2D) -> impl IndexedParallelIterator<Item = &[f64]> {
    let halo = g.halo();
    let stride = g.stride();
    let cols = g.cols();
    g.as_slice()
        .par_chunks(stride)
        .skip(halo)
        .take(g.rows())
        .map(move |row| &row[halo..halo + cols])
}

/// Rayon max-norm (bitwise equal to [`linf`]: max is associative).
pub fn linf_par(g: &Grid2D) -> f64 {
    interior_rows(g)
        .map(|row| row.iter().fold(0.0f64, |a, v| a.max(v.abs())))
        .reduce(|| 0.0, f64::max)
}

/// Rayon L2 norm (row sums sequential, row-combine parallel).
pub fn l2_par(g: &Grid2D) -> f64 {
    interior_rows(g).map(|row| row.iter().map(|v| v * v).sum::<f64>()).sum::<f64>().sqrt()
}

/// Rayon max-norm of the interior difference of two same-shape grids.
pub fn linf_diff_par(a: &Grid2D, b: &Grid2D) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    interior_rows(a)
        .zip(interior_rows(b))
        .map(|(ra, rb)| ra.iter().zip(rb).fold(0.0f64, |acc, (x, y)| acc.max((x - y).abs())))
        .reduce(|| 0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, halo: usize) -> Grid2D {
        let mut g = Grid2D::from_fn(n, n, halo, |r, c| ((r * 37 + c * 11) % 13) as f64 - 6.0);
        g.fill_halo(1.0e9); // halo junk must never leak into norms
        g
    }

    #[test]
    fn parallel_linf_is_bitwise_sequential() {
        for halo in [0usize, 1, 2] {
            let g = grid(33, halo);
            assert_eq!(linf(&g), linf_par(&g), "halo={halo}");
        }
    }

    #[test]
    fn parallel_l2_matches_to_roundoff() {
        let g = grid(64, 1);
        let (s, p) = (l2(&g), l2_par(&g));
        assert!((s - p).abs() / s < 1e-12, "{s} vs {p}");
    }

    #[test]
    fn diff_norms_agree() {
        let a = grid(21, 1);
        let mut b = grid(21, 1);
        b.set(10, 10, b.get(10, 10) + 0.5);
        assert_eq!(linf_diff(&a, &b), 0.5);
        assert_eq!(linf_diff_par(&a, &b), 0.5);
    }

    #[test]
    fn halo_junk_is_excluded() {
        let g = grid(8, 2);
        assert!(linf(&g) < 10.0);
        assert!(linf_par(&g) < 10.0);
        assert!(l2_par(&g) < 100.0);
    }

    #[test]
    fn zero_grid_norms() {
        let g = Grid2D::new(5, 5, 1);
        assert_eq!(linf_par(&g), 0.0);
        assert_eq!(l2_par(&g), 0.0);
    }
}
