//! Gauss-Seidel and successive over-relaxation (lexicographic ordering).

use crate::apply::sor_sweep;
use crate::{CheckPolicy, PoissonProblem, SolveStatus};
use parspeed_grid::Grid2D;
use parspeed_stencil::Stencil;

/// SOR solver (`omega = 1` is Gauss-Seidel) with scheduled convergence
/// checks. Sequential by construction — the lexicographic ordering the
/// paper contrasts with the parallelizable Jacobi and red-black sweeps.
/// Each sweep runs through [`sor_sweep`], which dispatches the catalogue
/// stencils to fused row-slice kernels (bit-identical to the tap-driven
/// loop) and folds the max-norm update difference into the relaxation
/// itself — there is no separate diff pass to schedule away; the
/// [`CheckPolicy`] governs only how often the fold is *consulted*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SorSolver {
    /// Convergence tolerance on the max-norm update difference.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Relaxation factor in `(0, 2)`.
    pub omega: f64,
    /// When to check convergence.
    pub check: CheckPolicy,
}

impl SorSolver {
    /// Gauss-Seidel (`ω = 1`).
    pub fn gauss_seidel(tol: f64) -> Self {
        Self { tol, max_iters: 200_000, omega: 1.0, check: CheckPolicy::Every(1) }
    }

    /// SOR with the asymptotically optimal factor for the 5-point Laplacian
    /// on an `n×n` grid: `ω* = 2 / (1 + sin(π·h))`, `h = 1/(n+1)`.
    pub fn optimal(n: usize, tol: f64) -> Self {
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        Self { tol, max_iters: 200_000, omega: 2.0 / (1.0 + h.sin()), check: CheckPolicy::Every(1) }
    }

    /// Solves `problem` with `stencil` by in-place relaxation sweeps.
    pub fn solve(&self, problem: &PoissonProblem, stencil: &Stencil) -> (Grid2D, SolveStatus) {
        assert!(self.omega > 0.0 && self.omega < 2.0, "SOR needs 0 < ω < 2");
        let halo = stencil.reach();
        let h2 = problem.h() * problem.h();
        let mut u = problem.initial_grid(halo);
        let f = problem.forcing();

        let mut iterations = 0;
        let mut diff = f64::INFINITY;
        let mut next_check = self.check.first_check();
        while iterations < self.max_iters {
            let sweep_diff = sor_sweep(stencil, &mut u, f, h2, self.omega);
            iterations += 1;
            if iterations >= next_check.min(self.max_iters) {
                diff = sweep_diff;
                if diff < self.tol {
                    return (u, SolveStatus { converged: true, iterations, final_diff: diff });
                }
                while next_check <= iterations {
                    next_check = self.check.next_check(next_check);
                }
            }
        }
        (u, SolveStatus { converged: false, iterations, final_diff: diff })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JacobiSolver, Manufactured};

    #[test]
    fn gauss_seidel_converges_about_twice_as_fast_as_jacobi() {
        let n = 16;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (_, gs) = SorSolver::gauss_seidel(1e-8).solve(&p, &Stencil::five_point());
        let (_, jac) = JacobiSolver::with_tol(1e-8).solve(&p, &Stencil::five_point());
        assert!(gs.converged && jac.converged);
        let ratio = jac.iterations as f64 / gs.iterations as f64;
        assert!(ratio > 1.6 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn optimal_sor_is_dramatically_faster() {
        let n = 24;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (_, sor) = SorSolver::optimal(n, 1e-8).solve(&p, &Stencil::five_point());
        let (_, gs) = SorSolver::gauss_seidel(1e-8).solve(&p, &Stencil::five_point());
        assert!(sor.converged && gs.converged);
        assert!(
            sor.iterations * 4 < gs.iterations,
            "SOR {} vs GS {}",
            sor.iterations,
            gs.iterations
        );
    }

    #[test]
    fn sor_reaches_the_same_solution_as_jacobi() {
        let n = 12;
        let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
        let (u_sor, _) = SorSolver::optimal(n, 1e-11).solve(&p, &Stencil::five_point());
        let (u_jac, _) = JacobiSolver::with_tol(1e-11).solve(&p, &Stencil::five_point());
        assert!(u_sor.max_abs_diff(&u_jac) < 1e-7);
    }

    #[test]
    fn works_with_the_nine_point_box() {
        let n = 12;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (u, s) = SorSolver::gauss_seidel(1e-9).solve(&p, &Stencil::nine_point_box());
        assert!(s.converged);
        let err = u.max_abs_diff(&p.exact_solution().unwrap());
        // Plain Mehrstellen without the h²∇²f/12 rhs correction is second
        // order with a larger constant than the 5-point cross.
        assert!(err < 2e-2, "error {err}");
    }

    #[test]
    #[should_panic(expected = "0 < ω < 2")]
    fn rejects_divergent_omega() {
        let p = PoissonProblem::laplace(4, 0.0);
        let bad = SorSolver { omega: 2.5, ..SorSolver::gauss_seidel(1e-6) };
        let _ = bad.solve(&p, &Stencil::five_point());
    }
}
