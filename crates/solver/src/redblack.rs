//! Red-black Gauss-Seidel/SOR: the parallelizable ordering.
//!
//! Colouring the grid like a checkerboard makes every same-colour update
//! independent: a red update reads only black cells (the 5-point cross
//! always lands on the opposite colour), so each half-sweep parallelizes
//! perfectly — the classic answer to lexicographic SOR's sequential data
//! dependence, and the ordering a machine from the paper would actually
//! run.
//!
//! Each half-sweep computes new values into a scratch grid (rayon over
//! rows, reading the current grid immutably) and then scatters them back
//! (rayon over disjoint row slices). Because colour-χ updates never read
//! colour-χ cells, this is bit-identical to the in-place sequential
//! red-black sweep.

use crate::apply::relax_update;
use crate::{PoissonProblem, SolveStatus};
use parspeed_grid::Grid2D;
use rayon::prelude::*;

/// Red-black SOR solver (5-point stencil: the colouring argument requires
/// the cross stencil, whose taps all touch the opposite colour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedBlackSolver {
    /// Convergence tolerance on the max-norm update difference.
    pub tol: f64,
    /// Iteration cap (full red+black sweeps).
    pub max_iters: usize,
    /// Relaxation factor in `(0, 2)`.
    pub omega: f64,
    /// Run the colour half-sweeps with rayon.
    pub parallel: bool,
}

impl RedBlackSolver {
    /// Red-black Gauss-Seidel.
    pub fn gauss_seidel(tol: f64) -> Self {
        Self { tol, max_iters: 200_000, omega: 1.0, parallel: true }
    }

    /// Red-black SOR with the optimal 5-point factor
    /// `ω* = 2/(1 + sin(π·h))`.
    pub fn optimal(n: usize, tol: f64) -> Self {
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        Self { tol, max_iters: 200_000, omega: 2.0 / (1.0 + h.sin()), parallel: true }
    }

    /// Sequential variant (for equivalence tests).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// One colour half-sweep: compute into `scratch`, scatter back into
    /// `u`. Returns the max update difference of the half-sweep.
    fn half_sweep(
        &self,
        u: &mut Grid2D,
        scratch: &mut Grid2D,
        f: &Grid2D,
        h2: f64,
        color: usize,
    ) -> f64 {
        let n = u.rows();
        let halo = u.halo();
        let stride = u.stride();
        let omega = self.omega;

        // Phase 1: new colour-χ values into scratch (reads u immutably).
        // Row-slice indexing instead of per-point `get_h`: the three padded
        // source rows are hoisted out of the column loop, with the same
        // N, S, W, E + h²·f arithmetic order as before (bit-identical).
        let compute_row = |r: usize, row_out: &mut [f64], u: &Grid2D| -> f64 {
            let mut worst = 0.0f64;
            let ri = r as isize;
            let up = u.padded_row(ri - 1);
            let mid = u.padded_row(ri);
            let down = u.padded_row(ri + 1);
            let frow = f.interior_row(r);
            let mut c = (r + color) % 2;
            while c < n {
                let j = c + halo;
                let acc = up[j] + down[j] + mid[j - 1] + mid[j + 1] + h2 * frow[c];
                // Same fused relax-and-reduce core as the lexicographic
                // sweeps: the convergence diff folds into the half-sweep,
                // never a separate `max_abs_diff` pass.
                row_out[j] = relax_update(mid[j], acc * 0.25, omega, &mut worst);
                c += 2;
            }
            worst
        };
        let diff =
            if self.parallel {
                scratch
                    .as_mut_slice()
                    .par_chunks_mut(stride)
                    .enumerate()
                    .map(|(pr, row)| {
                        if pr < halo || pr >= halo + n {
                            0.0
                        } else {
                            compute_row(pr - halo, row, u)
                        }
                    })
                    .reduce(|| 0.0f64, f64::max)
            } else {
                let mut worst = 0.0f64;
                for (pr, row) in scratch.as_mut_slice().chunks_mut(stride).enumerate() {
                    if pr >= halo && pr < halo + n {
                        worst = worst.max(compute_row(pr - halo, row, u));
                    }
                }
                worst
            };

        // Phase 2: scatter colour-χ cells back into u (reads scratch).
        let scatter_row = |pr: usize, row: &mut [f64], scratch: &Grid2D| {
            if pr < halo || pr >= halo + n {
                return;
            }
            let r = pr - halo;
            let mut c = (r + color) % 2;
            while c < n {
                row[c + halo] = scratch.get(r, c);
                c += 2;
            }
        };
        if self.parallel {
            u.as_mut_slice()
                .par_chunks_mut(stride)
                .enumerate()
                .for_each(|(pr, row)| scatter_row(pr, row, scratch));
        } else {
            for (pr, row) in u.as_mut_slice().chunks_mut(stride).enumerate() {
                scatter_row(pr, row, scratch);
            }
        }
        diff
    }

    /// Solves `problem` (5-point stencil).
    pub fn solve(&self, problem: &PoissonProblem) -> (Grid2D, SolveStatus) {
        assert!(self.omega > 0.0 && self.omega < 2.0, "SOR needs 0 < ω < 2");
        let h2 = problem.h() * problem.h();
        let mut u = problem.initial_grid(1);
        let mut scratch = Grid2D::new(problem.n(), problem.n(), 1);
        let f = problem.forcing();

        let mut iterations = 0;
        let mut diff = f64::INFINITY;
        while iterations < self.max_iters {
            let d_red = self.half_sweep(&mut u, &mut scratch, f, h2, 0);
            let d_black = self.half_sweep(&mut u, &mut scratch, f, h2, 1);
            iterations += 1;
            diff = d_red.max(d_black);
            if diff < self.tol {
                return (u, SolveStatus { converged: true, iterations, final_diff: diff });
            }
        }
        (u, SolveStatus { converged: false, iterations, final_diff: diff })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JacobiSolver, Manufactured, SorSolver};
    use parspeed_stencil::Stencil;

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let n = 20;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let par = RedBlackSolver::gauss_seidel(1e-9);
        let seq = RedBlackSolver::gauss_seidel(1e-9).sequential();
        let (up, sp) = par.solve(&p);
        let (us, ss) = seq.solve(&p);
        assert_eq!(sp.iterations, ss.iterations);
        assert_eq!(up.max_abs_diff(&us), 0.0, "parallel differs from sequential");
    }

    #[test]
    fn converges_to_the_analytic_solution() {
        let n = 20;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (u, status) = RedBlackSolver::optimal(n, 1e-10).solve(&p);
        assert!(status.converged);
        let err = u.max_abs_diff(&p.exact_solution().unwrap());
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn red_black_gs_converges_like_lexicographic_gs() {
        let n = 16;
        let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
        let (_, rb) = RedBlackSolver::gauss_seidel(1e-8).solve(&p);
        let (_, gs) = SorSolver::gauss_seidel(1e-8).solve(&p, &Stencil::five_point());
        assert!(rb.converged && gs.converged);
        let ratio = rb.iterations as f64 / gs.iterations as f64;
        assert!(ratio > 0.6 && ratio < 1.7, "ratio {ratio}");
    }

    #[test]
    fn beats_jacobi_and_optimal_sor_beats_gs() {
        let n = 20;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (_, jac) = JacobiSolver::with_tol(1e-8).solve(&p, &Stencil::five_point());
        let (_, rb_gs) = RedBlackSolver::gauss_seidel(1e-8).solve(&p);
        let (_, rb_sor) = RedBlackSolver::optimal(n, 1e-8).solve(&p);
        assert!(rb_gs.iterations < jac.iterations);
        assert!(rb_sor.iterations * 3 < rb_gs.iterations);
    }

    #[test]
    fn laplace_flattens_to_boundary_constant() {
        let p = PoissonProblem::laplace(12, -1.5);
        let (u, status) = RedBlackSolver::gauss_seidel(1e-11).solve(&p);
        assert!(status.converged);
        for r in 0..12 {
            for c in 0..12 {
                assert!((u.get(r, c) + 1.5).abs() < 1e-8);
            }
        }
    }
}
