//! Convergence-check scheduling policies (§4, after Saltz, Naik & Nicol).
//!
//! Checking convergence costs a local pass plus a global combine, so a
//! production solver checks *periodically*, accepting a bounded overshoot.
//! [`CheckPolicy`] generates the check schedule; `parspeed-core::
//! convergence` prices it, and both the sequential solvers here and
//! `parspeed-exec`'s `PartitionedJacobi` execute it. The gap until the
//! next check is also the budget the communication-avoiding loops spend:
//! block-of-k temporal tiling and deep-halo sub-iteration blocks size `k`
//! from the active policy's gap, so no iterate between checks is wasted.

/// When to perform convergence checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckPolicy {
    /// Check at iterations `d, 2d, 3d, …`.
    Every(usize),
    /// Check at `start`, then grow the interval geometrically by `factor`
    /// up to `max_interval` — cheap early (when convergence is far) and
    /// responsive late.
    Geometric {
        /// First check iteration.
        start: usize,
        /// Interval growth factor (> 1).
        factor: f64,
        /// Largest allowed interval between checks.
        max_interval: usize,
    },
}

impl CheckPolicy {
    /// A reasonable geometric default: first check at 8, ×1.5 growth,
    /// intervals capped at 256 iterations.
    pub fn geometric() -> Self {
        CheckPolicy::Geometric { start: 8, factor: 1.5, max_interval: 256 }
    }

    /// The first iteration at which to check.
    pub fn first_check(&self) -> usize {
        match self {
            CheckPolicy::Every(d) => {
                assert!(*d >= 1, "period must be ≥ 1");
                *d
            }
            CheckPolicy::Geometric { start, .. } => (*start).max(1),
        }
    }

    /// Given the iteration of the previous check, the iteration of the
    /// next one (strictly increasing).
    ///
    /// For [`CheckPolicy::Geometric`] the growth rule is
    /// `next = last + clamp(⌈last·(factor − 1)⌉, 1, max_interval)` (with
    /// `last` floored at `start`): while the cap is not binding this is
    /// `next ≈ last·factor`, i.e. check *iterations* grow geometrically,
    /// and once `last·(factor − 1)` exceeds `max_interval` the schedule
    /// becomes arithmetic with gap `max_interval`.
    pub fn next_check(&self, last: usize) -> usize {
        match self {
            CheckPolicy::Every(d) => last + d.max(&1),
            CheckPolicy::Geometric { factor, max_interval, start } => {
                assert!(*factor > 1.0, "geometric factor must exceed 1");
                let prev_interval = last.max(*start) as f64;
                let interval =
                    ((prev_interval * (factor - 1.0)).ceil() as usize).clamp(1, *max_interval);
                last + interval
            }
        }
    }

    /// The full schedule up to `max_iters`, for inspection and tests.
    pub fn schedule(&self, max_iters: usize) -> Vec<usize> {
        let mut v = Vec::new();
        let mut k = self.first_check();
        while k <= max_iters {
            v.push(k);
            k = self.next_check(k);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_d_is_arithmetic() {
        let p = CheckPolicy::Every(25);
        assert_eq!(p.schedule(100), vec![25, 50, 75, 100]);
    }

    #[test]
    fn every_one_checks_each_iteration() {
        let p = CheckPolicy::Every(1);
        assert_eq!(p.schedule(5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn geometric_grows_then_caps() {
        let p = CheckPolicy::Geometric { start: 10, factor: 2.0, max_interval: 50 };
        let s = p.schedule(400);
        // Checks at 10, 20, 40, 80, 130, 180, …: iterations double
        // (factor 2) until the gap hits the 50-iteration cap at 80, after
        // which the schedule is arithmetic — gaps 10, 20, 40, 50, 50, ….
        assert_eq!(&s[..5], &[10, 20, 40, 80, 130]);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[1] - w[0] <= 50);
        }
    }

    #[test]
    fn geometric_default_is_sparse_but_responsive() {
        let s = CheckPolicy::geometric().schedule(10_000);
        assert!(s.len() < 60, "too many checks: {}", s.len());
        // No gap exceeds the cap.
        for w in s.windows(2) {
            assert!(w[1] - w[0] <= 256);
        }
    }

    #[test]
    fn schedules_are_strictly_increasing() {
        for p in [CheckPolicy::Every(7), CheckPolicy::geometric()] {
            let s = p.schedule(1000);
            for w in s.windows(2) {
                assert!(w[1] > w[0], "{p:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "period must be ≥ 1")]
    fn rejects_zero_period() {
        let _ = CheckPolicy::Every(0).first_check();
    }
}
