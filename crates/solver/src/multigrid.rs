//! Geometric multigrid for the 5-point Poisson problem.
//!
//! The paper's related work (§2) cites Kamowitz's "SOR and MGR[v]
//! experiments on the Crystal multicomputer" — multigrid was already the
//! serious competitor to the point-iterative methods the model prices.
//! This V-cycle (red-black Gauss-Seidel smoothing, full-weighting
//! restriction, bilinear prolongation) completes the solver substrate: it
//! converges in O(1) cycles independent of `n`, which is why the paper's
//! per-iteration cycle-time model, not iteration counts, is the right
//! place to study architecture.
//!
//! Grids use interior sides `n = 2^k − 1` so coarsening halves cleanly
//! (`n_c = (n−1)/2`). The fine level carries arbitrary Dirichlet data in
//! its halo; coarse levels solve homogeneous-boundary *error* equations,
//! so any problem the other solvers accept works here too.

use crate::{PoissonProblem, SolveStatus};
use parspeed_grid::Grid2D;

/// Geometric multigrid V-cycle solver (5-point stencil).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridSolver {
    /// Convergence tolerance on the residual max-norm.
    pub tol: f64,
    /// Maximum V-cycles.
    pub max_cycles: usize,
    /// Pre-smoothing red-black sweeps per level.
    pub pre_smooth: usize,
    /// Post-smoothing red-black sweeps per level.
    pub post_smooth: usize,
    /// Gauss-Seidel sweeps on the coarsest (n ≤ 3) level.
    pub coarse_sweeps: usize,
}

impl Default for MultigridSolver {
    fn default() -> Self {
        Self { tol: 1e-9, max_cycles: 50, pre_smooth: 2, post_smooth: 2, coarse_sweeps: 32 }
    }
}

/// True iff `n` is a valid multigrid interior side (`2^k − 1`, `k ≥ 1`).
pub fn valid_side(n: usize) -> bool {
    n >= 1 && (n + 1).is_power_of_two()
}

/// One red-black Gauss-Seidel sweep (both colours) for `-∇²u = f` with
/// spacing `h`; `u` has halo 1 holding boundary data. In-place row-slice
/// kernel: the neighbouring padded rows are split out once per row
/// ([`Grid2D::split_row_mut`]), the column loop strides the colour with no
/// per-point index arithmetic; same N, S, W, E + h²·f order as the
/// tap-driven form.
fn rb_sweep(u: &mut Grid2D, f: &Grid2D, h2: f64) {
    let n = u.rows();
    let halo = u.halo();
    let stride = u.stride();
    for color in 0..2usize {
        for r in 0..n {
            let frow = f.interior_row(r);
            let (above, mid, below) = u.split_row_mut(r);
            let up = &above[above.len() - stride..];
            let down = &below[..stride];
            let mut c = (r + color) % 2;
            while c < n {
                let j = c + halo;
                let acc = up[j] + down[j] + mid[j - 1] + mid[j + 1] + h2 * frow[c];
                mid[j] = acc * 0.25;
                c += 2;
            }
        }
    }
}

/// Residual `r = f − A·u` with `A = (4u − Σnb)/h²` (halo included in u).
fn residual(u: &Grid2D, f: &Grid2D, h2: f64, out: &mut Grid2D) {
    let n = u.rows();
    let halo = u.halo();
    for r in 0..n {
        let ri = r as isize;
        let up = u.padded_row(ri - 1);
        let mid = u.padded_row(ri);
        let down = u.padded_row(ri + 1);
        let frow = f.interior_row(r);
        let orow = out.interior_row_mut(r);
        for c in 0..n {
            let j = c + halo;
            let nb = up[j] + down[j] + mid[j - 1] + mid[j + 1];
            let au = (4.0 * mid[j] - nb) / h2;
            orow[c] = frow[c] - au;
        }
    }
}

/// Full-weighting restriction from fine (`n`) to coarse (`(n−1)/2`).
fn restrict(fine: &Grid2D, coarse: &mut Grid2D) {
    let nc = coarse.rows();
    for rc in 0..nc {
        for cc in 0..nc {
            // Coarse point (rc, cc) sits at fine point (2rc+1, 2cc+1).
            let (rf, cf) = (2 * rc + 1, 2 * cc + 1);
            let at = |dr: isize, dc: isize| -> f64 {
                let r = rf as isize + dr;
                let c = cf as isize + dc;
                if r < 0 || c < 0 || r >= fine.rows() as isize || c >= fine.cols() as isize {
                    0.0
                } else {
                    fine.get(r as usize, c as usize)
                }
            };
            let v = 0.25 * at(0, 0)
                + 0.125 * (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1))
                + 0.0625 * (at(-1, -1) + at(-1, 1) + at(1, -1) + at(1, 1));
            coarse.set(rc, cc, v);
        }
    }
}

/// Bilinear prolongation of the coarse correction, added into `fine`.
fn prolong_add(coarse: &Grid2D, fine: &mut Grid2D) {
    let nf = fine.rows();
    let nc = coarse.rows();
    let at = |r: isize, c: isize| -> f64 {
        if r < 0 || c < 0 || r >= nc as isize || c >= nc as isize {
            0.0 // homogeneous boundary of the error equation
        } else {
            coarse.get(r as usize, c as usize)
        }
    };
    for r in 0..nf {
        for c in 0..nf {
            // Fine (r, c) relative to coarse lattice at odd fine indices.
            let (ri, ci) = (r as isize, c as isize);
            let v = if r % 2 == 1 && c % 2 == 1 {
                at((ri - 1) / 2, (ci - 1) / 2)
            } else if r % 2 == 1 {
                0.5 * (at((ri - 1) / 2, ci / 2 - 1) + at((ri - 1) / 2, ci / 2))
            } else if c % 2 == 1 {
                0.5 * (at(ri / 2 - 1, (ci - 1) / 2) + at(ri / 2, (ci - 1) / 2))
            } else {
                0.25 * (at(ri / 2 - 1, ci / 2 - 1)
                    + at(ri / 2 - 1, ci / 2)
                    + at(ri / 2, ci / 2 - 1)
                    + at(ri / 2, ci / 2))
            };
            fine.set(r, c, fine.get(r, c) + v);
        }
    }
}

fn vcycle(u: &mut Grid2D, f: &Grid2D, h: f64, cfg: &MultigridSolver) {
    let n = u.rows();
    let h2 = h * h;
    if n <= 3 {
        for _ in 0..cfg.coarse_sweeps {
            rb_sweep(u, f, h2);
        }
        return;
    }
    for _ in 0..cfg.pre_smooth {
        rb_sweep(u, f, h2);
    }
    let mut res = Grid2D::new(n, n, 0);
    residual(u, f, h2, &mut res);
    let nc = (n - 1) / 2;
    let mut coarse_f = Grid2D::new(nc, nc, 0);
    restrict(&res, &mut coarse_f);
    let mut coarse_u = Grid2D::new(nc, nc, 1); // zero initial error, zero halo
    vcycle(&mut coarse_u, &coarse_f, 2.0 * h, cfg);
    prolong_add(&coarse_u, u);
    for _ in 0..cfg.post_smooth {
        rb_sweep(u, f, h2);
    }
}

impl MultigridSolver {
    /// Solves `problem` by repeated V-cycles; the problem's interior side
    /// must satisfy [`valid_side`].
    pub fn solve(&self, problem: &PoissonProblem) -> (Grid2D, SolveStatus) {
        let n = problem.n();
        assert!(valid_side(n), "multigrid needs n = 2^k − 1, got {n}");
        let h = problem.h();
        let h2 = h * h;
        let mut u = problem.initial_grid(1);
        let f = problem.forcing();
        let mut res = Grid2D::new(n, n, 0);

        let norm0 = {
            residual(&u, f, h2, &mut res);
            res.interior_fold(0.0f64, |a, v| a.max(v.abs())).max(f64::MIN_POSITIVE)
        };
        let mut cycles = 0;
        let mut rel = 1.0;
        while cycles < self.max_cycles {
            vcycle(&mut u, f, h, self);
            cycles += 1;
            residual(&u, f, h2, &mut res);
            rel = res.interior_fold(0.0f64, |a, v| a.max(v.abs())) / norm0;
            if rel < self.tol {
                return (u, SolveStatus { converged: true, iterations: cycles, final_diff: rel });
            }
        }
        (u, SolveStatus { converged: false, iterations: cycles, final_diff: rel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JacobiSolver, Manufactured};
    use parspeed_stencil::Stencil;

    #[test]
    fn valid_sides() {
        for n in [1usize, 3, 7, 15, 31, 63, 127] {
            assert!(valid_side(n), "{n}");
        }
        for n in [0usize, 2, 4, 8, 16, 100] {
            assert!(!valid_side(n), "{n}");
        }
    }

    #[test]
    fn converges_in_a_handful_of_cycles() {
        let p = PoissonProblem::manufactured(31, Manufactured::SinSin);
        let (u, status) = MultigridSolver::default().solve(&p);
        assert!(status.converged);
        assert!(status.iterations <= 12, "{} cycles", status.iterations);
        let err = u.max_abs_diff(&p.exact_solution().unwrap());
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn cycle_count_is_h_independent() {
        // The multigrid signature: cycles do not grow with n.
        let cycles = |n: usize| {
            let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
            let (_, s) = MultigridSolver::default().solve(&p);
            assert!(s.converged, "n={n}");
            s.iterations
        };
        let c15 = cycles(15);
        let c63 = cycles(63);
        assert!(c63 <= c15 + 2, "cycles grew: {c15} → {c63}");
    }

    #[test]
    fn orders_of_magnitude_fewer_iterations_than_jacobi() {
        let p = PoissonProblem::manufactured(31, Manufactured::SinSin);
        let (_, mg) = MultigridSolver::default().solve(&p);
        let (_, jac) = JacobiSolver::with_tol(1e-9).solve(&p, &Stencil::five_point());
        assert!(
            jac.iterations > 100 * mg.iterations,
            "MG {} vs Jacobi {}",
            mg.iterations,
            jac.iterations
        );
    }

    #[test]
    fn agrees_with_jacobi_solution() {
        let p = PoissonProblem::manufactured(15, Manufactured::Bubble);
        let (u_mg, _) = MultigridSolver { tol: 1e-12, ..Default::default() }.solve(&p);
        let (u_j, _) = JacobiSolver::with_tol(1e-12).solve(&p, &Stencil::five_point());
        assert!(u_mg.max_abs_diff(&u_j) < 1e-8);
    }

    #[test]
    fn handles_nonzero_boundary() {
        // Saddle: harmonic with non-trivial Dirichlet data; the V-cycle
        // must reproduce it (coarse levels see only the error equation).
        let p = PoissonProblem::manufactured(31, Manufactured::Saddle);
        let (u, status) = MultigridSolver::default().solve(&p);
        assert!(status.converged);
        let err = u.max_abs_diff(&p.exact_solution().unwrap());
        assert!(err < 1e-4, "error {err} (5-point is exact on quadratics)");
    }

    #[test]
    fn restriction_preserves_constants() {
        let fine = Grid2D::from_fn(7, 7, 0, |_, _| 2.0);
        let mut coarse = Grid2D::new(3, 3, 0);
        restrict(&fine, &mut coarse);
        // Interior coarse points see the full 9-point weighting: exactly 2.
        assert!((coarse.get(1, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prolongation_interpolates_bilinearly() {
        let coarse = Grid2D::from_fn(3, 3, 0, |r, c| (r + c) as f64);
        let mut fine = Grid2D::new(7, 7, 0);
        prolong_add(&coarse, &mut fine);
        // Fine point (3,3) coincides with coarse (1,1) = 2.
        assert!((fine.get(3, 3) - 2.0).abs() < 1e-12);
        // Fine point (3,4) sits between coarse (1,1)=2 and (1,2)=3 → 2.5.
        assert!((fine.get(3, 4) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "2^k − 1")]
    fn rejects_bad_sides() {
        let p = PoissonProblem::laplace(10, 0.0);
        let _ = MultigridSolver::default().solve(&p);
    }
}
