//! Conjugate gradients on the 5-point operator.
//!
//! CG is the algorithm behind the paper's §5 counter-example: each
//! iteration needs two *global* inner products, and on the Finite Element
//! Machine every processor had to exchange its partial sum with every
//! other — the communication pattern that breaks the extremal-allocation
//! result. [`CgStats`] therefore counts the global reductions alongside
//! the numerics, so `parspeed-core::fem` can price them.

use crate::{PoissonProblem, SolveStatus};
use parspeed_grid::Grid2D;

/// Conjugate-gradient solver for `-∇²u = f` (5-point discretization,
/// zero Dirichlet boundary folded into the right-hand side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSolver {
    /// Relative residual tolerance `‖r‖₂ / ‖b‖₂`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

/// Counters the §5 communication model prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgStats {
    /// CG iterations run.
    pub iterations: usize,
    /// Global inner products performed (2 per iteration + setup).
    pub global_reductions: usize,
}

impl Default for CgSolver {
    fn default() -> Self {
        Self { tol: 1e-10, max_iters: 10_000 }
    }
}

/// `y = A·x` for the scaled 5-point operator `(4x − Σnb)/h²` with zero
/// ghost values (boundary contributions live in `b`).
fn apply_a(x: &[f64], y: &mut [f64], n: usize, h2: f64) {
    let at = |v: &[f64], r: isize, c: isize| -> f64 {
        if r < 0 || c < 0 || r >= n as isize || c >= n as isize {
            0.0
        } else {
            v[r as usize * n + c as usize]
        }
    };
    for r in 0..n {
        for c in 0..n {
            let (ri, ci) = (r as isize, c as isize);
            let nb = at(x, ri - 1, ci) + at(x, ri + 1, ci) + at(x, ri, ci - 1) + at(x, ri, ci + 1);
            y[r * n + c] = (4.0 * x[r * n + c] - nb) / h2;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl CgSolver {
    /// Solves `problem`; returns the solution grid, solver status, and the
    /// reduction counters.
    ///
    /// # Panics
    ///
    /// Panics if the problem's boundary data is not identically zero on the
    /// boundary (this implementation folds only zero-Dirichlet conditions).
    pub fn solve(&self, problem: &PoissonProblem) -> (Grid2D, SolveStatus, CgStats) {
        let n = problem.n();
        let h2 = problem.h() * problem.h();
        // Verify a zero boundary by sampling the problem's ghost ring.
        let probe = problem.initial_grid(1);
        for c in -1..=(n as isize) {
            assert!(
                probe.get_h(-1, c).abs() < 1e-12 && probe.get_h(n as isize, c).abs() < 1e-12,
                "CG solver requires zero Dirichlet boundary"
            );
        }

        let b: Vec<f64> = {
            let f = problem.forcing();
            (0..n * n).map(|i| f.get(i / n, i % n)).collect()
        };
        let mut x = vec![0.0f64; n * n];
        let mut r = b.clone(); // r = b − A·0
        let mut p = r.clone();
        let mut ap = vec![0.0f64; n * n];
        let b_norm = dot(&b, &b).sqrt().max(f64::MIN_POSITIVE);
        let mut rr = dot(&r, &r);
        let mut reductions = 2; // ‖b‖ and initial r·r

        let mut iterations = 0;
        let mut converged = rr.sqrt() / b_norm < self.tol;
        while !converged && iterations < self.max_iters {
            apply_a(&p, &mut ap, n, h2);
            let alpha = rr / dot(&p, &ap);
            for i in 0..x.len() {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rr_new = dot(&r, &r);
            reductions += 2; // p·Ap and r·r
            let beta = rr_new / rr;
            for i in 0..p.len() {
                p[i] = r[i] + beta * p[i];
            }
            rr = rr_new;
            iterations += 1;
            converged = rr.sqrt() / b_norm < self.tol;
        }

        let u = Grid2D::from_fn(n, n, 1, |rr_, cc| x[rr_ * n + cc]);
        (
            u,
            SolveStatus { converged, iterations, final_diff: rr.sqrt() / b_norm },
            CgStats { iterations, global_reductions: reductions },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JacobiSolver, Manufactured};
    use parspeed_stencil::Stencil;

    #[test]
    fn solves_sinsin_to_discretization_accuracy() {
        let n = 24;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (u, status, _) = CgSolver::default().solve(&p);
        assert!(status.converged);
        let err = u.max_abs_diff(&p.exact_solution().unwrap());
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn eigenvector_forcing_converges_almost_instantly() {
        // sin(πx)sin(πy) is an eigenvector of the discrete Laplacian, so CG
        // nails it in a handful of iterations at any n — worth pinning,
        // since it is why generic convergence tests must NOT use it.
        for n in [16usize, 32] {
            let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
            let (_, s, _) = CgSolver::default().solve(&p);
            assert!(s.converged);
            assert!(s.iterations <= 5, "n={n}: {} iterations", s.iterations);
        }
    }

    /// A rough, multi-mode forcing (deterministic hash noise) with zero
    /// boundary — the generic CG workload.
    fn rough_problem(n: usize) -> PoissonProblem {
        PoissonProblem::new(
            n,
            |x, y| {
                let a = (x * 7919.0).sin() * (y * 6101.0).cos();
                let b = (x * 131.0 + y * 373.0).sin();
                a + 0.5 * b
            },
            crate::Boundary::Const(0.0),
        )
    }

    #[test]
    fn converges_in_order_n_iterations() {
        // CG on the 5-point Laplacian: κ = O(n²) ⇒ iterations = O(n) for a
        // forcing with energy across the spectrum.
        let iters = |n: usize| {
            let (_, s, _) = CgSolver::default().solve(&rough_problem(n));
            assert!(s.converged);
            s.iterations
        };
        let i16 = iters(16);
        let i32 = iters(32);
        assert!(i16 < 16 * 5, "CG too slow: {i16}");
        let ratio = i32 as f64 / i16 as f64;
        assert!(ratio > 1.4 && ratio < 2.8, "iteration growth {ratio} ({i16} → {i32})");
    }

    #[test]
    fn vastly_fewer_iterations_than_jacobi() {
        let n = 24;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (_, cg, _) = CgSolver::default().solve(&p);
        let (_, jac) = JacobiSolver::with_tol(1e-8).solve(&p, &Stencil::five_point());
        assert!(
            cg.iterations * 10 < jac.iterations,
            "CG {} vs Jacobi {}",
            cg.iterations,
            jac.iterations
        );
    }

    #[test]
    fn reduction_count_is_two_per_iteration() {
        let p = PoissonProblem::manufactured(12, Manufactured::Bubble);
        let (_, _, stats) = CgSolver::default().solve(&p);
        assert_eq!(stats.global_reductions, 2 + 2 * stats.iterations);
    }

    #[test]
    fn agrees_with_jacobi_solution() {
        let n = 16;
        let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
        let (u_cg, _, _) = CgSolver { tol: 1e-12, ..Default::default() }.solve(&p);
        let (u_j, _) = JacobiSolver::with_tol(1e-12).solve(&p, &Stencil::five_point());
        assert!(u_cg.max_abs_diff(&u_j) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "zero Dirichlet")]
    fn rejects_nonzero_boundary() {
        let p = PoissonProblem::laplace(8, 1.0);
        let _ = CgSolver::default().solve(&p);
    }
}
