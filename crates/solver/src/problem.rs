//! Problem setup: `-∇²u = f` on the unit square with Dirichlet boundary.

use crate::Manufactured;
use parspeed_grid::Grid2D;

/// Dirichlet boundary data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary {
    /// Constant boundary values — the paper's assumption (§3).
    Const(f64),
    /// Boundary (and ghost) values from a manufactured solution.
    Exact(Manufactured),
}

/// A discretized Poisson problem on the `n×n` interior grid of the unit
/// square: points `(i, j)` sit at `(x, y) = ((j+1)·h, (i+1)·h)` with
/// `h = 1/(n+1)`.
#[derive(Debug, Clone)]
pub struct PoissonProblem {
    n: usize,
    h: f64,
    f: Grid2D,
    boundary: Boundary,
}

impl PoissonProblem {
    /// Builds a problem with explicit forcing `f(x, y)` and boundary data.
    pub fn new(n: usize, forcing: impl Fn(f64, f64) -> f64, boundary: Boundary) -> Self {
        assert!(n > 0);
        let h = 1.0 / (n as f64 + 1.0);
        let f = Grid2D::from_fn(n, n, 0, |r, c| {
            let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
            forcing(x, y)
        });
        Self { n, h, f, boundary }
    }

    /// A manufactured-solution problem: forcing and boundary both from `m`.
    pub fn manufactured(n: usize, m: Manufactured) -> Self {
        Self::new(n, |x, y| m.f(x, y), Boundary::Exact(m))
    }

    /// The Laplace equation with constant boundary `value` (the paper's
    /// canonical workload).
    pub fn laplace(n: usize, value: f64) -> Self {
        Self::new(n, |_, _| 0.0, Boundary::Const(value))
    }

    /// Interior grid side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grid spacing `h = 1/(n+1)`.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// The forcing grid (interior points, no halo).
    pub fn forcing(&self) -> &Grid2D {
        &self.f
    }

    /// Boundary data.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Physical coordinates of interior point `(r, c)`.
    pub fn xy(&self, r: usize, c: usize) -> (f64, f64) {
        ((c as f64 + 1.0) * self.h, (r as f64 + 1.0) * self.h)
    }

    /// Allocates an initial-guess grid with halo width `halo`, interior
    /// zeroed, halo filled with the boundary data (ghost points of
    /// manufactured problems take the analytic extension, keeping wide
    /// stencils consistent near the boundary).
    pub fn initial_grid(&self, halo: usize) -> Grid2D {
        let mut g = Grid2D::new(self.n, self.n, halo);
        self.fill_boundary(&mut g);
        g
    }

    /// Writes boundary/ghost values into every halo cell of `g`.
    pub fn fill_boundary(&self, g: &mut Grid2D) {
        let halo = g.halo() as isize;
        let n = self.n as isize;
        for r in -halo..(n + halo) {
            for c in -halo..(n + halo) {
                let interior = r >= 0 && r < n && c >= 0 && c < n;
                if interior {
                    continue;
                }
                let v = match self.boundary {
                    Boundary::Const(v) => v,
                    Boundary::Exact(m) => {
                        let x = (c as f64 + 1.0) * self.h;
                        let y = (r as f64 + 1.0) * self.h;
                        m.u(x, y)
                    }
                };
                g.set_h(r, c, v);
            }
        }
    }

    /// The analytic solution sampled on the interior grid, when known.
    pub fn exact_solution(&self) -> Option<Grid2D> {
        match self.boundary {
            Boundary::Exact(m) => Some(Grid2D::from_fn(self.n, self.n, 0, |r, c| {
                let (x, y) = self.xy(r, c);
                m.u(x, y)
            })),
            Boundary::Const(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_unit_square_interior() {
        let p = PoissonProblem::laplace(3, 0.0);
        assert_eq!(p.n(), 3);
        assert!((p.h() - 0.25).abs() < 1e-15);
        let (x, y) = p.xy(0, 0);
        assert!((x - 0.25).abs() < 1e-15 && (y - 0.25).abs() < 1e-15);
        let (x, y) = p.xy(2, 2);
        assert!((x - 0.75).abs() < 1e-15 && (y - 0.75).abs() < 1e-15);
    }

    #[test]
    fn laplace_forcing_is_zero() {
        let p = PoissonProblem::laplace(4, 7.0);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(p.forcing().get(r, c), 0.0);
            }
        }
        let g = p.initial_grid(1);
        assert_eq!(g.get_h(-1, 0), 7.0);
        assert_eq!(g.get_h(4, 4), 7.0);
    }

    #[test]
    fn manufactured_boundary_fills_ghosts() {
        let p = PoissonProblem::manufactured(4, Manufactured::Saddle);
        let g = p.initial_grid(2);
        // Ghost at (r=-1, c=0): x = 0.2·1 = 0.2, y = 0.0 → u = x²−y² = 0.04.
        let v = g.get_h(-1, 0);
        assert!((v - (0.2f64 * 0.2)).abs() < 1e-12, "got {v}");
        // Interior stays zero (initial guess).
        assert_eq!(g.get(0, 0), 0.0);
    }

    #[test]
    fn exact_solution_only_for_manufactured() {
        assert!(PoissonProblem::laplace(4, 0.0).exact_solution().is_none());
        let p = PoissonProblem::manufactured(4, Manufactured::SinSin);
        let u = p.exact_solution().unwrap();
        // Centre-ish point is positive.
        assert!(u.get(1, 1) > 0.0);
    }

    #[test]
    fn forcing_samples_the_manufactured_f() {
        let p = PoissonProblem::manufactured(3, Manufactured::Bubble);
        let (x, y) = p.xy(1, 1); // (0.5, 0.5)
        let expect = 2.0 * (x * (1.0 - x) + y * (1.0 - y));
        assert!((p.forcing().get(1, 1) - expect).abs() < 1e-15);
    }
}
