//! Manufactured solutions for verification.

use std::f64::consts::PI;

/// Analytic solutions of `-∇²u = f` on the unit square used to verify the
/// solvers: the forcing `f` is manufactured from a chosen `u`, so the
/// discrete answer can be compared against truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manufactured {
    /// `u = sin(πx)·sin(πy)` — zero boundary, `f = 2π²·sin(πx)·sin(πy)`.
    SinSin,
    /// `u = x(1−x)·y(1−y)` — zero boundary,
    /// `f = 2·[x(1−x) + y(1−y)]`.
    Bubble,
    /// `u = x² − y²` — harmonic (`f = 0`) with non-trivial boundary.
    Saddle,
}

impl Manufactured {
    /// The analytic solution at `(x, y)`.
    pub fn u(&self, x: f64, y: f64) -> f64 {
        match self {
            Manufactured::SinSin => (PI * x).sin() * (PI * y).sin(),
            Manufactured::Bubble => x * (1.0 - x) * y * (1.0 - y),
            Manufactured::Saddle => x * x - y * y,
        }
    }

    /// The forcing `f = -∇²u` at `(x, y)`.
    pub fn f(&self, x: f64, y: f64) -> f64 {
        match self {
            Manufactured::SinSin => 2.0 * PI * PI * (PI * x).sin() * (PI * y).sin(),
            Manufactured::Bubble => 2.0 * (x * (1.0 - x) + y * (1.0 - y)),
            Manufactured::Saddle => 0.0,
        }
    }

    /// All catalogued solutions.
    pub fn all() -> [Manufactured; 3] {
        [Manufactured::SinSin, Manufactured::Bubble, Manufactured::Saddle]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check that f really is -∇²u for each case.
    #[test]
    fn forcing_matches_negative_laplacian() {
        let h = 1.0e-4;
        for m in Manufactured::all() {
            for &(x, y) in &[(0.3, 0.4), (0.5, 0.5), (0.71, 0.13)] {
                let lap = (m.u(x + h, y) + m.u(x - h, y) + m.u(x, y + h) + m.u(x, y - h)
                    - 4.0 * m.u(x, y))
                    / (h * h);
                let err = (m.f(x, y) + lap).abs();
                assert!(err < 1e-4, "{m:?} at ({x},{y}): err {err}");
            }
        }
    }

    #[test]
    fn sinsin_and_bubble_vanish_on_boundary() {
        for m in [Manufactured::SinSin, Manufactured::Bubble] {
            for t in [0.0, 0.25, 0.5, 1.0] {
                assert!(m.u(t, 0.0).abs() < 1e-15);
                assert!(m.u(t, 1.0).abs() < 1e-12);
                assert!(m.u(0.0, t).abs() < 1e-15);
                assert!(m.u(1.0, t).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn saddle_is_harmonic() {
        assert_eq!(Manufactured::Saddle.f(0.2, 0.9), 0.0);
        assert_eq!(Manufactured::Saddle.u(0.5, 0.5), 0.0);
        assert_eq!(Manufactured::Saddle.u(1.0, 0.0), 1.0);
    }
}
