//! Real numerical solvers for the elliptic PDE substrate of the paper.
//!
//! The performance model abstracts "an iterative solution of these
//! equations (e.g. point Jacobi)" — this crate supplies the actual
//! numerics so the reproduction can run genuine workloads end to end:
//!
//! * [`PoissonProblem`] — `-∇²u = f` on the unit square, Dirichlet
//!   boundary, discretized on the paper's `n×n` interior grid;
//! * [`apply`] — stencil sweep kernels: fused row-slice kernels for all
//!   four catalogue stencils (dispatched via
//!   [`parspeed_stencil::Stencil::kernel_kind`], bit-identical to the
//!   generic tap-driven fallback), sequential and rayon row-parallel full
//!   sweeps, in-place SOR sweeps, and discrete residuals;
//! * [`JacobiSolver`] — point / weighted Jacobi (the algorithm the paper
//!   models), with [`CheckPolicy`]-scheduled convergence checks, the
//!   ω-blend and max-norm update diff fused into the sweep, and block-of-k
//!   temporal tiling between checks;
//! * [`CheckPolicy`] — fixed convergence-check schedules (§4, after Saltz,
//!   Naik & Nicol \[13\]), shared with `parspeed-exec`;
//! * [`SorSolver`] — Gauss-Seidel and SOR with the optimal relaxation
//!   factor;
//! * [`RedBlackSolver`] — red-black Gauss-Seidel/SOR, the parallelizable
//!   ordering (rayon row-parallel within each colour);
//! * [`CgSolver`] — conjugate gradients on the 5-point operator, whose
//!   global inner products are the §5 Adams–Crockett communication pattern;
//! * [`MultigridSolver`] — geometric V-cycle multigrid (the MGR\[v\]-class
//!   method of the paper's related work, ref \[7\]);
//! * [`Manufactured`] — analytic solutions for verification;
//! * [`norms`] — sequential and rayon-parallel reductions;
//! * [`CheckpointPolicy`] / [`CheckpointStore`] — checkpoint/restart for
//!   long solves: snapshots at convergence-check boundaries, bounded
//!   in-memory store keyed by the canonical cache-key hash, bit-identical
//!   resume (the serving tier's failover path picks a solve up where the
//!   lost shard left it instead of restarting at iteration zero).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apply;
mod cg;
mod checkpoint;
mod convergence;
mod jacobi;
mod manufactured;
mod multigrid;
pub mod norms;
mod problem;
mod redblack;
mod sor;

pub use cg::{CgSolver, CgStats};
pub use checkpoint::{Checkpoint, CheckpointCtx, CheckpointPolicy, CheckpointStore};
pub use convergence::CheckPolicy;
pub use jacobi::JacobiSolver;
pub use manufactured::Manufactured;
pub use multigrid::{valid_side as multigrid_valid_side, MultigridSolver};
pub use problem::{Boundary, PoissonProblem};
pub use redblack::RedBlackSolver;
pub use sor::SorSolver;

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStatus {
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Last max-norm update difference observed at a convergence check.
    pub final_diff: f64,
}
