//! Stencil sweep kernels and discrete residuals.
//!
//! The Jacobi update for stencil `S` at interior point `(r, c)` is
//!
//! ```text
//! u'(r,c) = ( Σ_taps coeff·u(r+dy, c+dx) + rhs_scale·h²·f(r,c) ) / divisor
//! ```
//!
//! [`jacobi_sweep`] is the generic tap-driven kernel; [`jacobi_sweep_5pt`]
//! is a fused fast path that performs the identical arithmetic in the
//! identical order (so results are bit-for-bit equal). Both read `src`
//! (including its halo) and write `dst`'s interior.

use parspeed_grid::{Grid2D, Region};
use parspeed_stencil::Stencil;

/// Generic Jacobi sweep over the whole interior of `src` into `dst`.
pub fn jacobi_sweep(stencil: &Stencil, src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let region = Region::new(0, src.rows(), 0, src.cols());
    jacobi_sweep_region(stencil, src, dst, f, h2, &region, (0, 0));
}

/// Generic Jacobi sweep over `region` (coordinates of `f`/the global
/// problem); `offset = (row0, col0)` maps global coordinates to `src`/`dst`
/// local interior coordinates (`local = global − offset`). Used by the
/// partitioned executor where each partition owns a local grid.
pub fn jacobi_sweep_region(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let taps = stencil.taps();
    for gr in region.r0..region.r1 {
        for gc in region.c0..region.c1 {
            let (lr, lc) = ((gr - offset.0) as isize, (gc - offset.1) as isize);
            let mut acc = 0.0;
            for t in taps {
                acc += t.coeff * src.get_h(lr + t.offset.dy as isize, lc + t.offset.dx as isize);
            }
            acc += rs_h2 * f.get(gr, gc);
            dst.set_h(lr, lc, acc * inv);
        }
    }
}

/// Fused 5-point fast path; bit-identical to [`jacobi_sweep`] with
/// [`Stencil::five_point`].
pub fn jacobi_sweep_5pt(src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let rows = src.rows();
    let cols = src.cols();
    for r in 0..rows {
        let ri = r as isize;
        for c in 0..cols {
            let ci = c as isize;
            // Same tap order as the catalogue: N, S, W, E.
            let mut acc = src.get_h(ri - 1, ci);
            acc += src.get_h(ri + 1, ci);
            acc += src.get_h(ri, ci - 1);
            acc += src.get_h(ri, ci + 1);
            acc += h2 * f.get(r, c);
            dst.set(r, c, acc * 0.25);
        }
    }
}

/// Max-norm of the discrete residual `(div·u − Σ c·u_nb)/(rs·h²) − f`,
/// the fixed-point defect of the Jacobi form.
pub fn residual_max(stencil: &Stencil, u: &Grid2D, f: &Grid2D, h2: f64) -> f64 {
    let rs_h2 = stencil.rhs_scale() * h2;
    let mut worst = 0.0f64;
    for r in 0..u.rows() {
        for c in 0..u.cols() {
            let (ri, ci) = (r as isize, c as isize);
            let mut nb = 0.0;
            for t in stencil.taps() {
                nb += t.coeff * u.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
            }
            let res = (stencil.divisor() * u.get(r, c) - nb) / rs_h2 - f.get(r, c);
            worst = worst.max(res.abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_setup(n: usize, v: f64, halo: usize) -> (Grid2D, Grid2D, Grid2D) {
        let mut src = Grid2D::new(n, n, halo);
        src.fill(v);
        src.fill_halo(v);
        let dst = Grid2D::new(n, n, halo);
        let f = Grid2D::new(n, n, 0);
        (src, dst, f)
    }

    #[test]
    fn constant_field_is_fixed_point_for_all_stencils() {
        for s in Stencil::catalog() {
            let halo = s.reach();
            let (src, mut dst, f) = constant_setup(6, 3.5, halo);
            jacobi_sweep(&s, &src, &mut dst, &f, 0.01);
            for r in 0..6 {
                for c in 0..6 {
                    assert!((dst.get(r, c) - 3.5).abs() < 1e-12, "{} at ({r},{c})", s.name());
                }
            }
        }
    }

    #[test]
    fn fast_path_is_bit_identical_to_generic() {
        let n = 8;
        let s = Stencil::five_point();
        let mut src = Grid2D::from_fn(n, n, 1, |r, c| ((r * 31 + c * 17) % 7) as f64 * 0.37);
        src.fill_halo(1.25);
        let f = Grid2D::from_fn(n, n, 0, |r, c| (r as f64 - c as f64) * 0.11);
        let mut a = Grid2D::new(n, n, 1);
        let mut b = Grid2D::new(n, n, 1);
        jacobi_sweep(&s, &src, &mut a, &f, 0.004);
        jacobi_sweep_5pt(&src, &mut b, &f, 0.004);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(a.get(r, c), b.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn region_sweep_updates_only_the_region() {
        let s = Stencil::five_point();
        let mut src = Grid2D::new(4, 4, 1);
        src.fill(1.0);
        src.fill_halo(1.0);
        let f = Grid2D::new(4, 4, 0);
        let mut dst = Grid2D::new(4, 4, 1);
        let region = Region::new(1, 3, 1, 3);
        jacobi_sweep_region(&s, &src, &mut dst, &f, 0.01, &region, (0, 0));
        assert_eq!(dst.get(1, 1), 1.0);
        assert_eq!(dst.get(0, 0), 0.0); // untouched
    }

    #[test]
    fn offset_maps_global_to_local() {
        // A 2×4 partition covering global rows 2..4 of a 4-row problem.
        let s = Stencil::five_point();
        let mut local_src = Grid2D::new(2, 4, 1);
        local_src.fill(2.0);
        local_src.fill_halo(2.0);
        let mut local_dst = Grid2D::new(2, 4, 1);
        let f = Grid2D::new(4, 4, 0); // global forcing
        let region = Region::new(2, 4, 0, 4);
        jacobi_sweep_region(&s, &local_src, &mut local_dst, &f, 0.01, &region, (2, 0));
        for r in 0..2 {
            for c in 0..4 {
                assert!((local_dst.get(r, c) - 2.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn residual_zero_iff_discrete_solution() {
        // For the 5-point operator, u = x²−y² (harmonic) has zero discrete
        // residual *exactly* (the 5-point stencil is exact on quadratics).
        let n = 8;
        let h = 1.0 / (n as f64 + 1.0);
        let s = Stencil::five_point();
        let mut u = Grid2D::from_fn(n, n, 1, |r, c| {
            let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
            x * x - y * y
        });
        // Ghosts take the analytic extension.
        for r in -1..=(n as isize) {
            for c in -1..=(n as isize) {
                let interior = r >= 0 && r < n as isize && c >= 0 && c < n as isize;
                if !interior {
                    let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
                    u.set_h(r, c, x * x - y * y);
                }
            }
        }
        let f = Grid2D::new(n, n, 0);
        let res = residual_max(&s, &u, &f, h * h);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn residual_positive_for_wrong_solution() {
        let n = 6;
        let s = Stencil::five_point();
        let mut u = Grid2D::from_fn(n, n, 1, |r, c| (r * c) as f64);
        u.fill_halo(0.0);
        let f = Grid2D::new(n, n, 0);
        assert!(residual_max(&s, &u, &f, 0.01) > 1.0);
    }
}
