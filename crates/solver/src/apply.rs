//! Stencil sweep kernels and discrete residuals.
//!
//! The Jacobi update for stencil `S` at interior point `(r, c)` is
//!
//! ```text
//! u'(r,c) = ( Σ_taps coeff·u(r+dy, c+dx) + rhs_scale·h²·f(r,c) ) / divisor
//! ```
//!
//! [`jacobi_sweep`] and [`jacobi_sweep_region`] dispatch on
//! [`Stencil::kernel_kind`]: the four catalogue stencils run hand-fused
//! kernels that read whole padded row slices with hoisted halo/offset
//! arithmetic and a column-tiled traversal, while any other stencil falls
//! back to the generic tap-driven loop
//! ([`jacobi_sweep_region_generic`]). The fused kernels perform the
//! identical arithmetic in the identical order, so results are bit-for-bit
//! equal to the generic path — the property every equivalence test in this
//! workspace leans on. [`jacobi_sweep_par`] runs the same sweep
//! row-parallel under rayon (Jacobi reads only `src`, so parallelism
//! cannot change results either).
//!
//! [`jacobi_sweep_blend`] (and its `_region`/`_par` variants) additionally
//! fuses the ω-blend and the max-norm update reduction into the same pass
//! — the three formerly separate full-grid passes of a weighted-Jacobi
//! iteration (sweep, blend, convergence diff) become one, and the `_region`
//! variant is the kernel the temporal-tiling band traversal
//! ([`parspeed_grid::BandSchedule`]) drives.
//!
//! [`sor_sweep`] is the in-place lexicographic relaxation sweep
//! (Gauss-Seidel/SOR) under the same dispatch; its per-point relaxation
//! and running max-difference go through the crate-internal `relax_update`
//! helper, the fused convergence reduction the red-black solver shares.

use parspeed_grid::{Grid2D, Region};
use parspeed_stencil::{KernelKind, Stencil};
use rayon::prelude::*;

/// Column-tile width of the fused traversal. A tile bounds the reuse
/// distance between the padded source rows two consecutive output rows
/// share, keeping them L1-resident even when a full row (8·`n` bytes) no
/// longer fits.
const COL_TILE: usize = 512;

/// Generic Jacobi sweep over the whole interior of `src` into `dst`.
pub fn jacobi_sweep(stencil: &Stencil, src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let region = Region::new(0, src.rows(), 0, src.cols());
    jacobi_sweep_region(stencil, src, dst, f, h2, &region, (0, 0));
}

/// Rayon row-parallel full-interior sweep; bit-identical to
/// [`jacobi_sweep`] (each worker writes disjoint `dst` rows computed from
/// the immutable `src`).
pub fn jacobi_sweep_par(stencil: &Stencil, src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let region = Region::new(0, src.rows(), 0, src.cols());
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let kind = fusable(stencil, src, dst, f, &region, (0, 0));
    let (rows, cols) = (src.rows(), src.cols());
    let (dst_halo, stride) = (dst.halo(), dst.stride());
    dst.as_mut_slice().par_chunks_mut(stride).enumerate().for_each(|(pr, row)| {
        if pr < dst_halo || pr >= dst_halo + rows {
            return;
        }
        let r = pr - dst_halo;
        let out = &mut row[dst_halo..dst_halo + cols];
        match kind {
            Some(kind) => {
                let frow = &f.padded_row(r as isize)[f.halo()..f.halo() + cols];
                fused_row(kind, src, r as isize, src.halo(), frow, out, rs_h2, inv);
            }
            None => generic_row(stencil, src, r as isize, 0, r, 0..cols, f, rs_h2, inv, out),
        }
    });
}

/// Jacobi sweep over `region` (coordinates of `f`/the global problem);
/// `offset = (row0, col0)` maps global coordinates to `src`/`dst` local
/// interior coordinates (`local = global − offset`). Used by the
/// partitioned executor where each partition owns a local grid. Routes to
/// a fused kernel when [`Stencil::kernel_kind`] identifies one and the
/// region geometry permits, falling back to
/// [`jacobi_sweep_region_generic`].
pub fn jacobi_sweep_region(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    match fusable(stencil, src, dst, f, region, offset) {
        Some(kind) => fused_sweep_region(kind, stencil, src, dst, f, h2, region, offset),
        None => jacobi_sweep_region_generic(stencil, src, dst, f, h2, region, offset),
    }
}

/// The tap-interpreting fallback sweep — public so benches and identity
/// tests can compare the fused kernels against it directly.
pub fn jacobi_sweep_region_generic(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let lc0 = region.c0 as isize - offset.1 as isize;
    for gr in region.r0..region.r1 {
        let lr = gr as isize - offset.0 as isize;
        for (lc, gc) in (lc0..).zip(region.c0..region.c1) {
            let mut acc = 0.0;
            for t in stencil.taps() {
                acc += t.coeff * src.get_h(lr + t.offset.dy as isize, lc + t.offset.dx as isize);
            }
            acc += rs_h2 * f.get(gr, gc);
            dst.set_h(lr, lc, acc * inv);
        }
    }
}

/// Fused sweep + ω-blend + optional max-norm update reduction in a single
/// pass over the full interior: computes the Jacobi update of `src` into
/// `dst`, blends `dst = ω·dst + (1−ω)·src` when `ω ≠ 1`, and — when
/// `compute_diff` — returns `max |src − dst|`, all while each row is hot
/// in cache. Bit-identical to [`jacobi_sweep`] followed by a separate
/// blend pass and a separate `max_abs_diff` pass (the blend arithmetic and
/// the per-point differences are unchanged; a max-fold is
/// order-independent). Returns `0.0` when `compute_diff` is false.
pub fn jacobi_sweep_blend(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    omega: f64,
    compute_diff: bool,
) -> f64 {
    let region = Region::new(0, src.rows(), 0, src.cols());
    jacobi_sweep_blend_region(stencil, src, dst, f, h2, &region, (0, 0), omega, compute_diff)
}

/// [`jacobi_sweep_blend`] over one region (the temporal-tiling band
/// steps). The region's local image must lie inside the interiors of
/// `src`/`dst`. Fused kernels serve the catalogue stencils, the
/// tap-driven row loop everything else; blend and reduction run on the
/// still-cache-resident output row either way.
#[allow(clippy::too_many_arguments)]
pub fn jacobi_sweep_blend_region(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
    omega: f64,
    compute_diff: bool,
) -> f64 {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let kind = fusable(stencil, src, dst, f, region, offset);
    let mut worst = 0.0f64;
    let mut tc0 = region.c0;
    while tc0 < region.c1 {
        let tc1 = (tc0 + COL_TILE).min(region.c1);
        let w = tc1 - tc0;
        let lc0 = tc0 as isize - offset.1 as isize;
        debug_assert!(lc0 >= 0 && region.r0 >= offset.0, "blend regions are interior");
        let b = (lc0 + src.halo() as isize) as usize;
        let bd = (lc0 + dst.halo() as isize) as usize;
        let fb = tc0 + f.halo();
        for gr in region.r0..region.r1 {
            let lr = gr as isize - offset.0 as isize;
            let frow = &f.padded_row(gr as isize)[fb..fb + w];
            let out = &mut dst.padded_row_mut(lr)[bd..bd + w];
            match kind {
                Some(kind) => fused_row(kind, src, lr, b, frow, out, rs_h2, inv),
                None => generic_row(stencil, src, lr, lc0, gr, tc0..tc1, f, rs_h2, inv, out),
            }
            let prev = &src.padded_row(lr)[b..b + w];
            worst = worst.max(blend_diff_row(out, prev, omega, compute_diff));
        }
        tc0 = tc1;
    }
    worst
}

/// Rayon row-parallel [`jacobi_sweep_blend`]; bit-identical to it (each
/// worker writes disjoint `dst` rows from the immutable `src`, and the
/// max-norm reduction is order-independent).
pub fn jacobi_sweep_blend_par(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    omega: f64,
    compute_diff: bool,
) -> f64 {
    let region = Region::new(0, src.rows(), 0, src.cols());
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let kind = fusable(stencil, src, dst, f, &region, (0, 0));
    let (rows, cols) = (src.rows(), src.cols());
    let (dst_halo, stride) = (dst.halo(), dst.stride());
    dst.as_mut_slice()
        .par_chunks_mut(stride)
        .enumerate()
        .map(|(pr, row)| {
            if pr < dst_halo || pr >= dst_halo + rows {
                return 0.0;
            }
            let r = pr - dst_halo;
            let lr = r as isize;
            let out = &mut row[dst_halo..dst_halo + cols];
            match kind {
                Some(kind) => {
                    let frow = &f.padded_row(lr)[f.halo()..f.halo() + cols];
                    fused_row(kind, src, lr, src.halo(), frow, out, rs_h2, inv);
                }
                None => generic_row(stencil, src, lr, 0, r, 0..cols, f, rs_h2, inv, out),
            }
            let prev = &src.padded_row(lr)[src.halo()..src.halo() + cols];
            blend_diff_row(out, prev, omega, compute_diff)
        })
        .reduce(|| 0.0f64, f64::max)
}

/// ω-blend of a freshly computed output row against the previous iterate
/// and the row's contribution to the max-norm update difference — the
/// per-row tail of every fused Jacobi kernel. The arithmetic is exactly
/// the historical two-pass form: `out = ω·out + (1−ω)·prev`, then
/// `max |prev − out|`.
#[inline]
fn blend_diff_row(out: &mut [f64], prev: &[f64], omega: f64, compute_diff: bool) -> f64 {
    debug_assert_eq!(out.len(), prev.len());
    // Lane-split reduction: a single running max is a serial dependency
    // chain (one `maxsd` per element, latency-bound); independent partial
    // maxima pipeline/vectorize. Max over a set is order-independent, so
    // the result is bit-identical to the sequential fold. When blending
    // too, blend and reduce in one traversal of the (L1-resident) row.
    const LANES: usize = 8;
    match (omega != 1.0, compute_diff) {
        (true, false) => {
            for (o, &p) in out.iter_mut().zip(prev) {
                *o = omega * *o + (1.0 - omega) * p;
            }
            0.0
        }
        (false, false) => 0.0,
        (blend, true) => {
            let mut lanes = [0.0f64; LANES];
            let mut o_it = out.chunks_exact_mut(LANES);
            let mut p_it = prev.chunks_exact(LANES);
            for (oc, pc) in (&mut o_it).zip(&mut p_it) {
                for i in 0..LANES {
                    if blend {
                        oc[i] = omega * oc[i] + (1.0 - omega) * pc[i];
                    }
                    lanes[i] = lanes[i].max((pc[i] - oc[i]).abs());
                }
            }
            let mut worst = 0.0f64;
            for (o, &p) in o_it.into_remainder().iter_mut().zip(p_it.remainder()) {
                if blend {
                    *o = omega * *o + (1.0 - omega) * p;
                }
                worst = worst.max((p - *o).abs());
            }
            for l in lanes {
                worst = worst.max(l);
            }
            worst
        }
    }
}

/// Relaxed in-place point update plus the running max-difference fold —
/// the fused convergence reduction every in-place sweep (SOR here,
/// red-black in `redblack.rs`) shares instead of a separate diff pass.
#[inline]
pub(crate) fn relax_update(old: f64, jacobi: f64, omega: f64, worst: &mut f64) -> f64 {
    let new = old + omega * (jacobi - old);
    *worst = worst.max((new - old).abs());
    new
}

/// Fused 5-point fast path over the full interior; bit-identical to
/// [`jacobi_sweep`] with [`Stencil::five_point`]. Kept for callers that
/// know their stencil statically; everything else should go through the
/// dispatching [`jacobi_sweep`].
pub fn jacobi_sweep_5pt(src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let (rows, cols) = (src.rows(), src.cols());
    // rhs_scale = 1 and divisor = 4 exactly as the generic path computes.
    let (rs_h2, inv) = (h2, 0.25);
    for r in 0..rows {
        let frow = &f.padded_row(r as isize)[f.halo()..f.halo() + cols];
        let bd = dst.halo();
        let out = &mut dst.padded_row_mut(r as isize)[bd..bd + cols];
        fused_row(KernelKind::FivePoint, src, r as isize, src.halo(), frow, out, rs_h2, inv);
    }
}

/// In-place lexicographic relaxation sweep (Gauss-Seidel for `omega = 1`,
/// SOR otherwise) over the full interior of `u`; returns the max-norm
/// update difference of the sweep. Dispatches to fused row kernels for the
/// catalogue stencils; the arithmetic (and therefore the iterate sequence)
/// is identical to the tap-driven loop either way.
pub fn sor_sweep(stencil: &Stencil, u: &mut Grid2D, f: &Grid2D, h2: f64, omega: f64) -> f64 {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let n_rows = u.rows();
    let cols = u.cols();
    let full = Region::new(0, n_rows, 0, cols);
    // In-place update: `u` is both source and destination.
    let kind = fusable(stencil, u, u, f, &full, (0, 0));
    let mut worst = 0.0f64;
    match kind {
        Some(kind) => {
            let halo = u.halo();
            let stride = u.stride();
            for r in 0..n_rows {
                let frow = &f.padded_row(r as isize)[f.halo()..f.halo() + cols];
                let (above, mid, below) = u.split_row_mut(r);
                worst = worst.max(sor_row_fused(
                    kind, above, mid, below, stride, halo, cols, frow, rs_h2, inv, omega,
                ));
            }
        }
        None => {
            for r in 0..n_rows {
                let ri = r as isize;
                for c in 0..cols {
                    let ci = c as isize;
                    let mut acc = 0.0;
                    for t in stencil.taps() {
                        acc +=
                            t.coeff * u.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
                    }
                    let jacobi = (acc + rs_h2 * f.get(r, c)) * inv;
                    let old = u.get(r, c);
                    let new = relax_update(old, jacobi, omega, &mut worst);
                    u.set(r, c, new);
                }
            }
        }
    }
    worst
}

/// Max-norm of the discrete residual `(div·u − Σ c·u_nb)/(rs·h²) − f`,
/// the fixed-point defect of the Jacobi form.
pub fn residual_max(stencil: &Stencil, u: &Grid2D, f: &Grid2D, h2: f64) -> f64 {
    let rs_h2 = stencil.rhs_scale() * h2;
    let mut worst = 0.0f64;
    for r in 0..u.rows() {
        for c in 0..u.cols() {
            let (ri, ci) = (r as isize, c as isize);
            let mut nb = 0.0;
            for t in stencil.taps() {
                nb += t.coeff * u.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
            }
            let res = (stencil.divisor() * u.get(r, c) - nb) / rs_h2 - f.get(r, c);
            worst = worst.max(res.abs());
        }
    }
    worst
}

/// Whether the fused kernel for `stencil` may sweep `region`: a kernel
/// must exist and the region's local image must stay `reach` away from
/// the edge of the *padded* extents of `src` and `dst`, so every padded
/// row slice the kernel takes is in bounds. A region confined to the
/// interiors of grids with halo ≥ reach always qualifies; so do the
/// halo-overlapping expanded regions the deep-halo executor sweeps, as
/// long as the halo is at least one reach wider than the overlap. (The
/// generic path can additionally write the outermost halo ring, which
/// the fused path cannot slice.)
fn fusable(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &Grid2D,
    f: &Grid2D,
    region: &Region,
    offset: (usize, usize),
) -> Option<KernelKind> {
    let kind = stencil.kernel_kind()?;
    let k = stencil.reach() as isize;
    let lr0 = region.r0 as isize - offset.0 as isize;
    let lr1 = region.r1 as isize - offset.0 as isize;
    let lc0 = region.c0 as isize - offset.1 as isize;
    let lc1 = region.c1 as isize - offset.1 as isize;
    let margin_ok = |g: &Grid2D| {
        let h = g.halo() as isize;
        lr0 >= k - h
            && lr1 <= g.rows() as isize + h - k
            && lc0 >= k - h
            && lc1 <= g.cols() as isize + h - k
    };
    let ok = lr1 >= lr0
        && lc1 >= lc0
        && margin_ok(src)
        && margin_ok(dst)
        && region.r1 <= f.rows()
        && region.c1 <= f.cols();
    ok.then_some(kind)
}

/// Column-tiled fused sweep over a region.
#[allow(clippy::too_many_arguments)]
fn fused_sweep_region(
    kind: KernelKind,
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let mut tc0 = region.c0;
    while tc0 < region.c1 {
        let tc1 = (tc0 + COL_TILE).min(region.c1);
        let w = tc1 - tc0;
        // Local column of the tile start can be negative (deep-halo
        // expanded regions); `fusable` guarantees the padded offsets are
        // non-negative and the slices in bounds.
        let lc0 = tc0 as isize - offset.1 as isize;
        let b = (lc0 + src.halo() as isize) as usize;
        let bd = (lc0 + dst.halo() as isize) as usize;
        let fb = tc0 + f.halo();
        for gr in region.r0..region.r1 {
            let lr = gr as isize - offset.0 as isize;
            let frow = &f.padded_row(gr as isize)[fb..fb + w];
            let out = &mut dst.padded_row_mut(lr)[bd..bd + w];
            fused_row(kind, src, lr, b, frow, out, rs_h2, inv);
        }
        tc0 = tc1;
    }
}

/// One generic (tap-driven) output row written into a padded `dst` row
/// slice — the fallback of the parallel sweep.
#[allow(clippy::too_many_arguments)]
fn generic_row(
    stencil: &Stencil,
    src: &Grid2D,
    lr: isize,
    lc_start: isize,
    gr: usize,
    gc: std::ops::Range<usize>,
    f: &Grid2D,
    rs_h2: f64,
    inv: f64,
    out: &mut [f64],
) {
    for (lc, (o, gc)) in (lc_start..).zip(out.iter_mut().zip(gc)) {
        let mut acc = 0.0;
        for t in stencil.taps() {
            acc += t.coeff * src.get_h(lr + t.offset.dy as isize, lc + t.offset.dx as isize);
        }
        acc += rs_h2 * f.get(gr, gc);
        *o = acc * inv;
    }
}

/// One fused output row: `out[i]` is the update of local point
/// `(lr, b - src.halo() + i)`; `b` is the padded column of the first
/// output point; `frow` holds the matching forcing values. Tap order
/// matches the catalogue exactly (bit-identity with the generic path).
#[allow(clippy::too_many_arguments)]
fn fused_row(
    kind: KernelKind,
    src: &Grid2D,
    lr: isize,
    b: usize,
    frow: &[f64],
    out: &mut [f64],
    rs_h2: f64,
    inv: f64,
) {
    let w = out.len();
    debug_assert_eq!(frow.len(), w);
    match kind {
        KernelKind::FivePoint => {
            let up = &src.padded_row(lr - 1)[b..b + w];
            let mid = &src.padded_row(lr)[b - 1..b + w + 1];
            let down = &src.padded_row(lr + 1)[b..b + w];
            for i in 0..w {
                // Tap order N, S, W, E (unit coefficients).
                let mut acc = up[i];
                acc += down[i];
                acc += mid[i];
                acc += mid[i + 2];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
        KernelKind::NinePointBox => {
            let up = &src.padded_row(lr - 1)[b - 1..b + w + 1];
            let mid = &src.padded_row(lr)[b - 1..b + w + 1];
            let down = &src.padded_row(lr + 1)[b - 1..b + w + 1];
            for i in 0..w {
                // Tap order N, S, W, E, NW, NE, SW, SE.
                let mut acc = 4.0 * up[i + 1];
                acc += 4.0 * down[i + 1];
                acc += 4.0 * mid[i];
                acc += 4.0 * mid[i + 2];
                acc += up[i];
                acc += up[i + 2];
                acc += down[i];
                acc += down[i + 2];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
        KernelKind::NinePointStar => {
            let up2 = &src.padded_row(lr - 2)[b..b + w];
            let up1 = &src.padded_row(lr - 1)[b..b + w];
            let mid = &src.padded_row(lr)[b - 2..b + w + 2];
            let down1 = &src.padded_row(lr + 1)[b..b + w];
            let down2 = &src.padded_row(lr + 2)[b..b + w];
            for i in 0..w {
                // Tap order N, S, W, E, NN, SS, WW, EE; the −1 coefficients
                // negate exactly, so `acc -= x` ≡ `acc += -1.0·x`.
                let mut acc = 16.0 * up1[i];
                acc += 16.0 * down1[i];
                acc += 16.0 * mid[i + 1];
                acc += 16.0 * mid[i + 3];
                acc -= up2[i];
                acc -= down2[i];
                acc -= mid[i];
                acc -= mid[i + 4];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
        KernelKind::ThirteenPointStar => {
            let up2 = &src.padded_row(lr - 2)[b..b + w];
            let up1 = &src.padded_row(lr - 1)[b - 1..b + w + 1];
            let mid = &src.padded_row(lr)[b - 2..b + w + 2];
            let down1 = &src.padded_row(lr + 1)[b - 1..b + w + 1];
            let down2 = &src.padded_row(lr + 2)[b..b + w];
            for i in 0..w {
                // Tap order N, S, W, E, NN, SS, WW, EE, NW, NE, SW, SE.
                let mut acc = 16.0 * up1[i + 1];
                acc += 16.0 * down1[i + 1];
                acc += 16.0 * mid[i + 1];
                acc += 16.0 * mid[i + 3];
                acc -= up2[i];
                acc -= down2[i];
                acc -= mid[i];
                acc -= mid[i + 4];
                acc += 4.0 * up1[i];
                acc += 4.0 * up1[i + 2];
                acc += 4.0 * down1[i];
                acc += 4.0 * down1[i + 2];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
    }
}

/// One fused in-place relaxation row. `above`/`mid`/`below` come from
/// [`Grid2D::split_row_mut`]; west reads within `mid` see values already
/// relaxed this sweep, exactly like the tap-driven in-place loop. Returns
/// the row's max update difference.
#[allow(clippy::too_many_arguments)]
fn sor_row_fused(
    kind: KernelKind,
    above: &[f64],
    mid: &mut [f64],
    below: &[f64],
    stride: usize,
    halo: usize,
    cols: usize,
    frow: &[f64],
    rs_h2: f64,
    inv: f64,
    omega: f64,
) -> f64 {
    let row_above = |k: usize| &above[above.len() - k * stride..above.len() - (k - 1) * stride];
    let row_below = |k: usize| &below[(k - 1) * stride..k * stride];
    let mut worst = 0.0f64;
    let mut relax = |j: usize, acc: f64, fi: usize, mid: &mut [f64]| {
        let jacobi = (acc + rs_h2 * frow[fi]) * inv;
        mid[j] = relax_update(mid[j], jacobi, omega, &mut worst);
    };
    match kind {
        KernelKind::FivePoint => {
            let (up, down) = (row_above(1), row_below(1));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = up[j];
                acc += down[j];
                acc += mid[j - 1];
                acc += mid[j + 1];
                relax(j, acc, i, mid);
            }
        }
        KernelKind::NinePointBox => {
            let (up, down) = (row_above(1), row_below(1));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = 4.0 * up[j];
                acc += 4.0 * down[j];
                acc += 4.0 * mid[j - 1];
                acc += 4.0 * mid[j + 1];
                acc += up[j - 1];
                acc += up[j + 1];
                acc += down[j - 1];
                acc += down[j + 1];
                relax(j, acc, i, mid);
            }
        }
        KernelKind::NinePointStar => {
            let (up1, down1) = (row_above(1), row_below(1));
            let (up2, down2) = (row_above(2), row_below(2));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = 16.0 * up1[j];
                acc += 16.0 * down1[j];
                acc += 16.0 * mid[j - 1];
                acc += 16.0 * mid[j + 1];
                acc -= up2[j];
                acc -= down2[j];
                acc -= mid[j - 2];
                acc -= mid[j + 2];
                relax(j, acc, i, mid);
            }
        }
        KernelKind::ThirteenPointStar => {
            let (up1, down1) = (row_above(1), row_below(1));
            let (up2, down2) = (row_above(2), row_below(2));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = 16.0 * up1[j];
                acc += 16.0 * down1[j];
                acc += 16.0 * mid[j - 1];
                acc += 16.0 * mid[j + 1];
                acc -= up2[j];
                acc -= down2[j];
                acc -= mid[j - 2];
                acc -= mid[j + 2];
                acc += 4.0 * up1[j - 1];
                acc += 4.0 * up1[j + 1];
                acc += 4.0 * down1[j - 1];
                acc += 4.0 * down1[j + 1];
                relax(j, acc, i, mid);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_setup(n: usize, v: f64, halo: usize) -> (Grid2D, Grid2D, Grid2D) {
        let mut src = Grid2D::new(n, n, halo);
        src.fill(v);
        src.fill_halo(v);
        let dst = Grid2D::new(n, n, halo);
        let f = Grid2D::new(n, n, 0);
        (src, dst, f)
    }

    fn patterned(n: usize, halo: usize) -> (Grid2D, Grid2D) {
        let mut src = Grid2D::from_fn(n, n, halo, |r, c| ((r * 31 + c * 17) % 7) as f64 * 0.37);
        src.fill_halo(1.25);
        let f = Grid2D::from_fn(n, n, 0, |r, c| (r as f64 - c as f64) * 0.11);
        (src, f)
    }

    #[test]
    fn constant_field_is_fixed_point_for_all_stencils() {
        for s in Stencil::catalog() {
            let halo = s.reach();
            let (src, mut dst, f) = constant_setup(6, 3.5, halo);
            jacobi_sweep(&s, &src, &mut dst, &f, 0.01);
            for r in 0..6 {
                for c in 0..6 {
                    assert!((dst.get(r, c) - 3.5).abs() < 1e-12, "{} at ({r},{c})", s.name());
                }
            }
        }
    }

    #[test]
    fn fused_is_bit_identical_to_generic_for_all_stencils() {
        for s in Stencil::catalog() {
            assert!(s.kernel_kind().is_some(), "{} must have a fused kernel", s.name());
            for n in [1usize, 2, 3, 8, 17] {
                let halo = s.reach();
                let (src, f) = patterned(n, halo);
                let region = Region::new(0, n, 0, n);
                let mut fused = Grid2D::new(n, n, halo);
                let mut generic = Grid2D::new(n, n, halo);
                jacobi_sweep(&s, &src, &mut fused, &f, 0.004);
                jacobi_sweep_region_generic(&s, &src, &mut generic, &f, 0.004, &region, (0, 0));
                assert_eq!(
                    fused.max_abs_diff(&generic),
                    0.0,
                    "{} fused differs from generic at n={n}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        for s in Stencil::catalog() {
            let n = 19;
            let halo = s.reach();
            let (src, f) = patterned(n, halo);
            let mut seq = Grid2D::new(n, n, halo);
            let mut par = Grid2D::new(n, n, halo);
            jacobi_sweep(&s, &src, &mut seq, &f, 0.004);
            jacobi_sweep_par(&s, &src, &mut par, &f, 0.004);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn fast_path_is_bit_identical_to_generic() {
        let n = 8;
        let s = Stencil::five_point();
        let (src, f) = patterned(n, 1);
        let region = Region::new(0, n, 0, n);
        let mut a = Grid2D::new(n, n, 1);
        let mut b = Grid2D::new(n, n, 1);
        jacobi_sweep_region_generic(&s, &src, &mut a, &f, 0.004, &region, (0, 0));
        jacobi_sweep_5pt(&src, &mut b, &f, 0.004);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(a.get(r, c), b.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn tiling_covers_regions_wider_than_one_tile() {
        // n > COL_TILE exercises the tile seam; compare against generic.
        let n = COL_TILE + 37;
        let s = Stencil::nine_point_box();
        let mut src = Grid2D::from_fn(3, n, 1, |r, c| ((r * 13 + c * 7) % 11) as f64);
        src.fill_halo(0.5);
        let f = Grid2D::from_fn(3, n, 0, |r, c| ((r + c) % 3) as f64);
        let region = Region::new(0, 3, 0, n);
        let mut fused = Grid2D::new(3, n, 1);
        let mut generic = Grid2D::new(3, n, 1);
        jacobi_sweep_region(&s, &src, &mut fused, &f, 0.01, &region, (0, 0));
        jacobi_sweep_region_generic(&s, &src, &mut generic, &f, 0.01, &region, (0, 0));
        assert_eq!(fused.max_abs_diff(&generic), 0.0);
    }

    #[test]
    fn region_sweep_updates_only_the_region() {
        let s = Stencil::five_point();
        let mut src = Grid2D::new(4, 4, 1);
        src.fill(1.0);
        src.fill_halo(1.0);
        let f = Grid2D::new(4, 4, 0);
        let mut dst = Grid2D::new(4, 4, 1);
        let region = Region::new(1, 3, 1, 3);
        jacobi_sweep_region(&s, &src, &mut dst, &f, 0.01, &region, (0, 0));
        assert_eq!(dst.get(1, 1), 1.0);
        assert_eq!(dst.get(0, 0), 0.0); // untouched
    }

    #[test]
    fn offset_maps_global_to_local() {
        // A 2×4 partition covering global rows 2..4 of a 4-row problem.
        let s = Stencil::five_point();
        let mut local_src = Grid2D::new(2, 4, 1);
        local_src.fill(2.0);
        local_src.fill_halo(2.0);
        let mut local_dst = Grid2D::new(2, 4, 1);
        let f = Grid2D::new(4, 4, 0); // global forcing
        let region = Region::new(2, 4, 0, 4);
        jacobi_sweep_region(&s, &local_src, &mut local_dst, &f, 0.01, &region, (2, 0));
        for r in 0..2 {
            for c in 0..4 {
                assert!((local_dst.get(r, c) - 2.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offset_region_fused_matches_generic() {
        // The partitioned-executor shape: local grid = region, offset maps
        // global to local, forcing is global.
        for s in Stencil::catalog() {
            let halo = s.reach();
            let n = 9;
            let region = Region::new(3, 7, 0, n);
            let mut local_src = Grid2D::from_fn(region.rows(), region.cols(), halo, |r, c| {
                ((r * 5 + c) % 4) as f64
            });
            local_src.fill_halo(0.75);
            let f = Grid2D::from_fn(n, n, 0, |r, c| ((r * c) % 3) as f64);
            let offset = (region.r0, region.c0);
            let mut fused = Grid2D::new(region.rows(), region.cols(), halo);
            let mut generic = Grid2D::new(region.rows(), region.cols(), halo);
            jacobi_sweep_region(&s, &local_src, &mut fused, &f, 0.01, &region, offset);
            jacobi_sweep_region_generic(&s, &local_src, &mut generic, &f, 0.01, &region, offset);
            assert_eq!(fused.max_abs_diff(&generic), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn blend_fusion_matches_the_three_pass_reference() {
        use parspeed_stencil::Tap;
        let mut stencils = Stencil::catalog().to_vec();
        // A non-catalogue stencil exercises the generic fallback path.
        stencils.push(Stencil::new("pair", vec![Tap::unit(0, -1), Tap::unit(0, 1)], 1.0, 2.0));
        for s in &stencils {
            for omega in [1.0, 0.8] {
                let n = 9;
                let halo = s.reach();
                let (src, f) = patterned(n, halo);
                let mut fused = Grid2D::new(n, n, halo);
                let d_fused = jacobi_sweep_blend(s, &src, &mut fused, &f, 0.004, omega, true);
                // Reference: the historical three separate passes.
                let mut reference = Grid2D::new(n, n, halo);
                jacobi_sweep(s, &src, &mut reference, &f, 0.004);
                if omega != 1.0 {
                    for r in 0..n {
                        let srow = src.interior_row(r).to_vec();
                        for (nv, &uv) in reference.interior_row_mut(r).iter_mut().zip(&srow) {
                            *nv = omega * *nv + (1.0 - omega) * uv;
                        }
                    }
                }
                assert_eq!(fused.max_abs_diff(&reference), 0.0, "{} ω={omega}", s.name());
                assert_eq!(d_fused, src.max_abs_diff(&reference), "{} ω={omega}", s.name());
                let mut par = Grid2D::new(n, n, halo);
                let d_par = jacobi_sweep_blend_par(s, &src, &mut par, &f, 0.004, omega, true);
                assert_eq!(par.max_abs_diff(&fused), 0.0, "{} ω={omega}", s.name());
                assert_eq!(d_par, d_fused, "{} ω={omega}", s.name());
            }
        }
    }

    #[test]
    fn blend_without_diff_reports_zero_but_updates() {
        let s = Stencil::five_point();
        let (src, f) = patterned(6, 1);
        let mut a = Grid2D::new(6, 6, 1);
        let mut b = Grid2D::new(6, 6, 1);
        let d = jacobi_sweep_blend(&s, &src, &mut a, &f, 0.004, 0.9, false);
        assert_eq!(d, 0.0);
        jacobi_sweep_blend(&s, &src, &mut b, &f, 0.004, 0.9, true);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn custom_stencil_falls_back_to_generic() {
        use parspeed_stencil::Tap;
        let s = Stencil::new("pair", vec![Tap::unit(0, -1), Tap::unit(0, 1)], 1.0, 2.0);
        assert!(s.kernel_kind().is_none());
        let (src, mut dst, f) = constant_setup(5, 2.0, 1);
        jacobi_sweep(&s, &src, &mut dst, &f, 0.01);
        assert!((dst.get(2, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sor_sweep_fused_matches_tap_driven_iterates() {
        // Run the fused in-place sweep and an explicitly tap-driven copy of
        // the same recurrence; the iterates must agree bitwise.
        for s in Stencil::catalog() {
            let n = 7;
            let halo = s.reach();
            let (mut u_fused, f) = patterned(n, halo);
            let mut u_ref = u_fused.clone();
            let (h2, omega) = (0.01, 0.9);
            let rs_h2 = s.rhs_scale() * h2;
            let inv = 1.0 / s.divisor();
            for _ in 0..3 {
                let d = sor_sweep(&s, &mut u_fused, &f, h2, omega);
                let mut worst = 0.0f64;
                for r in 0..n {
                    for c in 0..n {
                        let (ri, ci) = (r as isize, c as isize);
                        let mut acc = 0.0;
                        for t in s.taps() {
                            acc += t.coeff
                                * u_ref.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
                        }
                        let jacobi = (acc + rs_h2 * f.get(r, c)) * inv;
                        let old = u_ref.get(r, c);
                        let new = old + omega * (jacobi - old);
                        worst = worst.max((new - old).abs());
                        u_ref.set(r, c, new);
                    }
                }
                assert_eq!(u_fused.max_abs_diff(&u_ref), 0.0, "{}", s.name());
                assert_eq!(d, worst, "{}", s.name());
            }
        }
    }

    #[test]
    fn residual_zero_iff_discrete_solution() {
        // For the 5-point operator, u = x²−y² (harmonic) has zero discrete
        // residual *exactly* (the 5-point stencil is exact on quadratics).
        let n = 8;
        let h = 1.0 / (n as f64 + 1.0);
        let s = Stencil::five_point();
        let mut u = Grid2D::from_fn(n, n, 1, |r, c| {
            let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
            x * x - y * y
        });
        // Ghosts take the analytic extension.
        for r in -1..=(n as isize) {
            for c in -1..=(n as isize) {
                let interior = r >= 0 && r < n as isize && c >= 0 && c < n as isize;
                if !interior {
                    let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
                    u.set_h(r, c, x * x - y * y);
                }
            }
        }
        let f = Grid2D::new(n, n, 0);
        let res = residual_max(&s, &u, &f, h * h);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn residual_positive_for_wrong_solution() {
        let n = 6;
        let s = Stencil::five_point();
        let mut u = Grid2D::from_fn(n, n, 1, |r, c| (r * c) as f64);
        u.fill_halo(0.0);
        let f = Grid2D::new(n, n, 0);
        assert!(residual_max(&s, &u, &f, 0.01) > 1.0);
    }
}
