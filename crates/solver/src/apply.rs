//! Stencil sweep kernels and discrete residuals.
//!
//! The Jacobi update for stencil `S` at interior point `(r, c)` is
//!
//! ```text
//! u'(r,c) = ( Σ_taps coeff·u(r+dy, c+dx) + rhs_scale·h²·f(r,c) ) / divisor
//! ```
//!
//! [`jacobi_sweep`] and [`jacobi_sweep_region`] dispatch on
//! [`Stencil::kernel_kind`]: the four catalogue stencils run hand-fused
//! kernels that read whole padded row slices with hoisted halo/offset
//! arithmetic and a column-tiled traversal, while any other stencil falls
//! back to the generic tap-driven loop
//! ([`jacobi_sweep_region_generic`]). The fused kernels perform the
//! identical arithmetic in the identical order, so results are bit-for-bit
//! equal to the generic path — the property every equivalence test in this
//! workspace leans on. [`jacobi_sweep_par`] runs the same sweep
//! row-parallel under rayon (Jacobi reads only `src`, so parallelism
//! cannot change results either).
//!
//! [`sor_sweep`] is the in-place lexicographic relaxation sweep
//! (Gauss-Seidel/SOR) under the same dispatch.

use parspeed_grid::{Grid2D, Region};
use parspeed_stencil::{KernelKind, Stencil};
use rayon::prelude::*;

/// Column-tile width of the fused traversal. A tile bounds the reuse
/// distance between the padded source rows two consecutive output rows
/// share, keeping them L1-resident even when a full row (8·`n` bytes) no
/// longer fits.
const COL_TILE: usize = 512;

/// Generic Jacobi sweep over the whole interior of `src` into `dst`.
pub fn jacobi_sweep(stencil: &Stencil, src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let region = Region::new(0, src.rows(), 0, src.cols());
    jacobi_sweep_region(stencil, src, dst, f, h2, &region, (0, 0));
}

/// Rayon row-parallel full-interior sweep; bit-identical to
/// [`jacobi_sweep`] (each worker writes disjoint `dst` rows computed from
/// the immutable `src`).
pub fn jacobi_sweep_par(stencil: &Stencil, src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let region = Region::new(0, src.rows(), 0, src.cols());
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let kind = fusable(stencil, src, dst, f, &region, (0, 0));
    let (rows, cols) = (src.rows(), src.cols());
    let (dst_halo, stride) = (dst.halo(), dst.stride());
    dst.as_mut_slice().par_chunks_mut(stride).enumerate().for_each(|(pr, row)| {
        if pr < dst_halo || pr >= dst_halo + rows {
            return;
        }
        let r = pr - dst_halo;
        let out = &mut row[dst_halo..dst_halo + cols];
        match kind {
            Some(kind) => {
                let frow = &f.padded_row(r as isize)[f.halo()..f.halo() + cols];
                fused_row(kind, src, r as isize, src.halo(), frow, out, rs_h2, inv);
            }
            None => generic_row(stencil, src, r as isize, 0, r, 0..cols, f, rs_h2, inv, out),
        }
    });
}

/// Jacobi sweep over `region` (coordinates of `f`/the global problem);
/// `offset = (row0, col0)` maps global coordinates to `src`/`dst` local
/// interior coordinates (`local = global − offset`). Used by the
/// partitioned executor where each partition owns a local grid. Routes to
/// a fused kernel when [`Stencil::kernel_kind`] identifies one and the
/// region geometry permits, falling back to
/// [`jacobi_sweep_region_generic`].
pub fn jacobi_sweep_region(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    match fusable(stencil, src, dst, f, region, offset) {
        Some(kind) => fused_sweep_region(kind, stencil, src, dst, f, h2, region, offset),
        None => jacobi_sweep_region_generic(stencil, src, dst, f, h2, region, offset),
    }
}

/// The tap-interpreting fallback sweep — public so benches and identity
/// tests can compare the fused kernels against it directly.
pub fn jacobi_sweep_region_generic(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let lc0 = region.c0 as isize - offset.1 as isize;
    for gr in region.r0..region.r1 {
        let lr = gr as isize - offset.0 as isize;
        for (lc, gc) in (lc0..).zip(region.c0..region.c1) {
            let mut acc = 0.0;
            for t in stencil.taps() {
                acc += t.coeff * src.get_h(lr + t.offset.dy as isize, lc + t.offset.dx as isize);
            }
            acc += rs_h2 * f.get(gr, gc);
            dst.set_h(lr, lc, acc * inv);
        }
    }
}

/// Fused 5-point fast path over the full interior; bit-identical to
/// [`jacobi_sweep`] with [`Stencil::five_point`]. Kept for callers that
/// know their stencil statically; everything else should go through the
/// dispatching [`jacobi_sweep`].
pub fn jacobi_sweep_5pt(src: &Grid2D, dst: &mut Grid2D, f: &Grid2D, h2: f64) {
    let (rows, cols) = (src.rows(), src.cols());
    // rhs_scale = 1 and divisor = 4 exactly as the generic path computes.
    let (rs_h2, inv) = (h2, 0.25);
    for r in 0..rows {
        let frow = &f.padded_row(r as isize)[f.halo()..f.halo() + cols];
        let bd = dst.halo();
        let out = &mut dst.padded_row_mut(r as isize)[bd..bd + cols];
        fused_row(KernelKind::FivePoint, src, r as isize, src.halo(), frow, out, rs_h2, inv);
    }
}

/// In-place lexicographic relaxation sweep (Gauss-Seidel for `omega = 1`,
/// SOR otherwise) over the full interior of `u`; returns the max-norm
/// update difference of the sweep. Dispatches to fused row kernels for the
/// catalogue stencils; the arithmetic (and therefore the iterate sequence)
/// is identical to the tap-driven loop either way.
pub fn sor_sweep(stencil: &Stencil, u: &mut Grid2D, f: &Grid2D, h2: f64, omega: f64) -> f64 {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let n_rows = u.rows();
    let cols = u.cols();
    let full = Region::new(0, n_rows, 0, cols);
    // In-place update: `u` is both source and destination.
    let kind = fusable(stencil, u, u, f, &full, (0, 0));
    let mut worst = 0.0f64;
    match kind {
        Some(kind) => {
            let halo = u.halo();
            let stride = u.stride();
            for r in 0..n_rows {
                let frow = &f.padded_row(r as isize)[f.halo()..f.halo() + cols];
                let (above, mid, below) = u.split_row_mut(r);
                worst = worst.max(sor_row_fused(
                    kind, above, mid, below, stride, halo, cols, frow, rs_h2, inv, omega,
                ));
            }
        }
        None => {
            for r in 0..n_rows {
                let ri = r as isize;
                for c in 0..cols {
                    let ci = c as isize;
                    let mut acc = 0.0;
                    for t in stencil.taps() {
                        acc +=
                            t.coeff * u.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
                    }
                    let jacobi = (acc + rs_h2 * f.get(r, c)) * inv;
                    let old = u.get(r, c);
                    let new = old + omega * (jacobi - old);
                    worst = worst.max((new - old).abs());
                    u.set(r, c, new);
                }
            }
        }
    }
    worst
}

/// Max-norm of the discrete residual `(div·u − Σ c·u_nb)/(rs·h²) − f`,
/// the fixed-point defect of the Jacobi form.
pub fn residual_max(stencil: &Stencil, u: &Grid2D, f: &Grid2D, h2: f64) -> f64 {
    let rs_h2 = stencil.rhs_scale() * h2;
    let mut worst = 0.0f64;
    for r in 0..u.rows() {
        for c in 0..u.cols() {
            let (ri, ci) = (r as isize, c as isize);
            let mut nb = 0.0;
            for t in stencil.taps() {
                nb += t.coeff * u.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
            }
            let res = (stencil.divisor() * u.get(r, c) - nb) / rs_h2 - f.get(r, c);
            worst = worst.max(res.abs());
        }
    }
    worst
}

/// Whether the fused kernel for `stencil` may sweep `region`: a kernel
/// must exist, the halos must hold the stencil's reach, and the region's
/// local image must lie inside the interiors of `src`/`dst` (the generic
/// path can legally write halo cells; the fused path slices interior
/// rows).
fn fusable(
    stencil: &Stencil,
    src: &Grid2D,
    dst: &Grid2D,
    f: &Grid2D,
    region: &Region,
    offset: (usize, usize),
) -> Option<KernelKind> {
    let kind = stencil.kernel_kind()?;
    let k = stencil.reach();
    let in_local = |g: &Grid2D| {
        region.r0 >= offset.0
            && region.c0 >= offset.1
            && region.r1 - offset.0 <= g.rows()
            && region.c1 - offset.1 <= g.cols()
    };
    let ok = src.halo() >= k
        && region.r1 >= region.r0
        && region.c1 >= region.c0
        && in_local(src)
        && in_local(dst)
        && region.r1 <= f.rows()
        && region.c1 <= f.cols();
    ok.then_some(kind)
}

/// Column-tiled fused sweep over a region.
#[allow(clippy::too_many_arguments)]
fn fused_sweep_region(
    kind: KernelKind,
    stencil: &Stencil,
    src: &Grid2D,
    dst: &mut Grid2D,
    f: &Grid2D,
    h2: f64,
    region: &Region,
    offset: (usize, usize),
) {
    let rs_h2 = stencil.rhs_scale() * h2;
    let inv = 1.0 / stencil.divisor();
    let mut tc0 = region.c0;
    while tc0 < region.c1 {
        let tc1 = (tc0 + COL_TILE).min(region.c1);
        let w = tc1 - tc0;
        for gr in region.r0..region.r1 {
            let lr = (gr - offset.0) as isize;
            let b = (tc0 - offset.1) + src.halo();
            let fb = tc0 + f.halo();
            let frow = &f.padded_row(gr as isize)[fb..fb + w];
            let bd = (tc0 - offset.1) + dst.halo();
            let out = &mut dst.padded_row_mut(lr)[bd..bd + w];
            fused_row(kind, src, lr, b, frow, out, rs_h2, inv);
        }
        tc0 = tc1;
    }
}

/// One generic (tap-driven) output row written into a padded `dst` row
/// slice — the fallback of the parallel sweep.
#[allow(clippy::too_many_arguments)]
fn generic_row(
    stencil: &Stencil,
    src: &Grid2D,
    lr: isize,
    lc_start: isize,
    gr: usize,
    gc: std::ops::Range<usize>,
    f: &Grid2D,
    rs_h2: f64,
    inv: f64,
    out: &mut [f64],
) {
    for (lc, (o, gc)) in (lc_start..).zip(out.iter_mut().zip(gc)) {
        let mut acc = 0.0;
        for t in stencil.taps() {
            acc += t.coeff * src.get_h(lr + t.offset.dy as isize, lc + t.offset.dx as isize);
        }
        acc += rs_h2 * f.get(gr, gc);
        *o = acc * inv;
    }
}

/// One fused output row: `out[i]` is the update of local point
/// `(lr, b - src.halo() + i)`; `b` is the padded column of the first
/// output point; `frow` holds the matching forcing values. Tap order
/// matches the catalogue exactly (bit-identity with the generic path).
#[allow(clippy::too_many_arguments)]
fn fused_row(
    kind: KernelKind,
    src: &Grid2D,
    lr: isize,
    b: usize,
    frow: &[f64],
    out: &mut [f64],
    rs_h2: f64,
    inv: f64,
) {
    let w = out.len();
    debug_assert_eq!(frow.len(), w);
    match kind {
        KernelKind::FivePoint => {
            let up = &src.padded_row(lr - 1)[b..b + w];
            let mid = &src.padded_row(lr)[b - 1..b + w + 1];
            let down = &src.padded_row(lr + 1)[b..b + w];
            for i in 0..w {
                // Tap order N, S, W, E (unit coefficients).
                let mut acc = up[i];
                acc += down[i];
                acc += mid[i];
                acc += mid[i + 2];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
        KernelKind::NinePointBox => {
            let up = &src.padded_row(lr - 1)[b - 1..b + w + 1];
            let mid = &src.padded_row(lr)[b - 1..b + w + 1];
            let down = &src.padded_row(lr + 1)[b - 1..b + w + 1];
            for i in 0..w {
                // Tap order N, S, W, E, NW, NE, SW, SE.
                let mut acc = 4.0 * up[i + 1];
                acc += 4.0 * down[i + 1];
                acc += 4.0 * mid[i];
                acc += 4.0 * mid[i + 2];
                acc += up[i];
                acc += up[i + 2];
                acc += down[i];
                acc += down[i + 2];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
        KernelKind::NinePointStar => {
            let up2 = &src.padded_row(lr - 2)[b..b + w];
            let up1 = &src.padded_row(lr - 1)[b..b + w];
            let mid = &src.padded_row(lr)[b - 2..b + w + 2];
            let down1 = &src.padded_row(lr + 1)[b..b + w];
            let down2 = &src.padded_row(lr + 2)[b..b + w];
            for i in 0..w {
                // Tap order N, S, W, E, NN, SS, WW, EE; the −1 coefficients
                // negate exactly, so `acc -= x` ≡ `acc += -1.0·x`.
                let mut acc = 16.0 * up1[i];
                acc += 16.0 * down1[i];
                acc += 16.0 * mid[i + 1];
                acc += 16.0 * mid[i + 3];
                acc -= up2[i];
                acc -= down2[i];
                acc -= mid[i];
                acc -= mid[i + 4];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
        KernelKind::ThirteenPointStar => {
            let up2 = &src.padded_row(lr - 2)[b..b + w];
            let up1 = &src.padded_row(lr - 1)[b - 1..b + w + 1];
            let mid = &src.padded_row(lr)[b - 2..b + w + 2];
            let down1 = &src.padded_row(lr + 1)[b - 1..b + w + 1];
            let down2 = &src.padded_row(lr + 2)[b..b + w];
            for i in 0..w {
                // Tap order N, S, W, E, NN, SS, WW, EE, NW, NE, SW, SE.
                let mut acc = 16.0 * up1[i + 1];
                acc += 16.0 * down1[i + 1];
                acc += 16.0 * mid[i + 1];
                acc += 16.0 * mid[i + 3];
                acc -= up2[i];
                acc -= down2[i];
                acc -= mid[i];
                acc -= mid[i + 4];
                acc += 4.0 * up1[i];
                acc += 4.0 * up1[i + 2];
                acc += 4.0 * down1[i];
                acc += 4.0 * down1[i + 2];
                acc += rs_h2 * frow[i];
                out[i] = acc * inv;
            }
        }
    }
}

/// One fused in-place relaxation row. `above`/`mid`/`below` come from
/// [`Grid2D::split_row_mut`]; west reads within `mid` see values already
/// relaxed this sweep, exactly like the tap-driven in-place loop. Returns
/// the row's max update difference.
#[allow(clippy::too_many_arguments)]
fn sor_row_fused(
    kind: KernelKind,
    above: &[f64],
    mid: &mut [f64],
    below: &[f64],
    stride: usize,
    halo: usize,
    cols: usize,
    frow: &[f64],
    rs_h2: f64,
    inv: f64,
    omega: f64,
) -> f64 {
    let row_above = |k: usize| &above[above.len() - k * stride..above.len() - (k - 1) * stride];
    let row_below = |k: usize| &below[(k - 1) * stride..k * stride];
    let mut worst = 0.0f64;
    let mut relax = |j: usize, acc: f64, fi: usize, mid: &mut [f64]| {
        let jacobi = (acc + rs_h2 * frow[fi]) * inv;
        let old = mid[j];
        let new = old + omega * (jacobi - old);
        worst = worst.max((new - old).abs());
        mid[j] = new;
    };
    match kind {
        KernelKind::FivePoint => {
            let (up, down) = (row_above(1), row_below(1));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = up[j];
                acc += down[j];
                acc += mid[j - 1];
                acc += mid[j + 1];
                relax(j, acc, i, mid);
            }
        }
        KernelKind::NinePointBox => {
            let (up, down) = (row_above(1), row_below(1));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = 4.0 * up[j];
                acc += 4.0 * down[j];
                acc += 4.0 * mid[j - 1];
                acc += 4.0 * mid[j + 1];
                acc += up[j - 1];
                acc += up[j + 1];
                acc += down[j - 1];
                acc += down[j + 1];
                relax(j, acc, i, mid);
            }
        }
        KernelKind::NinePointStar => {
            let (up1, down1) = (row_above(1), row_below(1));
            let (up2, down2) = (row_above(2), row_below(2));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = 16.0 * up1[j];
                acc += 16.0 * down1[j];
                acc += 16.0 * mid[j - 1];
                acc += 16.0 * mid[j + 1];
                acc -= up2[j];
                acc -= down2[j];
                acc -= mid[j - 2];
                acc -= mid[j + 2];
                relax(j, acc, i, mid);
            }
        }
        KernelKind::ThirteenPointStar => {
            let (up1, down1) = (row_above(1), row_below(1));
            let (up2, down2) = (row_above(2), row_below(2));
            for i in 0..cols {
                let j = i + halo;
                let mut acc = 16.0 * up1[j];
                acc += 16.0 * down1[j];
                acc += 16.0 * mid[j - 1];
                acc += 16.0 * mid[j + 1];
                acc -= up2[j];
                acc -= down2[j];
                acc -= mid[j - 2];
                acc -= mid[j + 2];
                acc += 4.0 * up1[j - 1];
                acc += 4.0 * up1[j + 1];
                acc += 4.0 * down1[j - 1];
                acc += 4.0 * down1[j + 1];
                relax(j, acc, i, mid);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_setup(n: usize, v: f64, halo: usize) -> (Grid2D, Grid2D, Grid2D) {
        let mut src = Grid2D::new(n, n, halo);
        src.fill(v);
        src.fill_halo(v);
        let dst = Grid2D::new(n, n, halo);
        let f = Grid2D::new(n, n, 0);
        (src, dst, f)
    }

    fn patterned(n: usize, halo: usize) -> (Grid2D, Grid2D) {
        let mut src = Grid2D::from_fn(n, n, halo, |r, c| ((r * 31 + c * 17) % 7) as f64 * 0.37);
        src.fill_halo(1.25);
        let f = Grid2D::from_fn(n, n, 0, |r, c| (r as f64 - c as f64) * 0.11);
        (src, f)
    }

    #[test]
    fn constant_field_is_fixed_point_for_all_stencils() {
        for s in Stencil::catalog() {
            let halo = s.reach();
            let (src, mut dst, f) = constant_setup(6, 3.5, halo);
            jacobi_sweep(&s, &src, &mut dst, &f, 0.01);
            for r in 0..6 {
                for c in 0..6 {
                    assert!((dst.get(r, c) - 3.5).abs() < 1e-12, "{} at ({r},{c})", s.name());
                }
            }
        }
    }

    #[test]
    fn fused_is_bit_identical_to_generic_for_all_stencils() {
        for s in Stencil::catalog() {
            assert!(s.kernel_kind().is_some(), "{} must have a fused kernel", s.name());
            for n in [1usize, 2, 3, 8, 17] {
                let halo = s.reach();
                let (src, f) = patterned(n, halo);
                let region = Region::new(0, n, 0, n);
                let mut fused = Grid2D::new(n, n, halo);
                let mut generic = Grid2D::new(n, n, halo);
                jacobi_sweep(&s, &src, &mut fused, &f, 0.004);
                jacobi_sweep_region_generic(&s, &src, &mut generic, &f, 0.004, &region, (0, 0));
                assert_eq!(
                    fused.max_abs_diff(&generic),
                    0.0,
                    "{} fused differs from generic at n={n}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        for s in Stencil::catalog() {
            let n = 19;
            let halo = s.reach();
            let (src, f) = patterned(n, halo);
            let mut seq = Grid2D::new(n, n, halo);
            let mut par = Grid2D::new(n, n, halo);
            jacobi_sweep(&s, &src, &mut seq, &f, 0.004);
            jacobi_sweep_par(&s, &src, &mut par, &f, 0.004);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn fast_path_is_bit_identical_to_generic() {
        let n = 8;
        let s = Stencil::five_point();
        let (src, f) = patterned(n, 1);
        let region = Region::new(0, n, 0, n);
        let mut a = Grid2D::new(n, n, 1);
        let mut b = Grid2D::new(n, n, 1);
        jacobi_sweep_region_generic(&s, &src, &mut a, &f, 0.004, &region, (0, 0));
        jacobi_sweep_5pt(&src, &mut b, &f, 0.004);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(a.get(r, c), b.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn tiling_covers_regions_wider_than_one_tile() {
        // n > COL_TILE exercises the tile seam; compare against generic.
        let n = COL_TILE + 37;
        let s = Stencil::nine_point_box();
        let mut src = Grid2D::from_fn(3, n, 1, |r, c| ((r * 13 + c * 7) % 11) as f64);
        src.fill_halo(0.5);
        let f = Grid2D::from_fn(3, n, 0, |r, c| ((r + c) % 3) as f64);
        let region = Region::new(0, 3, 0, n);
        let mut fused = Grid2D::new(3, n, 1);
        let mut generic = Grid2D::new(3, n, 1);
        jacobi_sweep_region(&s, &src, &mut fused, &f, 0.01, &region, (0, 0));
        jacobi_sweep_region_generic(&s, &src, &mut generic, &f, 0.01, &region, (0, 0));
        assert_eq!(fused.max_abs_diff(&generic), 0.0);
    }

    #[test]
    fn region_sweep_updates_only_the_region() {
        let s = Stencil::five_point();
        let mut src = Grid2D::new(4, 4, 1);
        src.fill(1.0);
        src.fill_halo(1.0);
        let f = Grid2D::new(4, 4, 0);
        let mut dst = Grid2D::new(4, 4, 1);
        let region = Region::new(1, 3, 1, 3);
        jacobi_sweep_region(&s, &src, &mut dst, &f, 0.01, &region, (0, 0));
        assert_eq!(dst.get(1, 1), 1.0);
        assert_eq!(dst.get(0, 0), 0.0); // untouched
    }

    #[test]
    fn offset_maps_global_to_local() {
        // A 2×4 partition covering global rows 2..4 of a 4-row problem.
        let s = Stencil::five_point();
        let mut local_src = Grid2D::new(2, 4, 1);
        local_src.fill(2.0);
        local_src.fill_halo(2.0);
        let mut local_dst = Grid2D::new(2, 4, 1);
        let f = Grid2D::new(4, 4, 0); // global forcing
        let region = Region::new(2, 4, 0, 4);
        jacobi_sweep_region(&s, &local_src, &mut local_dst, &f, 0.01, &region, (2, 0));
        for r in 0..2 {
            for c in 0..4 {
                assert!((local_dst.get(r, c) - 2.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offset_region_fused_matches_generic() {
        // The partitioned-executor shape: local grid = region, offset maps
        // global to local, forcing is global.
        for s in Stencil::catalog() {
            let halo = s.reach();
            let n = 9;
            let region = Region::new(3, 7, 0, n);
            let mut local_src = Grid2D::from_fn(region.rows(), region.cols(), halo, |r, c| {
                ((r * 5 + c) % 4) as f64
            });
            local_src.fill_halo(0.75);
            let f = Grid2D::from_fn(n, n, 0, |r, c| ((r * c) % 3) as f64);
            let offset = (region.r0, region.c0);
            let mut fused = Grid2D::new(region.rows(), region.cols(), halo);
            let mut generic = Grid2D::new(region.rows(), region.cols(), halo);
            jacobi_sweep_region(&s, &local_src, &mut fused, &f, 0.01, &region, offset);
            jacobi_sweep_region_generic(&s, &local_src, &mut generic, &f, 0.01, &region, offset);
            assert_eq!(fused.max_abs_diff(&generic), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn custom_stencil_falls_back_to_generic() {
        use parspeed_stencil::Tap;
        let s = Stencil::new("pair", vec![Tap::unit(0, -1), Tap::unit(0, 1)], 1.0, 2.0);
        assert!(s.kernel_kind().is_none());
        let (src, mut dst, f) = constant_setup(5, 2.0, 1);
        jacobi_sweep(&s, &src, &mut dst, &f, 0.01);
        assert!((dst.get(2, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sor_sweep_fused_matches_tap_driven_iterates() {
        // Run the fused in-place sweep and an explicitly tap-driven copy of
        // the same recurrence; the iterates must agree bitwise.
        for s in Stencil::catalog() {
            let n = 7;
            let halo = s.reach();
            let (mut u_fused, f) = patterned(n, halo);
            let mut u_ref = u_fused.clone();
            let (h2, omega) = (0.01, 0.9);
            let rs_h2 = s.rhs_scale() * h2;
            let inv = 1.0 / s.divisor();
            for _ in 0..3 {
                let d = sor_sweep(&s, &mut u_fused, &f, h2, omega);
                let mut worst = 0.0f64;
                for r in 0..n {
                    for c in 0..n {
                        let (ri, ci) = (r as isize, c as isize);
                        let mut acc = 0.0;
                        for t in s.taps() {
                            acc += t.coeff
                                * u_ref.get_h(ri + t.offset.dy as isize, ci + t.offset.dx as isize);
                        }
                        let jacobi = (acc + rs_h2 * f.get(r, c)) * inv;
                        let old = u_ref.get(r, c);
                        let new = old + omega * (jacobi - old);
                        worst = worst.max((new - old).abs());
                        u_ref.set(r, c, new);
                    }
                }
                assert_eq!(u_fused.max_abs_diff(&u_ref), 0.0, "{}", s.name());
                assert_eq!(d, worst, "{}", s.name());
            }
        }
    }

    #[test]
    fn residual_zero_iff_discrete_solution() {
        // For the 5-point operator, u = x²−y² (harmonic) has zero discrete
        // residual *exactly* (the 5-point stencil is exact on quadratics).
        let n = 8;
        let h = 1.0 / (n as f64 + 1.0);
        let s = Stencil::five_point();
        let mut u = Grid2D::from_fn(n, n, 1, |r, c| {
            let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
            x * x - y * y
        });
        // Ghosts take the analytic extension.
        for r in -1..=(n as isize) {
            for c in -1..=(n as isize) {
                let interior = r >= 0 && r < n as isize && c >= 0 && c < n as isize;
                if !interior {
                    let (x, y) = ((c as f64 + 1.0) * h, (r as f64 + 1.0) * h);
                    u.set_h(r, c, x * x - y * y);
                }
            }
        }
        let f = Grid2D::new(n, n, 0);
        let res = residual_max(&s, &u, &f, h * h);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn residual_positive_for_wrong_solution() {
        let n = 6;
        let s = Stencil::five_point();
        let mut u = Grid2D::from_fn(n, n, 1, |r, c| (r * c) as f64);
        u.fill_halo(0.0);
        let f = Grid2D::new(n, n, 0);
        assert!(residual_max(&s, &u, &f, 0.01) > 1.0);
    }
}
