//! Point Jacobi and weighted Jacobi — the algorithm the paper models.

use crate::apply::{jacobi_sweep_blend, jacobi_sweep_blend_par, jacobi_sweep_blend_region};
use crate::checkpoint::{Checkpoint, CheckpointCtx};
use crate::{CheckPolicy, PoissonProblem, SolveStatus};
use parspeed_grid::{BandSchedule, Grid2D, Region};
use parspeed_stencil::Stencil;

/// Deepest block of iterations run between convergence checks as one
/// temporally tiled unit. Deeper blocks amortize more traversal overhead
/// but widen the trapezoid's trailing skew (`block · reach` rows), with
/// quickly diminishing returns once the sweep is compute-bound.
const MAX_TEMPORAL_BLOCK: usize = 8;

/// Cache budget (bytes) the temporal tiling aims to keep resident: the
/// advancing band of both buffers plus the trailing skew. Sized for a
/// typical per-core L2.
const TEMPORAL_CACHE_BUDGET: usize = 1 << 20;

/// Point-Jacobi solver with scheduled convergence checking.
///
/// Every iteration runs as **one** fused pass through
/// [`crate::apply::jacobi_sweep_blend`]: the sweep, the ω-blend, and the
/// max-norm update reduction that used to be three separate full-grid
/// passes. Between scheduled checks the sequential path additionally
/// temporal-tiles: blocks of up to `MAX_TEMPORAL_BLOCK` iterations
/// (never past the next check, so no iterate is wasted) advance a
/// cache-resident row band through all block levels via
/// [`parspeed_grid::BandSchedule`]. Jacobi is out-of-place, so neither
/// fusion nor the band traversal changes the order any point *evaluates*
/// in — iterates are bit-identical to the plain one-sweep-at-a-time loop,
/// which the property tests assert.
///
/// Setting [`parallel`](JacobiSolver::parallel) runs each sweep
/// row-parallel under rayon (the same switch [`crate::RedBlackSolver`]
/// exposes); Jacobi reads only the previous iterate, so this cannot change
/// results either.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiSolver {
    /// Convergence tolerance on the max-norm update difference.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// When to check convergence (§4's scheduling knob). The gap until
    /// the next check is also the temporal-tiling budget.
    pub check: CheckPolicy,
    /// Damping factor: `1.0` is plain Jacobi; `(0,1)` under-relaxes.
    pub omega: f64,
    /// Run each sweep row-parallel with rayon.
    pub parallel: bool,
}

impl Default for JacobiSolver {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 200_000,
            check: CheckPolicy::Every(1),
            omega: 1.0,
            parallel: false,
        }
    }
}

impl JacobiSolver {
    /// Plain Jacobi with the given tolerance.
    pub fn with_tol(tol: f64) -> Self {
        Self { tol, ..Self::default() }
    }

    /// The same solver with rayon row-parallel sweeps.
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Solves `problem` with `stencil`; returns the solution grid (halo =
    /// stencil reach) and the solve status.
    pub fn solve(&self, problem: &PoissonProblem, stencil: &Stencil) -> (Grid2D, SolveStatus) {
        let (u, status, _) = self.solve_checkpointed(problem, stencil, None);
        (u, status)
    }

    /// [`solve`](Self::solve) with checkpoint/restart: if `ctx` holds a
    /// surviving snapshot for this solve's key, iteration resumes from
    /// it (bit-identically — Jacobi reads only the previous iterate, and
    /// the snapshot *is* the previous iterate); at checkpoint-scheduled
    /// check boundaries the current iterate is snapshotted; a converged
    /// solve removes its entry (a capped one keeps it, so a retry with a
    /// higher budget resumes). The third return is the iteration the
    /// solve resumed from (`None` when it started fresh).
    pub fn solve_checkpointed(
        &self,
        problem: &PoissonProblem,
        stencil: &Stencil,
        ctx: Option<CheckpointCtx<'_>>,
    ) -> (Grid2D, SolveStatus, Option<usize>) {
        assert!(self.omega > 0.0 && self.omega <= 1.0, "need 0 < ω ≤ 1");
        let halo = stencil.reach();
        let h2 = problem.h() * problem.h();
        let mut u = problem.initial_grid(halo);
        let mut next = problem.initial_grid(halo);
        let f = problem.forcing();

        let mut iterations = 0;
        let mut resumed_from = None;
        if let Some(ctx) = ctx {
            if let Some(cp) = ctx.store.load(ctx.key) {
                if cp.fits(&u) && cp.iteration > 0 && cp.iteration <= self.max_iters {
                    // The snapshot is the iterate at a check boundary;
                    // the scratch buffer needs no restore (its interior
                    // is always fully written before it is read) and the
                    // halo is the problem's boundary data, unchanged.
                    cp.restore_into(&mut u);
                    iterations = cp.iteration;
                    resumed_from = Some(cp.iteration);
                    ctx.store.note_resume();
                }
            }
        }
        let mut diff = f64::INFINITY;
        // The check schedule is a pure function of the iteration count:
        // fast-forwarding reproduces exactly the cursor the uninterrupted
        // run had at this iteration.
        let mut next_check = self.check.first_check();
        while next_check <= iterations {
            next_check = self.check.next_check(next_check);
        }
        let mut checks_since_snapshot = 0usize;
        while iterations < self.max_iters {
            // Run to the next scheduled check (or the cap, whichever is
            // first) in blocks; only the block ending on a check pays for
            // the reduction.
            let target = next_check.min(self.max_iters).max(iterations + 1);
            let block = (target - iterations).min(MAX_TEMPORAL_BLOCK);
            let at_check = iterations + block == target;
            let d = self.advance(stencil, &mut u, &mut next, f, h2, block, at_check);
            iterations += block;
            if at_check {
                diff = d;
                if diff < self.tol {
                    if let Some(ctx) = ctx {
                        ctx.store.remove(ctx.key);
                    }
                    let status = SolveStatus { converged: true, iterations, final_diff: diff };
                    return (u, status, resumed_from);
                }
                while next_check <= iterations {
                    next_check = self.check.next_check(next_check);
                }
                if let Some(ctx) = ctx {
                    if iterations < self.max_iters {
                        checks_since_snapshot += 1;
                        if checks_since_snapshot >= ctx.policy.every {
                            checks_since_snapshot = 0;
                            ctx.store.save(ctx.key, Checkpoint::capture(&u, iterations, 0));
                        }
                    }
                }
            }
        }
        // A capped solve keeps its latest snapshot: a retry with a
        // higher budget resumes instead of restarting.
        (u, SolveStatus { converged: false, iterations, final_diff: diff }, resumed_from)
    }

    /// Advances `block ≥ 1` iterations, leaving the newest iterate in `u`.
    /// Returns the max-norm update difference of the *last* iteration when
    /// `compute_diff` is set (`0.0` otherwise).
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        stencil: &Stencil,
        u: &mut Grid2D,
        next: &mut Grid2D,
        f: &Grid2D,
        h2: f64,
        block: usize,
        compute_diff: bool,
    ) -> f64 {
        if self.parallel || block == 1 {
            // Full fused sweeps, one iteration at a time (the rayon path
            // already streams rows across cores; skewing it would serialize
            // the band).
            let mut d = 0.0;
            for j in 1..=block {
                let cd = compute_diff && j == block;
                d = if self.parallel {
                    jacobi_sweep_blend_par(stencil, u, next, f, h2, self.omega, cd)
                } else {
                    jacobi_sweep_blend(stencil, u, next, f, h2, self.omega, cd)
                };
                u.swap(next);
            }
            return d;
        }
        // Temporal tiling: drive the trapezoidal band schedule; level
        // parity picks the buffer (level 0 = `u`), so each step is an
        // ordinary out-of-place region sweep.
        let (rows, cols) = (u.rows(), u.cols());
        let reach = stencil.reach();
        let band =
            BandSchedule::band_rows_for_budget(u.stride() * 8, block, reach, TEMPORAL_CACHE_BUDGET)
                .clamp(1, rows.max(1));
        let mut d = 0.0f64;
        for step in BandSchedule::new(rows, block, reach, band).steps() {
            let cd = compute_diff && step.level == block;
            let region = Region::new(step.rows.start, step.rows.end, 0, cols);
            let worst = if step.level % 2 == 1 {
                jacobi_sweep_blend_region(stencil, u, next, f, h2, &region, (0, 0), self.omega, cd)
            } else {
                jacobi_sweep_blend_region(stencil, next, u, f, h2, &region, (0, 0), self.omega, cd)
            };
            if cd {
                d = d.max(worst);
            }
        }
        if block % 2 == 1 {
            u.swap(next);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::residual_max;
    use crate::Manufactured;

    #[test]
    fn converges_on_sinsin_to_discretization_accuracy() {
        let n = 24;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let (u, status) = JacobiSolver::with_tol(1e-10).solve(&p, &Stencil::five_point());
        assert!(status.converged, "did not converge in {} iters", status.iterations);
        let exact = p.exact_solution().unwrap();
        let err = u.max_abs_diff(&exact);
        // O(h²) discretization error: h = 1/25 ⇒ ~π²/12·h²·‖u‖ ≈ 1.3e-3.
        assert!(err < 5e-3, "error {err}");
        assert!(err > 1e-6, "suspiciously exact — check the test");
    }

    #[test]
    fn laplace_with_constant_boundary_converges_to_that_constant() {
        let p = PoissonProblem::laplace(16, 4.2);
        let (u, status) = JacobiSolver::with_tol(1e-12).solve(&p, &Stencil::five_point());
        assert!(status.converged);
        for r in 0..16 {
            for c in 0..16 {
                assert!((u.get(r, c) - 4.2).abs() < 1e-8, "({r},{c}) = {}", u.get(r, c));
            }
        }
    }

    #[test]
    fn error_shrinks_like_h_squared() {
        let err_at = |n: usize| {
            let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
            let (u, s) = JacobiSolver::with_tol(1e-11).solve(&p, &Stencil::five_point());
            assert!(s.converged);
            u.max_abs_diff(&p.exact_solution().unwrap())
        };
        let e8 = err_at(8);
        let e16 = err_at(16);
        // h halves (roughly): error should drop ~4×; allow slack for the
        // (n+1) spacing mismatch.
        let ratio = e8 / e16;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn nine_point_box_solves_too() {
        let n = 16;
        let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
        let (u, status) = JacobiSolver::with_tol(1e-10).solve(&p, &Stencil::nine_point_box());
        assert!(status.converged);
        let err = u.max_abs_diff(&p.exact_solution().unwrap());
        assert!(err < 1e-3, "error {err}");
    }

    #[test]
    fn plain_jacobi_diverges_on_the_nine_point_star() {
        // The fourth-order star operator is not diagonally dominant
        // (|off-diag| sums to 68 against a diagonal of 60), and the Jacobi
        // iteration matrix has spectral radius ≈ 68/60 > 1 at the highest
        // frequencies: undamped point Jacobi diverges. The paper models the
        // *cost* of such stencils, not their convergence — this pins the
        // numerical fact that forces damping below.
        // The initial error is the smooth (1,1) mode, so the unstable
        // highest mode is seeded only by rounding noise (~1e-16·|λ|^k);
        // a couple of thousand iterations make the growth unmistakable.
        let p = PoissonProblem::manufactured(12, Manufactured::SinSin);
        let probe = JacobiSolver { max_iters: 2000, tol: 1e-15, ..Default::default() };
        let (_, status) = probe.solve(&p, &Stencil::nine_point_star());
        assert!(!status.converged);
        assert!(status.final_diff > 1.0, "diff {} should have blown up", status.final_diff);
    }

    #[test]
    fn reach_two_stencils_solve_with_damping_and_analytic_ghosts() {
        // ω < 2/(1 + ρ) ≈ 0.94 restores convergence for the star operators.
        let n = 12;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        for s in [Stencil::nine_point_star(), Stencil::thirteen_point_star()] {
            let damped = JacobiSolver { omega: 0.8, tol: 1e-10, ..Default::default() };
            let (u, status) = damped.solve(&p, &s);
            assert!(status.converged, "{}", s.name());
            let err = u.max_abs_diff(&p.exact_solution().unwrap());
            assert!(err < 5e-2, "{}: error {err}", s.name());
        }
    }

    #[test]
    fn check_period_changes_iteration_count_only_slightly() {
        let n = 12;
        let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
        let base = JacobiSolver { check: CheckPolicy::Every(1), tol: 1e-9, ..Default::default() };
        let lazy = JacobiSolver { check: CheckPolicy::Every(25), tol: 1e-9, ..Default::default() };
        let (_, s1) = base.solve(&p, &Stencil::five_point());
        let (_, s25) = lazy.solve(&p, &Stencil::five_point());
        assert!(s1.converged && s25.converged);
        assert!(s25.iterations >= s1.iterations);
        assert!(s25.iterations <= s1.iterations + 25, "{} vs {}", s25.iterations, s1.iterations);
        assert_eq!(s25.iterations % 25, 0);
    }

    #[test]
    fn geometric_policy_converges_with_bounded_overshoot() {
        let n = 16;
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let eager = JacobiSolver { tol: 1e-9, ..Default::default() };
        let lazy =
            JacobiSolver { check: CheckPolicy::geometric(), tol: 1e-9, ..Default::default() };
        let (_, se) = eager.solve(&p, &Stencil::five_point());
        let (_, sl) = lazy.solve(&p, &Stencil::five_point());
        assert!(se.converged && sl.converged);
        assert!(sl.iterations >= se.iterations);
        // Geometric gaps are capped at 256: bounded overshoot.
        assert!(sl.iterations <= se.iterations + 256, "{} vs {}", sl.iterations, se.iterations);
        // The lazy schedule must land on schedule points.
        assert!(CheckPolicy::geometric().schedule(sl.iterations).contains(&sl.iterations));
    }

    /// The plain historical loop: one whole-grid sweep, a separate blend
    /// pass, swap — the k=1 reference the block-of-k loop must match
    /// bitwise.
    fn reference_iterates(p: &PoissonProblem, s: &Stencil, omega: f64, iters: usize) -> Grid2D {
        use crate::apply::jacobi_sweep;
        let halo = s.reach();
        let h2 = p.h() * p.h();
        let mut u = p.initial_grid(halo);
        let mut next = p.initial_grid(halo);
        let f = p.forcing();
        for _ in 0..iters {
            jacobi_sweep(s, &u, &mut next, f, h2);
            if omega != 1.0 {
                for r in 0..u.rows() {
                    let urow = u.interior_row(r).to_vec();
                    for (nv, &uv) in next.interior_row_mut(r).iter_mut().zip(&urow) {
                        *nv = omega * *nv + (1.0 - omega) * uv;
                    }
                }
            }
            u.swap(&mut next);
        }
        u
    }

    #[test]
    fn block_of_k_iterates_match_the_plain_loop_bitwise() {
        // tol = 0 never converges, so exactly `max_iters` iterations run —
        // lazy policies trigger temporal-tiled blocks of every size up to
        // the cap, including a truncated final block.
        let p = PoissonProblem::manufactured(14, Manufactured::SinSin);
        for s in [Stencil::five_point(), Stencil::thirteen_point_star()] {
            for check in [CheckPolicy::Every(1), CheckPolicy::Every(7), CheckPolicy::geometric()] {
                for omega in [1.0, 0.8] {
                    let solver = JacobiSolver {
                        tol: 0.0,
                        max_iters: 23,
                        check,
                        omega,
                        ..Default::default()
                    };
                    let (u, status) = solver.solve(&p, &s);
                    assert_eq!(status.iterations, 23);
                    let reference = reference_iterates(&p, &s, omega, 23);
                    assert_eq!(u.max_abs_diff(&reference), 0.0, "{} {check:?} ω={omega}", s.name());
                }
            }
        }
    }

    #[test]
    fn damped_jacobi_still_converges() {
        let p = PoissonProblem::manufactured(10, Manufactured::Bubble);
        let solver = JacobiSolver { omega: 0.8, tol: 1e-9, ..Default::default() };
        let (u, status) = solver.solve(&p, &Stencil::five_point());
        assert!(status.converged);
        // Damping slows convergence but lands on the same fixed point.
        let res = residual_max(&Stencil::five_point(), &u, p.forcing(), p.h() * p.h());
        assert!(res < 1e-5, "residual {res}");
    }

    #[test]
    fn iteration_cap_reports_non_convergence() {
        let p = PoissonProblem::manufactured(24, Manufactured::SinSin);
        let solver = JacobiSolver { max_iters: 10, tol: 1e-12, ..Default::default() };
        let (_, status) = solver.solve(&p, &Stencil::five_point());
        assert!(!status.converged);
        assert_eq!(status.iterations, 10);
        assert!(status.final_diff > 1e-12);
    }

    #[test]
    fn parallel_solve_is_bit_identical_to_sequential() {
        for s in [Stencil::five_point(), Stencil::thirteen_point_star()] {
            let p = PoissonProblem::manufactured(14, Manufactured::SinSin);
            let solver = JacobiSolver { omega: 0.8, tol: 1e-9, ..Default::default() };
            let (u_seq, s_seq) = solver.solve(&p, &s);
            let (u_par, s_par) = solver.parallel().solve(&p, &s);
            assert_eq!(s_seq.iterations, s_par.iterations, "{}", s.name());
            assert_eq!(u_seq.max_abs_diff(&u_par), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn resumed_solves_are_bit_identical_at_every_checkpoint_granularity() {
        use crate::checkpoint::{CheckpointCtx, CheckpointPolicy, CheckpointStore};
        // Interrupt a solve by capping its budget (the snapshot the
        // "dead shard" left behind survives), then resume with the full
        // budget and demand the uninterrupted result, bit for bit —
        // every catalogue stencil, eager + geometric check schedules,
        // and several checkpoint cadences.
        let p = PoissonProblem::manufactured(12, Manufactured::SinSin);
        for s in Stencil::catalog() {
            for check in [CheckPolicy::Every(3), CheckPolicy::geometric()] {
                let solver = JacobiSolver { omega: 0.8, tol: 1e-9, check, ..Default::default() };
                let (u_ref, st_ref) = solver.solve(&p, &s);
                assert!(st_ref.converged, "{}", s.name());
                for every in [1usize, 2, 4] {
                    for cut in [st_ref.iterations / 3, 2 * st_ref.iterations / 3] {
                        let store = CheckpointStore::new(4);
                        let policy = CheckpointPolicy::every(every);
                        let ctx = CheckpointCtx { store: &store, policy, key: 7 };
                        // First leg: dies (runs out of budget) at `cut`.
                        let interrupted = JacobiSolver { max_iters: cut, ..solver };
                        let (_, st1, from1) = interrupted.solve_checkpointed(&p, &s, Some(ctx));
                        assert!(!st1.converged);
                        assert_eq!(from1, None);
                        let saved = store.load(7).expect("snapshot survives the interruption");
                        assert!(saved.iteration < cut);
                        // Second leg: the failover resumes and finishes.
                        let (u2, st2, from2) = solver.solve_checkpointed(&p, &s, Some(ctx));
                        assert_eq!(from2, Some(saved.iteration), "{} every={every}", s.name());
                        assert_eq!(st2.iterations, st_ref.iterations, "{}", s.name());
                        assert_eq!(st2.final_diff.to_bits(), st_ref.final_diff.to_bits());
                        assert_eq!(
                            u2.max_abs_diff(&u_ref),
                            0.0,
                            "{} {check:?} every={every} cut={cut}",
                            s.name()
                        );
                        // Converged: the solve cleaned up after itself.
                        assert!(store.load(7).is_none());
                        assert_eq!(store.resumes(), 1);
                    }
                }
            }
        }
    }

    #[test]
    fn checkpoint_cadence_counts_checks_not_iterations() {
        use crate::checkpoint::{CheckpointCtx, CheckpointPolicy, CheckpointStore};
        // tol = 0 never converges: exactly max_iters run, checks land
        // every 5 iterations, snapshots every 2nd check — the surviving
        // snapshot is the last boundary before the cap.
        let p = PoissonProblem::manufactured(10, Manufactured::Bubble);
        let store = CheckpointStore::new(2);
        let ctx = CheckpointCtx { store: &store, policy: CheckpointPolicy::every(2), key: 1 };
        let solver = JacobiSolver {
            tol: 0.0,
            max_iters: 23,
            check: CheckPolicy::Every(5),
            ..Default::default()
        };
        let (_, st, from) = solver.solve_checkpointed(&p, &Stencil::five_point(), Some(ctx));
        assert!(!st.converged);
        assert_eq!(from, None);
        // Checks at 5, 10, 15, 20 (and the cap 23); snapshots at 10, 20.
        assert_eq!(store.taken(), 2);
        assert_eq!(store.load(1).unwrap().iteration, 20);
    }

    #[test]
    fn status_reports_final_diff_below_tol_on_success() {
        let p = PoissonProblem::manufactured(8, Manufactured::Bubble);
        let (_, status) = JacobiSolver::with_tol(1e-7).solve(&p, &Stencil::five_point());
        assert!(status.converged);
        assert!(status.final_diff < 1e-7);
    }
}
