//! Checkpoint/restart for long iterative solves.
//!
//! A solve interrupted by shard loss used to restart from iteration
//! zero — the recovery curve of the whole fleet was gated on redoing
//! work that had already been paid for (Gunther's `T∞` critical-path
//! bound, applied to lost state instead of lost capacity). This module
//! makes solver state restartable:
//!
//! * [`CheckpointPolicy`] — snapshot cadence, counted in convergence
//!   checks: the solver already pays for a global reduction at each
//!   check, so check boundaries are the only places a snapshot is
//!   taken (and the only places one is *needed* — between checks the
//!   iterate is reconstructible by re-running from the last boundary).
//! * [`Checkpoint`] — one snapshot: the interior of the current
//!   iterate plus the iteration/check counters. The check-policy
//!   cursor is *not* stored: every [`crate::CheckPolicy`] schedule is
//!   a pure function of the iteration count, so a resume fast-forwards
//!   the cursor deterministically. Solvers here are RNG-free by
//!   construction, so the snapshot is complete.
//! * [`CheckpointStore`] — a bounded in-memory store keyed by the
//!   canonical cache-key hash. Shared (`Arc`) across every engine in a
//!   fleet it stands in for a checkpoint service: a solve killed on
//!   one shard resumes from its latest snapshot on the failover shard.
//! * [`CheckpointCtx`] — the store + policy + key bundle a
//!   checkpoint-aware solve call carries.
//!
//! Resume is **bit-identical**: Jacobi reads only the previous
//! iterate, the previous iterate's interior is exactly what the
//! snapshot holds, boundary/halo values are reconstructed from the
//! problem (they never change), and the scratch buffer's interior is
//! always fully written before it is read. The property tests in
//! `jacobi.rs` and the partitioned executor pin this for every
//! stencil, check policy, and checkpoint granularity.

use parspeed_grid::Grid2D;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How often to snapshot: every `every`-th convergence check. Checks
/// are where the solver already synchronizes, so the snapshot adds one
/// interior copy and no extra reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot cadence in convergence checks (`1` = every check).
    pub every: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every: 1 }
    }
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every`-th check (`every ≥ 1`).
    pub fn every(every: usize) -> Self {
        assert!(every >= 1, "checkpoint cadence must be at least 1 check");
        CheckpointPolicy { every }
    }
}

/// One solver snapshot: the current iterate's interior plus the
/// counters a resume needs. Boundary and halo cells are excluded on
/// purpose — they are a pure function of the problem and are rebuilt
/// on resume, which keeps the snapshot exactly `rows × cols` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Iteration count at the snapshot (a check boundary).
    pub iteration: usize,
    /// Convergence checks performed up to and including the boundary.
    pub checks: usize,
    /// Interior rows of the snapshotted grid.
    pub rows: usize,
    /// Interior columns of the snapshotted grid.
    pub cols: usize,
    /// Row-major interior values (`rows × cols`).
    pub interior: Vec<f64>,
}

impl Checkpoint {
    /// Captures `u`'s interior at iteration `iteration` (after `checks`
    /// convergence checks).
    pub fn capture(u: &Grid2D, iteration: usize, checks: usize) -> Self {
        let (rows, cols) = (u.rows(), u.cols());
        let mut interior = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            interior.extend_from_slice(u.interior_row(r));
        }
        Checkpoint { iteration, checks, rows, cols, interior }
    }

    /// Whether this snapshot fits grid `u` (same interior shape).
    pub fn fits(&self, u: &Grid2D) -> bool {
        self.rows == u.rows() && self.cols == u.cols()
    }

    /// Writes the snapshot back into `u`'s interior (halo untouched).
    pub fn restore_into(&self, u: &mut Grid2D) {
        assert!(self.fits(u), "checkpoint shape mismatch");
        for r in 0..self.rows {
            u.interior_row_mut(r)
                .copy_from_slice(&self.interior[r * self.cols..(r + 1) * self.cols]);
        }
    }
}

/// A bounded in-memory checkpoint store keyed by the canonical
/// cache-key hash (the same hash that routes the request, so the
/// failover shard computes the same key and finds the snapshot).
///
/// Capacity-bounded with least-recently-saved eviction: a runaway
/// workload of distinct long solves degrades to restart-from-zero,
/// never to unbounded memory. Completed solves remove their entry.
#[derive(Debug)]
pub struct CheckpointStore {
    capacity: usize,
    inner: Mutex<Inner>,
    taken: AtomicU64,
    resumes: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Checkpoint>,
    order: VecDeque<u64>, // save order, oldest first
}

impl CheckpointStore {
    /// A store holding at most `capacity` snapshots (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "checkpoint store needs capacity for at least one snapshot");
        CheckpointStore {
            capacity,
            inner: Mutex::new(Inner::default()),
            taken: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
        }
    }

    /// Saves (or replaces) the snapshot for `key`, evicting the oldest
    /// entry when the store is full.
    pub fn save(&self, key: u64, checkpoint: Checkpoint) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key, checkpoint).is_some() {
            inner.order.retain(|&k| k != key);
        }
        inner.order.push_back(key);
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
        }
        self.taken.fetch_add(1, Ordering::Relaxed);
    }

    /// The latest snapshot for `key`, if one survives.
    pub fn load(&self, key: u64) -> Option<Checkpoint> {
        self.inner.lock().unwrap().map.get(&key).cloned()
    }

    /// Drops `key`'s snapshot (a completed solve cleans up after
    /// itself).
    pub fn remove(&self, key: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.remove(&key).is_some() {
            inner.order.retain(|&k| k != key);
        }
    }

    /// Snapshots currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total snapshots taken (the `checkpoints_taken` counter).
    pub fn taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// Total solves resumed from a snapshot (the `resumes` counter).
    pub fn resumes(&self) -> u64 {
        self.resumes.load(Ordering::Relaxed)
    }

    /// Records one resume (called by the solver that restored state).
    pub fn note_resume(&self) {
        self.resumes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Everything a checkpoint-aware solve call needs: where snapshots
/// live, how often to take them, and which key this solve is.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointCtx<'a> {
    /// The (typically fleet-shared) store.
    pub store: &'a CheckpointStore,
    /// Snapshot cadence.
    pub policy: CheckpointPolicy,
    /// The canonical cache-key hash identifying this solve.
    pub key: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: usize, cols: usize, halo: usize, seed: f64) -> Grid2D {
        let mut g = Grid2D::new(rows, cols, halo);
        for r in 0..rows {
            for c in 0..cols {
                g.set(r, c, seed + (r * cols + c) as f64);
            }
        }
        g
    }

    #[test]
    fn capture_restore_round_trips_the_interior_only() {
        let g = grid(4, 3, 2, 0.5);
        let cp = Checkpoint::capture(&g, 17, 3);
        assert_eq!(cp.iteration, 17);
        assert_eq!(cp.checks, 3);
        assert_eq!(cp.interior.len(), 12);
        // Restore into a grid with different interior but its own halo.
        let mut h = grid(4, 3, 2, 100.0);
        h.set_h(-1, -1, 7.25);
        cp.restore_into(&mut h);
        assert_eq!(h.max_abs_diff(&g), 0.0);
        assert_eq!(h.get_h(-1, -1), 7.25, "halo must be untouched");
        assert!(!cp.fits(&grid(3, 3, 0, 0.0)));
    }

    #[test]
    fn store_is_bounded_with_oldest_first_eviction() {
        let store = CheckpointStore::new(2);
        let cp = |i| Checkpoint::capture(&grid(2, 2, 0, i as f64), i, 1);
        store.save(1, cp(1));
        store.save(2, cp(2));
        store.save(3, cp(3)); // evicts key 1
        assert_eq!(store.len(), 2);
        assert!(store.load(1).is_none());
        assert!(store.load(2).is_some());
        assert!(store.load(3).is_some());
        // Re-saving refreshes recency: key 2 survives the next eviction.
        store.save(2, cp(20));
        store.save(4, cp(4)); // evicts key 3, not key 2
        assert!(store.load(3).is_none());
        assert_eq!(store.load(2).unwrap().iteration, 20);
        assert_eq!(store.taken(), 5);
        store.remove(2);
        assert!(store.load(2).is_none());
        assert_eq!(store.len(), 1);
        assert_eq!(store.resumes(), 0);
        store.note_resume();
        assert_eq!(store.resumes(), 1);
    }
}
