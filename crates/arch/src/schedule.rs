//! Slot-scheduled shared-bus simulation (§8 future work).
//!
//! The paper closes by suggesting "clever scheduling to access
//! communication resources" as a contention remedy. The analytic answer is
//! in `parspeed_core::schedule`; this simulator is its event-level
//! counterpart, with everything the closed forms idealize away: non-uniform
//! batches (domain-edge partitions move less), explicit slot tables, and a
//! FIFO write drain that interleaves with the tail of the read plan.
//!
//! One iteration under [`ScheduledBusSim`]:
//!
//! 1. **Read plan** — the bus is granted to one partition at a time for its
//!    whole boundary-read batch, in [`SlotOrder`]; partition `i` starts
//!    computing the moment its own batch (plus the local `c` per-word
//!    overhead) lands, overlapping every later slot's read.
//! 2. **Write drain** — a partition posts its boundary-write batch when its
//!    sweep finishes; the bus serves posted batches first-come-first-served
//!    (ties by slot order) once the read plan has released it.
//!
//! Word-granularity round-robin — the naive "fair" schedule — is also
//! provided and is *provably the unscheduled bus*: each of `P` concurrent
//! requesters gets `1/P` of the bandwidth, which is processor sharing,
//! which is the paper's `c + b·P`. The tests pin both results: staggering
//! tracks the asynchronous bus, word-slicing tracks the synchronous one.

use crate::iteration::{CycleReport, IterationSpec};
use parspeed_core::BusParams;
use parspeed_desim::FcfsServer;
use parspeed_desim::Time;

/// Order in which the read plan grants bus slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOrder {
    /// Partition index order (the default; matches the analytic model).
    Index,
    /// Largest read batch first — frees the biggest compute earliest.
    LargestFirst,
    /// Smallest read batch first — minimizes mean read completion.
    SmallestFirst,
}

impl SlotOrder {
    /// The slot permutation for `spec` under this order (deterministic:
    /// ties broken by partition index).
    pub fn slots(&self, spec: &IterationSpec) -> Vec<usize> {
        let p = spec.processors();
        let mut order: Vec<usize> = (0..p).collect();
        match self {
            SlotOrder::Index => {}
            SlotOrder::LargestFirst => {
                order.sort_by_key(|&i| (usize::MAX - spec.plan.words_into(i), i));
            }
            SlotOrder::SmallestFirst => {
                order.sort_by_key(|&i| (spec.plan.words_into(i), i));
            }
        }
        order
    }
}

/// Batch-granularity slot-scheduled synchronous bus.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledBusSim {
    bus: BusParams,
    tfp: f64,
    order: SlotOrder,
}

impl ScheduledBusSim {
    /// Builds the simulator from machine constants with index slot order.
    pub fn new(m: &parspeed_core::MachineParams) -> Self {
        Self { bus: m.bus, tfp: m.tfp, order: SlotOrder::Index }
    }

    /// Builds the simulator with an explicit slot order.
    pub fn with_order(m: &parspeed_core::MachineParams, order: SlotOrder) -> Self {
        Self { bus: m.bus, tfp: m.tfp, order }
    }

    /// Builds the simulator with explicit constants.
    pub fn with(tfp: f64, bus: BusParams, order: SlotOrder) -> Self {
        Self { bus, tfp, order }
    }

    /// The slot order in use.
    pub fn order(&self) -> SlotOrder {
        self.order
    }

    /// Simulates one iteration: serial read plan in slot order, overlapped
    /// compute, FIFO write drain.
    pub fn simulate(&self, spec: &IterationSpec) -> CycleReport {
        let p = spec.processors();
        if p <= 1 {
            return CycleReport::from_finishes(
                vec![spec.max_compute(self.tfp); p.max(1)],
                spec.max_compute(self.tfp),
            );
        }
        let slots = self.order.slots(spec);

        // Read plan: the bus serves whole batches back to back.
        let mut bus = FcfsServer::new();
        let mut read_done = vec![0.0f64; p];
        for &i in &slots {
            let words = spec.plan.words_into(i) as f64;
            let (_, end) = bus.serve(Time::ZERO, words * self.bus.b);
            read_done[i] = end.as_secs() + words * self.bus.c;
        }

        // Compute phase overlaps later slots' reads; write batches are
        // posted at sweep completion.
        let compute_done: Vec<f64> =
            (0..p).map(|i| read_done[i] + spec.compute_time(i, self.tfp)).collect();

        // Write drain: FIFO by post time (ties by slot position), bus
        // available once the read plan releases it.
        let mut posts: Vec<(usize, f64)> = (0..p).map(|i| (i, compute_done[i])).collect();
        let slot_pos = {
            let mut pos = vec![0usize; p];
            for (s, &i) in slots.iter().enumerate() {
                pos[i] = s;
            }
            pos
        };
        posts.sort_by(|a, b| a.1.total_cmp(&b.1).then(slot_pos[a.0].cmp(&slot_pos[b.0])));
        let mut finish = vec![0.0f64; p];
        for (i, at) in posts {
            let words = spec.plan.words_from(i) as f64;
            let (_, end) = bus.serve(Time::from_secs(at), words * self.bus.b);
            finish[i] = end.as_secs() + words * self.bus.c;
        }
        CycleReport::from_finishes(finish, spec.max_compute(self.tfp))
    }
}

/// Word-granularity round-robin "schedule" — the negative control.
///
/// Equal per-word interleaving across `P` concurrent requesters is
/// processor sharing, so this is by construction the synchronous bus of
/// §6.1; it exists so the equivalence is executable rather than asserted.
pub fn word_round_robin(m: &parspeed_core::MachineParams, spec: &IterationSpec) -> CycleReport {
    crate::SyncBusSim::new(m).simulate(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsyncBusSim, SyncBusSim};
    use parspeed_core::{ArchModel, MachineParams, ScheduledBus, Workload};
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_stencil::{PartitionShape, Stencil};

    fn machine() -> MachineParams {
        MachineParams::paper_defaults()
    }

    #[test]
    fn single_partition_is_pure_compute() {
        let d = StripDecomposition::new(32, 1);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = ScheduledBusSim::new(&machine()).simulate(&spec);
        assert_eq!(r.cycle_time, spec.max_compute(machine().tfp));
    }

    #[test]
    fn staggering_beats_processor_sharing_everywhere() {
        // At every allocation the slot schedule only removes waiting.
        let m = machine();
        let n = 128usize;
        for p in [2usize, 4, 8, 16, 32, 64] {
            let d = StripDecomposition::new(n, p);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            let sched = ScheduledBusSim::new(&m).simulate(&spec);
            let sync = SyncBusSim::new(&m).simulate(&spec);
            assert!(
                sched.cycle_time <= sync.cycle_time * (1.0 + 1e-12),
                "P={p}: scheduled {} > sync {}",
                sched.cycle_time,
                sync.cycle_time
            );
        }
    }

    #[test]
    fn tracks_the_analytic_schedule_model() {
        // Uniform interior strips: the simulation must match
        // core::ScheduledBus up to the domain-edge deficit (edge strips
        // move half the model volume), which shrinks like 1/P.
        let m = machine();
        let n = 128usize;
        let model = ScheduledBus::new(&m);
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let mut errs = Vec::new();
        for p in [4usize, 8, 16, 32] {
            let d = StripDecomposition::new(n, p);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            let sim = ScheduledBusSim::new(&m).simulate(&spec).cycle_time;
            let t = model.cycle_time(&w, (n * n) as f64 / p as f64);
            let rel = (sim - t).abs() / t;
            assert!(rel < 1.5 / p as f64 + 0.03, "P={p}: sim {sim} vs model {t} ({rel})");
            errs.push(rel);
        }
        assert!(errs[3] < errs[0] + 1e-12, "deficit must shrink with P: {errs:?}");
    }

    #[test]
    fn recovers_async_bus_performance_at_its_optimum() {
        // The §8 headline at event level: the scheduled synchronous bus
        // matches the posted-write machine's cycle time near the async
        // optimum.
        let m = machine();
        let n = 256usize;
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let asy = parspeed_core::AsyncBus::new(&m);
        let p = ((n * n) as f64 / asy.optimal_area(&w)).round().clamp(2.0, n as f64) as usize;
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let sched = ScheduledBusSim::new(&m).simulate(&spec).cycle_time;
        let async_ = AsyncBusSim::new(&m).simulate(&spec).cycle_time;
        let rel = (sched - async_).abs() / async_;
        assert!(rel < 0.10, "scheduled {sched} vs async {async_} ({rel})");
    }

    #[test]
    fn word_round_robin_is_exactly_the_sync_bus() {
        let m = machine().with_bus_overhead(0.5e-6);
        for p in [2usize, 8, 32] {
            let d = StripDecomposition::new(96, p);
            let spec = IterationSpec::new(&d, &Stencil::nine_point_star());
            assert_eq!(word_round_robin(&m, &spec), SyncBusSim::new(&m).simulate(&spec));
        }
    }

    #[test]
    fn cycle_respects_work_conservation_lower_bounds() {
        // No schedule can beat max(total bus work, any processor's own
        // read + compute + write chain at full bus speed).
        let m = machine();
        let d = RectDecomposition::new(64, 4, 4);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        for order in [SlotOrder::Index, SlotOrder::LargestFirst, SlotOrder::SmallestFirst] {
            let r = ScheduledBusSim::with_order(&m, order).simulate(&spec);
            let total_words: usize = (0..spec.processors())
                .map(|i| spec.plan.words_into(i) + spec.plan.words_from(i))
                .sum();
            let bus_floor = total_words as f64 * m.bus.b;
            let chain_floor = (0..spec.processors())
                .map(|i| {
                    (spec.plan.words_into(i) + spec.plan.words_from(i)) as f64 * (m.bus.b + m.bus.c)
                        + spec.compute_time(i, m.tfp)
                })
                .fold(0.0, f64::max);
            assert!(r.cycle_time + 1e-15 >= bus_floor, "{order:?}");
            assert!(r.cycle_time + 1e-15 >= chain_floor, "{order:?}");
        }
    }

    #[test]
    fn slot_orders_permute_every_partition_once() {
        let d = StripDecomposition::new(40, 7); // uneven strips
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        for order in [SlotOrder::Index, SlotOrder::LargestFirst, SlotOrder::SmallestFirst] {
            let mut slots = order.slots(&spec);
            slots.sort_unstable();
            assert_eq!(slots, (0..7).collect::<Vec<_>>(), "{order:?}");
        }
    }

    #[test]
    fn smallest_first_orders_by_read_volume() {
        // Edge strips read one neighbour, interior strips two: the edge
        // strips must occupy the first slots.
        let d = StripDecomposition::new(64, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let slots = SlotOrder::SmallestFirst.slots(&spec);
        let first_two: Vec<usize> = slots[..2].to_vec();
        assert!(first_two.contains(&0) && first_two.contains(&7), "{slots:?}");
        let lf = SlotOrder::LargestFirst.slots(&spec);
        assert!(!lf[..2].contains(&0) && !lf[..2].contains(&7), "{lf:?}");
    }

    #[test]
    fn deterministic_replay() {
        let m = machine();
        let d = RectDecomposition::new(48, 3, 4);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        let a = ScheduledBusSim::new(&m).simulate(&spec);
        let b = ScheduledBusSim::new(&m).simulate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn more_processors_eventually_hurt_even_scheduled() {
        // Scheduling does not repeal contention: the bus-saturated regime
        // still dominates at fine decompositions.
        let m = machine();
        let n = 128usize;
        let cycles: Vec<f64> = [2usize, 8, 32, 128]
            .iter()
            .map(|&p| {
                let d = StripDecomposition::new(n, p);
                let spec = IterationSpec::new(&d, &Stencil::five_point());
                ScheduledBusSim::new(&m).simulate(&spec).cycle_time
            })
            .collect();
        assert!(cycles[3] > cycles[1], "contention must reappear: {cycles:?}");
    }
}
