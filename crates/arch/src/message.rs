//! Messages: packetized point-to-point transfers.

use parspeed_core::HypercubeParams;
use parspeed_grid::halo::HaloPlan;

/// A point-to-point message: all halo rectangles from `src` to `dst`
/// packed into one transfer, as a real message-passing code would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Payload in words.
    pub words: usize,
}

/// Transmission time of a `words`-word message: `⌈words/ps⌉·α + β` (§4).
pub fn message_cost(words: usize, p: &HypercubeParams) -> f64 {
    if words == 0 {
        return 0.0;
    }
    (words as f64 / p.packet_words as f64).ceil() * p.alpha + p.beta
}

/// Coalesces a halo plan's copies into one message per ordered `(src, dst)`
/// pair, sorted deterministically.
pub fn merge_messages(plan: &HaloPlan) -> Vec<Message> {
    let mut merged: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for c in plan.copies() {
        *merged.entry((c.src, c.dst)).or_insert(0) += c.words();
    }
    merged.into_iter().map(|((src, dst), words)| Message { src, dst, words }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_grid::{halo, StripDecomposition};
    use parspeed_stencil::Stencil;

    fn params() -> HypercubeParams {
        HypercubeParams { alpha: 1.0e-5, beta: 1.0e-3, packet_words: 128 }
    }

    #[test]
    fn cost_rounds_up_packets() {
        let p = params();
        assert_eq!(message_cost(0, &p), 0.0);
        assert!((message_cost(1, &p) - (1.0e-5 + 1.0e-3)).abs() < 1e-18);
        assert!((message_cost(128, &p) - (1.0e-5 + 1.0e-3)).abs() < 1e-18);
        assert!((message_cost(129, &p) - (2.0e-5 + 1.0e-3)).abs() < 1e-18);
    }

    #[test]
    fn startup_dominates_short_messages() {
        let p = params();
        let one = message_cost(1, &p);
        let full = message_cost(128, &p);
        assert_eq!(one, full); // same packet count ⇒ β amortization matters
    }

    #[test]
    fn merge_produces_one_message_per_neighbour_pair() {
        let d = StripDecomposition::new(16, 4);
        let plan = halo::plan(&d, &Stencil::five_point());
        let msgs = merge_messages(&plan);
        // 3 boundaries × 2 directions.
        assert_eq!(msgs.len(), 6);
        for m in &msgs {
            assert_eq!(m.words, 16); // one row of n=16, k=1
        }
    }

    #[test]
    fn merge_coalesces_reach_two_rings() {
        let d = StripDecomposition::new(16, 2);
        let plan = halo::plan(&d, &Stencil::nine_point_star());
        let msgs = merge_messages(&plan);
        assert_eq!(msgs.len(), 2);
        for m in &msgs {
            assert_eq!(m.words, 32); // two rows of 16
        }
    }

    #[test]
    fn merge_is_sorted_and_deterministic() {
        let d = StripDecomposition::new(32, 8);
        let plan = halo::plan(&d, &Stencil::five_point());
        let a = merge_messages(&plan);
        let b = merge_messages(&plan);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!((w[0].src, w[0].dst) < (w[1].src, w[1].dst));
        }
    }
}
