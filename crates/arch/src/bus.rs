//! Shared-bus simulations (§6).
//!
//! The bus is a word-serial resource shared by all processors; concurrent
//! transfers interleave, which is exactly a processor-sharing queue. The
//! paper's `c + b·P` effective per-word delay is therefore *emergent* here:
//! a batch of `W` words is `W·b` of bus work (completing at `W·b·P` under
//! `P`-way sharing) plus `W·c` of local per-word overhead.
//!
//! Both machines run on **one** coupled [`PsQueue`] timeline, so a write
//! posted by an early finisher steals bandwidth from reads still in
//! flight — the cross-phase contention a pair of independent
//! processor-sharing rounds would miss. [`SyncBusSim`]: read → compute →
//! write per processor. [`AsyncBusSim`]: computation ordered
//! boundary-first with writes *posted* as soon as the boundary ring is
//! updated; the iteration ends when both the compute and the drained
//! backlog are done (§6.2's `t_read + max(E·A·Tfp, b·B_total)`).

use crate::iteration::{CycleReport, IterationSpec};
use parspeed_core::BusParams;
use parspeed_desim::PsQueue;

/// Synchronous shared-bus simulator.
#[derive(Debug, Clone, Copy)]
pub struct SyncBusSim {
    bus: BusParams,
    tfp: f64,
}

/// Asynchronous (posted-write) shared-bus simulator.
#[derive(Debug, Clone, Copy)]
pub struct AsyncBusSim {
    bus: BusParams,
    tfp: f64,
}

/// Read-round completion times in isolation (no write interference) —
/// the baseline the tests compare the coupled timeline against.
#[cfg(test)]
fn read_completions(spec: &IterationSpec, bus: &BusParams) -> Vec<f64> {
    use parspeed_desim::{processor_sharing, PsArrival};
    let p = spec.processors();
    let arrivals: Vec<PsArrival> = (0..p)
        .map(|i| PsArrival { at: 0.0, work: spec.plan.words_into(i) as f64 * bus.b })
        .collect();
    let ps = processor_sharing(&arrivals);
    (0..p).map(|i| ps[i] + spec.plan.words_into(i) as f64 * bus.c).collect()
}

impl SyncBusSim {
    /// Builds the simulator from machine constants.
    pub fn new(m: &parspeed_core::MachineParams) -> Self {
        Self { bus: m.bus, tfp: m.tfp }
    }

    /// Builds the simulator with explicit constants.
    pub fn with(tfp: f64, bus: BusParams) -> Self {
        Self { bus, tfp }
    }

    /// Simulates one iteration: read round, compute, write round, all on
    /// one coupled processor-sharing timeline — a write posted by an early
    /// finisher slows reads still in flight, exactly as on a real bus.
    pub fn simulate(&self, spec: &IterationSpec) -> CycleReport {
        let p = spec.processors();
        let mut q = PsQueue::new();
        // Reads are jobs 0..p in processor order.
        for i in 0..p {
            q.offer(0.0, spec.plan.words_into(i) as f64 * self.bus.b);
        }
        let mut write_owner: Vec<usize> = Vec::with_capacity(p); // job id p+k -> processor
        let mut finish = vec![0.0f64; p];
        while let Some((job, t)) = q.next_completion() {
            if job < p {
                let i = job;
                let read_done = t + spec.plan.words_into(i) as f64 * self.bus.c;
                let compute_done = read_done + spec.compute_time(i, self.tfp);
                q.offer(compute_done, spec.plan.words_from(i) as f64 * self.bus.b);
                write_owner.push(i);
                finish[i] = compute_done; // until the write lands
            } else {
                let i = write_owner[job - p];
                finish[i] = t + spec.plan.words_from(i) as f64 * self.bus.c;
            }
        }
        CycleReport::from_finishes(finish, spec.max_compute(self.tfp))
    }
}

impl AsyncBusSim {
    /// Builds the simulator from machine constants.
    pub fn new(m: &parspeed_core::MachineParams) -> Self {
        Self { bus: m.bus, tfp: m.tfp }
    }

    /// Builds the simulator with explicit constants.
    pub fn with(tfp: f64, bus: BusParams) -> Self {
        Self { bus, tfp }
    }

    /// Simulates one iteration on one coupled timeline: reads share the
    /// bus; each partition updates its boundary ring first and posts the
    /// write batch the moment it exists, draining under computation (and
    /// under later partitions' reads — posted writes steal bus bandwidth
    /// from reads still in flight, as on the real machine).
    pub fn simulate(&self, spec: &IterationSpec) -> CycleReport {
        let p = spec.processors();
        let mut q = PsQueue::new();
        for i in 0..p {
            q.offer(0.0, spec.plan.words_into(i) as f64 * self.bus.b);
        }
        let mut write_owner: Vec<usize> = Vec::with_capacity(p);
        let mut finish = vec![0.0f64; p];
        while let Some((job, t)) = q.next_completion() {
            if job < p {
                let i = job;
                let read_done = t + spec.plan.words_into(i) as f64 * self.bus.c;
                // Boundary ring first; the batch is posted when it exists.
                let post_at = read_done + spec.e_flops * spec.plan.words_from(i) as f64 * self.tfp;
                q.offer(post_at, spec.plan.words_from(i) as f64 * self.bus.b);
                write_owner.push(i);
                finish[i] = read_done + spec.compute_time(i, self.tfp);
            } else {
                let i = write_owner[job - p];
                finish[i] = finish[i].max(t);
            }
        }
        CycleReport::from_finishes(finish, spec.max_compute(self.tfp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_core::{ArchModel, MachineParams, SyncBus, Workload};
    use parspeed_grid::{Decomposition, RectDecomposition, StripDecomposition};
    use parspeed_stencil::{PartitionShape, Stencil};

    fn machine() -> MachineParams {
        MachineParams::paper_defaults()
    }

    #[test]
    fn sync_strips_reproduce_equation_2_up_to_boundary_deficit() {
        // Equal strips: eq. (2) charges *every* partition the interior
        // volume 4nk, but the two domain-edge strips move half that, so the
        // simulated bus load is lighter by exactly 1/P of the transfer
        // term. The gap must be bounded by that deficit and vanish as P
        // grows.
        let m = machine().with_bus_overhead(0.3e-6);
        let sim = SyncBusSim::new(&m);
        let n = 128usize;
        let mut errs = Vec::new();
        for p in [4usize, 8, 16, 32] {
            let d = StripDecomposition::new(n, p);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            let r = sim.simulate(&spec);
            let bus = SyncBus::new(&m);
            let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
            let model = bus.cycle_time(&w, (n * n) as f64 / p as f64);
            let rel = (r.cycle_time - model).abs() / model;
            assert!(
                rel < 1.3 / p as f64 + 0.02,
                "P={p}: sim {} vs model {model} ({rel})",
                r.cycle_time
            );
            assert!(r.cycle_time <= model * 1.001, "sim must not exceed eq. (2)");
            errs.push(rel);
        }
        assert!(errs[3] < errs[0], "deficit must shrink with P: {errs:?}");
    }

    #[test]
    fn sync_squares_track_the_model_up_to_edge_blocks() {
        // q×q blocks: the 4q domain-edge blocks miss one or two sides, a
        // 1/q = 1/√P deficit against the all-interior model.
        let m = machine();
        let sim = SyncBusSim::new(&m);
        let bus = SyncBus::new(&m);
        let w = Workload::new(256, &Stencil::five_point(), PartitionShape::Square);
        let mut errs = Vec::new();
        for q in [4usize, 8, 16] {
            let d = RectDecomposition::new(256, q, q);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            let r = sim.simulate(&spec);
            let model = bus.cycle_time(&w, (256.0 * 256.0) / (q * q) as f64);
            let rel = (r.cycle_time - model).abs() / model;
            assert!(
                rel < 2.2 / q as f64 + 0.02,
                "q={q}: sim {} vs model {model} ({rel})",
                r.cycle_time
            );
            errs.push(rel);
        }
        assert!(errs[2] < errs[0], "deficit must shrink with √P: {errs:?}");
    }

    #[test]
    fn emergent_contention_matches_b_times_p() {
        // P equal batches sharing the bus: each read completes at
        // W·(c + b·P) — the paper's contention model, emerging from PS.
        let m = machine().with_bus_overhead(0.2e-6);
        let n = 64usize;
        let p = 8usize;
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let reads = read_completions(&spec, &m.bus);
        // Interior strips read 2nk words; with mixed batch sizes PS lets
        // small batches out earlier, but the *last* interior finisher sees
        // the full serialized load: total work / bus rate + local overhead.
        let total_words: usize = (0..p).map(|i| spec.plan.words_into(i)).sum();
        let last = reads.iter().cloned().fold(0.0, f64::max);
        let expect = total_words as f64 * m.bus.b + 2.0 * n as f64 * m.bus.c;
        assert!((last - expect).abs() / expect < 1e-9, "last {last} vs {expect}");
    }

    #[test]
    fn async_beats_sync_cycle_for_same_decomposition() {
        let m = machine();
        for p in [4usize, 8, 16, 32] {
            let d = StripDecomposition::new(256, p);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            let sync = SyncBusSim::new(&m).simulate(&spec);
            let async_ = AsyncBusSim::new(&m).simulate(&spec);
            assert!(
                async_.cycle_time <= sync.cycle_time * (1.0 + 1e-12),
                "P={p}: async {} > sync {}",
                async_.cycle_time,
                sync.cycle_time
            );
        }
    }

    #[test]
    fn async_hides_writes_when_compute_dominates() {
        // Few processors ⇒ big partitions ⇒ compute ≫ backlog: the async
        // cycle should be read + compute, with writes fully hidden.
        let m = machine();
        let d = StripDecomposition::new(256, 2);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = AsyncBusSim::new(&m).simulate(&spec);
        let reads = read_completions(&spec, &m.bus);
        let expect = (0..2).map(|i| reads[i] + spec.compute_time(i, m.tfp)).fold(0.0, f64::max);
        assert!((r.cycle_time - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn async_pays_backlog_when_communication_dominates() {
        // Many processors ⇒ tiny partitions ⇒ the bus is the bottleneck and
        // the cycle exceeds read + compute.
        let m = machine();
        let d = StripDecomposition::new(256, 128);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = AsyncBusSim::new(&m).simulate(&spec);
        let reads = read_completions(&spec, &m.bus);
        let compute_only =
            (0..128).map(|i| reads[i] + spec.compute_time(i, m.tfp)).fold(0.0, f64::max);
        assert!(r.cycle_time > compute_only * 1.2, "backlog should dominate");
    }

    #[test]
    fn async_matches_section_62_formula() {
        // Equal strips near the model optimum: compare against
        // t_read + max(E·A·Tfp, 2n³bk/A). The sim posts writes after the
        // boundary ring updates, a small O(E·2nk·Tfp) shift.
        let m = machine();
        let n = 256usize;
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let bus = parspeed_core::AsyncBus::new(&m);
        let a_star = bus.optimal_area(&w);
        let p = ((n * n) as f64 / a_star).round().clamp(2.0, n as f64) as usize;
        let d = StripDecomposition::new(n, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = AsyncBusSim::new(&m).simulate(&spec);
        let model = bus.cycle_time(&w, (n * n) as f64 / p as f64);
        let rel = (r.cycle_time - model).abs() / model;
        assert!(rel < 0.05, "sim {} vs model {model} ({rel})", r.cycle_time);
    }

    #[test]
    fn single_partition_pays_nothing() {
        let m = machine();
        let d = StripDecomposition::new(64, 1);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        for r in [SyncBusSim::new(&m).simulate(&spec), AsyncBusSim::new(&m).simulate(&spec)] {
            assert_eq!(r.cycle_time, spec.max_compute(m.tfp));
        }
    }

    #[test]
    fn overhead_c_is_local_not_bus_work() {
        // Doubling c must not slow other processors' bus service: the PS
        // makespan component is unchanged.
        let base = machine().with_bus_overhead(0.0);
        let heavy = machine().with_bus_overhead(1.0e-5);
        let d = StripDecomposition::new(128, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r0 = SyncBusSim::new(&base).simulate(&spec);
        let r1 = SyncBusSim::new(&heavy).simulate(&spec);
        let delta = r1.cycle_time - r0.cycle_time;
        // The last finisher reads 2nk and writes 2nk words: 4nk·c extra.
        let expect = 4.0 * 128.0 * 1.0e-5;
        assert!((delta - expect).abs() / expect < 0.05, "delta {delta} vs {expect}");
    }

    #[test]
    fn deterministic_replay() {
        let m = machine();
        let d = RectDecomposition::new(64, 2, 4);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        assert_eq!(SyncBusSim::new(&m).simulate(&spec), SyncBusSim::new(&m).simulate(&spec));
        assert_eq!(AsyncBusSim::new(&m).simulate(&spec), AsyncBusSim::new(&m).simulate(&spec));
    }

    #[test]
    fn more_processors_eventually_hurt_on_the_bus() {
        // The §6 headline: contention makes adding processors
        // counterproductive past the optimum.
        let m = machine();
        let n = 128usize;
        let cycles: Vec<f64> = [2usize, 4, 8, 16, 32, 64, 128]
            .iter()
            .map(|&p| {
                let d = StripDecomposition::new(n, p);
                let spec = IterationSpec::new(&d, &Stencil::five_point());
                SyncBusSim::new(&m).simulate(&spec).cycle_time
            })
            .collect();
        let min_at =
            cycles.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert!(min_at < cycles.len() - 1, "no interior optimum found: {cycles:?}");
        assert!(cycles.last().unwrap() > &cycles[min_at]);
    }

    #[test]
    fn domain_cover_sanity() {
        let d = StripDecomposition::new(64, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        assert_eq!(spec.regions.iter().map(|r| r.area()).sum::<usize>(), 64 * 64);
        assert_eq!(spec.processors(), d.count());
    }
}
