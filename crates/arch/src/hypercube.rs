//! Nearest-neighbour message-passing simulation (hypercube §4, mesh §5).
//!
//! Both machines map logically adjacent partitions onto physically adjacent
//! processors (Gray-code / subcube embeddings on the cube, native adjacency
//! on the mesh), so one simulator serves both: processors compute, then
//! perform pairwise *rendezvous exchanges* with each neighbour — a send and
//! a receive serialized through the node's single half-duplex port, costing
//! `msg(V) = ⌈V/ps⌉·α + β` each way.
//!
//! Exchanges are scheduled by a proper edge colouring of the partner graph
//! (the classical BSP schedule: strips alternate odd/even boundaries, grids
//! do N/S then E/W), executed event-by-event so load imbalance and port
//! waiting emerge naturally rather than being assumed away.

use crate::iteration::{CycleReport, IterationSpec};
use crate::message::{merge_messages, message_cost};
use parspeed_core::HypercubeParams;
use parspeed_desim::{run, Scheduler, Time, World};
use std::collections::{BTreeMap, VecDeque};

/// Simulator for hypercube- and mesh-class machines.
#[derive(Debug, Clone, Copy)]
pub struct NeighborExchangeSim {
    params: HypercubeParams,
    tfp: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    ComputeDone(usize),
    ExchangeDone(usize),
}

struct ExchangeWorld {
    endpoints: Vec<(usize, usize)>,
    duration: Vec<f64>,
    pending: Vec<VecDeque<usize>>,
    busy: Vec<bool>,
    finish: Vec<f64>,
}

impl ExchangeWorld {
    fn try_start(&mut self, i: usize, sched: &mut Scheduler<Ev>) {
        if self.busy[i] {
            return;
        }
        let Some(&e) = self.pending[i].front() else {
            self.finish[i] = self.finish[i].max(sched.now().as_secs());
            return;
        };
        let (a, b) = self.endpoints[e];
        let j = if a == i { b } else { a };
        if !self.busy[j] && self.pending[j].front() == Some(&e) {
            self.pending[i].pop_front();
            self.pending[j].pop_front();
            self.busy[i] = true;
            self.busy[j] = true;
            sched.schedule_in(self.duration[e], Ev::ExchangeDone(e));
        }
    }
}

impl World<Ev> for ExchangeWorld {
    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::ComputeDone(i) => {
                self.busy[i] = false;
                self.try_start(i, sched);
            }
            Ev::ExchangeDone(e) => {
                let (a, b) = self.endpoints[e];
                self.busy[a] = false;
                self.busy[b] = false;
                self.try_start(a, sched);
                self.try_start(b, sched);
            }
        }
    }
}

/// Greedy proper edge colouring over deterministically ordered edges.
fn edge_colors(endpoints: &[(usize, usize)], nodes: usize) -> Vec<usize> {
    let mut node_colors: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut colors = Vec::with_capacity(endpoints.len());
    for &(a, b) in endpoints {
        let mut c = 0usize;
        while node_colors[a].contains(&c) || node_colors[b].contains(&c) {
            c += 1;
        }
        node_colors[a].push(c);
        node_colors[b].push(c);
        colors.push(c);
    }
    colors
}

impl NeighborExchangeSim {
    /// Hypercube-flavoured simulator.
    pub fn hypercube(m: &parspeed_core::MachineParams) -> Self {
        Self { params: m.hypercube, tfp: m.tfp }
    }

    /// Mesh-flavoured simulator.
    pub fn mesh(m: &parspeed_core::MachineParams) -> Self {
        Self { params: m.mesh, tfp: m.tfp }
    }

    /// Simulator with explicit constants.
    pub fn with(tfp: f64, params: HypercubeParams) -> Self {
        Self { params, tfp }
    }

    /// Simulates one iteration: compute, then coloured rendezvous rounds.
    pub fn simulate(&self, spec: &IterationSpec) -> CycleReport {
        self.simulate_hops(spec, |_, _| 1)
    }

    /// [`NeighborExchangeSim::simulate`] under a partition-to-node
    /// embedding: each exchange pays its hop count (store-and-forward
    /// latency; port contention at intermediate nodes is not modelled).
    /// With a dilation-1 embedding this is exactly [`simulate`], which is
    /// the §4 mapping claim made executable.
    ///
    /// [`simulate`]: NeighborExchangeSim::simulate
    pub fn simulate_embedded(
        &self,
        spec: &IterationSpec,
        embedding: &crate::HypercubeEmbedding,
    ) -> CycleReport {
        assert_eq!(embedding.len(), spec.processors(), "embedding size mismatch");
        self.simulate_hops(spec, |a, b| embedding.hops(a, b).max(1) as usize)
    }

    fn simulate_hops(
        &self,
        spec: &IterationSpec,
        hops: impl Fn(usize, usize) -> usize,
    ) -> CycleReport {
        let p = spec.processors();
        // Undirected partner edges carrying both directions' words.
        let mut pair_words: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
        for msg in merge_messages(&spec.plan) {
            let key = (msg.src.min(msg.dst), msg.src.max(msg.dst));
            let entry = pair_words.entry(key).or_insert((0, 0));
            if msg.src < msg.dst {
                entry.0 += msg.words;
            } else {
                entry.1 += msg.words;
            }
        }
        let endpoints: Vec<(usize, usize)> = pair_words.keys().cloned().collect();
        // Rendezvous: send then receive through the half-duplex port; a
        // non-adjacent pair pays the full message cost per hop.
        let duration: Vec<f64> = endpoints
            .iter()
            .map(|&(a, b)| {
                let (fwd, bwd) = pair_words[&(a, b)];
                let h = hops(a, b) as f64;
                h * (message_cost(fwd, &self.params) + message_cost(bwd, &self.params))
            })
            .collect();
        let colors = edge_colors(&endpoints, p);
        // Per-node agendas in colour order (ties broken by edge index).
        let mut agenda: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
        for (e, &(a, b)) in endpoints.iter().enumerate() {
            agenda[a].push((colors[e], e));
            agenda[b].push((colors[e], e));
        }
        let pending: Vec<VecDeque<usize>> = agenda
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.into_iter().map(|(_, e)| e).collect()
            })
            .collect();

        let mut world = ExchangeWorld {
            endpoints,
            duration,
            pending,
            busy: vec![true; p], // busy computing until ComputeDone
            finish: vec![0.0; p],
        };
        let mut sched = Scheduler::new();
        for i in 0..p {
            sched.schedule(Time::from_secs(spec.compute_time(i, self.tfp)), Ev::ComputeDone(i));
        }
        run(&mut world, &mut sched);
        debug_assert!(world.pending.iter().all(|q| q.is_empty()), "deadlocked exchange");
        CycleReport::from_finishes(world.finish, spec.max_compute(self.tfp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_core::MachineParams;
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_stencil::Stencil;

    fn sim() -> NeighborExchangeSim {
        NeighborExchangeSim::hypercube(&MachineParams::paper_defaults())
    }

    #[test]
    fn equal_strips_match_closed_form() {
        // Interior strip: 2 neighbours × (send + recv) = 4 messages of n·k
        // words; equal compute everywhere ⇒ cycle = compute + 4·msg.
        let m = MachineParams::paper_defaults();
        let d = StripDecomposition::new(256, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        let expect = spec.max_compute(m.tfp) + 4.0 * message_cost(256, &m.hypercube);
        assert!(
            (r.cycle_time - expect).abs() / expect < 1e-12,
            "sim {} vs model {expect}",
            r.cycle_time
        );
    }

    #[test]
    fn square_blocks_match_closed_form() {
        // 4×4 blocks of 64×64 on n=256: interior block has 4 neighbours ⇒
        // 8 messages of s·k = 64 words.
        let m = MachineParams::paper_defaults();
        let d = RectDecomposition::new(256, 4, 4);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        let expect = spec.max_compute(m.tfp) + 8.0 * message_cost(64, &m.hypercube);
        assert!(
            (r.cycle_time - expect).abs() / expect < 1e-12,
            "sim {} vs model {expect}",
            r.cycle_time
        );
    }

    #[test]
    fn edge_nodes_finish_no_later_than_the_cycle() {
        let d = StripDecomposition::new(128, 4);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        // Boundary strips have one neighbour: strictly earlier finish.
        assert!(r.node_finish[0] < r.cycle_time);
        assert!(r.node_finish[3] < r.cycle_time);
        for &f in &r.node_finish {
            assert!(f <= r.cycle_time);
        }
    }

    #[test]
    fn imbalance_delays_the_cycle() {
        // 10 rows over 4 strips: heights 3,3,2,2 — the tall strips pace the
        // iteration beyond the balanced ideal.
        let m = MachineParams::paper_defaults();
        let d = StripDecomposition::new(100, 3); // heights 34,33,33
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        assert!(r.cycle_time >= spec.max_compute(m.tfp));
        assert!(r.max_compute > spec.compute_time(2, m.tfp));
    }

    #[test]
    fn single_partition_is_pure_compute() {
        let m = MachineParams::paper_defaults();
        let d = StripDecomposition::new(64, 1);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        assert_eq!(r.cycle_time, spec.max_compute(m.tfp));
        assert_eq!(r.comm_overhead(), 0.0);
    }

    #[test]
    fn reach_two_stencils_double_the_words() {
        let m = MachineParams::paper_defaults();
        let d = StripDecomposition::new(256, 4);
        let s5 = IterationSpec::new(&d, &Stencil::five_point());
        let s9 = IterationSpec::with_flops(&d, &Stencil::nine_point_star(), 6.0);
        let r5 = sim().simulate(&s5);
        let r9 = sim().simulate(&s9);
        let comm5 = r5.cycle_time - s5.max_compute(m.tfp);
        let comm9 = r9.cycle_time - s9.max_compute(m.tfp);
        // 512 words still fit the same packet count region: compare costs.
        let expect5 = 4.0 * message_cost(256, &m.hypercube);
        let expect9 = 4.0 * message_cost(512, &m.hypercube);
        assert!((comm5 - expect5).abs() / expect5 < 1e-9);
        assert!((comm9 - expect9).abs() / expect9 < 1e-9);
    }

    #[test]
    fn nine_point_box_pays_for_corners() {
        // Diagonal taps add corner exchanges (extra partner edges) that the
        // closed form ignores — the simulation must cost strictly more.
        let d = RectDecomposition::new(64, 4, 4);
        let five = sim().simulate(&IterationSpec::with_flops(&d, &Stencil::five_point(), 6.0));
        let box9 = sim().simulate(&IterationSpec::with_flops(&d, &Stencil::nine_point_box(), 6.0));
        assert!(box9.cycle_time > five.cycle_time);
    }

    #[test]
    fn simulation_is_deterministic() {
        let d = RectDecomposition::new(128, 4, 2);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        let a = sim().simulate(&spec);
        let b = sim().simulate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn gray_embedding_changes_nothing() {
        // Dilation 1 ⇒ simulate_embedded must equal the plain simulation —
        // the §4 mapping claim, executable.
        use crate::HypercubeEmbedding;
        let d = StripDecomposition::new(128, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let plain = sim().simulate(&spec);
        let embedded = sim().simulate_embedded(&spec, &HypercubeEmbedding::strip_chain(8));
        assert_eq!(plain, embedded);
    }

    #[test]
    fn bad_embeddings_cost_real_time() {
        use crate::HypercubeEmbedding;
        let p = 16usize;
        let d = StripDecomposition::new(128, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let gray = sim().simulate_embedded(&spec, &HypercubeEmbedding::strip_chain(p));
        let ident = sim().simulate_embedded(&spec, &HypercubeEmbedding::identity(p));
        let random = sim().simulate_embedded(&spec, &HypercubeEmbedding::random(p, 42));
        assert!(ident.cycle_time > gray.cycle_time, "identity should ripple-carry");
        assert!(random.cycle_time > gray.cycle_time, "random should dilate");
    }

    #[test]
    #[should_panic(expected = "embedding size mismatch")]
    fn embedded_simulation_validates_size() {
        use crate::HypercubeEmbedding;
        let d = StripDecomposition::new(64, 4);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let _ = sim().simulate_embedded(&spec, &HypercubeEmbedding::strip_chain(5));
    }

    #[test]
    fn colors_are_proper() {
        let endpoints = vec![(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)];
        let colors = edge_colors(&endpoints, 4);
        for (e, &(a, b)) in endpoints.iter().enumerate() {
            for (f, &(c, d)) in endpoints.iter().enumerate() {
                if e != f && colors[e] == colors[f] {
                    assert!(a != c && a != d && b != c && b != d, "adjacent same colour");
                }
            }
        }
    }
}
