//! Event-driven simulators of the paper's machine classes.
//!
//! Nicol & Willard measured real machines — an Intel iPSC hypercube, the
//! FLEX/32 shared-bus multiprocessor, Butterfly/RP3-class switching
//! networks. None of those exist here, so this crate builds each one as a
//! deterministic discrete-event simulation on `parspeed-desim`, faithful to
//! the paper's cost assumptions at the level where they were *assumptions*
//! and event-accurate where the paper abstracted:
//!
//! * [`NeighborExchangeSim`] — hypercube / mesh nearest-neighbour message
//!   passing: half-duplex ports, packetized messages (`⌈V/ps⌉·α + β`),
//!   rendezvous pairwise exchanges scheduled by edge colouring. Captures
//!   load imbalance and port serialization that the closed forms idealize.
//! * [`SyncBusSim`] / [`AsyncBusSim`] — a word-serial shared bus as a
//!   processor-sharing resource, so the paper's `c + b·P` contention is
//!   *emergent*, not assumed. The asynchronous variant posts writes
//!   boundary-first and lets the backlog drain under computation.
//! * [`BanyanSim`] — a word-level butterfly: `log₂P` stages of 2×2
//!   switches as FCFS resources. With the paper's dedicated-module
//!   assignment the simulation *demonstrates* the zero-contention
//!   assumption; with an adversarial assignment it measures the contention
//!   the paper's assumption avoids.
//! * [`Mesh2dSim`] — a true XY-routed store-and-forward 2-D mesh: the §5
//!   machine without the everyone-is-adjacent idealization, so box-stencil
//!   corner exchanges pay real transit through intermediate nodes' ports.
//! * [`ScheduledBusSim`] — the §8 future-work scheduler at event level:
//!   batch-granularity bus slots stagger reads under computation and drain
//!   writes FIFO, recovering the asynchronous bus's performance on
//!   synchronous hardware; [`word_round_robin`] is the negative control
//!   (word-granularity slots are processor sharing, i.e. no schedule).
//! * [`validate`] — side-by-side model-vs-simulation tables (experiment
//!   E13).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod banyan;
mod bus;
mod embedding;
mod hypercube;
mod iteration;
mod mesh2d;
mod message;
mod schedule;
pub mod validate;

pub use banyan::{BanyanSim, ModuleAssignment};
pub use bus::{AsyncBusSim, SyncBusSim};
pub use embedding::{gray, gray_rank, hamming, HypercubeEmbedding};
pub use hypercube::NeighborExchangeSim;
pub use iteration::{CycleReport, IterationSpec};
pub use mesh2d::{Mesh2dReport, Mesh2dSim};
pub use message::{merge_messages, message_cost, Message};
pub use schedule::{word_round_robin, ScheduledBusSim, SlotOrder};
