//! Partition-to-node embeddings for the hypercube (§4).
//!
//! The paper's hypercube analysis rests on one sentence: "the hypercube's
//! rich communication topology allows the mapping of adjacent strips (or
//! square) partitions onto processors in such a way that logically adjacent
//! partitions are mapped onto physically adjacent processors (at least with
//! stencils having no diagonals)." This module builds those mappings and
//! verifies both the claim and its parenthetical caveat:
//!
//! * [`HypercubeEmbedding::strip_chain`] — the binary reflected Gray code
//!   maps the strip chain with **dilation 1** (every pair of consecutive
//!   strips lands on nodes differing in one bit), for *any* partition
//!   count, power of two or not: a Gray path's prefix is still a path.
//! * [`HypercubeEmbedding::grid`] — the product of two Gray codes maps a
//!   `pr×pc` grid of rectangles with dilation 1 on axis neighbours. The
//!   caveat is real and measurable: **diagonal** partners (9-point box
//!   corner exchanges) differ in one row bit *and* one column bit —
//!   dilation exactly 2.
//! * [`HypercubeEmbedding::identity`] and [`HypercubeEmbedding::random`] —
//!   the baselines that show the Gray code is doing work: binary counting
//!   order flips `O(log P)` bits across ripple-carry boundaries, and a
//!   random placement dilates to about half the cube dimension.
//!
//! [`crate::NeighborExchangeSim::simulate_embedded`] charges each exchange
//! its hop count under an embedding (store-and-forward latency; contention
//! at intermediate nodes is not modelled), which quantifies what the
//! paper's mapping assumption is worth in cycle time.

use crate::iteration::IterationSpec;

/// The binary reflected Gray code of `i`.
pub fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// The inverse of [`gray`]: the rank of a Gray codeword.
pub fn gray_rank(mut g: u64) -> u64 {
    let mut r = 0u64;
    while g != 0 {
        r ^= g;
        g >>= 1;
    }
    r
}

/// Hamming distance between two node labels — the hypercube hop count.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// An assignment of partitions to hypercube node labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypercubeEmbedding {
    dims: u32,
    node_of: Vec<u64>,
}

impl HypercubeEmbedding {
    /// Smallest cube dimension holding `p` nodes.
    fn dims_for(p: usize) -> u32 {
        assert!(p > 0, "empty embedding");
        usize::BITS - (p - 1).leading_zeros()
    }

    /// Builds an embedding from explicit labels (must be distinct and fit
    /// the smallest cube holding them).
    pub fn from_labels(node_of: Vec<u64>) -> Self {
        assert!(!node_of.is_empty(), "empty embedding");
        let mut seen = node_of.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), node_of.len(), "node labels must be distinct");
        let max = *node_of.iter().max().expect("non-empty");
        let dims = if max == 0 { 0 } else { 64 - max.leading_zeros() };
        Self { dims, node_of }
    }

    /// Gray-code embedding of a chain of `p` strip partitions:
    /// partition `i` lands on node `gray(i)`. Dilation 1 for any `p`.
    pub fn strip_chain(p: usize) -> Self {
        let dims = Self::dims_for(p);
        Self { dims, node_of: (0..p as u64).map(gray).collect() }
    }

    /// Gray×Gray embedding of a `pr×pc` grid of rectangles (row-major
    /// partition indices): row bits and column bits are separate Gray
    /// codes, so axis neighbours are dilation 1 and diagonal partners are
    /// dilation 2.
    pub fn grid(pr: usize, pc: usize) -> Self {
        let bits_r = Self::dims_for(pr);
        let bits_c = Self::dims_for(pc);
        let node_of = (0..pr as u64)
            .flat_map(|r| (0..pc as u64).map(move |c| (gray(r) << bits_c) | gray(c)))
            .collect();
        Self { dims: bits_r + bits_c, node_of }
    }

    /// The naive baseline: partition `i` on node `i` (binary counting
    /// order). Ripple carries make consecutive indices far apart.
    pub fn identity(p: usize) -> Self {
        Self { dims: Self::dims_for(p), node_of: (0..p as u64).collect() }
    }

    /// A seeded random placement (Fisher–Yates over the smallest cube,
    /// splitmix64 stream): the no-structure baseline.
    pub fn random(p: usize, seed: u64) -> Self {
        let dims = Self::dims_for(p);
        let size = 1usize << dims;
        let mut labels: Vec<u64> = (0..size as u64).collect();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..size).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            labels.swap(i, j);
        }
        labels.truncate(p);
        Self { dims, node_of: labels }
    }

    /// Cube dimension (the machine has `2^dims` nodes).
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Number of embedded partitions.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// True when the embedding holds no partitions (never constructible).
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Node label of partition `i`.
    pub fn node(&self, i: usize) -> u64 {
        self.node_of[i]
    }

    /// Hop count between two partitions' nodes.
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        hamming(self.node_of[a], self.node_of[b])
    }

    /// Maximum hop count over the communicating pairs of `spec` — the
    /// embedding's dilation for that workload.
    pub fn dilation(&self, spec: &IterationSpec) -> u32 {
        self.pairs(spec).into_iter().map(|(a, b)| self.hops(a, b)).max().unwrap_or(0)
    }

    /// Mean hop count over communicating pairs.
    pub fn mean_hops(&self, spec: &IterationSpec) -> f64 {
        let pairs = self.pairs(spec);
        if pairs.is_empty() {
            return 0.0;
        }
        pairs.iter().map(|&(a, b)| self.hops(a, b) as f64).sum::<f64>() / pairs.len() as f64
    }

    /// The distinct communicating pairs of `spec`, `(min, max)`-ordered.
    fn pairs(&self, spec: &IterationSpec) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> =
            spec.plan.copies().iter().map(|c| (c.src.min(c.dst), c.src.max(c.dst))).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_stencil::Stencil;

    #[test]
    fn gray_roundtrip_and_adjacency() {
        for i in 0..4096u64 {
            assert_eq!(gray_rank(gray(i)), i);
            if i > 0 {
                assert_eq!(hamming(gray(i), gray(i - 1)), 1, "at {i}");
            }
        }
    }

    #[test]
    fn strip_chain_has_dilation_one_for_any_count() {
        // Including the non-power-of-two counts other authors dodge ([7]).
        for p in [2usize, 3, 5, 7, 8, 12, 17, 31, 33] {
            let emb = HypercubeEmbedding::strip_chain(p);
            let d = StripDecomposition::new(64.max(p), p);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            assert_eq!(emb.dilation(&spec), 1, "p={p}");
        }
    }

    #[test]
    fn grid_embedding_axis_neighbours_are_adjacent() {
        for (pr, pc) in [(2usize, 2usize), (3, 4), (4, 4), (5, 3), (8, 8)] {
            let n = 48usize;
            if !n.is_multiple_of(pc) {
                continue;
            }
            let emb = HypercubeEmbedding::grid(pr, pc);
            let d = RectDecomposition::new(n, pr, pc);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            assert_eq!(emb.dilation(&spec), 1, "{pr}×{pc}");
        }
    }

    #[test]
    fn diagonal_stencils_dilate_to_exactly_two() {
        // The paper's parenthetical: "(at least with stencils having no
        // diagonals)". Corner exchanges cross one row bit and one column
        // bit.
        let emb = HypercubeEmbedding::grid(4, 4);
        let d = RectDecomposition::new(48, 4, 4);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        assert_eq!(emb.dilation(&spec), 2);
        // Still 1 on average-dominated axis traffic.
        assert!(emb.mean_hops(&spec) < 2.0);
        assert!(emb.mean_hops(&spec) > 1.0);
    }

    #[test]
    fn identity_embedding_suffers_ripple_carry() {
        // Strips 3↔4 are 011↔100: three bit flips.
        let emb = HypercubeEmbedding::identity(8);
        let d = StripDecomposition::new(64, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        assert!(emb.dilation(&spec) >= 3);
    }

    #[test]
    fn random_embedding_is_worse_than_gray_on_average() {
        let p = 32usize;
        let d = StripDecomposition::new(64, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let gray_emb = HypercubeEmbedding::strip_chain(p);
        let rnd = HypercubeEmbedding::random(p, 0xDECAF);
        assert!(rnd.mean_hops(&spec) > gray_emb.mean_hops(&spec));
        assert_eq!(gray_emb.mean_hops(&spec), 1.0);
    }

    #[test]
    fn dims_are_minimal() {
        assert_eq!(HypercubeEmbedding::strip_chain(1).dims(), 0);
        assert_eq!(HypercubeEmbedding::strip_chain(2).dims(), 1);
        assert_eq!(HypercubeEmbedding::strip_chain(5).dims(), 3);
        assert_eq!(HypercubeEmbedding::strip_chain(8).dims(), 3);
        assert_eq!(HypercubeEmbedding::strip_chain(9).dims(), 4);
        assert_eq!(HypercubeEmbedding::grid(3, 5).dims(), 2 + 3);
    }

    #[test]
    fn random_labels_are_distinct_and_seeded() {
        let a = HypercubeEmbedding::random(20, 7);
        let b = HypercubeEmbedding::random(20, 7);
        let c = HypercubeEmbedding::random(20, 8);
        assert_eq!(a, b, "same seed must replay");
        assert_ne!(a, c, "different seeds should differ");
        let mut labels: Vec<u64> = (0..20).map(|i| a.node(i)).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 20);
    }

    #[test]
    fn from_labels_validates() {
        let e = HypercubeEmbedding::from_labels(vec![0, 3, 1]);
        assert_eq!(e.dims(), 2);
        assert_eq!(e.hops(0, 1), 2);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_duplicate_labels() {
        let _ = HypercubeEmbedding::from_labels(vec![1, 1]);
    }
}
