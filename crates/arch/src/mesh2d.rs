//! A true 2-D mesh machine (§5): XY-routed, store-and-forward.
//!
//! [`crate::NeighborExchangeSim`] prices the §5 mesh under the paper's own
//! assumption — every communicating pair is physically adjacent. That is
//! exact for axis-neighbour stencils, because the natural placement (one
//! partition per mesh node, in partition-grid order) *is* adjacency. But a
//! box stencil's corner exchanges have no mesh link: they route two hops
//! through an intermediate node, occupying that node's port and queueing
//! behind its own traffic. [`Mesh2dSim`] simulates exactly that —
//! XY routing (columns first), one half-duplex port per node held for the
//! full message cost at every hop (store-and-forward) — so the §5 caveat
//! about diagonals has a measurable price, not just a dilation count.
//!
//! Placement is derived from the partition geometry itself: a partition's
//! node coordinates are the ranks of its region's corner rows/columns, so
//! strips sit on a chain and `pr×pc` rectangles on a `pr×pc` mesh — the
//! "native adjacency" that §5 contrasts with the hypercube's Gray-code
//! argument.

use crate::iteration::{CycleReport, IterationSpec};
use crate::message::{merge_messages, message_cost};
use parspeed_core::HypercubeParams;
use parspeed_desim::{run, Scheduler, Time, World};
use std::collections::VecDeque;

/// The outcome of one simulated mesh iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh2dReport {
    /// The per-node cycle report.
    pub cycle: CycleReport,
    /// Messages that needed more than one hop (0 ⇔ the adjacency
    /// assumption held).
    pub multi_hop_messages: usize,
    /// Total port seconds spent forwarding *other* nodes' traffic.
    pub transit_time: f64,
}

/// XY-routed store-and-forward 2-D mesh simulator.
#[derive(Debug, Clone, Copy)]
pub struct Mesh2dSim {
    params: HypercubeParams,
    tfp: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    ComputeDone(usize),
    HopDone { node: usize, msg: usize },
}

struct MeshWorld {
    /// Per message: remaining node sequence (reversed: pop from the back).
    routes: Vec<Vec<usize>>,
    duration: Vec<f64>,
    hops_done: Vec<usize>,
    queues: Vec<VecDeque<usize>>,
    busy: Vec<bool>,
    port_end: Vec<f64>,
    transit_time: f64,
    multi_hop: usize,
}

impl MeshWorld {
    fn try_start(&mut self, node: usize, sched: &mut Scheduler<Ev>) {
        if self.busy[node] {
            return;
        }
        if let Some(&msg) = self.queues[node].front() {
            self.queues[node].pop_front();
            self.busy[node] = true;
            sched.schedule_in(self.duration[msg], Ev::HopDone { node, msg });
        }
    }
}

impl World<Ev> for MeshWorld {
    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::ComputeDone(node) => {
                self.busy[node] = false;
                self.try_start(node, sched);
            }
            Ev::HopDone { node, msg } => {
                self.busy[node] = false;
                self.port_end[node] = sched.now().as_secs();
                self.hops_done[msg] += 1;
                // Neither the sender's hop nor the final delivery is
                // transit; everything in between forwarded foreign words.
                if self.hops_done[msg] > 1 && !self.routes[msg].is_empty() {
                    self.transit_time += self.duration[msg];
                }
                if let Some(&next) = self.routes[msg].last() {
                    self.routes[msg].pop();
                    self.queues[next].push_back(msg);
                    self.try_start(next, sched);
                }
                self.try_start(node, sched);
            }
        }
    }
}

/// Ranks each distinct value in `vals`, preserving order.
fn ranks(mut vals: Vec<usize>) -> impl Fn(usize) -> usize {
    vals.sort_unstable();
    vals.dedup();
    move |v| vals.binary_search(&v).expect("value came from the same set")
}

impl Mesh2dSim {
    /// Builds the simulator from machine constants (mesh parameter set).
    pub fn new(m: &parspeed_core::MachineParams) -> Self {
        Self { params: m.mesh, tfp: m.tfp }
    }

    /// Builds the simulator with explicit constants.
    pub fn with(tfp: f64, params: HypercubeParams) -> Self {
        Self { params, tfp }
    }

    /// The XY route (node indices, src first) between two partitions under
    /// the natural placement for `spec`.
    fn routes_for(&self, spec: &IterationSpec) -> (Vec<(usize, usize)>, usize) {
        let row_rank = ranks(spec.regions.iter().map(|r| r.r0).collect());
        let col_rank = ranks(spec.regions.iter().map(|r| r.c0).collect());
        let coords: Vec<(usize, usize)> =
            spec.regions.iter().map(|r| (row_rank(r.r0), col_rank(r.c0))).collect();
        let cols = coords.iter().map(|&(_, c)| c).max().unwrap_or(0) + 1;
        (coords, cols)
    }

    /// Simulates one iteration.
    pub fn simulate(&self, spec: &IterationSpec) -> Mesh2dReport {
        let p = spec.processors();
        let (coords, cols) = self.routes_for(spec);
        let node_of = |rc: (usize, usize)| rc.0 * cols + rc.1;
        // Map mesh node index back to partition index (placement is a
        // bijection onto the occupied nodes; unoccupied nodes never appear
        // on an XY route between occupied grid-aligned partitions of a
        // full cover, except as transit — which is fine: give every grid
        // position a port).
        let rows = coords.iter().map(|&(r, _)| r).max().unwrap_or(0) + 1;
        let ports = rows * cols;

        let msgs = merge_messages(&spec.plan);
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(msgs.len());
        let mut duration = Vec::with_capacity(msgs.len());
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); ports];
        let mut multi_hop = 0usize;
        for (mi, m) in msgs.iter().enumerate() {
            let (r0, c0) = coords[m.src];
            let (r1, c1) = coords[m.dst];
            // XY: columns first, then rows.
            let mut seq: Vec<usize> = Vec::with_capacity(2 + r0.abs_diff(r1) + c0.abs_diff(c1));
            let mut c = c0 as isize;
            let dc = (c1 as isize - c0 as isize).signum();
            seq.push(node_of((r0, c0)));
            while c != c1 as isize {
                c += dc;
                seq.push(node_of((r0, c as usize)));
            }
            let mut r = r0 as isize;
            let dr = (r1 as isize - r0 as isize).signum();
            while r != r1 as isize {
                r += dr;
                seq.push(node_of((r as usize, c1)));
            }
            if seq.len() > 2 {
                multi_hop += 1;
            }
            outgoing[seq[0]].push(mi);
            // Reverse so hops pop from the back; the first hop (the
            // sender's port) is started via the queue, so drop it.
            seq.reverse();
            let first = seq.pop().expect("route has at least the source");
            debug_assert_eq!(first, node_of(coords[m.src]));
            routes.push(seq);
            duration.push(message_cost(m.words, &self.params));
        }

        let mut world = MeshWorld {
            hops_done: vec![0; routes.len()],
            routes,
            duration,
            queues: vec![VecDeque::new(); ports],
            busy: vec![false; ports],
            port_end: vec![0.0; ports],
            transit_time: 0.0,
            multi_hop,
        };
        let mut sched = Scheduler::new();
        // A node's port opens when its compute finishes; transit and
        // receive traffic arriving earlier queues behind that.
        let mut compute_done = vec![0.0f64; ports];
        for (i, &coord) in coords.iter().enumerate() {
            let node = node_of(coord);
            compute_done[node] = spec.compute_time(i, self.tfp);
            for &mi in &outgoing[node] {
                world.queues[node].push_back(mi);
            }
            world.busy[node] = true; // computing
            sched.schedule(Time::from_secs(compute_done[node]), Ev::ComputeDone(node));
        }
        for (node, q) in world.queues.iter().enumerate() {
            if compute_done[node] == 0.0 && !q.is_empty() {
                // Unoccupied grid position (cannot happen for full covers,
                // but keep the invariant tight).
                unreachable!("message queued at an unoccupied node");
            }
        }
        for (node, &done) in compute_done.iter().enumerate() {
            if done == 0.0 {
                world.busy[node] = false; // transit-only port, free at t=0
            }
        }
        run(&mut world, &mut sched);
        debug_assert!(world.routes.iter().all(|r| r.is_empty()), "undelivered message");

        let finish: Vec<f64> = (0..p)
            .map(|i| {
                let node = node_of(coords[i]);
                world.port_end[node].max(compute_done[node])
            })
            .collect();
        Mesh2dReport {
            cycle: CycleReport::from_finishes(finish, spec.max_compute(self.tfp)),
            multi_hop_messages: world.multi_hop,
            transit_time: world.transit_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeighborExchangeSim;
    use parspeed_core::{ArchModel, MachineParams, Mesh, Workload};
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_stencil::{PartitionShape, Stencil};

    fn machine() -> MachineParams {
        MachineParams::paper_defaults()
    }

    #[test]
    fn axis_stencils_route_single_hop() {
        let d = RectDecomposition::new(64, 4, 4);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = Mesh2dSim::new(&machine()).simulate(&spec);
        assert_eq!(r.multi_hop_messages, 0);
        assert_eq!(r.transit_time, 0.0);
    }

    #[test]
    fn equal_strips_match_the_analytic_mesh_model() {
        // Chain placement, two neighbours, send+recv serialized at each
        // port: the analytic strip charge 4·msg(nk).
        let m = machine();
        let n = 128usize;
        let d = StripDecomposition::new(n, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = Mesh2dSim::new(&m).simulate(&spec);
        let mesh = Mesh::new(&m);
        let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Strip);
        let model = mesh.cycle_time(&w, (n * n) as f64 / 8.0);
        let rel = (r.cycle.cycle_time - model).abs() / model;
        assert!(rel < 0.05, "sim {} vs model {model} ({rel})", r.cycle.cycle_time);
    }

    #[test]
    fn diagonal_stencils_pay_transit() {
        let d = RectDecomposition::new(48, 4, 4);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        let r = Mesh2dSim::new(&machine()).simulate(&spec);
        // 3×3 interior corner pairs × 2 directions each, plus edge corners.
        assert!(r.multi_hop_messages > 0);
        assert!(r.transit_time > 0.0);
    }

    #[test]
    fn transit_makes_the_mesh_slower_than_the_adjacency_idealization() {
        // NeighborExchangeSim assumes every partner adjacent; the real mesh
        // must route corners through intermediates and can only be slower.
        let m = machine();
        let d = RectDecomposition::new(64, 4, 4);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        let ideal = NeighborExchangeSim::mesh(&m).simulate(&spec);
        let real = Mesh2dSim::new(&m).simulate(&spec);
        assert!(
            real.cycle.cycle_time >= ideal.cycle_time * (1.0 - 1e-12),
            "real {} vs ideal {}",
            real.cycle.cycle_time,
            ideal.cycle_time
        );
        // And for the axis-only stencil the two agree to a few percent
        // (different but equivalent serialization orders).
        let spec5 = IterationSpec::new(&d, &Stencil::five_point());
        let i5 = NeighborExchangeSim::mesh(&m).simulate(&spec5).cycle_time;
        let r5 = Mesh2dSim::new(&m).simulate(&spec5).cycle.cycle_time;
        assert!((r5 - i5).abs() / i5 < 0.35, "5-point: {r5} vs {i5}");
    }

    #[test]
    fn single_partition_is_pure_compute() {
        let m = machine();
        let d = StripDecomposition::new(32, 1);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = Mesh2dSim::new(&m).simulate(&spec);
        assert_eq!(r.cycle.cycle_time, spec.max_compute(m.tfp));
        assert_eq!(r.multi_hop_messages, 0);
    }

    #[test]
    fn deterministic_replay() {
        let d = RectDecomposition::new(48, 3, 4);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        let a = Mesh2dSim::new(&machine()).simulate(&spec);
        let b = Mesh2dSim::new(&machine()).simulate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn imbalance_still_paces_the_mesh() {
        let m = machine();
        let d = StripDecomposition::new(100, 3); // heights 34,33,33
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = Mesh2dSim::new(&m).simulate(&spec);
        assert!(r.cycle.cycle_time >= spec.max_compute(m.tfp));
    }
}
