//! Model-vs-simulation validation tables (experiment E13).
//!
//! For each architecture, partition shape and processor count, compare the
//! closed-form cycle time of `parspeed-core` against the event-level
//! simulation of this crate. Agreement certifies that the paper's algebra
//! matches the machine behaviour it claims to abstract; the residual gaps
//! are exactly the effects the paper knowingly neglects (corner words,
//! load imbalance, boundary partitions moving less data).

use crate::{
    AsyncBusSim, BanyanSim, IterationSpec, Mesh2dSim, NeighborExchangeSim, ScheduledBusSim,
    SyncBusSim,
};
use parspeed_core::{
    ArchModel, AsyncBus, Banyan, Hypercube, MachineParams, Mesh, ScheduledBus, SyncBus, Workload,
};
use parspeed_grid::{Decomposition, RectDecomposition, StripDecomposition};
use parspeed_stencil::{PartitionShape, Stencil};

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Architecture name.
    pub arch: &'static str,
    /// Partition shape.
    pub shape: PartitionShape,
    /// Grid side.
    pub n: usize,
    /// Processors used.
    pub p: usize,
    /// Closed-form cycle time (seconds).
    pub model: f64,
    /// Simulated cycle time (seconds).
    pub sim: f64,
}

impl ValidationRow {
    /// Relative deviation `|sim − model| / model`.
    pub fn rel_err(&self) -> f64 {
        (self.sim - self.model).abs() / self.model
    }

    /// The expected agreement bound: the closed forms idealize every
    /// partition as interior, so the simulation (whose domain-edge
    /// partitions move less data) undershoots by up to `~1/P` of the
    /// transfer term for strips and `~1/√P` for squares, plus a small
    /// slack for packet rounding and posting delays.
    pub fn tolerance(&self) -> f64 {
        let p = self.p as f64;
        match self.shape {
            PartitionShape::Strip => 1.3 / p + 0.03,
            PartitionShape::Square => 2.2 / p.sqrt() + 0.03,
        }
    }
}

fn strip_decomp(n: usize, p: usize) -> Option<Box<dyn Decomposition>> {
    (p <= n).then(|| Box::new(StripDecomposition::new(n, p)) as Box<dyn Decomposition>)
}

fn square_decomp(n: usize, p: usize) -> Option<Box<dyn Decomposition>> {
    // Perfect q×q block grids only, to match the model's square idealization.
    let q = (p as f64).sqrt().round() as usize;
    (q * q == p && n.is_multiple_of(q))
        .then(|| Box::new(RectDecomposition::new(n, q, q)) as Box<dyn Decomposition>)
}

/// Builds the full validation table for grid side `n` over `procs`.
pub fn validate_all(
    m: &MachineParams,
    n: usize,
    stencil: &Stencil,
    procs: &[usize],
) -> Vec<ValidationRow> {
    let mut rows = Vec::new();
    for shape in [PartitionShape::Strip, PartitionShape::Square] {
        let w = Workload::new(n, stencil, shape);
        for &p in procs {
            if p < 2 {
                continue;
            }
            let decomp = match shape {
                PartitionShape::Strip => strip_decomp(n, p),
                PartitionShape::Square => square_decomp(n, p),
            };
            let Some(decomp) = decomp else { continue };
            let spec = IterationSpec::with_flops(decomp.as_ref(), stencil, w.e_flops);
            let area = w.points() / p as f64;

            rows.push(ValidationRow {
                arch: "hypercube",
                shape,
                n,
                p,
                model: Hypercube::new(m).cycle_time(&w, area),
                sim: NeighborExchangeSim::hypercube(m).simulate(&spec).cycle_time,
            });
            rows.push(ValidationRow {
                arch: "synchronous bus",
                shape,
                n,
                p,
                model: SyncBus::new(m).cycle_time(&w, area),
                sim: SyncBusSim::new(m).simulate(&spec).cycle_time,
            });
            rows.push(ValidationRow {
                arch: "asynchronous bus",
                shape,
                n,
                p,
                model: AsyncBus::new(m).cycle_time(&w, area),
                sim: AsyncBusSim::new(m).simulate(&spec).cycle_time,
            });
            rows.push(ValidationRow {
                arch: "switching network",
                shape,
                n,
                p,
                model: Banyan::new(m).cycle_time(&w, area),
                sim: BanyanSim::new(m).simulate(&spec).cycle.cycle_time,
            });
            rows.push(ValidationRow {
                arch: "scheduled bus",
                shape,
                n,
                p,
                model: ScheduledBus::new(m).cycle_time(&w, area),
                sim: ScheduledBusSim::new(m).simulate(&spec).cycle_time,
            });
            rows.push(ValidationRow {
                arch: "mesh (XY-routed)",
                shape,
                n,
                p,
                model: Mesh::new(m).cycle_time(&w, area),
                sim: Mesh2dSim::new(m).simulate(&spec).cycle.cycle_time,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_simulation_agree_within_tolerance() {
        let m = MachineParams::paper_defaults();
        let rows = validate_all(&m, 128, &Stencil::five_point(), &[4, 16, 64]);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.rel_err() < r.tolerance(),
                "{} {:?} n={} P={}: model {} sim {} ({:.1}%)",
                r.arch,
                r.shape,
                r.n,
                r.p,
                r.model,
                r.sim,
                100.0 * r.rel_err()
            );
        }
    }

    #[test]
    fn all_architectures_and_shapes_present() {
        let m = MachineParams::paper_defaults();
        let rows = validate_all(&m, 64, &Stencil::five_point(), &[4]);
        let archs: std::collections::BTreeSet<_> = rows.iter().map(|r| r.arch).collect();
        assert_eq!(archs.len(), 6);
        let shapes: std::collections::BTreeSet<_> =
            rows.iter().map(|r| format!("{:?}", r.shape)).collect();
        assert_eq!(shapes.len(), 2);
    }

    #[test]
    fn infeasible_processor_counts_are_skipped() {
        let m = MachineParams::paper_defaults();
        // p = 5 is not a perfect square: no square rows for it.
        let rows = validate_all(&m, 64, &Stencil::five_point(), &[5]);
        assert!(rows.iter().all(|r| r.shape == PartitionShape::Strip));
    }
}
