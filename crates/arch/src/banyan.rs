//! Word-level butterfly switching-network simulation (§7).
//!
//! The network has `S = ⌈log₂P⌉` stages of 2×2 switches between `P`
//! processors and `P` global memory modules. A word read traverses all
//! stages to the module and back: latency `2·w·S` when unobstructed. Each
//! switch output wire is a FCFS resource, so contention — when two reads
//! want the same wire in the same slot — produces real queueing delay.
//!
//! The paper *assumes* a contention-free module assignment for boundary
//! reads (its assumption set (1)–(4)). With [`ModuleAssignment::Dedicated`]
//! (partition `i` reads from module `i`) every path is wire-disjoint and
//! the simulation certifies zero waiting, validating the assumption; with
//! [`ModuleAssignment::Adversarial`] all partitions hammer module 0 and the
//! measured contention shows what the assumption is worth.

use crate::iteration::{CycleReport, IterationSpec};
use parspeed_desim::FcfsServer;
use parspeed_desim::Time;

/// How partitions' boundary words map to memory modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleAssignment {
    /// The paper's assumption: partition `i`'s boundary lives in its own
    /// module `i`; concurrent reads are conflict-free.
    Dedicated,
    /// Worst case: everything lives in module 0.
    Adversarial,
    /// A seeded random permutation of modules — the "nobody thought about
    /// placement" baseline between the two extremes (cf. Indurkhya/Stone's
    /// random-program model, §2 of the paper).
    Random(u64),
}

/// The module read by partition `i` under `a`, with `p` modules available.
fn module_of(a: ModuleAssignment, i: usize, p: usize) -> usize {
    match a {
        ModuleAssignment::Dedicated => i,
        ModuleAssignment::Adversarial => 0,
        ModuleAssignment::Random(seed) => {
            // Fisher–Yates over 0..p with a splitmix64 stream; the whole
            // permutation is recomputed so the mapping stays a bijection.
            let mut perm: Vec<usize> = (0..p).collect();
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for j in (1..p).rev() {
                let k = (next() % (j as u64 + 1)) as usize;
                perm.swap(j, k);
            }
            perm[i]
        }
    }
}

/// Word-level butterfly simulator.
#[derive(Debug, Clone, Copy)]
pub struct BanyanSim {
    /// Per-stage switch traversal time `w`.
    pub w: f64,
    /// Seconds per flop.
    pub tfp: f64,
    /// Module mapping.
    pub assignment: ModuleAssignment,
}

/// Result of simulating the read phase plus compute.
#[derive(Debug, Clone, PartialEq)]
pub struct BanyanReport {
    /// The full cycle report.
    pub cycle: CycleReport,
    /// Total seconds words spent *waiting* at switches (0 ⇔ the paper's
    /// conflict-free assumption holds).
    pub contention_wait: f64,
    /// Network stages used.
    pub stages: usize,
}

impl BanyanSim {
    /// Builds the simulator from machine constants with the paper's
    /// dedicated-module assignment.
    pub fn new(m: &parspeed_core::MachineParams) -> Self {
        Self { w: m.switch.w, tfp: m.tfp, assignment: ModuleAssignment::Dedicated }
    }

    /// Chooses a module assignment.
    pub fn with_assignment(mut self, a: ModuleAssignment) -> Self {
        self.assignment = a;
        self
    }

    /// Simulates one iteration: serial per-processor boundary reads through
    /// the switch fabric, then compute (writes are asynchronous and free,
    /// paper assumption (4)).
    pub fn simulate(&self, spec: &IterationSpec) -> BanyanReport {
        let p = spec.processors();
        let stages = (p.max(2) as f64).log2().ceil() as usize;
        let wires = 1usize << stages;
        // One FCFS resource per (stage, output wire).
        let mut ports: Vec<Vec<FcfsServer>> = vec![vec![FcfsServer::new(); wires]; stages];
        let mut wait_total = 0.0f64;
        let mut finish = vec![0.0f64; p];

        for (i, fin) in finish.iter_mut().enumerate() {
            let module = module_of(self.assignment, i, p);
            let words = spec.plan.words_into(i);
            let mut t = Time::ZERO;
            for _ in 0..words {
                // Forward trip: at stage s the wire's bit s is set to the
                // module's bit s; the busy resource is the output wire.
                let mut wire = i % wires;
                let mut when = t;
                for (s, stage_ports) in ports.iter_mut().enumerate() {
                    let bit = 1usize << s;
                    wire = (wire & !bit) | (module & bit);
                    let (start, end) = stage_ports[wire].serve(when, self.w);
                    wait_total += start - when;
                    when = end;
                }
                // Return trip: modelled as an uncontended pipeline of the
                // same depth (replies use the mirror network).
                when += self.w * stages as f64;
                t = when; // serial reads: next word issues on return
            }
            *fin = t.as_secs() + spec.compute_time(i, self.tfp);
        }
        BanyanReport {
            cycle: CycleReport::from_finishes(finish, spec.max_compute(self.tfp)),
            contention_wait: wait_total,
            stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_core::MachineParams;
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_stencil::Stencil;

    fn sim() -> BanyanSim {
        BanyanSim::new(&MachineParams::paper_defaults())
    }

    #[test]
    fn dedicated_assignment_is_contention_free() {
        // The paper's assumption, certified by simulation: zero switch
        // waiting with one module per partition.
        for p in [2usize, 4, 8, 16] {
            let d = StripDecomposition::new(64, p);
            let spec = IterationSpec::new(&d, &Stencil::five_point());
            let r = sim().simulate(&spec);
            assert_eq!(r.contention_wait, 0.0, "P={p}");
        }
    }

    #[test]
    fn read_time_matches_2w_log_n_per_word() {
        let m = MachineParams::paper_defaults();
        let p = 8usize;
        let d = StripDecomposition::new(64, p);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        // Interior strip: 2nk = 128 words, each 2·w·3 stages.
        let words = 128.0;
        let expect = words * 2.0 * m.switch.w * 3.0 + spec.max_compute(m.tfp);
        assert!(
            (r.cycle.cycle_time - expect).abs() / expect < 1e-9,
            "sim {} vs model {expect}",
            r.cycle.cycle_time
        );
    }

    #[test]
    fn adversarial_assignment_contends() {
        let d = StripDecomposition::new(32, 8);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let bad = sim().with_assignment(ModuleAssignment::Adversarial).simulate(&spec);
        assert!(bad.contention_wait > 0.0);
        let good = sim().simulate(&spec);
        assert!(bad.cycle.cycle_time > good.cycle.cycle_time);
    }

    #[test]
    fn random_assignment_sits_between_the_extremes() {
        // A random permutation conflicts at some switches (paths share
        // wires) but never serializes everything at one module.
        let d = StripDecomposition::new(64, 16);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let good = sim().simulate(&spec);
        let bad = sim().with_assignment(ModuleAssignment::Adversarial).simulate(&spec);
        // Average over seeds: any single permutation can be conflict-free
        // by luck, but across several it must show real contention.
        let mut waits = Vec::new();
        let mut cycles = Vec::new();
        for seed in 0..8u64 {
            let r = sim().with_assignment(ModuleAssignment::Random(seed)).simulate(&spec);
            waits.push(r.contention_wait);
            cycles.push(r.cycle.cycle_time);
        }
        let mean_cycle: f64 = cycles.iter().sum::<f64>() / cycles.len() as f64;
        assert!(waits.iter().any(|&w| w > 0.0), "no seed contended: {waits:?}");
        assert!(mean_cycle > good.cycle.cycle_time);
        assert!(mean_cycle < bad.cycle.cycle_time);
    }

    #[test]
    fn random_assignment_is_a_seeded_bijection() {
        let p = 32usize;
        for seed in [0u64, 1, 0xDEAD] {
            let mut seen: Vec<usize> =
                (0..p).map(|i| super::module_of(ModuleAssignment::Random(seed), i, p)).collect();
            let replay: Vec<usize> =
                (0..p).map(|i| super::module_of(ModuleAssignment::Random(seed), i, p)).collect();
            assert_eq!(seen, replay, "seed {seed} must replay");
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), p, "seed {seed} is not a bijection");
        }
    }

    #[test]
    fn stage_count_is_log2() {
        let d = StripDecomposition::new(64, 16);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        assert_eq!(sim().simulate(&spec).stages, 4);
        let d2 = StripDecomposition::new(64, 5);
        let spec2 = IterationSpec::new(&d2, &Stencil::five_point());
        assert_eq!(sim().simulate(&spec2).stages, 3); // ⌈log₂5⌉
    }

    #[test]
    fn square_blocks_read_less_than_strips() {
        // Same processor count: 4·(n/√P)·k < 2·n·k for P > 4.
        let m = MachineParams::paper_defaults();
        let p = 16usize;
        let strips = StripDecomposition::new(64, p);
        let squares = RectDecomposition::new(64, 4, 4);
        let rs = sim().simulate(&IterationSpec::new(&strips, &Stencil::five_point()));
        let rq = sim().simulate(&IterationSpec::new(&squares, &Stencil::five_point()));
        let comm_s = rs.cycle.comm_overhead();
        let comm_q = rq.cycle.comm_overhead();
        assert!(comm_q < comm_s, "squares {comm_q} vs strips {comm_s}");
        let _ = m;
    }

    #[test]
    fn deterministic_replay() {
        let d = RectDecomposition::new(32, 2, 2);
        let spec = IterationSpec::new(&d, &Stencil::nine_point_box());
        assert_eq!(sim().simulate(&spec), sim().simulate(&spec));
    }

    #[test]
    fn single_partition_reads_nothing() {
        let m = MachineParams::paper_defaults();
        let d = StripDecomposition::new(32, 1);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let r = sim().simulate(&spec);
        assert_eq!(r.cycle.cycle_time, spec.max_compute(m.tfp));
        assert_eq!(r.contention_wait, 0.0);
    }
}
