//! The common description of one simulated iteration.

use parspeed_grid::halo::{plan, HaloPlan};
use parspeed_grid::{Decomposition, Region};
use parspeed_stencil::Stencil;

/// Everything a machine simulator needs to run one iteration of a
/// partitioned Jacobi sweep: the partition geometry, the exact halo
/// exchange plan, and the per-point compute cost.
#[derive(Debug, Clone)]
pub struct IterationSpec {
    /// Domain side `n`.
    pub n: usize,
    /// Partition regions, indexed by processor.
    pub regions: Vec<Region>,
    /// Exact halo-exchange plan (ground-truth communication volumes).
    pub plan: HaloPlan,
    /// Flops per grid-point update (`E(S)`).
    pub e_flops: f64,
}

impl IterationSpec {
    /// Builds a spec from a decomposition and stencil, using the calibrated
    /// `E(S)` when available.
    pub fn new<D: Decomposition + ?Sized>(decomp: &D, stencil: &Stencil) -> Self {
        let e = stencil.calibrated_e().unwrap_or_else(|| stencil.flops_per_point());
        Self::with_flops(decomp, stencil, e)
    }

    /// Builds a spec with an explicit `E(S)`.
    pub fn with_flops<D: Decomposition + ?Sized>(
        decomp: &D,
        stencil: &Stencil,
        e_flops: f64,
    ) -> Self {
        assert!(e_flops > 0.0);
        Self { n: decomp.domain(), regions: decomp.regions(), plan: plan(decomp, stencil), e_flops }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.regions.len()
    }

    /// Compute time of processor `i` at `tfp` seconds per flop.
    pub fn compute_time(&self, i: usize, tfp: f64) -> f64 {
        self.e_flops * self.regions[i].area() as f64 * tfp
    }

    /// The longest per-processor compute time — the floor any simulated
    /// cycle must respect.
    pub fn max_compute(&self, tfp: f64) -> f64 {
        (0..self.processors()).map(|i| self.compute_time(i, tfp)).fold(0.0, f64::max)
    }
}

/// The outcome of simulating one iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleReport {
    /// Iteration completion time: when the last processor finishes.
    pub cycle_time: f64,
    /// Per-processor finish times.
    pub node_finish: Vec<f64>,
    /// The longest pure-compute time among processors.
    pub max_compute: f64,
}

impl CycleReport {
    /// Builds a report from per-node finish times.
    pub fn from_finishes(node_finish: Vec<f64>, max_compute: f64) -> Self {
        let cycle_time = node_finish.iter().cloned().fold(0.0, f64::max);
        Self { cycle_time, node_finish, max_compute }
    }

    /// Communication + waiting overhead beyond pure compute.
    pub fn comm_overhead(&self) -> f64 {
        (self.cycle_time - self.max_compute).max(0.0)
    }

    /// Fraction of the cycle that is not pure compute.
    pub fn comm_fraction(&self) -> f64 {
        if self.cycle_time == 0.0 {
            0.0
        } else {
            self.comm_overhead() / self.cycle_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_grid::StripDecomposition;

    #[test]
    fn spec_reflects_decomposition() {
        let d = StripDecomposition::new(16, 4);
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        assert_eq!(spec.processors(), 4);
        assert_eq!(spec.n, 16);
        assert_eq!(spec.e_flops, 6.0);
        // Equal strips: equal compute.
        let tfp = 1.0e-7;
        assert_eq!(spec.compute_time(0, tfp), spec.compute_time(3, tfp));
        assert!((spec.max_compute(tfp) - 6.0 * 64.0 * tfp).abs() < 1e-18);
    }

    #[test]
    fn uneven_strips_show_in_max_compute() {
        let d = StripDecomposition::new(10, 4); // heights 3,3,2,2
        let spec = IterationSpec::new(&d, &Stencil::five_point());
        let tfp = 1.0;
        assert!(spec.compute_time(0, tfp) > spec.compute_time(3, tfp));
        assert_eq!(spec.max_compute(tfp), spec.compute_time(0, tfp));
    }

    #[test]
    fn report_overheads() {
        let r = CycleReport::from_finishes(vec![2.0, 3.0, 2.5], 2.0);
        assert_eq!(r.cycle_time, 3.0);
        assert_eq!(r.comm_overhead(), 1.0);
        assert!((r.comm_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_report_is_sane() {
        let r = CycleReport::from_finishes(vec![0.0], 0.0);
        assert_eq!(r.comm_fraction(), 0.0);
    }
}
