//! Property tests for decompositions and halo plans.

use parspeed_grid::cover::verify_exact_cover;
use parspeed_grid::{
    halo, Decomposition, RectDecomposition, StripDecomposition, WorkingRectangles,
};
use parspeed_stencil::Stencil;
use proptest::prelude::*;

proptest! {
    /// `near_square` always returns exactly `p` partitions when it returns
    /// at all, and they tile the domain.
    #[test]
    fn near_square_has_exact_count(n in 2usize..128, p in 1usize..64) {
        if let Some(d) = RectDecomposition::near_square(n, p) {
            prop_assert_eq!(d.count(), p);
            verify_exact_cover(n, &d.regions()).unwrap();
        } else {
            // near_square only fails when no factorization pr·pc = p has
            // pc | n and pr ≤ n; pc = 1 works whenever p ≤ n.
            prop_assert!(p > n, "near_square({n}, {p}) should exist");
        }
    }

    /// Centrally symmetric stencils send exactly what they receive —
    /// provided every partition is at least the stencil's reach thick.
    /// Thinner strips forward deeper neighbours' reads (a 1-row strip under
    /// a reach-2 stencil is read *through*: demands on it exceed its own),
    /// so symmetry genuinely fails there; see
    /// `thin_strips_break_send_receive_symmetry` below.
    #[test]
    fn halo_plans_are_symmetric(n in 4usize..48, p in 1usize..12, stencil_idx in 0usize..4) {
        let stencil = &Stencil::catalog()[stencil_idx];
        // Cap p so the thinnest strip (⌊n/p⌋ rows) is ≥ the stencil reach.
        let p = p.min(n / stencil.reach().max(1)).max(1);
        let d = StripDecomposition::new(n, p);
        let plan = halo::plan(&d, stencil);
        for i in 0..p {
            prop_assert_eq!(plan.words_from(i), plan.words_into(i), "partition {}", i);
        }
        // Pairwise symmetry: i→j volume equals j→i volume.
        for i in 0..p {
            for j in 0..p {
                let ij: usize = plan
                    .copies()
                    .iter()
                    .filter(|c| c.src == i && c.dst == j)
                    .map(|c| c.words())
                    .sum();
                let ji: usize = plan
                    .copies()
                    .iter()
                    .filter(|c| c.src == j && c.dst == i)
                    .map(|c| c.words())
                    .sum();
                prop_assert_eq!(ij, ji);
            }
        }
    }

    /// Materialized working-rectangle decompositions tile the domain and
    /// use the block geometry the catalogue promised.
    #[test]
    fn working_rectangle_decompositions_cover(n_idx in 0usize..4, frac in 0.02f64..0.9) {
        let n = [32usize, 64, 100, 128][n_idx];
        let rects = WorkingRectangles::new(n);
        let target = (((n * n) as f64) * frac) as usize;
        if let Some(d) = rects.decomposition_for(target.max(1)) {
            verify_exact_cover(n, &d.regions()).unwrap();
        }
    }

    /// Every region of a rect decomposition has the common legal width.
    #[test]
    fn legal_rectangles_share_width(n in 2usize..96, pr in 1usize..8, pc_idx in 0usize..4) {
        let pr = pr.min(n);
        let divisors: Vec<usize> = (1..=n).filter(|d| n % d == 0).collect();
        let pc = divisors[pc_idx % divisors.len()];
        let d = RectDecomposition::new(n, pr, pc);
        let w = d.block_width();
        for i in 0..d.count() {
            prop_assert_eq!(d.region(i).cols(), w);
        }
    }

    /// Strip areas are within one row of each other and sum to n².
    #[test]
    fn strip_load_balance(n in 1usize..256, p in 1usize..64) {
        let p = p.min(n);
        let d = StripDecomposition::new(n, p);
        let total: usize = d.regions().iter().map(|r| r.area()).sum();
        prop_assert_eq!(total, n * n);
        prop_assert!(d.max_area() - d.min_area() <= n);
    }

    /// Even when thin partitions break send/receive symmetry, the plan
    /// conserves words globally: total sent equals total received, and
    /// every copy's rectangle lies inside its owner.
    #[test]
    fn halo_plans_conserve_words(n in 4usize..48, p in 1usize..24, stencil_idx in 0usize..4) {
        let stencil = &Stencil::catalog()[stencil_idx];
        let p = p.min(n);
        let d = StripDecomposition::new(n, p);
        let plan = halo::plan(&d, stencil);
        let sent: usize = (0..p).map(|i| plan.words_from(i)).sum();
        let received: usize = (0..p).map(|i| plan.words_into(i)).sum();
        prop_assert_eq!(sent, received);
        for c in plan.copies() {
            let owner = d.region(c.src);
            prop_assert_eq!(owner.intersect(&c.src_region), c.src_region);
        }
    }
}

/// The documented counterexample to send/receive symmetry: strips of one
/// row under a reach-2 stencil. Partition 2 of `8/5` strips (heights
/// 2,2,2,1,1) receives 32 words but sends 40 — its 1-row neighbour below
/// is read *through* by the partition beyond it.
#[test]
fn thin_strips_break_send_receive_symmetry() {
    let d = StripDecomposition::new(8, 5);
    let plan = halo::plan(&d, &Stencil::nine_point_star());
    assert_eq!(plan.words_into(2), 32);
    assert_eq!(plan.words_from(2), 40);
    let sent: usize = (0..5).map(|i| plan.words_from(i)).sum();
    let received: usize = (0..5).map(|i| plan.words_into(i)).sum();
    assert_eq!(sent, received, "asymmetry is local, never global");
}
