//! Exact-cover verification for decompositions.
//!
//! Every decomposition in this workspace must tile the `n×n` domain exactly:
//! regions are pairwise disjoint and their areas sum to `n²`. Tests and
//! debug assertions use [`verify_exact_cover`].

use crate::Region;

/// Why a set of regions fails to tile the domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// A region sticks out of the `n×n` domain.
    OutOfBounds {
        /// Index of the offending region.
        index: usize,
        /// The region itself.
        region: Region,
    },
    /// Two regions overlap.
    Overlap {
        /// First region index.
        a: usize,
        /// Second region index.
        b: usize,
    },
    /// Areas do not sum to `n²` (some points uncovered).
    AreaMismatch {
        /// Sum of region areas.
        covered: usize,
        /// Expected `n²`.
        expected: usize,
    },
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::OutOfBounds { index, region } => {
                write!(f, "region #{index} {region:?} exceeds the domain")
            }
            CoverError::Overlap { a, b } => write!(f, "regions #{a} and #{b} overlap"),
            CoverError::AreaMismatch { covered, expected } => {
                write!(f, "regions cover {covered} points, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// Verifies that `regions` exactly tile the `n×n` domain.
///
/// Disjointness is checked by a row sweep: regions enter at `r0` and leave
/// at `r1`, and the active column intervals are kept in an ordered map
/// where any overlap shows up against an interval's immediate neighbours —
/// `O(P log P)` for `P` partitions, cheap enough for the debug assertions
/// on fine decompositions (`P = n·pc`). Coverage is the area sum, which
/// together with disjointness and boundedness implies exact cover.
pub fn verify_exact_cover(n: usize, regions: &[Region]) -> Result<(), CoverError> {
    use std::collections::BTreeMap;

    let mut covered = 0usize;
    // (row, is_removal, region index); removals sort before insertions at
    // the same row, matching half-open row ranges.
    let mut events: Vec<(usize, bool, usize)> = Vec::with_capacity(2 * regions.len());
    for (i, r) in regions.iter().enumerate() {
        if r.r1 > n || r.c1 > n {
            return Err(CoverError::OutOfBounds { index: i, region: *r });
        }
        covered += r.area();
        if !r.is_empty() {
            events.push((r.r0, false, i));
            events.push((r.r1, true, i));
        }
    }
    events.sort_unstable_by_key(|&(row, is_removal, _)| (row, !is_removal));

    // Active column intervals, keyed by start column.
    let mut active: BTreeMap<usize, (usize, usize)> = BTreeMap::new(); // c0 -> (c1, idx)
    for (_, is_removal, i) in events {
        let r = &regions[i];
        if is_removal {
            active.remove(&r.c0);
            continue;
        }
        // The previous interval must end at or before our start …
        if let Some((_, &(prev_c1, prev_idx))) = active.range(..=r.c0).next_back() {
            if prev_c1 > r.c0 {
                return Err(CoverError::Overlap { a: prev_idx, b: i });
            }
        }
        // … and the next interval must start at or after our end.
        if let Some((&next_c0, &(_, next_idx))) = active.range(r.c0 + 1..).next() {
            if next_c0 < r.c1 {
                return Err(CoverError::Overlap { a: next_idx, b: i });
            }
        }
        active.insert(r.c0, (r.c1, i));
    }
    if covered != n * n {
        return Err(CoverError::AreaMismatch { covered, expected: n * n });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_exact_tiling() {
        let regions =
            vec![Region::new(0, 2, 0, 4), Region::new(2, 4, 0, 2), Region::new(2, 4, 2, 4)];
        verify_exact_cover(4, &regions).unwrap();
    }

    #[test]
    fn detects_out_of_bounds() {
        let regions = vec![Region::new(0, 5, 0, 4)];
        assert!(matches!(
            verify_exact_cover(4, &regions),
            Err(CoverError::OutOfBounds { index: 0, .. })
        ));
    }

    #[test]
    fn detects_overlap() {
        let regions = vec![Region::new(0, 3, 0, 4), Region::new(2, 4, 0, 4)];
        assert!(matches!(verify_exact_cover(4, &regions), Err(CoverError::Overlap { a: 0, b: 1 })));
    }

    #[test]
    fn detects_gap() {
        let regions = vec![Region::new(0, 2, 0, 4), Region::new(3, 4, 0, 4)];
        assert!(matches!(
            verify_exact_cover(4, &regions),
            Err(CoverError::AreaMismatch { covered: 12, expected: 16 })
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = CoverError::Overlap { a: 1, b: 2 };
        assert!(e.to_string().contains("overlap"));
        let e = CoverError::AreaMismatch { covered: 3, expected: 4 };
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn empty_regions_on_empty_domain() {
        // Degenerate but consistent: zero regions cover a 0×0 domain.
        verify_exact_cover(0, &[]).unwrap();
    }
}
