//! Flat, halo-padded 2-D grid storage.
//!
//! Interior points are addressed by `(row, col)` in `0..rows × 0..cols`;
//! the surrounding halo of width `halo` holds boundary values or ghost
//! copies of neighbouring partitions and is addressed with *signed* offsets
//! through [`Grid2D::get_h`]/[`Grid2D::set_h`] or by slicing padded rows.

use crate::Region;

/// A dense `rows × cols` grid of `f64` with a halo border of fixed width.
///
/// Storage is row-major over the padded extent
/// `(rows + 2·halo) × (cols + 2·halo)`, so a stencil sweep over the
/// interior reads contiguous padded rows — the layout the performance
/// guides recommend (flat `Vec`, no per-row allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2D {
    rows: usize,
    cols: usize,
    halo: usize,
    data: Vec<f64>,
}

impl Grid2D {
    /// Creates a zero-filled grid.
    pub fn new(rows: usize, cols: usize, halo: usize) -> Self {
        let data = vec![0.0; (rows + 2 * halo) * (cols + 2 * halo)];
        Self { rows, cols, halo, data }
    }

    /// Creates a grid whose *interior* is initialized from `f(row, col)`;
    /// the halo stays zero.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        halo: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::new(rows, cols, halo);
        for r in 0..rows {
            for c in 0..cols {
                g.set(r, c, f(r, c));
            }
        }
        g
    }

    /// Interior row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Interior column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Padded row stride.
    pub fn stride(&self) -> usize {
        self.cols + 2 * self.halo
    }

    /// Flat index of interior point `(r, c)`.
    #[inline]
    pub fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        (r + self.halo) * self.stride() + (c + self.halo)
    }

    /// Flat index of the padded point at signed offsets from the interior
    /// origin; `(-1, 0)` is the halo cell just above interior `(0, 0)`.
    #[inline]
    pub fn idx_h(&self, r: isize, c: isize) -> usize {
        let rr = r + self.halo as isize;
        let cc = c + self.halo as isize;
        debug_assert!(rr >= 0 && cc >= 0);
        debug_assert!((rr as usize) < self.rows + 2 * self.halo);
        debug_assert!((cc as usize) < self.cols + 2 * self.halo);
        rr as usize * self.stride() + cc as usize
    }

    /// Reads interior point `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r, c)]
    }

    /// Writes interior point `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r, c);
        self.data[i] = v;
    }

    /// Reads a padded point by signed offset (halo included).
    #[inline]
    pub fn get_h(&self, r: isize, c: isize) -> f64 {
        self.data[self.idx_h(r, c)]
    }

    /// Writes a padded point by signed offset (halo included).
    #[inline]
    pub fn set_h(&mut self, r: isize, c: isize, v: f64) {
        let i = self.idx_h(r, c);
        self.data[i] = v;
    }

    /// The whole padded backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole padded backing slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A padded row (halo columns included) at signed row offset.
    pub fn padded_row(&self, r: isize) -> &[f64] {
        let start = self.idx_h(r, -(self.halo as isize));
        &self.data[start..start + self.stride()]
    }

    /// A padded row (halo columns included) at signed row offset, mutably.
    pub fn padded_row_mut(&mut self, r: isize) -> &mut [f64] {
        let start = self.idx_h(r, -(self.halo as isize));
        let stride = self.stride();
        &mut self.data[start..start + stride]
    }

    /// The interior cells of row `r` (halo columns excluded).
    pub fn interior_row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        let start = (r + self.halo) * self.stride() + self.halo;
        &self.data[start..start + self.cols]
    }

    /// The interior cells of row `r` (halo columns excluded), mutably.
    pub fn interior_row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        let start = (r + self.halo) * self.stride() + self.halo;
        let cols = self.cols;
        &mut self.data[start..start + cols]
    }

    /// Splits the padded storage around interior row `r`: returns
    /// `(above, row, below)` where `row` is the padded row `r` (mutable),
    /// `above` is everything before it and `below` everything after, both
    /// immutable. `above` ends with the `halo` padded rows directly above
    /// `r` (each [`stride`](Grid2D::stride) long, nearest last) and `below`
    /// starts with the ones directly beneath — the slices an in-place
    /// Gauss-Seidel row kernel needs without aliasing the row being
    /// written.
    pub fn split_row_mut(&mut self, r: usize) -> (&[f64], &mut [f64], &[f64]) {
        debug_assert!(r < self.rows);
        let stride = self.stride();
        let start = (r + self.halo) * stride;
        let (above, rest) = self.data.split_at_mut(start);
        let (row, below) = rest.split_at_mut(stride);
        (above, row, below)
    }

    /// Fills the interior with a constant.
    pub fn fill(&mut self, v: f64) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.set(r, c, v);
            }
        }
    }

    /// Fills the *entire halo* (all padded cells outside the interior) with
    /// a constant — the paper's "constant boundary values" assumption.
    pub fn fill_halo(&mut self, v: f64) {
        let h = self.halo as isize;
        let pr = self.rows as isize + h;
        let pc = self.cols as isize + h;
        for r in -h..pr {
            for c in -h..pc {
                let interior = r >= 0 && r < self.rows as isize && c >= 0 && c < self.cols as isize;
                if !interior {
                    self.set_h(r, c, v);
                }
            }
        }
    }

    /// Copies the values of `src_region` in `src` (interior coordinates of
    /// `src`) into this grid, placing the top-left of the region at padded
    /// offset `(dst_r, dst_c)` of `self`. Used for halo exchange.
    pub fn copy_region_from(
        &mut self,
        src: &Grid2D,
        src_region: Region,
        dst_r: isize,
        dst_c: isize,
    ) {
        for (i, r) in (src_region.r0..src_region.r1).enumerate() {
            for (j, c) in (src_region.c0..src_region.c1).enumerate() {
                let v = src.get(r, c);
                self.set_h(dst_r + i as isize, dst_c + j as isize, v);
            }
        }
    }

    /// Maximum absolute difference over interiors; grids must have the same
    /// interior shape.
    pub fn max_abs_diff(&self, other: &Grid2D) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let mut m = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                m = m.max((self.get(r, c) - other.get(r, c)).abs());
            }
        }
        m
    }

    /// Sum over interior points of `f(value)`.
    pub fn interior_fold(&self, mut acc: f64, mut f: impl FnMut(f64, f64) -> f64) -> f64 {
        for r in 0..self.rows {
            for c in 0..self.cols {
                acc = f(acc, self.get(r, c));
            }
        }
        acc
    }

    /// Swaps backing storage with another grid of identical shape — the
    /// double-buffer step of a Jacobi sweep, O(1).
    pub fn swap(&mut self, other: &mut Grid2D) {
        assert_eq!((self.rows, self.cols, self.halo), (other.rows, other.cols, other.halo));
        std::mem::swap(&mut self.data, &mut other.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut g = Grid2D::new(4, 6, 2);
        g.set(0, 0, 1.5);
        g.set(3, 5, -2.5);
        assert_eq!(g.get(0, 0), 1.5);
        assert_eq!(g.get(3, 5), -2.5);
        assert_eq!(g.get_h(0, 0), 1.5);
        assert_eq!(g.stride(), 10);
        assert_eq!(g.as_slice().len(), 8 * 10);
    }

    #[test]
    fn halo_addressing() {
        let mut g = Grid2D::new(3, 3, 1);
        g.set_h(-1, -1, 7.0);
        g.set_h(3, 3, 8.0);
        assert_eq!(g.get_h(-1, -1), 7.0);
        assert_eq!(g.get_h(3, 3), 8.0);
        // interior untouched
        assert_eq!(g.get(0, 0), 0.0);
    }

    #[test]
    fn fill_halo_leaves_interior() {
        let mut g = Grid2D::from_fn(3, 3, 2, |r, c| (r * 3 + c) as f64);
        g.fill_halo(9.0);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(g.get(r, c), (r * 3 + c) as f64);
            }
        }
        assert_eq!(g.get_h(-2, 0), 9.0);
        assert_eq!(g.get_h(4, 4), 9.0);
        assert_eq!(g.get_h(1, -1), 9.0);
    }

    #[test]
    fn padded_row_has_stride_len() {
        let mut g = Grid2D::new(2, 4, 1);
        g.fill_halo(3.0);
        g.set(0, 0, 5.0);
        let row = g.padded_row(0);
        assert_eq!(row.len(), 6);
        assert_eq!(row[0], 3.0); // left halo
        assert_eq!(row[1], 5.0); // interior (0,0)
    }

    #[test]
    fn row_accessors_agree_with_point_accessors() {
        let mut g = Grid2D::from_fn(3, 4, 2, |r, c| (r * 10 + c) as f64);
        g.fill_halo(-1.0);
        assert_eq!(g.interior_row(1), &[10.0, 11.0, 12.0, 13.0]);
        let padded = g.padded_row(1).to_vec();
        assert_eq!(padded.len(), g.stride());
        assert_eq!(&padded[2..6], g.interior_row(1));
        assert_eq!(padded[0], -1.0);
        g.interior_row_mut(1)[2] = 99.0;
        assert_eq!(g.get(1, 2), 99.0);
        g.padded_row_mut(-2)[0] = 7.0;
        assert_eq!(g.get_h(-2, -2), 7.0);
    }

    #[test]
    fn split_row_mut_partitions_the_padding() {
        let mut g = Grid2D::from_fn(3, 3, 1, |r, c| (r * 3 + c) as f64);
        g.fill_halo(5.0);
        let stride = g.stride();
        let (above, row, below) = g.split_row_mut(1);
        assert_eq!(above.len(), 2 * stride); // top halo row + interior row 0
        assert_eq!(row.len(), stride);
        assert_eq!(below.len(), 2 * stride); // interior row 2 + bottom halo
        let row_above = &above[above.len() - stride..];
        assert_eq!(row_above[1], 0.0); // interior (0,0)
        assert_eq!(row[1], 3.0); // interior (1,0)
        assert_eq!(below[1], 6.0); // interior (2,0)
        row[1] = -9.0;
        assert_eq!(g.get(1, 0), -9.0);
    }

    #[test]
    fn copy_region_lands_in_halo() {
        let src = Grid2D::from_fn(4, 4, 0, |r, c| (10 * r + c) as f64);
        let mut dst = Grid2D::new(4, 4, 1);
        // Copy src's bottom row into dst's top halo row.
        dst.copy_region_from(&src, Region::new(3, 4, 0, 4), -1, 0);
        for c in 0..4 {
            assert_eq!(dst.get_h(-1, c as isize), (30 + c) as f64);
        }
    }

    #[test]
    fn swap_is_cheap_and_total() {
        let mut a = Grid2D::from_fn(2, 2, 1, |_, _| 1.0);
        let mut b = Grid2D::from_fn(2, 2, 1, |_, _| 2.0);
        a.swap(&mut b);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(b.get(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn diff_requires_same_shape() {
        let a = Grid2D::new(2, 2, 0);
        let b = Grid2D::new(2, 3, 0);
        let _ = a.max_abs_diff(&b);
    }

    #[test]
    fn fold_and_diff() {
        let a = Grid2D::from_fn(2, 2, 0, |r, c| (r + c) as f64);
        let b = Grid2D::from_fn(2, 2, 0, |r, c| (r + c) as f64 + 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        let sum = a.interior_fold(0.0, |acc, v| acc + v);
        assert_eq!(sum, 0.0 + 1.0 + 1.0 + 2.0);
    }
}
