//! Exact halo-exchange plans.
//!
//! For a decomposition and a stencil, [`plan`] computes every region copy
//! one iteration needs: which partition owns the data, which partition's
//! halo receives it, and the global-coordinate rectangle moved. The plan is
//! the ground-truth communication volume — the analytic model's `2nk` /
//! `4sk` volumes are approximations of it — and drives both the machine
//! simulators (`parspeed-arch`) and the real shared-memory executor
//! (`parspeed-exec`).

use crate::{Decomposition, Region};
use parspeed_stencil::Stencil;

/// One halo copy: move `src_region` (global coordinates, owned by `src`)
/// into the halo of `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopySpec {
    /// Partition that owns the data.
    pub src: usize,
    /// Partition whose halo receives it.
    pub dst: usize,
    /// The rectangle moved, in global coordinates.
    pub src_region: Region,
}

impl CopySpec {
    /// Number of words this copy moves.
    pub fn words(&self) -> usize {
        self.src_region.area()
    }
}

/// A complete per-iteration exchange plan.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    copies: Vec<CopySpec>,
    partitions: usize,
}

impl HaloPlan {
    /// All copies, ordered by `(dst, src)`.
    pub fn copies(&self) -> &[CopySpec] {
        &self.copies
    }

    /// Number of partitions in the decomposition this plan serves.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Words *received* by partition `i` per iteration.
    pub fn words_into(&self, i: usize) -> usize {
        self.copies.iter().filter(|c| c.dst == i).map(|c| c.words()).sum()
    }

    /// Words *sent* by partition `i` per iteration.
    pub fn words_from(&self, i: usize) -> usize {
        self.copies.iter().filter(|c| c.src == i).map(|c| c.words()).sum()
    }

    /// Total words moved per iteration, all partitions.
    pub fn total_words(&self) -> usize {
        self.copies.iter().map(|c| c.words()).sum()
    }

    /// Distinct communication partners of partition `i`.
    pub fn partners(&self, i: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .copies
            .iter()
            .filter_map(|c| {
                if c.dst == i {
                    Some(c.src)
                } else if c.src == i {
                    Some(c.dst)
                } else {
                    None
                }
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Computes the needed halo rectangles of `region`: the four axis slabs
/// of depth `kr`/`kc` rows/columns, plus the four corner blocks when
/// `corners` is set. All clamped to the domain.
fn needed_rects(region: &Region, n: usize, kr: usize, kc: usize, corners: bool) -> Vec<Region> {
    let mut v = Vec::with_capacity(8);
    let push = |v: &mut Vec<Region>, r: Region| {
        if !r.is_empty() {
            v.push(r);
        }
    };
    // Above / below.
    if kr > 0 {
        push(
            &mut v,
            Region {
                r0: region.r0.saturating_sub(kr),
                r1: region.r0,
                c0: region.c0,
                c1: region.c1,
            },
        );
        push(
            &mut v,
            Region { r0: region.r1, r1: (region.r1 + kr).min(n), c0: region.c0, c1: region.c1 },
        );
    }
    // Left / right.
    if kc > 0 {
        push(
            &mut v,
            Region {
                r0: region.r0,
                r1: region.r1,
                c0: region.c0.saturating_sub(kc),
                c1: region.c0,
            },
        );
        push(
            &mut v,
            Region { r0: region.r0, r1: region.r1, c0: region.c1, c1: (region.c1 + kc).min(n) },
        );
    }
    if corners && kr > 0 && kc > 0 {
        let rows =
            [(region.r0.saturating_sub(kr), region.r0), (region.r1, (region.r1 + kr).min(n))];
        let cols =
            [(region.c0.saturating_sub(kc), region.c0), (region.c1, (region.c1 + kc).min(n))];
        for (r0, r1) in rows {
            for (c0, c1) in cols {
                push(&mut v, Region { r0, r1, c0, c1 });
            }
        }
    }
    v
}

/// Builds the exchange plan for `decomp` under `stencil`: the classic
/// once-per-iteration exchange of exactly the stencil's reach.
pub fn plan<D: Decomposition + ?Sized>(decomp: &D, stencil: &Stencil) -> HaloPlan {
    plan_deep(decomp, stencil, 1)
}

/// Builds a **deep** exchange plan: the halo slabs are `depth` times the
/// stencil's reach, enough ghost data for `depth` local sub-iterations
/// between exchanges (the communication-avoiding schedule — halo traffic
/// per iteration drops by ~`depth` at the cost of a `depth·reach`-wide
/// ghost frame).
///
/// For `depth = 1` this is exactly [`plan`]. For `depth > 1` the corner
/// blocks are always included, even for cross-shaped stencils: a local
/// sub-iteration computes ghost points whose *own* neighbourhoods reach
/// diagonally into corner data after two or more steps.
pub fn plan_deep<D: Decomposition + ?Sized>(
    decomp: &D,
    stencil: &Stencil,
    depth: usize,
) -> HaloPlan {
    assert!(depth >= 1, "halo depth must be at least 1");
    let n = decomp.domain();
    let kr = depth * stencil.reach_rows();
    let kc = depth * stencil.reach_cols();
    let corners = stencil.has_diagonal() || depth > 1;
    let regions = decomp.regions();
    let mut copies = Vec::new();
    for (dst, dst_region) in regions.iter().enumerate() {
        for need in needed_rects(dst_region, n, kr, kc, corners) {
            for (src, src_region) in regions.iter().enumerate() {
                if src == dst {
                    continue;
                }
                let inter = need.intersect(src_region);
                if !inter.is_empty() {
                    copies.push(CopySpec { src, dst, src_region: inter });
                }
            }
        }
    }
    copies.sort_by_key(|c| (c.dst, c.src, c.src_region.r0, c.src_region.c0));
    HaloPlan { copies, partitions: regions.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundaryWords, RectDecomposition, StripDecomposition};
    use parspeed_stencil::Stencil;

    #[test]
    fn strip_plan_five_point() {
        let d = StripDecomposition::new(16, 4);
        let p = plan(&d, &Stencil::five_point());
        // Interior strips receive a row from each neighbour; edge strips
        // from one.
        assert_eq!(p.words_into(0), 16);
        assert_eq!(p.words_into(1), 32);
        assert_eq!(p.words_into(2), 32);
        assert_eq!(p.words_into(3), 16);
        // Symmetric: sends mirror receives.
        for i in 0..4 {
            assert_eq!(p.words_from(i), p.words_into(i));
        }
        assert_eq!(p.partners(1), vec![0, 2]);
    }

    /// The plan's per-partition receive volume must equal the exact
    /// geometric boundary count — for every decomposition and stencil.
    #[test]
    fn plan_matches_exact_boundary_words() {
        let stencils = Stencil::catalog();
        let n = 24;
        let decomps: Vec<Box<dyn Decomposition>> = vec![
            Box::new(StripDecomposition::new(n, 5)),
            Box::new(RectDecomposition::new(n, 3, 4)),
            Box::new(RectDecomposition::new(n, 2, 2)),
            Box::new(RectDecomposition::new(n, 1, 6)),
        ];
        for d in &decomps {
            for s in &stencils {
                let p = plan(d.as_ref(), s);
                for i in 0..d.count() {
                    let exact = BoundaryWords::exact(&d.region(i), n, s);
                    assert_eq!(
                        p.words_into(i),
                        exact.read,
                        "{} partition {i}: plan {} vs exact {}",
                        s.name(),
                        p.words_into(i),
                        exact.read
                    );
                }
            }
        }
    }

    #[test]
    fn reach_two_strip_spanning_thin_neighbours() {
        // Strips of height 1 with a reach-2 stencil: the needed slab spans
        // two owner partitions on each side.
        let d = StripDecomposition::new(6, 6);
        let p = plan(&d, &Stencil::nine_point_star());
        // Partition 2 needs rows 0..2 (owners 0 and 1) and rows 3..5
        // (owners 3 and 4): four partners.
        assert_eq!(p.partners(2), vec![0, 1, 3, 4]);
        assert_eq!(p.words_into(2), 4 * 6);
    }

    #[test]
    fn rect_plan_includes_corners_only_for_diagonal_stencils() {
        let d = RectDecomposition::new(12, 3, 3);
        let centre = 4; // centre block
        let p5 = plan(&d, &Stencil::five_point());
        assert_eq!(p5.partners(centre), vec![1, 3, 5, 7]);
        let p9 = plan(&d, &Stencil::nine_point_box());
        assert_eq!(p9.partners(centre), vec![0, 1, 2, 3, 5, 6, 7, 8]);
    }

    #[test]
    fn single_partition_needs_no_exchange() {
        let d = StripDecomposition::new(8, 1);
        for s in Stencil::catalog() {
            let p = plan(&d, &s);
            assert!(p.copies().is_empty(), "{}", s.name());
            assert_eq!(p.total_words(), 0);
        }
    }

    #[test]
    fn total_words_is_sum_of_directions() {
        let d = RectDecomposition::new(16, 4, 4);
        let p = plan(&d, &Stencil::five_point());
        let by_dst: usize = (0..d.count()).map(|i| p.words_into(i)).sum();
        let by_src: usize = (0..d.count()).map(|i| p.words_from(i)).sum();
        assert_eq!(by_dst, p.total_words());
        assert_eq!(by_src, p.total_words());
    }

    #[test]
    fn deep_plan_depth_one_equals_the_classic_plan() {
        for s in Stencil::catalog() {
            let d = RectDecomposition::new(24, 3, 4);
            let a = plan(&d, &s);
            let b = plan_deep(&d, &s, 1);
            assert_eq!(a.copies(), b.copies(), "{}", s.name());
        }
    }

    #[test]
    fn deep_plan_widens_slabs_and_always_has_corners() {
        let d = RectDecomposition::new(24, 3, 3);
        let centre = 4;
        let s = Stencil::five_point();
        // Depth 3 × reach 1: 3-row slabs, and corners appear even for the
        // cross stencil (ghost sub-iterations reach diagonally).
        let deep = plan_deep(&d, &s, 3);
        assert_eq!(deep.partners(centre), vec![0, 1, 2, 3, 5, 6, 7, 8]);
        // Axis slabs: 3 rows × 8 cols (or 8 × 3), corners 3 × 3.
        assert_eq!(deep.words_into(centre), 4 * 3 * 8 + 4 * 9);
        // Word volume: one depth-3 exchange moves the same slab data as
        // three depth-1 exchanges plus the corner blocks (16 diagonal
        // adjacencies × 3×3 words) — the savings are in exchange *rounds*,
        // the paper's per-iteration overhead term, not raw words.
        let shallow = plan(&d, &s);
        assert_eq!(deep.total_words(), 3 * shallow.total_words() + 16 * 9);
    }

    #[test]
    fn deep_slabs_clamp_to_the_domain_and_span_thin_owners() {
        // Strips of height 4 with depth 2 × reach 2 = 4-row slabs: the
        // needed slab is exactly one neighbour strip; at depth 3 it spans
        // two.
        let d = StripDecomposition::new(16, 4);
        let s = Stencil::nine_point_star();
        let p2 = plan_deep(&d, &s, 2);
        assert_eq!(p2.partners(0), vec![1]);
        let p3 = plan_deep(&d, &s, 3);
        assert_eq!(p3.partners(0), vec![1, 2]);
        // Depth larger than the domain: everything clamps, plan stays
        // well-formed and total volume is bounded by the domain size.
        let huge = plan_deep(&d, &s, 64);
        for c in huge.copies() {
            assert!(c.src_region.r1 <= 16 && c.src_region.c1 <= 16);
        }
    }

    #[test]
    fn copies_are_deterministically_ordered() {
        let d = RectDecomposition::new(16, 2, 2);
        let s = Stencil::nine_point_box();
        let a = plan(&d, &s);
        let b = plan(&d, &s);
        assert_eq!(a.copies(), b.copies());
        let mut sorted = a.copies().to_vec();
        sorted.sort_by_key(|c| (c.dst, c.src, c.src_region.r0, c.src_region.c0));
        assert_eq!(sorted, a.copies());
    }
}
