//! Grid storage and domain decomposition for the Nicol & Willard (1987)
//! reproduction.
//!
//! The paper discretizes a square domain into an `n×n` grid of points which
//! is decomposed into *partitions* mapped one-per-processor (§3). This crate
//! provides:
//!
//! * [`Grid2D`] — flat, halo-padded storage for grid functions,
//! * [`Region`] — half-open rectangular index regions and their geometry,
//! * [`StripDecomposition`] — full-width row strips with the paper's
//!   remainder rule ("if `n = k·P + r` then `r` processors receive `k+1`
//!   contiguous rows, and the remaining processors each receive `k`"),
//! * [`RectDecomposition`] — the paper's *legal rectangles*: strips cut by a
//!   column border every `m`-th column where `m` divides `n` (Fig. 5),
//! * [`WorkingRectangles`] — the paper's square-approximation machinery: per
//!   area, the minimum-perimeter legal rectangle, retained only if its
//!   perimeter is within 5% of the perimeter of the true square (Fig. 6),
//! * [`halo`] — exact halo-exchange plans for a decomposition and stencil,
//!   including the deep (depth-`k`) plans of the communication-avoiding
//!   executor,
//! * [`band`] — trapezoidal band traversals for temporal tiling
//!   (block-of-k sweeps over cache-resident row bands),
//! * [`cover`] — exact-cover verification used by tests and debug builds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod band;
pub mod cover;
mod geometry;
mod grid2d;
pub mod halo;
mod rect;
mod strip;
mod working;

pub use band::{BandSchedule, BandStep};
pub use geometry::{BoundaryWords, Region};
pub use grid2d::Grid2D;
pub use rect::RectDecomposition;
pub use strip::StripDecomposition;
pub use working::{WorkingRect, WorkingRectangles};

/// A decomposition of the `n×n` domain into disjoint rectangular partitions
/// that exactly cover it.
pub trait Decomposition {
    /// Side length `n` of the square domain.
    fn domain(&self) -> usize;

    /// Number of partitions (= processors used).
    fn count(&self) -> usize;

    /// The `i`-th partition's region, `i < count()`.
    fn region(&self, i: usize) -> Region;

    /// All regions in partition order.
    fn regions(&self) -> Vec<Region> {
        (0..self.count()).map(|i| self.region(i)).collect()
    }

    /// Largest partition area — the paper's `A` for load-imbalance-aware
    /// cycle times (the slowest processor paces an iteration).
    fn max_area(&self) -> usize {
        (0..self.count()).map(|i| self.region(i).area()).max().unwrap_or(0)
    }

    /// Smallest partition area.
    fn min_area(&self) -> usize {
        (0..self.count()).map(|i| self.region(i).area()).min().unwrap_or(0)
    }
}
