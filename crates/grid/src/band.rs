//! Temporal tiling: trapezoidal band traversal for block-of-k sweeps.
//!
//! A Jacobi-style out-of-place iteration advanced `k` steps touches every
//! grid point `k` times; the naive loop streams the whole grid through the
//! cache once per step. [`BandSchedule`] reorders the *same* point updates
//! so that a band of rows is advanced through all `k` iteration levels
//! while it is cache-resident — the classic trapezoid / time-skewing
//! traversal. Because each level-`j` row update still reads exactly the
//! level-`j−1` values the plain loop would read, executing the schedule is
//! bit-identical to running `k` whole-grid sweeps; only the memory-access
//! order changes.
//!
//! The schedule works with the double-buffered storage the solvers already
//! own: level parity picks the buffer (even levels live where level 0
//! does, odd levels in the other buffer). The safety argument is a pair of
//! frontier invariants maintained by construction:
//!
//! * **read**: level `j` row `r` is emitted only once level `j−1` has
//!   passed row `r + reach` (or finished entirely, so rows past the edge
//!   are boundary halo);
//! * **overwrite**: writing level `j` row `r` destroys the level `j−2`
//!   value of that row (same parity); that value is dead because every
//!   level `j−1` row that reads it (rows ≤ `r + reach`) has already been
//!   emitted — the same bound as the read invariant.

use std::ops::Range;

/// One step of a temporal-tiled traversal: advance iteration level
/// `level` (1-based; level 0 is the initial state) over interior rows
/// `rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandStep {
    /// Iteration level being produced (`1..=k`).
    pub level: usize,
    /// Interior rows advanced to `level` by this step.
    pub rows: Range<usize>,
}

/// A trapezoidal band traversal advancing `rows` interior rows through
/// `k` iteration levels of a stencil with the given row reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandSchedule {
    rows: usize,
    k: usize,
    reach: usize,
    band_rows: usize,
}

impl BandSchedule {
    /// Builds a schedule for `rows` interior rows, `k ≥ 1` iteration
    /// levels, a stencil of row reach `reach`, advancing the leading level
    /// `band_rows ≥ 1` rows per round.
    pub fn new(rows: usize, k: usize, reach: usize, band_rows: usize) -> Self {
        assert!(k >= 1, "need at least one iteration level");
        assert!(band_rows >= 1, "bands must advance");
        Self { rows, k, reach, band_rows }
    }

    /// A band size that keeps the working set (the band plus the trailing
    /// skew of `k·reach` rows, in both buffers) around `budget_bytes` —
    /// small enough to stay cache-resident, never smaller than one row.
    pub fn band_rows_for_budget(
        row_bytes: usize,
        k: usize,
        reach: usize,
        budget_bytes: usize,
    ) -> usize {
        let skew = 2 * (k * reach + 1) * row_bytes.max(1);
        (budget_bytes.saturating_sub(skew) / (2 * row_bytes.max(1))).max(1)
    }

    /// The traversal: every `(level, row)` pair in `1..=k × 0..rows`
    /// exactly once, in an order satisfying the read and overwrite
    /// invariants above.
    pub fn steps(&self) -> Vec<BandStep> {
        let (n, k, reach) = (self.rows, self.k, self.reach);
        let mut steps = Vec::new();
        if n == 0 {
            return steps;
        }
        // frontier[j] = interior rows of level j already emitted;
        // frontier[0] is the initial state, complete by definition.
        let mut frontier = vec![0usize; k + 1];
        frontier[0] = n;
        while frontier[k] < n {
            for j in 1..=k {
                let prev = frontier[j - 1];
                // Level j may run `reach` rows behind level j−1 — or catch
                // up entirely once level j−1 is finished (rows past the
                // interior edge are fixed boundary halo, not level data).
                let limit = if j == 1 {
                    (frontier[1] + self.band_rows).min(n)
                } else if prev == n {
                    n
                } else {
                    prev.saturating_sub(reach)
                };
                if limit > frontier[j] {
                    steps.push(BandStep { level: j, rows: frontier[j]..limit });
                    frontier[j] = limit;
                }
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a schedule, asserting both frontier invariants and exact
    /// coverage.
    fn validate(rows: usize, k: usize, reach: usize, band: usize) {
        let s = BandSchedule::new(rows, k, reach, band);
        let mut frontier = vec![0usize; k + 1];
        frontier[0] = rows;
        for step in s.steps() {
            let j = step.level;
            assert!(j >= 1 && j <= k, "level {j} out of range");
            assert_eq!(step.rows.start, frontier[j], "level {j} skipped rows");
            assert!(!step.rows.is_empty(), "empty step at level {j}");
            // Read invariant: the rows this step reads at level j−1 exist.
            let last = step.rows.end - 1;
            assert!(
                frontier[j - 1] == rows || frontier[j - 1] > last + reach,
                "level {j} row {last} reads unemitted level {} rows",
                j - 1
            );
            // Overwrite invariant: level j−2 values destroyed here are dead.
            if j >= 2 {
                assert!(
                    frontier[j - 1] == rows || frontier[j - 1] > last + reach,
                    "level {j} row {last} overwrites live level {} data",
                    j - 2
                );
            }
            frontier[j] = step.rows.end;
        }
        for (j, &f) in frontier.iter().enumerate() {
            assert_eq!(f, rows, "level {j} incomplete");
        }
    }

    #[test]
    fn covers_and_respects_dependencies() {
        for rows in [1usize, 2, 3, 5, 17, 64] {
            for k in [1usize, 2, 3, 5] {
                for reach in [1usize, 2] {
                    for band in [1usize, 4, 16] {
                        validate(rows, k, reach, band);
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_bands_smaller_than_the_skew_still_finish() {
        // rows ≤ reach·k: the trapezoid never opens; levels run to
        // completion one after another.
        validate(2, 4, 1, 1);
        validate(3, 3, 2, 2);
        validate(1, 6, 2, 8);
    }

    #[test]
    fn k_equals_one_is_a_plain_banded_sweep() {
        let s = BandSchedule::new(10, 1, 1, 4);
        let steps = s.steps();
        assert_eq!(steps.len(), 3);
        assert!(steps.iter().all(|s| s.level == 1));
        assert_eq!(steps[0].rows, 0..4);
        assert_eq!(steps[2].rows, 8..10);
    }

    #[test]
    fn deeper_levels_trail_by_reach() {
        let steps = BandSchedule::new(32, 2, 2, 8).steps();
        // After the first round: level 1 at 8, level 2 at 6.
        assert_eq!(steps[0], BandStep { level: 1, rows: 0..8 });
        assert_eq!(steps[1], BandStep { level: 2, rows: 0..6 });
    }

    #[test]
    fn budget_band_sizing_is_sane() {
        let b = BandSchedule::band_rows_for_budget(8 * 1024, 4, 2, 256 * 1024);
        assert!(b >= 1);
        assert!(2 * b * 8 * 1024 <= 256 * 1024);
        // Tiny budgets degrade to one row, never zero.
        assert_eq!(BandSchedule::band_rows_for_budget(1 << 20, 8, 2, 1024), 1);
    }

    #[test]
    #[should_panic(expected = "at least one iteration level")]
    fn rejects_zero_levels() {
        let _ = BandSchedule::new(8, 0, 1, 4);
    }
}
