//! Strip decomposition (paper Fig. 4) with the paper's remainder rule.
//!
//! "It is easy to decompose the domain into strips for `P` processors: if
//! `n = k·P + r` with `0 ≤ r < P` then `r` processors receive `k + 1`
//! contiguous rows, and the remaining processors each receive `k`
//! contiguous rows." (§3)

use crate::{Decomposition, Region};

/// Full-width horizontal strips over an `n×n` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripDecomposition {
    n: usize,
    p: usize,
}

impl StripDecomposition {
    /// Decomposes an `n×n` domain into `p` strips, `1 ≤ p ≤ n`.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(n > 0, "empty domain");
        assert!(p >= 1 && p <= n, "need 1 ≤ p ≤ n (got p={p}, n={n})");
        Self { n, p }
    }

    /// Row range of strip `i`: the first `n % p` strips are one row taller.
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.p, "strip index out of range");
        let q = self.n / self.p;
        let r = self.n % self.p;
        let start = if i < r { i * (q + 1) } else { r * (q + 1) + (i - r) * q };
        let len = if i < r { q + 1 } else { q };
        start..start + len
    }

    /// Indices of strips adjacent to strip `i` (one or two).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        assert!(i < self.p);
        let mut v = Vec::with_capacity(2);
        if i > 0 {
            v.push(i - 1);
        }
        if i + 1 < self.p {
            v.push(i + 1);
        }
        v
    }

    /// Number of *communicating boundaries* in the whole decomposition —
    /// `p - 1`, independent of the remainder (paper: "the number of
    /// communicating boundaries is the same as if all the partitions have
    /// equal work", Fig. 4).
    pub fn communicating_boundaries(&self) -> usize {
        self.p - 1
    }
}

impl Decomposition for StripDecomposition {
    fn domain(&self) -> usize {
        self.n
    }

    fn count(&self) -> usize {
        self.p
    }

    fn region(&self, i: usize) -> Region {
        let rows = self.row_range(i);
        Region::new(rows.start, rows.end, 0, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact_cover;

    #[test]
    fn paper_remainder_rule() {
        // n = 10, p = 4: q = 2, r = 2 → heights 3,3,2,2.
        let d = StripDecomposition::new(10, 4);
        let heights: Vec<usize> = (0..4).map(|i| d.row_range(i).len()).collect();
        assert_eq!(heights, vec![3, 3, 2, 2]);
        assert_eq!(d.row_range(0), 0..3);
        assert_eq!(d.row_range(1), 3..6);
        assert_eq!(d.row_range(2), 6..8);
        assert_eq!(d.row_range(3), 8..10);
    }

    #[test]
    fn even_division_has_equal_strips() {
        let d = StripDecomposition::new(256, 16);
        for i in 0..16 {
            assert_eq!(d.row_range(i).len(), 16);
        }
        assert_eq!(d.max_area(), d.min_area());
        assert_eq!(d.max_area(), 256 * 16);
    }

    #[test]
    fn exact_cover_for_many_shapes() {
        for n in [1usize, 2, 7, 10, 64, 101] {
            for p in [1usize, 2, 3, 5, 7] {
                if p > n {
                    continue;
                }
                let d = StripDecomposition::new(n, p);
                verify_exact_cover(n, &d.regions()).unwrap();
            }
        }
    }

    #[test]
    fn neighbors_are_chain() {
        let d = StripDecomposition::new(16, 4);
        assert_eq!(d.neighbors(0), vec![1]);
        assert_eq!(d.neighbors(1), vec![0, 2]);
        assert_eq!(d.neighbors(3), vec![2]);
        assert_eq!(d.communicating_boundaries(), 3);
    }

    #[test]
    fn single_strip_owns_domain() {
        let d = StripDecomposition::new(9, 1);
        assert_eq!(d.region(0), Region::new(0, 9, 0, 9));
        assert!(d.neighbors(0).is_empty());
        assert_eq!(d.communicating_boundaries(), 0);
    }

    #[test]
    fn areas_differ_by_at_most_one_row() {
        for n in [17usize, 33, 100] {
            for p in 1..=16 {
                let d = StripDecomposition::new(n, p);
                assert!(d.max_area() - d.min_area() <= n, "n={n} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ p ≤ n")]
    fn rejects_more_strips_than_rows() {
        let _ = StripDecomposition::new(4, 5);
    }
}
