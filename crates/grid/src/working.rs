//! Working rectangles: the paper's "nearly square" approximation (§3, Fig 6).
//!
//! Square partitions only admit areas that are perfect squares with sides
//! dividing `n`, which severely limits the feasible processor counts. The
//! paper instead covers the domain with *legal rectangles* (see
//! [`RectDecomposition`](crate::RectDecomposition)) and keeps, for each
//! achievable area `A`, the legal rectangle of minimum perimeter — but only
//! if that perimeter is within 5% of `4·√A`, the perimeter of a true square
//! of the same area. The survivors are *working rectangles*. The analysis
//! then optimizes as if partitions were exact squares, and Fig. 6 shows the
//! resulting approximation error is small (≲3% in area, ≲6% in perimeter
//! for a 256×256 grid).

use crate::RectDecomposition;

/// A legal rectangle that is "sufficiently square-like".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingRect {
    /// Rectangle height in rows (a strip height achievable for `n`).
    pub height: usize,
    /// Rectangle width in columns (a divisor of `n`).
    pub width: usize,
    /// A strip count that produces `height` rows.
    pub generating_strips: usize,
}

impl WorkingRect {
    /// Area `height × width`.
    pub fn area(&self) -> usize {
        self.height * self.width
    }

    /// Perimeter `2·(height + width)`.
    pub fn perimeter(&self) -> usize {
        2 * (self.height + self.width)
    }

    /// Relative deviation of this rectangle's perimeter from the perimeter
    /// `4·√A` of the true square of the *same* area.
    pub fn squareness(&self) -> f64 {
        let ideal = 4.0 * (self.area() as f64).sqrt();
        (self.perimeter() as f64 - ideal) / ideal
    }
}

/// The catalogue of working rectangles for an `n×n` grid.
#[derive(Debug, Clone)]
pub struct WorkingRectangles {
    n: usize,
    tolerance: f64,
    /// Sorted by area, one entry per retained area.
    rects: Vec<WorkingRect>,
}

impl WorkingRectangles {
    /// Builds the catalogue with the paper's 5% perimeter tolerance.
    pub fn new(n: usize) -> Self {
        Self::with_tolerance(n, 0.05)
    }

    /// Builds the catalogue with a custom perimeter tolerance (ablation
    /// experiments vary this).
    ///
    /// Heights may be any row count in `1..=n` — row borders are free (the
    /// strip step of Fig. 5 may cut rows anywhere); only the *column* border
    /// carries the paper's divisibility requirement (`m | n`). Each height
    /// records the strip count whose remainder rule best realizes it, used
    /// when materializing a decomposition. Restricting heights to exact
    /// remainder-rule values would blow the paper's Fig.-6 error envelope
    /// ("usually less than 3%") out to >30%, so the free-row-border reading
    /// is the one consistent with the published figure.
    pub fn with_tolerance(n: usize, tolerance: f64) -> Self {
        assert!(n > 0);
        assert!(tolerance >= 0.0);
        let heights: Vec<(usize, usize)> = (1..=n)
            .map(|h| {
                // Strip count whose typical height is closest to h.
                let p = (n as f64 / h as f64).round().max(1.0) as usize;
                (h, p.min(n))
            })
            .collect();
        // Widths: divisors of n.
        let widths: Vec<usize> = (1..=n).filter(|w| n.is_multiple_of(*w)).collect();

        // Per area, the minimum-perimeter legal rectangle.
        let mut best: std::collections::BTreeMap<usize, WorkingRect> =
            std::collections::BTreeMap::new();
        for &(h, p) in &heights {
            for &w in &widths {
                let cand = WorkingRect { height: h, width: w, generating_strips: p };
                let a = cand.area();
                match best.get(&a) {
                    Some(cur) if cur.perimeter() <= cand.perimeter() => {}
                    _ => {
                        best.insert(a, cand);
                    }
                }
            }
        }
        // Retain only square-like survivors (the 5% rule).
        let rects: Vec<WorkingRect> =
            best.into_values().filter(|r| r.squareness() <= tolerance).collect();
        Self { n, tolerance, rects }
    }

    /// Domain side.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// The tolerance used.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// All working rectangles, sorted by area.
    pub fn all(&self) -> &[WorkingRect] {
        &self.rects
    }

    /// The working rectangle whose area is closest to `target_area`
    /// (ties broken towards the smaller area). `None` if the catalogue is
    /// empty.
    pub fn closest(&self, target_area: usize) -> Option<WorkingRect> {
        if self.rects.is_empty() {
            return None;
        }
        let i = self.rects.partition_point(|r| r.area() < target_area);
        let candidates = [i.checked_sub(1), (i < self.rects.len()).then_some(i)];
        candidates
            .into_iter()
            .flatten()
            .map(|j| self.rects[j])
            .min_by_key(|r| (r.area().abs_diff(target_area), r.area()))
    }

    /// Fig 6(a): relative area error of the closest working rectangle.
    pub fn area_error(&self, target_area: usize) -> Option<f64> {
        self.closest(target_area)
            .map(|r| (r.area() as f64 - target_area as f64).abs() / target_area as f64)
    }

    /// Fig 6(b): relative perimeter error of the closest working rectangle
    /// against the perimeter `4·√A` of a true square of the target area.
    pub fn perimeter_error(&self, target_area: usize) -> Option<f64> {
        self.closest(target_area).map(|r| {
            let ideal = 4.0 * (target_area as f64).sqrt();
            (r.perimeter() as f64 - ideal).abs() / ideal
        })
    }

    /// Materializes the closest working rectangle as a full decomposition:
    /// `generating_strips` row bands × `n / width` column bands.
    pub fn decomposition_for(&self, target_area: usize) -> Option<RectDecomposition> {
        let r = self.closest(target_area)?;
        Some(RectDecomposition::new(self.n, r.generating_strips, self.n / r.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Decomposition;

    #[test]
    fn perfect_squares_survive_for_power_of_two_n() {
        // 64×64 blocks on a 256 grid: exactly square, must be retained.
        let w = WorkingRectangles::new(256);
        let r = w.closest(4096).expect("64×64 exists");
        assert_eq!(r.area(), 4096);
        assert_eq!((r.height, r.width), (64, 64));
        assert_eq!(r.squareness(), 0.0);
    }

    #[test]
    fn five_percent_rule_rejects_slabs() {
        let w = WorkingRectangles::new(256);
        for r in w.all() {
            assert!(
                r.squareness() <= 0.05 + 1e-12,
                "{}×{} has squareness {}",
                r.height,
                r.width,
                r.squareness()
            );
        }
    }

    #[test]
    fn paper_error_bounds_on_256() {
        // Fig 6: for A in [1024, 16384] the approximation error is
        // "usually less than 3% for area and less than 6% for perimeter".
        // The coverage has holes where no legal rectangle is square-like
        // (between the divisor-width bands), so "usually" is statistical:
        // we assert the median area error is < 3%, the median perimeter
        // error < 6%, a clear majority of plotted areas are under the 3%
        // bar, and even the holes stay bounded.
        let w = WorkingRectangles::new(256);
        let mut area_errs = Vec::new();
        let mut per_errs = Vec::new();
        let mut a = 1024;
        while a <= 16384 {
            area_errs.push(w.area_error(a).unwrap());
            per_errs.push(w.perimeter_error(a).unwrap());
            a += 2;
        }
        let max_area = area_errs.iter().cloned().fold(0.0, f64::max);
        assert!(max_area < 0.30, "max area error {max_area}");
        let under_3 = area_errs.iter().filter(|e| **e < 0.03).count();
        assert!(
            under_3 as f64 / area_errs.len() as f64 > 0.55,
            "only {under_3}/{} areas under 3%",
            area_errs.len()
        );
        area_errs.sort_by(f64::total_cmp);
        per_errs.sort_by(f64::total_cmp);
        assert!(area_errs[area_errs.len() / 2] < 0.03);
        assert!(per_errs[per_errs.len() / 2] < 0.06);
    }

    #[test]
    fn closest_prefers_nearer_area() {
        let w = WorkingRectangles::new(256);
        let r = w.closest(4100).unwrap();
        // 64×64 = 4096 is only 4 away; nothing closer should exist.
        assert!(r.area().abs_diff(4100) <= 4096usize.abs_diff(4100));
    }

    #[test]
    fn decomposition_materializes_and_covers() {
        let w = WorkingRectangles::new(256);
        let d = w.decomposition_for(4096).unwrap();
        crate::cover::verify_exact_cover(256, &d.regions()).unwrap();
        // The decomposition uses 256²/4096 = 16 processors.
        assert_eq!(d.count(), 16);
    }

    #[test]
    fn tolerance_zero_keeps_only_true_squares() {
        let w = WorkingRectangles::with_tolerance(64, 0.0);
        for r in w.all() {
            assert_eq!(r.height, r.width);
        }
        // 8×8, 16×16, 32×32, 64×64 all exist (8, 16, 32 divide 64 and are
        // achievable strip heights).
        assert!(w.closest(64).map(|r| r.area()) == Some(64));
        assert!(w.closest(4096).map(|r| r.area()) == Some(4096));
    }

    #[test]
    fn wider_tolerance_is_superset() {
        let tight = WorkingRectangles::with_tolerance(128, 0.02);
        let loose = WorkingRectangles::with_tolerance(128, 0.10);
        assert!(loose.all().len() >= tight.all().len());
        for r in tight.all() {
            assert!(loose.all().iter().any(|s| s.area() == r.area()));
        }
    }

    #[test]
    fn non_power_of_two_grids_work() {
        // n = 100: divisors 1,2,4,5,10,20,25,50,100.
        let w = WorkingRectangles::new(100);
        assert!(!w.all().is_empty());
        let r = w.closest(625).unwrap(); // 25×25 is legal and square
        assert_eq!(r.area(), 625);
    }

    #[test]
    fn empty_catalog_is_impossible_for_positive_n() {
        // Height n (1 strip) × width n is always exactly square.
        for n in [1usize, 2, 3, 17, 64] {
            let w = WorkingRectangles::new(n);
            let full = w.closest(n * n).unwrap();
            assert_eq!(full.area(), n * n);
        }
    }
}
