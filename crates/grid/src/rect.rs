//! Legal-rectangle decomposition (paper Fig. 5).
//!
//! "The domain is first divided into strips as before; then into rectangles
//! by defining a border every `m`-th column. We require that `m` divide `n`
//! evenly, and call these *legal rectangles*." (§3)
//!
//! Rows follow the strip remainder rule, so partitions come in at most two
//! heights; all partitions share the same width `m = n / pc`.

use crate::{Decomposition, Region, StripDecomposition};

/// A `pr × pc` grid of legal rectangles over an `n×n` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RectDecomposition {
    n: usize,
    pr: usize,
    pc: usize,
    strips: StripDecomposition,
}

impl RectDecomposition {
    /// Decomposes into `pr` row bands × `pc` column bands.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ pr ≤ n` and `pc` divides `n` (the paper's
    /// legality condition).
    pub fn new(n: usize, pr: usize, pc: usize) -> Self {
        assert!(
            pc >= 1 && n.is_multiple_of(pc),
            "column count {pc} must divide n={n} (legal rectangles)"
        );
        let strips = StripDecomposition::new(n, pr);
        Self { n, pr, pc, strips }
    }

    /// Tries to build a near-square decomposition for `p` processors:
    /// `pr·pc = p` with `pc | n`, choosing the factorization whose
    /// rectangles are most square (minimum perimeter for their area).
    ///
    /// Returns `None` when `p` has no factorization with `pc | n`.
    pub fn near_square(n: usize, p: usize) -> Option<Self> {
        let mut best: Option<(usize, Self)> = None;
        for pc in 1..=p.min(n) {
            if !p.is_multiple_of(pc) || !n.is_multiple_of(pc) {
                continue;
            }
            let pr = p / pc;
            if pr > n {
                continue;
            }
            let d = RectDecomposition::new(n, pr, pc);
            let per = (0..d.count()).map(|i| d.region(i).perimeter()).max().unwrap();
            if best.as_ref().is_none_or(|(bp, _)| per < *bp) {
                best = Some((per, d));
            }
        }
        best.map(|(_, d)| d)
    }

    /// Row bands.
    pub fn rows_of_blocks(&self) -> usize {
        self.pr
    }

    /// Column bands.
    pub fn cols_of_blocks(&self) -> usize {
        self.pc
    }

    /// Common block width `m = n / pc`.
    pub fn block_width(&self) -> usize {
        self.n / self.pc
    }

    /// Block index `(br, bc)` of partition `i` in row-major block order.
    pub fn block_of(&self, i: usize) -> (usize, usize) {
        assert!(i < self.count());
        (i / self.pc, i % self.pc)
    }

    /// Partition index of block `(br, bc)`.
    pub fn index_of(&self, br: usize, bc: usize) -> usize {
        assert!(br < self.pr && bc < self.pc);
        br * self.pc + bc
    }

    /// The 4-neighbourhood of partition `i` (N, S, W, E block neighbours).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let (br, bc) = self.block_of(i);
        let mut v = Vec::with_capacity(4);
        if br > 0 {
            v.push(self.index_of(br - 1, bc));
        }
        if br + 1 < self.pr {
            v.push(self.index_of(br + 1, bc));
        }
        if bc > 0 {
            v.push(self.index_of(br, bc - 1));
        }
        if bc + 1 < self.pc {
            v.push(self.index_of(br, bc + 1));
        }
        v
    }
}

impl Decomposition for RectDecomposition {
    fn domain(&self) -> usize {
        self.n
    }

    fn count(&self) -> usize {
        self.pr * self.pc
    }

    fn region(&self, i: usize) -> Region {
        let (br, bc) = self.block_of(i);
        let rows = self.strips.row_range(br);
        let m = self.block_width();
        Region::new(rows.start, rows.end, bc * m, (bc + 1) * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact_cover;

    #[test]
    fn four_by_four_on_256() {
        let d = RectDecomposition::new(256, 4, 4);
        assert_eq!(d.count(), 16);
        assert_eq!(d.block_width(), 64);
        for i in 0..16 {
            let r = d.region(i);
            assert_eq!(r.area(), 64 * 64);
            assert_eq!(r.perimeter(), 4 * 64);
        }
        verify_exact_cover(256, &d.regions()).unwrap();
    }

    #[test]
    fn uneven_rows_follow_strip_rule() {
        // n=10, pr=3: heights 4,3,3. pc=2 → width 5.
        let d = RectDecomposition::new(10, 3, 2);
        assert_eq!(d.region(0), Region::new(0, 4, 0, 5));
        assert_eq!(d.region(1), Region::new(0, 4, 5, 10));
        assert_eq!(d.region(5), Region::new(7, 10, 5, 10));
        verify_exact_cover(10, &d.regions()).unwrap();
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_illegal_width() {
        let _ = RectDecomposition::new(10, 2, 3);
    }

    #[test]
    fn neighbors_form_mesh() {
        let d = RectDecomposition::new(8, 2, 2);
        assert_eq!(d.neighbors(0), vec![2, 1]);
        assert_eq!(d.neighbors(3), vec![1, 2]);
        let corner = d.neighbors(0);
        assert_eq!(corner.len(), 2);
        let d3 = RectDecomposition::new(9, 3, 3);
        assert_eq!(d3.neighbors(4).len(), 4); // centre block
    }

    #[test]
    fn near_square_prefers_square_blocks() {
        // p = 16 on n = 256: 4×4 blocks of 64×64 beat 2×8 or 16×1.
        let d = RectDecomposition::near_square(256, 16).unwrap();
        assert_eq!((d.rows_of_blocks(), d.cols_of_blocks()), (4, 4));
        // p = 2: factorizations 1×2 and 2×1 — blocks 256×128 either way.
        let d2 = RectDecomposition::near_square(256, 2).unwrap();
        assert_eq!(d2.count(), 2);
    }

    #[test]
    fn near_square_respects_divisibility() {
        // n = 100, p = 7: only pc = 1 divides 100 among factors of 7 (1, 7).
        let d = RectDecomposition::near_square(100, 7).unwrap();
        assert_eq!(d.cols_of_blocks(), 1);
        assert_eq!(d.rows_of_blocks(), 7);
        // p = 3 on n = 8: pc ∈ {1} only (3 does not divide 8).
        let d2 = RectDecomposition::near_square(8, 3).unwrap();
        assert_eq!(d2.cols_of_blocks(), 1);
    }

    #[test]
    fn exact_cover_sweep() {
        for n in [6usize, 12, 36] {
            for pr in [1usize, 2, 3, 5] {
                if pr > n {
                    continue;
                }
                for pc in [1usize, 2, 3, 6] {
                    if n % pc != 0 {
                        continue;
                    }
                    let d = RectDecomposition::new(n, pr, pc);
                    verify_exact_cover(n, &d.regions()).unwrap();
                }
            }
        }
    }

    #[test]
    fn block_index_round_trip() {
        let d = RectDecomposition::new(12, 3, 4);
        for i in 0..d.count() {
            let (br, bc) = d.block_of(i);
            assert_eq!(d.index_of(br, bc), i);
        }
    }
}
