//! Rectangular index regions and partition boundary geometry.

use parspeed_stencil::{PartitionShape, Stencil};

/// A half-open rectangular region of grid indices:
/// rows `r0..r1`, columns `c0..c1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First row (inclusive).
    pub r0: usize,
    /// Last row (exclusive).
    pub r1: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Last column (exclusive).
    pub c1: usize,
}

impl Region {
    /// Builds a region; `r0 <= r1` and `c0 <= c1` are required.
    pub fn new(r0: usize, r1: usize, c0: usize, c1: usize) -> Self {
        assert!(r0 <= r1 && c0 <= c1, "degenerate region bounds");
        Self { r0, r1, c0, c1 }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.c1 - self.c0
    }

    /// Number of grid points (the paper's partition area `A`).
    pub fn area(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Perimeter length `2·(rows + cols)` in points, the quantity the
    /// paper's 5% working-rectangle rule compares against `4·√A`.
    pub fn perimeter(&self) -> usize {
        2 * (self.rows() + self.cols())
    }

    /// True iff the region contains no points.
    pub fn is_empty(&self) -> bool {
        self.r0 == self.r1 || self.c0 == self.c1
    }

    /// Whether `(r, c)` lies inside the region.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.r0 && r < self.r1 && c >= self.c0 && c < self.c1
    }

    /// Intersection with another region (possibly empty).
    pub fn intersect(&self, other: &Region) -> Region {
        let r0 = self.r0.max(other.r0);
        let r1 = self.r1.min(other.r1).max(r0);
        let c0 = self.c0.max(other.c0);
        let c1 = self.c1.min(other.c1).max(c0);
        Region { r0, r1, c0, c1 }
    }

    /// The region grown by `k` on every side, clamped to the `n×n` domain.
    pub fn expand(&self, k: usize, n: usize) -> Region {
        Region {
            r0: self.r0.saturating_sub(k),
            r1: (self.r1 + k).min(n),
            c0: self.c0.saturating_sub(k),
            c1: (self.c1 + k).min(n),
        }
    }

    /// Iterator over `(row, col)` points in row-major order.
    pub fn points(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.r0..self.r1).flat_map(move |r| (self.c0..self.c1).map(move |c| (r, c)))
    }

    /// Whether this region touches the given domain edge.
    pub fn touches_top(&self) -> bool {
        self.r0 == 0
    }
    /// Whether this region touches the bottom domain edge of an `n×n` grid.
    pub fn touches_bottom(&self, n: usize) -> bool {
        self.r1 == n
    }
    /// Whether this region touches the left domain edge.
    pub fn touches_left(&self) -> bool {
        self.c0 == 0
    }
    /// Whether this region touches the right domain edge of an `n×n` grid.
    pub fn touches_right(&self, n: usize) -> bool {
        self.c1 == n
    }
}

/// Per-iteration boundary traffic of one partition, in words (one word per
/// grid-point value), split by direction. The paper's model assumes each
/// processor *reads* its neighbours' boundary points at the start of an
/// iteration and *writes* its own at the end (§6, after Reed et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryWords {
    /// Words read from neighbours (their `k` outermost rings facing us).
    pub read: usize,
    /// Words written for neighbours (our `k` outermost rings facing them).
    pub write: usize,
}

impl BoundaryWords {
    /// Total words moved per iteration.
    pub fn total(&self) -> usize {
        self.read + self.write
    }

    /// Exact boundary traffic for `region` inside an `n×n` domain under
    /// `stencil`. Domain edges (constant boundary values, §3) cost nothing.
    ///
    /// Counts the stencil-reach rings of side cells, each ring clamped to
    /// the rows/columns that actually exist between the region and the
    /// domain edge (a reach-2 stencil one row from the boundary reads one
    /// row, not two); corner blocks are included only when the stencil has
    /// diagonal taps — the closed-form model neglects them (paper §6.1
    /// footnote), so this function is the ground truth the simulators use.
    ///
    /// `read` is exact for any decomposition. `write` mirrors it by the
    /// catalogued stencils' central symmetry, which is exact whenever every
    /// partition is at least `reach` thick; partitions thinner than the
    /// reach forward deeper neighbours' reads and can send more than they
    /// receive (the [`crate::halo::plan`] accounts for that exactly).
    pub fn exact(region: &Region, n: usize, stencil: &Stencil) -> BoundaryWords {
        let kr = stencil.reach_rows();
        let kc = stencil.reach_cols();
        // Rows/columns available beyond each side before the domain edge.
        let above = kr.min(region.r0);
        let below = kr.min(n - region.r1);
        let before = kc.min(region.c0);
        let after = kc.min(n - region.c1);
        let mut read = (above + below) * region.cols() + (before + after) * region.rows();
        if stencil.has_diagonal() {
            for (v, h) in [(above, before), (above, after), (below, before), (below, after)] {
                read += v * h;
            }
        }
        BoundaryWords { read, write: read }
    }

    /// The paper's closed-form approximation of per-partition traffic:
    /// strips move `2·n·k` words each way, squares of side `s` move
    /// `4·s·k` words each way (interior partition, corners neglected).
    pub fn model(shape: PartitionShape, n: usize, side_or_area: usize, k: usize) -> BoundaryWords {
        let one_way = match shape {
            PartitionShape::Strip => 2 * n * k,
            PartitionShape::Square => 4 * side_or_area * k,
        };
        BoundaryWords { read: one_way, write: one_way }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_stencil::Stencil;

    #[test]
    fn region_basics() {
        let r = Region::new(2, 5, 1, 7);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.cols(), 6);
        assert_eq!(r.area(), 18);
        assert_eq!(r.perimeter(), 18);
        assert!(r.contains(2, 1));
        assert!(r.contains(4, 6));
        assert!(!r.contains(5, 1));
        assert!(!r.contains(2, 7));
        assert!(!r.is_empty());
        assert!(Region::new(3, 3, 0, 5).is_empty());
    }

    #[test]
    fn region_points_row_major() {
        let r = Region::new(0, 2, 3, 5);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(pts, vec![(0, 3), (0, 4), (1, 3), (1, 4)]);
    }

    #[test]
    fn intersect_and_expand() {
        let a = Region::new(0, 4, 0, 4);
        let b = Region::new(2, 6, 3, 8);
        let i = a.intersect(&b);
        assert_eq!(i, Region::new(2, 4, 3, 4));
        let disjoint = Region::new(0, 2, 0, 2).intersect(&Region::new(5, 6, 5, 6));
        assert!(disjoint.is_empty());
        let e = Region::new(1, 3, 1, 3).expand(2, 4);
        assert_eq!(e, Region::new(0, 4, 0, 4));
        // expand clamps at domain edges
        let f = Region::new(0, 1, 0, 1).expand(3, 8);
        assert_eq!(f, Region::new(0, 4, 0, 4));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_inverted_bounds() {
        let _ = Region::new(3, 2, 0, 1);
    }

    #[test]
    fn interior_square_five_point_traffic() {
        // 4×4 block strictly inside a 16×16 domain, 5-point stencil (k=1,
        // no diagonals): reads 4 sides × 4 = 16 words, writes the same.
        let r = Region::new(4, 8, 4, 8);
        let b = BoundaryWords::exact(&r, 16, &Stencil::five_point());
        assert_eq!(b.read, 16);
        assert_eq!(b.write, 16);
        assert_eq!(b.total(), 32);
    }

    #[test]
    fn nine_point_box_adds_corners() {
        let r = Region::new(4, 8, 4, 8);
        let b = BoundaryWords::exact(&r, 16, &Stencil::nine_point_box());
        // sides 16 + 4 corner points
        assert_eq!(b.read, 20);
    }

    #[test]
    fn star_stencils_skip_corners_but_double_rings() {
        let r = Region::new(4, 8, 4, 8);
        let b = BoundaryWords::exact(&r, 16, &Stencil::nine_point_star());
        // k=2, no diagonals: 4 sides × 4 cols/rows × 2 rings = 32
        assert_eq!(b.read, 32);
        let b13 = BoundaryWords::exact(&r, 16, &Stencil::thirteen_point_star());
        // plus 4 corners of kr·kc = 4 each
        assert_eq!(b13.read, 32 + 16);
    }

    #[test]
    fn domain_edges_cost_nothing() {
        // Top-left corner block: only bottom and right sides communicate.
        let r = Region::new(0, 4, 0, 4);
        let b = BoundaryWords::exact(&r, 16, &Stencil::five_point());
        assert_eq!(b.read, 8);
        // A strip spanning the full width with nothing above it.
        let s = Region::new(0, 4, 0, 16);
        let bs = BoundaryWords::exact(&s, 16, &Stencil::five_point());
        assert_eq!(bs.read, 16); // only the bottom side
    }

    #[test]
    fn whole_domain_single_partition_is_silent() {
        let r = Region::new(0, 16, 0, 16);
        for s in Stencil::catalog() {
            let b = BoundaryWords::exact(&r, 16, &s);
            assert_eq!(b.total(), 0, "{}", s.name());
        }
    }

    #[test]
    fn model_volumes_match_paper() {
        // Strips: 2nk each way; squares: 4sk each way.
        let b = BoundaryWords::model(PartitionShape::Strip, 256, 0, 1);
        assert_eq!(b.read, 512);
        let b = BoundaryWords::model(PartitionShape::Square, 256, 64, 2);
        assert_eq!(b.read, 512);
    }

    #[test]
    fn model_matches_exact_for_interior_five_point_square() {
        // Interior square of side s, 5-point: exact = 4s = model.
        let s = 8;
        let r = Region::new(16, 16 + s, 16, 16 + s);
        let exact = BoundaryWords::exact(&r, 64, &Stencil::five_point());
        let model = BoundaryWords::model(PartitionShape::Square, 64, s, 1);
        assert_eq!(exact, model);
    }
}
