//! The partitioned Jacobi executor.
//!
//! Each partition owns local double-buffered grids with a halo of the
//! stencil's reach. One iteration is two rayon phases:
//!
//! 1. **publish** — every halo copy of the exchange plan extracts its
//!    rectangle from the owner's current grid (read-only, parallel over
//!    copies);
//! 2. **install + sweep** — every partition installs the published
//!    rectangles addressed to it into its halo, then sweeps its region
//!    into its back buffer and swaps (parallel over partitions, each
//!    mutating only its own state).
//!
//! Because a Jacobi update reads only previous-iteration values, the
//! result is bit-for-bit identical to the sequential whole-grid sweep —
//! which the tests assert, making this executor a machine-checked
//! refinement of `parspeed-solver`. Each per-region sweep goes through
//! [`jacobi_sweep_region`]'s kernel dispatch, so partitions of catalogue
//! stencils run the fused row-slice kernels.

use crate::adaptive::CheckScheduler;
use crate::CheckPolicy;
use parspeed_grid::halo::{plan, CopySpec};
use parspeed_grid::{Decomposition, Grid2D, Region};
use parspeed_solver::apply::jacobi_sweep_region;
use parspeed_solver::{Boundary, PoissonProblem};
use parspeed_stencil::Stencil;
use rayon::prelude::*;

struct Part {
    region: Region,
    u: Grid2D,
    next: Grid2D,
}

/// Outcome of a partitioned solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRun {
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Convergence checks performed.
    pub checks: usize,
    /// Last observed global max-norm update difference.
    pub final_diff: f64,
}

/// Partitioned, rayon-parallel point-Jacobi executor.
pub struct PartitionedJacobi {
    stencil: Stencil,
    h2: f64,
    forcing: Grid2D,
    n: usize,
    copies: Vec<CopySpec>,
    incoming: Vec<Vec<usize>>, // per partition: indices into `copies`
    parts: Vec<Part>,
    iterations: usize,
}

impl PartitionedJacobi {
    /// Builds the executor for `problem` under `decomp`.
    pub fn new<D: Decomposition + ?Sized>(
        problem: &PoissonProblem,
        stencil: &Stencil,
        decomp: &D,
    ) -> Self {
        assert_eq!(problem.n(), decomp.domain(), "decomposition does not match the problem");
        let halo_plan = plan(decomp, stencil);
        let copies = halo_plan.copies().to_vec();
        let mut incoming = vec![Vec::new(); decomp.count()];
        for (ci, c) in copies.iter().enumerate() {
            incoming[c.dst].push(ci);
        }
        let k = stencil.reach();
        let n = problem.n();
        let parts: Vec<Part> = decomp
            .regions()
            .into_iter()
            .map(|region| {
                let mut u = Grid2D::new(region.rows(), region.cols(), k);
                let mut next = Grid2D::new(region.rows(), region.cols(), k);
                fill_domain_boundary(&mut u, &region, problem);
                fill_domain_boundary(&mut next, &region, problem);
                let _ = n;
                Part { region, u, next }
            })
            .collect();
        Self {
            stencil: stencil.clone(),
            h2: problem.h() * problem.h(),
            forcing: problem.forcing().clone(),
            n,
            copies,
            incoming,
            parts,
            iterations: 0,
        }
    }

    /// Number of partitions (the paper's processor count).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Iterations performed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Runs one iteration. Returns the global max update difference when
    /// `compute_diff` is set (the local convergence check of §4).
    pub fn iterate(&mut self, compute_diff: bool) -> Option<f64> {
        // Phase 1: publish halo rectangles from the owners' current grids
        // (whole row segments at a time — no per-point indexing).
        let parts = &self.parts;
        let published: Vec<Vec<f64>> = self
            .copies
            .par_iter()
            .map(|c| {
                let src = &parts[c.src];
                let mut buf = Vec::with_capacity(c.src_region.area());
                let lc0 = c.src_region.c0 - src.region.c0;
                let lc1 = c.src_region.c1 - src.region.c0;
                for gr in c.src_region.r0..c.src_region.r1 {
                    let row = src.u.interior_row(gr - src.region.r0);
                    buf.extend_from_slice(&row[lc0..lc1]);
                }
                buf
            })
            .collect();

        // Phase 2: install halos, sweep, swap — each partition touches only
        // its own state.
        let copies = &self.copies;
        let incoming = &self.incoming;
        let stencil = &self.stencil;
        let forcing = &self.forcing;
        let h2 = self.h2;
        let diffs: Vec<f64> = self
            .parts
            .par_iter_mut()
            .enumerate()
            .map(|(i, part)| {
                for &ci in &incoming[i] {
                    let c = &copies[ci];
                    let buf = &published[ci];
                    // Install each published rectangle row-wise into the
                    // halo: one bounds-checked slice copy per row.
                    let w = c.src_region.c1 - c.src_region.c0;
                    let halo = part.u.halo() as isize;
                    let j0 = (c.src_region.c0 as isize - part.region.c0 as isize + halo) as usize;
                    for (i_row, gr) in (c.src_region.r0..c.src_region.r1).enumerate() {
                        let lr = gr as isize - part.region.r0 as isize;
                        let row = part.u.padded_row_mut(lr);
                        row[j0..j0 + w].copy_from_slice(&buf[i_row * w..(i_row + 1) * w]);
                    }
                }
                jacobi_sweep_region(
                    stencil,
                    &part.u,
                    &mut part.next,
                    forcing,
                    h2,
                    &part.region,
                    (part.region.r0, part.region.c0),
                );
                let d = if compute_diff { part.u.max_abs_diff(&part.next) } else { 0.0 };
                part.u.swap(&mut part.next);
                d
            })
            .collect();
        self.iterations += 1;
        compute_diff.then(|| diffs.into_iter().fold(0.0, f64::max))
    }

    /// Iterates until the max-norm update difference at a scheduled check
    /// falls below `tol`, or `max_iters` is reached.
    pub fn solve(&mut self, tol: f64, max_iters: usize, policy: CheckPolicy) -> SolveRun {
        let mut policy = policy;
        self.solve_scheduled(tol, max_iters, &mut policy)
    }

    /// [`PartitionedJacobi::solve`] under any [`CheckScheduler`] —
    /// including the rate-estimating [`AdaptiveChecker`](crate::AdaptiveChecker)
    /// of §4's reference \[13\], which feeds observed differences back into
    /// the schedule.
    pub fn solve_scheduled(
        &mut self,
        tol: f64,
        max_iters: usize,
        scheduler: &mut dyn CheckScheduler,
    ) -> SolveRun {
        let mut checks = 0usize;
        let mut diff = f64::INFINITY;
        let mut next_check = scheduler.first_check();
        let start = self.iterations;
        while self.iterations - start < max_iters {
            let k = self.iterations - start + 1; // iteration number being run
            let check_now = k >= next_check || k == max_iters;
            if let Some(d) = self.iterate(check_now) {
                checks += 1;
                diff = d;
                if diff < tol {
                    return SolveRun {
                        converged: true,
                        iterations: self.iterations - start,
                        checks,
                        final_diff: diff,
                    };
                }
                if k >= next_check {
                    next_check = scheduler.next_after(k, diff, tol);
                }
            }
        }
        SolveRun { converged: false, iterations: self.iterations - start, checks, final_diff: diff }
    }

    /// Assembles the global solution grid from the partitions.
    pub fn solution(&self) -> Grid2D {
        let mut g = Grid2D::new(self.n, self.n, 0);
        for part in &self.parts {
            for gr in part.region.r0..part.region.r1 {
                for gc in part.region.c0..part.region.c1 {
                    g.set(gr, gc, part.u.get(gr - part.region.r0, gc - part.region.c0));
                }
            }
        }
        g
    }
}

/// Fills the halo cells of a local grid that fall *outside the domain*
/// with the problem's boundary data. Halo cells inside the domain belong
/// to neighbours and are overwritten by the exchange each iteration.
fn fill_domain_boundary(g: &mut Grid2D, region: &Region, problem: &PoissonProblem) {
    let k = g.halo() as isize;
    let n = problem.n() as isize;
    let h = problem.h();
    let rows = g.rows() as isize;
    let cols = g.cols() as isize;
    for lr in -k..rows + k {
        for lc in -k..cols + k {
            let interior = lr >= 0 && lr < rows && lc >= 0 && lc < cols;
            if interior {
                continue;
            }
            let gr = region.r0 as isize + lr;
            let gc = region.c0 as isize + lc;
            if gr >= 0 && gr < n && gc >= 0 && gc < n {
                continue; // neighbour-owned: exchanged at runtime
            }
            let v = match problem.boundary() {
                Boundary::Const(v) => v,
                Boundary::Exact(m) => {
                    let x = (gc as f64 + 1.0) * h;
                    let y = (gr as f64 + 1.0) * h;
                    m.u(x, y)
                }
            };
            g.set_h(lr, lc, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_solver::{JacobiSolver, Manufactured};

    /// Sequential reference: plain Jacobi, fixed iteration count.
    fn sequential_after(problem: &PoissonProblem, stencil: &Stencil, iters: usize) -> Grid2D {
        let solver = JacobiSolver { tol: 0.0, max_iters: iters, ..Default::default() };
        let (u, status) = solver.solve(problem, stencil);
        assert_eq!(status.iterations, iters);
        u
    }

    fn assert_bitwise_equal(parallel: &Grid2D, sequential: &Grid2D, label: &str) {
        for r in 0..sequential.rows() {
            for c in 0..sequential.cols() {
                assert_eq!(
                    parallel.get(r, c),
                    sequential.get(r, c),
                    "{label}: mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn strips_match_sequential_bitwise() {
        let p = PoissonProblem::manufactured(24, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(24, 5);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..50 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 50);
        assert_bitwise_equal(&exec.solution(), &seq, "strips/5pt");
    }

    #[test]
    fn rect_blocks_with_corners_match_sequential_bitwise() {
        // The 9-point box needs corner halo cells: the plan must deliver
        // them or results drift immediately.
        let p = PoissonProblem::manufactured(24, Manufactured::Bubble);
        let s = Stencil::nine_point_box();
        let d = RectDecomposition::new(24, 3, 4);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..40 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 40);
        assert_bitwise_equal(&exec.solution(), &seq, "rect/9pt-box");
    }

    #[test]
    fn reach_two_star_matches_sequential_bitwise() {
        // k = 2: halo slabs span two owner partitions for thin strips.
        let p = PoissonProblem::manufactured(18, Manufactured::SinSin);
        let s = Stencil::nine_point_star();
        let d = StripDecomposition::new(18, 6);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..20 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 20);
        assert_bitwise_equal(&exec.solution(), &seq, "strips/9pt-star");
    }

    #[test]
    fn solve_matches_sequential_iteration_count() {
        let p = PoissonProblem::manufactured(16, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(16, 4);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        let run = exec.solve(1e-8, 100_000, CheckPolicy::Every(1));
        let (_, seq) = JacobiSolver::with_tol(1e-8).solve(&p, &s);
        assert!(run.converged && seq.converged);
        assert_eq!(run.iterations, seq.iterations);
        assert_eq!(run.checks, run.iterations);
    }

    #[test]
    fn lazy_checking_overshoots_boundedly() {
        let p = PoissonProblem::manufactured(16, Manufactured::SinSin);
        let s = Stencil::five_point();
        let build = || PartitionedJacobi::new(&p, &s, &StripDecomposition::new(16, 4));
        let eager = build().solve(1e-8, 100_000, CheckPolicy::Every(1));
        let lazy = build().solve(1e-8, 100_000, CheckPolicy::Every(32));
        assert!(eager.converged && lazy.converged);
        assert!(lazy.iterations >= eager.iterations);
        assert!(lazy.iterations <= eager.iterations + 32);
        assert!(lazy.checks < eager.checks / 8, "{} vs {}", lazy.checks, eager.checks);
    }

    #[test]
    fn adaptive_scheduler_converges_with_minimal_checks() {
        use crate::AdaptiveChecker;
        let p = PoissonProblem::manufactured(24, Manufactured::SinSin);
        let s = Stencil::five_point();
        let build = || PartitionedJacobi::new(&p, &s, &StripDecomposition::new(24, 4));
        let eager = build().solve(1e-9, 100_000, CheckPolicy::Every(1));
        let mut adaptive = AdaptiveChecker::default();
        let run = build().solve_scheduled(1e-9, 100_000, &mut adaptive);
        assert!(run.converged);
        // The rate estimate must approximate Jacobi's spectral radius
        // cos(π/(n+1)) once the dominant mode governs the decay.
        let rho = (std::f64::consts::PI / 25.0).cos();
        let est = adaptive.estimated_rate().expect("rate observed");
        assert!((est - rho).abs() < 0.02, "estimated {est}, spectral {rho}");
        // Far fewer checks than eager, bounded overshoot.
        assert!(run.checks <= 12, "adaptive used {} checks", run.checks);
        assert!(run.iterations >= eager.iterations);
        assert!(run.iterations <= eager.iterations + eager.iterations / 5 + 64);
    }

    #[test]
    fn geometric_policy_uses_few_checks() {
        let p = PoissonProblem::manufactured(16, Manufactured::Bubble);
        let s = Stencil::five_point();
        let build = || PartitionedJacobi::new(&p, &s, &StripDecomposition::new(16, 2));
        let eager = build().solve(1e-8, 100_000, CheckPolicy::Every(1));
        let geo = build().solve(1e-8, 100_000, CheckPolicy::geometric());
        assert!(geo.converged);
        assert!(geo.checks < 30, "geometric used {} checks", geo.checks);
        assert!(geo.iterations < eager.iterations * 2);
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let p = PoissonProblem::manufactured(12, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(12, 1);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..30 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 30);
        assert_bitwise_equal(&exec.solution(), &seq, "single");
    }

    #[test]
    fn deterministic_across_runs() {
        let p = PoissonProblem::manufactured(20, Manufactured::Bubble);
        let s = Stencil::nine_point_box();
        let d = RectDecomposition::new(20, 2, 2);
        let run = |iters: usize| {
            let mut e = PartitionedJacobi::new(&p, &s, &d);
            for _ in 0..iters {
                e.iterate(false);
            }
            e.solution()
        };
        let a = run(25);
        let b = run(25);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn iterate_reports_diff_only_when_asked() {
        let p = PoissonProblem::laplace(8, 1.0);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(8, 2);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        assert!(exec.iterate(false).is_none());
        let d1 = exec.iterate(true).unwrap();
        assert!(d1 > 0.0); // still relaxing towards the boundary constant
        assert_eq!(exec.iterations(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_decomposition() {
        let p = PoissonProblem::laplace(8, 0.0);
        let d = StripDecomposition::new(10, 2);
        let _ = PartitionedJacobi::new(&p, &Stencil::five_point(), &d);
    }
}
