//! The partitioned Jacobi executor.
//!
//! Each partition owns local double-buffered grids with a halo of
//! `depth × reach` (depth 1 unless built
//! [`PartitionedJacobi::with_depth`]). One block of up to `depth`
//! iterations is two rayon phases:
//!
//! 1. **publish** — every halo copy of the (deep) exchange plan extracts
//!    its rectangle from the owner's current grid (read-only, parallel
//!    over copies);
//! 2. **install + sub-iterate** — every partition installs the published
//!    rectangles addressed to it into its halo, then runs the whole block
//!    of sweeps locally (parallel over partitions, each mutating only its
//!    own state): sub-iteration `j` of a `b`-iteration block sweeps the
//!    partition's region *expanded* by `(b − j)·reach` ghost rows/columns,
//!    so the final sub-iteration's owned values are exact. Halo traffic
//!    per iteration drops by ~`b` — the paper's per-iteration overhead
//!    knob — at the cost of the redundant ghost-zone arithmetic.
//!
//! Because a Jacobi update reads only previous-iteration values, and the
//! redundant ghost computations reproduce the owner's arithmetic exactly,
//! the result is bit-for-bit identical to the sequential whole-grid sweep
//! — which the tests assert, making this executor a machine-checked
//! refinement of `parspeed-solver`. Each per-region sweep goes through
//! [`jacobi_sweep_region`]'s kernel dispatch, so partitions of catalogue
//! stencils run the fused row-slice kernels (including the expanded
//! ghost sweeps, whose regions stay one reach inside the deep halo).

use crate::adaptive::CheckScheduler;
use crate::CheckPolicy;
use parspeed_grid::halo::{plan_deep, CopySpec};
use parspeed_grid::{Decomposition, Grid2D, Region};
use parspeed_solver::apply::jacobi_sweep_region;
use parspeed_solver::{Boundary, Checkpoint, CheckpointCtx, PoissonProblem};
use parspeed_stencil::Stencil;
use rayon::prelude::*;

struct Part {
    region: Region,
    u: Grid2D,
    next: Grid2D,
}

/// Outcome of a partitioned solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRun {
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Convergence checks performed.
    pub checks: usize,
    /// Last observed global max-norm update difference.
    pub final_diff: f64,
}

/// Partitioned, rayon-parallel point-Jacobi executor.
pub struct PartitionedJacobi {
    stencil: Stencil,
    h2: f64,
    forcing: Grid2D,
    n: usize,
    depth: usize,
    copies: Vec<CopySpec>,
    incoming: Vec<Vec<usize>>, // per partition: indices into `copies`
    parts: Vec<Part>,
    iterations: usize,
    exchanges: usize,
}

impl PartitionedJacobi {
    /// Builds the executor for `problem` under `decomp`, exchanging every
    /// iteration (halo depth 1).
    pub fn new<D: Decomposition + ?Sized>(
        problem: &PoissonProblem,
        stencil: &Stencil,
        decomp: &D,
    ) -> Self {
        Self::with_depth(problem, stencil, decomp, 1)
    }

    /// Builds a **communication-avoiding** executor: halos are
    /// `depth × reach` deep, and one exchange funds up to `depth` local
    /// sub-iterations ([`PartitionedJacobi::iterate_block`]), dividing
    /// exchange rounds per iteration by the block size.
    pub fn with_depth<D: Decomposition + ?Sized>(
        problem: &PoissonProblem,
        stencil: &Stencil,
        decomp: &D,
        depth: usize,
    ) -> Self {
        assert_eq!(problem.n(), decomp.domain(), "decomposition does not match the problem");
        assert!(depth >= 1, "halo depth must be at least 1");
        let halo_plan = plan_deep(decomp, stencil, depth);
        let copies = halo_plan.copies().to_vec();
        let mut incoming = vec![Vec::new(); decomp.count()];
        for (ci, c) in copies.iter().enumerate() {
            incoming[c.dst].push(ci);
        }
        let k = depth * stencil.reach();
        let n = problem.n();
        let parts: Vec<Part> = decomp
            .regions()
            .into_iter()
            .map(|region| {
                let mut u = Grid2D::new(region.rows(), region.cols(), k);
                let mut next = Grid2D::new(region.rows(), region.cols(), k);
                fill_domain_boundary(&mut u, &region, problem);
                fill_domain_boundary(&mut next, &region, problem);
                Part { region, u, next }
            })
            .collect();
        Self {
            stencil: stencil.clone(),
            h2: problem.h() * problem.h(),
            forcing: problem.forcing().clone(),
            n,
            depth,
            copies,
            incoming,
            parts,
            iterations: 0,
            exchanges: 0,
        }
    }

    /// Number of partitions (the paper's processor count).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Iterations performed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Halo-exchange rounds performed so far — the per-iteration overhead
    /// events the paper's model charges for; deep halos make
    /// `exchanges() ≪ iterations()`.
    pub fn exchanges(&self) -> usize {
        self.exchanges
    }

    /// Halo depth in sub-iterations (`1` for the classic executor).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Runs one iteration. Returns the global max update difference when
    /// `compute_diff` is set (the local convergence check of §4).
    pub fn iterate(&mut self, compute_diff: bool) -> Option<f64> {
        self.iterate_block(1, compute_diff)
    }

    /// Runs a block of `block ≤ depth` iterations on **one** halo
    /// exchange. Sub-iteration `j` sweeps each region expanded by
    /// `(block − j)·reach` (clamped to the domain): the expanded writes
    /// are redundant recomputations of neighbour-owned points from the
    /// same inputs the neighbour uses, so owned values after the block are
    /// bit-identical to `block` classic iterations. Returns the global
    /// max update difference of the *last* iteration when `compute_diff`
    /// is set.
    pub fn iterate_block(&mut self, block: usize, compute_diff: bool) -> Option<f64> {
        assert!(block >= 1, "blocks advance at least one iteration");
        assert!(
            block <= self.depth,
            "block of {block} exceeds halo depth {} — build with_depth({block}) or more",
            self.depth
        );
        // Phase 1: publish halo rectangles from the owners' current grids
        // (whole row segments at a time — no per-point indexing).
        let parts = &self.parts;
        let published: Vec<Vec<f64>> = self
            .copies
            .par_iter()
            .map(|c| {
                let src = &parts[c.src];
                let mut buf = Vec::with_capacity(c.src_region.area());
                let lc0 = c.src_region.c0 - src.region.c0;
                let lc1 = c.src_region.c1 - src.region.c0;
                for gr in c.src_region.r0..c.src_region.r1 {
                    let row = src.u.interior_row(gr - src.region.r0);
                    buf.extend_from_slice(&row[lc0..lc1]);
                }
                buf
            })
            .collect();

        // Phase 2: install halos, then run the whole block locally —
        // each partition touches only its own state.
        let copies = &self.copies;
        let incoming = &self.incoming;
        let stencil = &self.stencil;
        let forcing = &self.forcing;
        let h2 = self.h2;
        let n = self.n;
        let reach = stencil.reach();
        let diffs: Vec<f64> = self
            .parts
            .par_iter_mut()
            .enumerate()
            .map(|(i, part)| {
                for &ci in &incoming[i] {
                    let c = &copies[ci];
                    let buf = &published[ci];
                    // Install each published rectangle row-wise into the
                    // halo: one bounds-checked slice copy per row.
                    let w = c.src_region.c1 - c.src_region.c0;
                    let halo = part.u.halo() as isize;
                    let j0 = (c.src_region.c0 as isize - part.region.c0 as isize + halo) as usize;
                    for (i_row, gr) in (c.src_region.r0..c.src_region.r1).enumerate() {
                        let lr = gr as isize - part.region.r0 as isize;
                        let row = part.u.padded_row_mut(lr);
                        row[j0..j0 + w].copy_from_slice(&buf[i_row * w..(i_row + 1) * w]);
                    }
                }
                let mut d = 0.0;
                for j in 1..=block {
                    let e = (block - j) * reach;
                    let sweep = Region {
                        r0: part.region.r0.saturating_sub(e),
                        r1: (part.region.r1 + e).min(n),
                        c0: part.region.c0.saturating_sub(e),
                        c1: (part.region.c1 + e).min(n),
                    };
                    jacobi_sweep_region(
                        stencil,
                        &part.u,
                        &mut part.next,
                        forcing,
                        h2,
                        &sweep,
                        (part.region.r0, part.region.c0),
                    );
                    if compute_diff && j == block {
                        d = part.u.max_abs_diff(&part.next);
                    }
                    part.u.swap(&mut part.next);
                }
                d
            })
            .collect();
        self.iterations += block;
        self.exchanges += 1;
        compute_diff.then(|| diffs.into_iter().fold(0.0, f64::max))
    }

    /// Iterates until the max-norm update difference at a scheduled check
    /// falls below `tol`, or `max_iters` is reached.
    pub fn solve(&mut self, tol: f64, max_iters: usize, policy: CheckPolicy) -> SolveRun {
        let mut policy = policy;
        self.solve_scheduled(tol, max_iters, &mut policy)
    }

    /// [`solve`](Self::solve) with checkpoint/restart: a surviving
    /// snapshot for this solve's key restores every partition's owned
    /// interior and the global iteration/check counters (halos are
    /// republished from the restored owners on the first exchange, so
    /// resumption is bit-identical); checkpoint-scheduled check
    /// boundaries snapshot the assembled solution; a converged solve
    /// removes its entry. The second return is the iteration the solve
    /// resumed from (`None` when it started fresh).
    ///
    /// Must be called on a freshly built executor: the resume decision
    /// keys off `iterations() == 0`.
    pub fn solve_checkpointed(
        &mut self,
        tol: f64,
        max_iters: usize,
        policy: CheckPolicy,
        ctx: Option<CheckpointCtx<'_>>,
    ) -> (SolveRun, Option<usize>) {
        let mut resumed_from = None;
        let mut checks = 0usize;
        if let Some(ctx) = ctx {
            if self.iterations == 0 {
                if let Some(cp) = ctx.store.load(ctx.key) {
                    if cp.rows == self.n
                        && cp.cols == self.n
                        && cp.iteration > 0
                        && cp.iteration <= max_iters
                    {
                        self.restore(&cp);
                        checks = cp.checks;
                        resumed_from = Some(cp.iteration);
                        ctx.store.note_resume();
                    }
                }
            }
        }
        let mut diff = f64::INFINITY;
        // Fast-forward the check cursor: the schedule is a pure function
        // of the iteration count, so the resumed run checks at exactly
        // the iterations the uninterrupted run would have.
        let mut next_check = policy.first_check();
        let mut done = self.iterations;
        while next_check <= done {
            next_check = policy.next_check(next_check);
        }
        let mut checks_since_snapshot = 0usize;
        while done < max_iters {
            let target = next_check.min(max_iters).max(done + 1);
            let block = (target - done).min(self.depth);
            let at_check = done + block == target;
            let d = self.iterate_block(block, at_check);
            done += block;
            if let Some(d) = d {
                checks += 1;
                diff = d;
                if diff < tol {
                    if let Some(ctx) = ctx {
                        ctx.store.remove(ctx.key);
                    }
                    let run =
                        SolveRun { converged: true, iterations: done, checks, final_diff: diff };
                    return (run, resumed_from);
                }
                while next_check <= done {
                    next_check = policy.next_check(next_check);
                }
                if let Some(ctx) = ctx {
                    if done < max_iters {
                        checks_since_snapshot += 1;
                        if checks_since_snapshot >= ctx.policy.every {
                            checks_since_snapshot = 0;
                            let cp = Checkpoint::capture(&self.solution(), done, checks);
                            ctx.store.save(ctx.key, cp);
                        }
                    }
                }
            }
        }
        (SolveRun { converged: false, iterations: done, checks, final_diff: diff }, resumed_from)
    }

    /// Installs a snapshot: every partition's owned interior is written
    /// from the global grid and the iteration counter jumps to the
    /// boundary. Halo cells are left alone — the next exchange's
    /// publish phase reads the restored owners, so the first block after
    /// a resume sees exactly the halos the uninterrupted run saw.
    fn restore(&mut self, cp: &Checkpoint) {
        for part in &mut self.parts {
            let (r0, c0, c1) = (part.region.r0, part.region.c0, part.region.c1);
            for gr in r0..part.region.r1 {
                let src = &cp.interior[gr * cp.cols + c0..gr * cp.cols + c1];
                part.u.interior_row_mut(gr - r0).copy_from_slice(src);
            }
        }
        self.iterations = cp.iteration;
    }

    /// [`PartitionedJacobi::solve`] under any [`CheckScheduler`] —
    /// including the rate-estimating [`AdaptiveChecker`](crate::AdaptiveChecker)
    /// of §4's reference \[13\], which feeds observed differences back into
    /// the schedule.
    ///
    /// The gap until the next scheduled check is spent in
    /// [`PartitionedJacobi::iterate_block`]s of up to the halo depth, so a
    /// deep-halo executor exchanges once per block instead of once per
    /// iteration while checking at exactly the same iterations (and hence
    /// converging after exactly the same count) as a depth-1 run.
    pub fn solve_scheduled(
        &mut self,
        tol: f64,
        max_iters: usize,
        scheduler: &mut dyn CheckScheduler,
    ) -> SolveRun {
        let mut checks = 0usize;
        let mut diff = f64::INFINITY;
        let mut next_check = scheduler.first_check();
        let start = self.iterations;
        let mut done = 0usize;
        while done < max_iters {
            // Run to the next scheduled check (or the cap), in blocks the
            // halo depth can fund; only the block landing on the check
            // computes the reduction.
            let target = next_check.min(max_iters).max(done + 1);
            let block = (target - done).min(self.depth);
            let at_check = done + block == target;
            let d = self.iterate_block(block, at_check);
            done += block;
            if let Some(d) = d {
                checks += 1;
                diff = d;
                if diff < tol {
                    return SolveRun {
                        converged: true,
                        iterations: done,
                        checks,
                        final_diff: diff,
                    };
                }
                if done >= next_check {
                    next_check = scheduler.next_after(done, diff, tol);
                }
            }
        }
        debug_assert_eq!(self.iterations - start, done);
        SolveRun { converged: false, iterations: done, checks, final_diff: diff }
    }

    /// Assembles the global solution grid from the partitions.
    pub fn solution(&self) -> Grid2D {
        let mut g = Grid2D::new(self.n, self.n, 0);
        for part in &self.parts {
            for gr in part.region.r0..part.region.r1 {
                for gc in part.region.c0..part.region.c1 {
                    g.set(gr, gc, part.u.get(gr - part.region.r0, gc - part.region.c0));
                }
            }
        }
        g
    }
}

/// Fills the halo cells of a local grid that fall *outside the domain*
/// with the problem's boundary data. Halo cells inside the domain belong
/// to neighbours and are overwritten by the exchange each iteration.
fn fill_domain_boundary(g: &mut Grid2D, region: &Region, problem: &PoissonProblem) {
    let k = g.halo() as isize;
    let n = problem.n() as isize;
    let h = problem.h();
    let rows = g.rows() as isize;
    let cols = g.cols() as isize;
    for lr in -k..rows + k {
        for lc in -k..cols + k {
            let interior = lr >= 0 && lr < rows && lc >= 0 && lc < cols;
            if interior {
                continue;
            }
            let gr = region.r0 as isize + lr;
            let gc = region.c0 as isize + lc;
            if gr >= 0 && gr < n && gc >= 0 && gc < n {
                continue; // neighbour-owned: exchanged at runtime
            }
            let v = match problem.boundary() {
                Boundary::Const(v) => v,
                Boundary::Exact(m) => {
                    let x = (gc as f64 + 1.0) * h;
                    let y = (gr as f64 + 1.0) * h;
                    m.u(x, y)
                }
            };
            g.set_h(lr, lc, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_grid::{RectDecomposition, StripDecomposition};
    use parspeed_solver::{JacobiSolver, Manufactured};

    /// Sequential reference: plain Jacobi, fixed iteration count.
    fn sequential_after(problem: &PoissonProblem, stencil: &Stencil, iters: usize) -> Grid2D {
        let solver = JacobiSolver { tol: 0.0, max_iters: iters, ..Default::default() };
        let (u, status) = solver.solve(problem, stencil);
        assert_eq!(status.iterations, iters);
        u
    }

    fn assert_bitwise_equal(parallel: &Grid2D, sequential: &Grid2D, label: &str) {
        for r in 0..sequential.rows() {
            for c in 0..sequential.cols() {
                assert_eq!(
                    parallel.get(r, c),
                    sequential.get(r, c),
                    "{label}: mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn strips_match_sequential_bitwise() {
        let p = PoissonProblem::manufactured(24, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(24, 5);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..50 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 50);
        assert_bitwise_equal(&exec.solution(), &seq, "strips/5pt");
    }

    #[test]
    fn rect_blocks_with_corners_match_sequential_bitwise() {
        // The 9-point box needs corner halo cells: the plan must deliver
        // them or results drift immediately.
        let p = PoissonProblem::manufactured(24, Manufactured::Bubble);
        let s = Stencil::nine_point_box();
        let d = RectDecomposition::new(24, 3, 4);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..40 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 40);
        assert_bitwise_equal(&exec.solution(), &seq, "rect/9pt-box");
    }

    #[test]
    fn reach_two_star_matches_sequential_bitwise() {
        // k = 2: halo slabs span two owner partitions for thin strips.
        let p = PoissonProblem::manufactured(18, Manufactured::SinSin);
        let s = Stencil::nine_point_star();
        let d = StripDecomposition::new(18, 6);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..20 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 20);
        assert_bitwise_equal(&exec.solution(), &seq, "strips/9pt-star");
    }

    #[test]
    fn solve_matches_sequential_iteration_count() {
        let p = PoissonProblem::manufactured(16, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(16, 4);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        let run = exec.solve(1e-8, 100_000, CheckPolicy::Every(1));
        let (_, seq) = JacobiSolver::with_tol(1e-8).solve(&p, &s);
        assert!(run.converged && seq.converged);
        assert_eq!(run.iterations, seq.iterations);
        assert_eq!(run.checks, run.iterations);
    }

    #[test]
    fn lazy_checking_overshoots_boundedly() {
        let p = PoissonProblem::manufactured(16, Manufactured::SinSin);
        let s = Stencil::five_point();
        let build = || PartitionedJacobi::new(&p, &s, &StripDecomposition::new(16, 4));
        let eager = build().solve(1e-8, 100_000, CheckPolicy::Every(1));
        let lazy = build().solve(1e-8, 100_000, CheckPolicy::Every(32));
        assert!(eager.converged && lazy.converged);
        assert!(lazy.iterations >= eager.iterations);
        assert!(lazy.iterations <= eager.iterations + 32);
        assert!(lazy.checks < eager.checks / 8, "{} vs {}", lazy.checks, eager.checks);
    }

    #[test]
    fn adaptive_scheduler_converges_with_minimal_checks() {
        use crate::AdaptiveChecker;
        let p = PoissonProblem::manufactured(24, Manufactured::SinSin);
        let s = Stencil::five_point();
        let build = || PartitionedJacobi::new(&p, &s, &StripDecomposition::new(24, 4));
        let eager = build().solve(1e-9, 100_000, CheckPolicy::Every(1));
        let mut adaptive = AdaptiveChecker::default();
        let run = build().solve_scheduled(1e-9, 100_000, &mut adaptive);
        assert!(run.converged);
        // The rate estimate must approximate Jacobi's spectral radius
        // cos(π/(n+1)) once the dominant mode governs the decay.
        let rho = (std::f64::consts::PI / 25.0).cos();
        let est = adaptive.estimated_rate().expect("rate observed");
        assert!((est - rho).abs() < 0.02, "estimated {est}, spectral {rho}");
        // Far fewer checks than eager, bounded overshoot.
        assert!(run.checks <= 12, "adaptive used {} checks", run.checks);
        assert!(run.iterations >= eager.iterations);
        assert!(run.iterations <= eager.iterations + eager.iterations / 5 + 64);
    }

    #[test]
    fn geometric_policy_uses_few_checks() {
        let p = PoissonProblem::manufactured(16, Manufactured::Bubble);
        let s = Stencil::five_point();
        let build = || PartitionedJacobi::new(&p, &s, &StripDecomposition::new(16, 2));
        let eager = build().solve(1e-8, 100_000, CheckPolicy::Every(1));
        let geo = build().solve(1e-8, 100_000, CheckPolicy::geometric());
        assert!(geo.converged);
        assert!(geo.checks < 30, "geometric used {} checks", geo.checks);
        assert!(geo.iterations < eager.iterations * 2);
    }

    #[test]
    fn deep_halo_blocks_match_sequential_bitwise() {
        // Mixed block sizes (3+3+2+1+3 = 12 iterations) over every
        // catalogue stencil: owned values must equal the classic loop's.
        for s in Stencil::catalog() {
            let p = PoissonProblem::manufactured(20, Manufactured::SinSin);
            let d = StripDecomposition::new(20, 4);
            let mut exec = PartitionedJacobi::with_depth(&p, &s, &d, 3);
            for block in [3usize, 3, 2, 1, 3] {
                exec.iterate_block(block, false);
            }
            assert_eq!(exec.iterations(), 12);
            assert_eq!(exec.exchanges(), 5);
            let seq = sequential_after(&p, &s, 12);
            assert_bitwise_equal(&exec.solution(), &seq, s.name());
        }
    }

    #[test]
    fn deep_halo_rect_blocks_match_sequential_bitwise() {
        // 2-D decomposition: deep corners matter even for the 5-point
        // cross (ghost sub-iterations reach diagonally).
        let p = PoissonProblem::manufactured(24, Manufactured::Bubble);
        let s = Stencil::five_point();
        let d = RectDecomposition::new(24, 3, 4);
        let mut exec = PartitionedJacobi::with_depth(&p, &s, &d, 4);
        for _ in 0..10 {
            exec.iterate_block(4, false);
        }
        let seq = sequential_after(&p, &s, 40);
        assert_bitwise_equal(&exec.solution(), &seq, "deep rect/5pt");
    }

    #[test]
    fn deep_solve_cuts_exchanges_at_identical_convergence() {
        let p = PoissonProblem::manufactured(16, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = || StripDecomposition::new(16, 4);
        let mut shallow = PartitionedJacobi::new(&p, &s, &d());
        let run1 = shallow.solve(1e-8, 100_000, CheckPolicy::Every(8));
        let mut deep = PartitionedJacobi::with_depth(&p, &s, &d(), 4);
        let run4 = deep.solve(1e-8, 100_000, CheckPolicy::Every(8));
        assert!(run1.converged && run4.converged);
        // Checks land on the same iterations, so convergence is identical…
        assert_eq!(run1.iterations, run4.iterations);
        assert_eq!(run1.checks, run4.checks);
        assert_eq!(run1.final_diff.to_bits(), run4.final_diff.to_bits());
        assert_bitwise_equal(&deep.solution(), &shallow.solution(), "deep vs shallow");
        // …while the deep run exchanged 4× less.
        assert_eq!(shallow.exchanges(), run1.iterations);
        assert_eq!(deep.exchanges() * 4, shallow.exchanges());
    }

    #[test]
    fn degenerate_thin_strips_with_deep_halos_stay_exact() {
        // Partition rows (2) ≪ depth·reach (8): expanded sweeps span
        // several neighbours and clamp at the domain edge.
        let p = PoissonProblem::manufactured(12, Manufactured::SinSin);
        let s = Stencil::nine_point_star();
        let d = StripDecomposition::new(12, 6);
        let mut exec = PartitionedJacobi::with_depth(&p, &s, &d, 4);
        for _ in 0..5 {
            exec.iterate_block(4, false);
        }
        let seq = sequential_after(&p, &s, 20);
        assert_bitwise_equal(&exec.solution(), &seq, "thin strips/9pt-star deep");
    }

    #[test]
    #[should_panic(expected = "exceeds halo depth")]
    fn blocks_deeper_than_the_halo_are_rejected() {
        let p = PoissonProblem::laplace(8, 0.0);
        let d = StripDecomposition::new(8, 2);
        let mut exec = PartitionedJacobi::new(&p, &Stencil::five_point(), &d);
        let _ = exec.iterate_block(2, false);
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let p = PoissonProblem::manufactured(12, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(12, 1);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        for _ in 0..30 {
            exec.iterate(false);
        }
        let seq = sequential_after(&p, &s, 30);
        assert_bitwise_equal(&exec.solution(), &seq, "single");
    }

    #[test]
    fn checkpointed_partitioned_solves_resume_bit_identically() {
        use parspeed_solver::{CheckpointCtx, CheckpointPolicy, CheckpointStore};
        // Fixed-budget runs (tol 0 never converges) over every catalogue
        // stencil, shallow and deep halos: the first leg dies at its
        // budget, the second resumes from the surviving snapshot and must
        // match both the uninterrupted partitioned run and the sequential
        // solver, bit for bit.
        for s in Stencil::catalog() {
            let p = PoissonProblem::manufactured(16, Manufactured::SinSin);
            let d = StripDecomposition::new(16, 4);
            for depth in [1usize, 3] {
                let store = CheckpointStore::new(2);
                let ctx =
                    CheckpointCtx { store: &store, policy: CheckpointPolicy::every(1), key: 9 };
                let mut interrupted = PartitionedJacobi::with_depth(&p, &s, &d, depth);
                let (run1, from1) =
                    interrupted.solve_checkpointed(0.0, 17, CheckPolicy::Every(4), Some(ctx));
                assert!(!run1.converged);
                assert_eq!(from1, None);
                // Checks at 4, 8, 12, 16; the cap (17) takes no snapshot.
                assert_eq!(store.load(9).unwrap().iteration, 16);
                let mut resumed = PartitionedJacobi::with_depth(&p, &s, &d, depth);
                let (run2, from2) =
                    resumed.solve_checkpointed(0.0, 40, CheckPolicy::Every(4), Some(ctx));
                assert_eq!(from2, Some(16), "{} depth {depth}", s.name());
                assert_eq!(run2.iterations, 40);
                let mut clean = PartitionedJacobi::with_depth(&p, &s, &d, depth);
                let (run_ref, _) = clean.solve_checkpointed(0.0, 40, CheckPolicy::Every(4), None);
                assert_eq!(run2.checks, run_ref.checks, "{}", s.name());
                assert_eq!(run2.final_diff.to_bits(), run_ref.final_diff.to_bits());
                assert_bitwise_equal(&resumed.solution(), &clean.solution(), s.name());
                assert_bitwise_equal(&resumed.solution(), &sequential_after(&p, &s, 40), s.name());
            }
        }
    }

    #[test]
    fn checkpointed_converged_solve_cleans_up_and_matches_the_clean_run() {
        use parspeed_solver::{CheckpointCtx, CheckpointPolicy, CheckpointStore};
        // A 2-D decomposition with a deep halo, run to convergence:
        // interrupt halfway, resume, and demand the clean run's full
        // SolveRun (global iteration count, total check count, final
        // diff) plus the assembled grid, bitwise — then the store entry
        // is gone.
        let p = PoissonProblem::manufactured(24, Manufactured::Bubble);
        let s = Stencil::five_point();
        let d = RectDecomposition::new(24, 3, 2);
        let mut clean = PartitionedJacobi::with_depth(&p, &s, &d, 4);
        let (run_ref, _) = clean.solve_checkpointed(1e-8, 100_000, CheckPolicy::Every(8), None);
        assert!(run_ref.converged);

        let store = CheckpointStore::new(2);
        let ctx = CheckpointCtx { store: &store, policy: CheckpointPolicy::every(2), key: 3 };
        let cut = run_ref.iterations / 2;
        let mut interrupted = PartitionedJacobi::with_depth(&p, &s, &d, 4);
        let (run1, _) = interrupted.solve_checkpointed(1e-8, cut, CheckPolicy::Every(8), Some(ctx));
        assert!(!run1.converged);
        let saved = store.load(3).expect("snapshot survives");
        assert!(saved.iteration < cut);

        let mut resumed = PartitionedJacobi::with_depth(&p, &s, &d, 4);
        let (run2, from) =
            resumed.solve_checkpointed(1e-8, 100_000, CheckPolicy::Every(8), Some(ctx));
        assert_eq!(from, Some(saved.iteration));
        assert_eq!(run2, run_ref);
        assert_bitwise_equal(&resumed.solution(), &clean.solution(), "rect deep resume");
        assert!(store.load(3).is_none(), "converged solve must clean up");
        assert_eq!(store.resumes(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = PoissonProblem::manufactured(20, Manufactured::Bubble);
        let s = Stencil::nine_point_box();
        let d = RectDecomposition::new(20, 2, 2);
        let run = |iters: usize| {
            let mut e = PartitionedJacobi::new(&p, &s, &d);
            for _ in 0..iters {
                e.iterate(false);
            }
            e.solution()
        };
        let a = run(25);
        let b = run(25);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn iterate_reports_diff_only_when_asked() {
        let p = PoissonProblem::laplace(8, 1.0);
        let s = Stencil::five_point();
        let d = StripDecomposition::new(8, 2);
        let mut exec = PartitionedJacobi::new(&p, &s, &d);
        assert!(exec.iterate(false).is_none());
        let d1 = exec.iterate(true).unwrap();
        assert!(d1 > 0.0); // still relaxing towards the boundary constant
        assert_eq!(exec.iterations(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_decomposition() {
        let p = PoissonProblem::laplace(8, 0.0);
        let d = StripDecomposition::new(10, 2);
        let _ = PartitionedJacobi::new(&p, &Stencil::five_point(), &d);
    }
}
