//! Adaptive convergence-check scheduling (§4, the mechanism of Saltz,
//! Naik & Nicol \[13\]).
//!
//! Stationary iterations decay geometrically once the dominant mode takes
//! over: `diff_k ≈ C·ρ^k`. Two observed checks `(k₁, d₁)`, `(k₂, d₂)` give
//! the rate estimate `ρ̂ = (d₂/d₁)^{1/(k₂−k₁)}` and hence a *predicted*
//! convergence iteration `k* = k₂ + ln(tol/d₂)/ln ρ̂`. The adaptive
//! scheduler jumps a safety fraction of the way to `k*` instead of probing
//! blindly, which is how \[13\] reduced the "extremely high" checking cost
//! to "an insignificant amount": almost all checks land where convergence
//! actually happens.
//!
//! [`CheckScheduler`] is the feedback-driven interface;
//! [`CheckPolicy`] implements it by ignoring the
//! feedback, and [`AdaptiveChecker`] implements the rate estimator.

use crate::CheckPolicy;

/// A convergence-check schedule that may react to observed residuals.
pub trait CheckScheduler {
    /// The first iteration at which to check.
    fn first_check(&mut self) -> usize;

    /// Given that iteration `checked_at` observed max-norm difference
    /// `diff` (not yet converged at tolerance `tol`), the next check
    /// iteration. Must be strictly greater than `checked_at`.
    fn next_after(&mut self, checked_at: usize, diff: f64, tol: f64) -> usize;
}

impl CheckScheduler for CheckPolicy {
    fn first_check(&mut self) -> usize {
        CheckPolicy::first_check(self)
    }

    fn next_after(&mut self, checked_at: usize, _diff: f64, _tol: f64) -> usize {
        self.next_check(checked_at)
    }
}

/// The rate-estimating scheduler of \[13\].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveChecker {
    /// First check iteration (skips the pre-asymptotic transient).
    pub first: usize,
    /// Smallest allowed gap between checks.
    pub min_interval: usize,
    /// Largest allowed gap — a wrong rate estimate can only cost this much
    /// overshoot.
    pub max_interval: usize,
    /// Fraction of the predicted distance-to-convergence to jump
    /// (`0 < safety ≤ 1`); below 1 trades extra checks for less overshoot.
    pub safety: f64,
    last: Option<(usize, f64)>,
    rate: Option<f64>,
}

impl Default for AdaptiveChecker {
    fn default() -> Self {
        Self { first: 8, min_interval: 4, max_interval: 4096, safety: 0.9, last: None, rate: None }
    }
}

impl AdaptiveChecker {
    /// The default estimator with a custom maximum interval.
    pub fn with_max_interval(max_interval: usize) -> Self {
        Self { max_interval: max_interval.max(1), ..Self::default() }
    }

    /// The current rate estimate `ρ̂`: available once two informative
    /// (strictly decaying) checks have been seen.
    pub fn estimated_rate(&self) -> Option<f64> {
        self.rate
    }
}

impl CheckScheduler for AdaptiveChecker {
    fn first_check(&mut self) -> usize {
        self.first.max(1)
    }

    fn next_after(&mut self, checked_at: usize, diff: f64, tol: f64) -> usize {
        assert!(self.safety > 0.0 && self.safety <= 1.0, "safety must be in (0, 1]");
        let fallback = checked_at + (checked_at / 2).clamp(self.min_interval, self.max_interval);
        let next = match self.last {
            Some((k_prev, d_prev))
                if diff > 0.0 && d_prev > diff && checked_at > k_prev && tol > 0.0 =>
            {
                // ρ̂ from the last two observations; predicted convergence.
                let span = (checked_at - k_prev) as f64;
                let rho = (diff / d_prev).powf(1.0 / span);
                self.rate = Some(rho);
                let remaining = (tol / diff).ln() / rho.ln(); // iterations to go
                if remaining.is_finite() && remaining > 0.0 {
                    let jump = (self.safety * remaining).ceil() as usize;
                    checked_at + jump.clamp(self.min_interval, self.max_interval)
                } else {
                    fallback
                }
            }
            // No usable history (first check, or residual not decaying):
            // geometric growth until the asymptotic regime shows.
            _ => fallback,
        };
        self.last = Some((checked_at, diff));
        next.max(checked_at + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a scheduler against an exact geometric decay and report
    /// (checks used, converged-at iteration, first iteration where
    /// diff < tol).
    fn drive(mut s: impl CheckScheduler, rho: f64, c0: f64, tol: f64) -> (usize, usize, usize) {
        let diff = |k: usize| c0 * rho.powi(k as i32);
        let exact = ((tol / c0).ln() / rho.ln()).ceil() as usize;
        let mut k = s.first_check();
        let mut checks = 0usize;
        loop {
            checks += 1;
            let d = diff(k);
            if d < tol {
                return (checks, k, exact);
            }
            k = s.next_after(k, d, tol);
            assert!(checks < 100_000, "scheduler failed to converge");
        }
    }

    #[test]
    fn adaptive_uses_very_few_checks_on_clean_decay() {
        let (checks, at, exact) = drive(AdaptiveChecker::default(), 0.999, 1.0, 1e-10);
        // exact ≈ 23025 iterations; blind Every(64) would use ~360 checks.
        assert!(checks <= 12, "adaptive used {checks} checks");
        assert!(at >= exact, "declared convergence early: {at} < {exact}");
        assert!(
            at - exact <= exact / 10 + 64,
            "overshoot too large: stopped at {at}, exact {exact}"
        );
    }

    #[test]
    fn adaptive_beats_geometric_policy_checks() {
        let (a_checks, ..) = drive(AdaptiveChecker::default(), 0.9995, 1.0, 1e-8);
        let (g_checks, ..) = drive(CheckPolicy::geometric(), 0.9995, 1.0, 1e-8);
        assert!(a_checks * 5 <= g_checks, "adaptive {a_checks} vs geometric {g_checks} checks");
    }

    #[test]
    fn rate_estimate_matches_the_true_decay() {
        let mut s = AdaptiveChecker::default();
        let rho = 0.98f64;
        let diff = |k: usize| 3.0 * rho.powi(k as i32);
        let mut k = s.first_check();
        for _ in 0..4 {
            k = s.next_after(k, diff(k), 1e-12);
        }
        let est = s.estimated_rate().expect("two informative checks seen");
        assert!((est - rho).abs() < 1e-9, "estimated {est}, true {rho}");
    }

    #[test]
    fn safety_below_one_checks_earlier() {
        let cautious = AdaptiveChecker { safety: 0.5, ..Default::default() };
        let bold = AdaptiveChecker { safety: 1.0, ..Default::default() };
        let (c_checks, c_at, exact) = drive(cautious, 0.995, 1.0, 1e-9);
        let (b_checks, ..) = drive(bold, 0.995, 1.0, 1e-9);
        assert!(c_checks >= b_checks);
        assert!(c_at >= exact);
    }

    #[test]
    fn non_decaying_residuals_fall_back_to_geometric_growth() {
        let mut s = AdaptiveChecker::default();
        let mut k = s.first_check();
        let mut gaps = Vec::new();
        for _ in 0..6 {
            let next = s.next_after(k, 1.0, 1e-8); // flat residual
            gaps.push(next - k);
            k = next;
        }
        assert!(s.estimated_rate().is_none());
        // Gaps grow (geometric fallback) but never exceed the cap.
        assert!(gaps.windows(2).all(|w| w[1] >= w[0]));
        assert!(gaps.iter().all(|&g| g <= 4096));
    }

    #[test]
    fn next_check_is_always_strictly_later() {
        let mut s = AdaptiveChecker { min_interval: 1, ..Default::default() };
        // Converging extremely fast: predicted remaining < 1.
        let n1 = s.next_after(10, 1e-3, 0.9e-3);
        assert!(n1 > 10);
        let mut p = CheckPolicy::Every(1);
        assert!(CheckScheduler::next_after(&mut p, 7, 0.5, 1e-9) == 8);
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn rejects_bad_safety() {
        let mut s = AdaptiveChecker { safety: 0.0, ..Default::default() };
        let _ = s.next_after(1, 0.5, 1e-9);
    }
}
