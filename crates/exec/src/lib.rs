//! Shared-memory partitioned parallel runtime.
//!
//! This crate is the workspace's real-threads testbed: it executes the
//! exact computation the paper models — per-partition Jacobi sweeps with
//! explicit halo exchange between partitions — on the host CPU with rayon,
//! emulating the paper's distributed-memory discipline in shared memory
//! (each partition owns local grids; neighbours' boundary values arrive by
//! explicit copies, never by aliased reads).
//!
//! * [`PartitionedJacobi`] — the partitioned executor; bit-identical to the
//!   sequential solver, since Jacobi updates read only previous-iteration
//!   values;
//! * [`CheckPolicy`] — fixed convergence-check schedules (§4, after Saltz,
//!   Naik & Nicol \[13\]);
//! * [`AdaptiveChecker`] — the rate-estimating schedule of \[13\] itself:
//!   observed differences predict the convergence iteration and checks
//!   cluster there;
//! * [`measure`] — wall-clock cycle-time measurement across thread counts,
//!   used by the `validate_threads` experiment (E14).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
mod convergence;
pub mod measure;
mod partitioned;

pub use adaptive::{AdaptiveChecker, CheckScheduler};
pub use convergence::CheckPolicy;
pub use partitioned::{PartitionedJacobi, SolveRun};
