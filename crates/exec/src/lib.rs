//! Shared-memory partitioned parallel runtime.
//!
//! This crate is the workspace's real-threads testbed: it executes the
//! exact computation the paper models — per-partition Jacobi sweeps with
//! explicit halo exchange between partitions — on the host CPU with rayon,
//! emulating the paper's distributed-memory discipline in shared memory
//! (each partition owns local grids; neighbours' boundary values arrive by
//! explicit copies, never by aliased reads).
//!
//! * [`PartitionedJacobi`] — the partitioned executor; bit-identical to the
//!   sequential solver, since Jacobi updates read only previous-iteration
//!   values. Built [`PartitionedJacobi::with_depth`], it exchanges a deep
//!   halo once and runs a whole block of local sub-iterations before the
//!   next exchange — the communication-avoiding schedule that divides halo
//!   traffic per iteration by the block size;
//! * [`CheckPolicy`] — fixed convergence-check schedules (§4, after Saltz,
//!   Naik & Nicol \[13\]), re-exported from `parspeed-solver`, which owns
//!   the type so the sequential solvers schedule with it too;
//! * [`AdaptiveChecker`] — the rate-estimating schedule of \[13\] itself:
//!   observed differences predict the convergence iteration and checks
//!   cluster there;
//! * [`measure`] — wall-clock cycle-time measurement across thread counts,
//!   used by the `validate_threads` experiment (E14).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod measure;
mod partitioned;

pub use adaptive::{AdaptiveChecker, CheckScheduler};
pub use parspeed_solver::CheckPolicy;
pub use partitioned::{PartitionedJacobi, SolveRun};
