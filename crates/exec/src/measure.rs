//! Wall-clock cycle-time measurement on the host machine (experiment E14).
//!
//! Runs the partitioned executor under rayon pools of varying size and
//! times real iterations. The host's memory system is not a 1987 shared
//! bus, so these measurements validate the model's *shape* claims —
//! speedup saturates, strips versus squares ordering, per-iteration cost
//! linear in the partition area — rather than its constants.

use crate::PartitionedJacobi;
use parspeed_grid::{Decomposition, RectDecomposition, StripDecomposition};
use parspeed_solver::PoissonProblem;
use parspeed_stencil::{PartitionShape, Stencil};
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Threads in the rayon pool (= partitions).
    pub threads: usize,
    /// Partition shape used.
    pub shape: PartitionShape,
    /// Best observed seconds per iteration.
    pub secs_per_iter: f64,
    /// Speedup against the 1-thread measurement in the same sweep
    /// (filled by [`measure_scaling`]; `1.0` for the baseline row).
    pub speedup: f64,
}

/// Builds the decomposition for `p` partitions of the given shape
/// (strips, or the most-square legal rectangle grid for squares).
pub fn decompose(
    n: usize,
    p: usize,
    shape: PartitionShape,
) -> Box<dyn Decomposition + Send + Sync> {
    match shape {
        PartitionShape::Strip => {
            Box::new(StripDecomposition::new(n, p.min(n))) as Box<dyn Decomposition + Send + Sync>
        }
        PartitionShape::Square => Box::new(
            RectDecomposition::near_square(n, p)
                .unwrap_or_else(|| RectDecomposition::new(n, p.min(n), 1)),
        ),
    }
}

/// Times `iters` iterations of the partitioned executor on a dedicated
/// rayon pool of `threads` threads, repeated `repeats` times; returns the
/// best per-iteration time (minimum is the standard noise-resistant
/// estimator for this kind of measurement).
pub fn time_iterations(
    problem: &PoissonProblem,
    stencil: &Stencil,
    shape: PartitionShape,
    threads: usize,
    iters: usize,
    repeats: usize,
) -> f64 {
    assert!(threads >= 1 && iters >= 1 && repeats >= 1);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    let decomp = decompose(problem.n(), threads, shape);
    let mut best = f64::INFINITY;
    pool.install(|| {
        for _ in 0..repeats {
            let mut exec = PartitionedJacobi::new(problem, stencil, decomp.as_ref());
            // Warm the caches with one untimed iteration.
            exec.iterate(false);
            let t0 = Instant::now();
            for _ in 0..iters {
                exec.iterate(false);
            }
            let dt = t0.elapsed().as_secs_f64() / iters as f64;
            best = best.min(dt);
        }
    });
    best
}

/// Measures the scaling curve over `thread_counts`, normalizing speedup to
/// the first entry.
pub fn measure_scaling(
    problem: &PoissonProblem,
    stencil: &Stencil,
    shape: PartitionShape,
    thread_counts: &[usize],
    iters: usize,
    repeats: usize,
) -> Vec<MeasuredPoint> {
    assert!(!thread_counts.is_empty());
    let mut out = Vec::with_capacity(thread_counts.len());
    for &t in thread_counts {
        let secs = time_iterations(problem, stencil, shape, t, iters, repeats);
        out.push(MeasuredPoint { threads: t, shape, secs_per_iter: secs, speedup: 1.0 });
    }
    let base = out[0].secs_per_iter;
    for p in &mut out {
        p.speedup = base / p.secs_per_iter;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_finite() {
        let p = PoissonProblem::laplace(64, 0.0);
        let t = time_iterations(&p, &Stencil::five_point(), PartitionShape::Strip, 2, 3, 1);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn scaling_sweep_has_normalized_baseline() {
        let p = PoissonProblem::laplace(64, 0.0);
        let pts = measure_scaling(&p, &Stencil::five_point(), PartitionShape::Strip, &[1, 2], 3, 1);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].speedup, 1.0);
        assert!(pts[1].speedup > 0.0);
    }

    #[test]
    fn decompose_square_prefers_blocks() {
        let d = decompose(64, 16, PartitionShape::Square);
        assert_eq!(d.count(), 16);
        let r = d.region(0);
        assert_eq!(r.rows(), 16);
        assert_eq!(r.cols(), 16);
    }

    #[test]
    fn decompose_strip_caps_partitions_at_rows() {
        let d = decompose(8, 64, PartitionShape::Strip);
        assert_eq!(d.count(), 8);
    }
}
