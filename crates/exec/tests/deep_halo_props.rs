//! Property tests: deep-halo partitioned runs — one exchange funding a
//! whole block of local sub-iterations over expanded ghost regions — are
//! bit-identical to the sequential k=1 loop, for all four catalogue
//! stencils, strip and rectangular decompositions, arbitrary block
//! mixes, and degenerate partitions thinner than the ghost frame
//! (`rows ≤ reach·depth`).

use parspeed_exec::{CheckPolicy, PartitionedJacobi};
use parspeed_grid::{Grid2D, RectDecomposition, StripDecomposition};
use parspeed_solver::apply::jacobi_sweep;
use parspeed_solver::{Manufactured, PoissonProblem};
use parspeed_stencil::Stencil;
use proptest::prelude::*;

/// Plain sequential Jacobi after exactly `iters` iterations.
fn reference_iterates(p: &PoissonProblem, s: &Stencil, iters: usize) -> (Grid2D, f64) {
    let halo = s.reach();
    let h2 = p.h() * p.h();
    let mut u = p.initial_grid(halo);
    let mut next = p.initial_grid(halo);
    let f = p.forcing();
    let mut diff = f64::INFINITY;
    for it in 0..iters {
        jacobi_sweep(s, &u, &mut next, f, h2);
        if it + 1 == iters {
            diff = u.max_abs_diff(&next);
        }
        u.swap(&mut next);
    }
    (u, diff)
}

fn assert_bitwise(a: &Grid2D, b: &Grid2D, label: &str) -> Result<(), TestCaseError> {
    for r in 0..b.rows() {
        for c in 0..b.cols() {
            if a.get(r, c).to_bits() != b.get(r, c).to_bits() {
                return Err(TestCaseError::fail(format!(
                    "{label}: mismatch at ({r},{c}): {} vs {}",
                    a.get(r, c),
                    b.get(r, c)
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    /// Strip decompositions: arbitrary block mixes up to the halo depth
    /// reproduce the sequential iterates bitwise, and the last block's
    /// reported diff is the sequential diff. Partitions can be single
    /// rows, far thinner than the `depth·reach` ghost frame.
    #[test]
    fn strip_deep_halo_blocks_match_sequential(
        n in 4usize..18,
        parts in 2usize..7,
        depth in 1usize..5,
        stencil_idx in 0usize..4,
        raw_blocks in prop::collection::vec(1usize..5, 1..5),
    ) {
        let s = &Stencil::catalog()[stencil_idx];
        let parts = parts.min(n);
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let d = StripDecomposition::new(n, parts);
        let mut exec = PartitionedJacobi::with_depth(&p, s, &d, depth);
        let mut total = 0usize;
        let mut last_diff = 0.0f64;
        let blocks = raw_blocks.len();
        for b in raw_blocks {
            let b = b.min(depth);
            last_diff = exec.iterate_block(b, true).unwrap();
            total += b;
        }
        prop_assert_eq!(exec.iterations(), total);
        prop_assert_eq!(exec.exchanges(), blocks);
        let (reference, ref_diff) = reference_iterates(&p, s, total);
        assert_bitwise(&exec.solution(), &reference, s.name())?;
        prop_assert_eq!(last_diff.to_bits(), ref_diff.to_bits(), "{} diff", s.name());
    }

    /// Rectangular decompositions: deep corners (needed even for the
    /// 5-point cross once depth > 1) deliver exact ghost data.
    #[test]
    fn rect_deep_halo_blocks_match_sequential(
        half_n in 3usize..10,
        pr in 2usize..4,
        pc in 1usize..3,
        depth in 2usize..5,
        stencil_idx in 0usize..4,
        rounds in 1usize..4,
    ) {
        // Even n so pc ∈ {1, 2} always divides it (the paper's legal
        // rectangles).
        let n = 2 * half_n;
        let s = &Stencil::catalog()[stencil_idx];
        let p = PoissonProblem::manufactured(n, Manufactured::Bubble);
        let d = RectDecomposition::new(n, pr.min(n), pc);
        let mut exec = PartitionedJacobi::with_depth(&p, s, &d, depth);
        for _ in 0..rounds {
            exec.iterate_block(depth, false);
        }
        let (reference, _) = reference_iterates(&p, s, rounds * depth);
        assert_bitwise(&exec.solution(), &reference, s.name())?;
    }

    /// Scheduled deep solves check at exactly the same iterations as the
    /// depth-1 executor (identical convergence, identical counts) while
    /// exchanging ~depth× less.
    #[test]
    fn deep_solve_schedules_are_equivalent(
        n in 8usize..16,
        parts in 2usize..5,
        depth in 2usize..5,
        period in 1usize..12,
    ) {
        let p = PoissonProblem::manufactured(n, Manufactured::SinSin);
        let s = Stencil::five_point();
        let d = || StripDecomposition::new(n, parts);
        let policy = CheckPolicy::Every(period);
        let mut shallow = PartitionedJacobi::new(&p, &s, &d());
        let run1 = shallow.solve(1e-7, 50_000, policy);
        let mut deep = PartitionedJacobi::with_depth(&p, &s, &d(), depth);
        let runk = deep.solve(1e-7, 50_000, policy);
        prop_assert!(run1.converged && runk.converged);
        prop_assert_eq!(run1.iterations, runk.iterations);
        prop_assert_eq!(run1.checks, runk.checks);
        prop_assert_eq!(run1.final_diff.to_bits(), runk.final_diff.to_bits());
        assert_bitwise(&deep.solution(), &shallow.solution(), "deep vs shallow")?;
        // Exchange rounds shrink by ~depth: each check-gap of `period`
        // iterations costs ceil(period/depth) exchanges instead of
        // `period` (so period = 1 degenerates to equality).
        if period >= 2 {
            prop_assert!(deep.exchanges() < shallow.exchanges());
        } else {
            prop_assert_eq!(deep.exchanges(), shallow.exchanges());
        }
        prop_assert!(deep.exchanges() >= shallow.exchanges().div_ceil(depth));
    }
}
