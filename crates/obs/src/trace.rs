//! Ring-buffered structured request traces.
//!
//! A [`TraceRing`] keeps the last N completed requests as structured
//! [`TraceEvent`]s — enough to answer "what did the slow tail look
//! like" without unbounded memory. Events carry monotonic timestamps
//! relative to the owner's epoch (the server's start), the request's
//! slot address, its query kind, the id of the coalesced batch that
//! carried it, and whether that batch hit the result cache.
//!
//! The ring is a mutex around a `VecDeque`: pushes happen once per
//! completed request (not per stage), so contention is negligible next
//! to the batch execution that precedes each push.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One completed request's trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Submission timestamp, monotonic nanoseconds since the owner's
    /// epoch (the server's start).
    pub at_ns: u64,
    /// Submitting connection id (the `client` half of the engine's slot
    /// address).
    pub client: u64,
    /// Connection-local sequence number.
    pub seq: u64,
    /// Query kind (the wire `op` name).
    pub op: &'static str,
    /// Id of the coalesced engine batch that carried the request.
    pub batch: u64,
    /// Whether that batch was served at least partly from the result
    /// cache (batch-level: dedup makes a strict per-request attribution
    /// meaningless once requests share evaluations).
    pub cache_hit: bool,
    /// Time from submission to batch pop (the `queue` stage sample).
    pub queue_ns: u64,
    /// Wall time of the whole engine batch the request rode in.
    pub batch_ns: u64,
}

impl TraceEvent {
    /// Renders the event as one JSONL line (the drain-flush format; the
    /// `{"op":"trace"}` wire reply embeds the same fields as objects).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"op\":\"trace\",\"at_ns\":{},\"client\":{},\"seq\":{},\"query\":\"{}\",\
             \"batch\":{},\"cache_hit\":{},\"queue_ns\":{},\"batch_ns\":{}}}",
            self.at_ns,
            self.client,
            self.seq,
            self.op,
            self.batch,
            self.cache_hit,
            self.queue_ns,
            self.batch_ns
        )
    }
}

/// A bounded ring of the most recent [`TraceEvent`]s. Capacity 0
/// disables tracing entirely (pushes are no-ops beyond one branch).
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl TraceRing {
    /// A ring keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceRing { capacity, events: Mutex::new(VecDeque::with_capacity(capacity.min(4096))) }
    }

    /// The configured capacity (0 = tracing disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether pushes do anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends an event, evicting the oldest once full.
    pub fn push(&self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.events.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The kept events, oldest first (non-destructive).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            at_ns: 1000 + seq,
            client: 1,
            seq,
            op: "optimize",
            batch: 7,
            cache_hit: seq.is_multiple_of(2),
            queue_ns: 42,
            batch_ns: 9001,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_n() {
        let ring = TraceRing::new(3);
        for seq in 0..10 {
            ring.push(event(seq));
        }
        let kept: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.push(event(0));
        assert!(ring.events().is_empty());
    }

    #[test]
    fn jsonl_rendering_carries_every_field() {
        let line = event(4).to_jsonl();
        assert!(line.starts_with("{\"op\":\"trace\""), "{line}");
        for needle in
            ["\"at_ns\":1004", "\"seq\":4", "\"query\":\"optimize\"", "\"cache_hit\":true"]
        {
            assert!(line.contains(needle), "{line} missing {needle}");
        }
    }
}
