//! The lock-free log2 latency histogram.
//!
//! Values (nanoseconds, but the histogram is unit-agnostic) are counted
//! in fixed power-of-two buckets: bucket 0 holds the value 0 exactly,
//! and bucket `b ≥ 1` holds the half-open range `[2^(b-1), 2^b)`. The
//! bucket index is one integer instruction (`leading_zeros`), every
//! counter is a relaxed atomic, and recording never allocates, locks,
//! or fails — safe to call from the hottest paths.
//!
//! The layout makes three properties exact rather than approximate:
//!
//! * **counts** — the total sample count is the exact sum of bucket
//!   counts (nothing is sampled or decayed);
//! * **merging** — a histogram is a vector of counters, so merging
//!   per-thread shards is element-wise addition and quantiles computed
//!   from the merged counts equal the quantiles of one histogram fed
//!   every sample (the proptests pin this down);
//! * **boundaries** — a value of exactly `2^k` always lands in bucket
//!   `k+1` (the bucket whose lower bound it is), so bucket edges are
//!   deterministic across platforms.
//!
//! Quantiles are bucket-resolution by construction: `quantile(q)`
//! returns the *upper bound* of the bucket containing the rank-`⌈q·n⌉`
//! sample — a conservative (never understated) estimate with relative
//! error below 2×, which is plenty to tell a 2 µs queue wait from a
//! 2 ms one.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets: the zero bucket plus one per power of two up to
/// `2^63` (so every `u64` value has a bucket).
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket's range.
fn bucket_lo(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Inclusive upper bound of a bucket's range.
fn bucket_hi(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A lock-free fixed-bucket log2 histogram. Recording is wait-free
/// (three relaxed atomic ops); reading takes a point-in-time
/// [`snapshot`](Histogram::snapshot) and computes quantiles from it.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum of all recorded values (wraps only after ~584 years of
    /// accumulated nanoseconds).
    total: AtomicU64,
    /// Largest value recorded.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; BUCKETS], total: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Counts one value. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recorders may land between the
    /// individual loads, so a snapshot taken mid-record can be one
    /// sample ahead on `total`/`max` relative to the bucket counts —
    /// merge shards through snapshots of quiesced histograms when exact
    /// agreement matters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            total: self.total.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Adds every sample of `other` into `self` (element-wise counter
    /// addition — the shard-merge primitive).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A non-atomic point-in-time copy of a [`Histogram`]: the form
/// quantiles, renders, and merges are computed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see module docs for the ranges).
    pub buckets: [u64; BUCKETS],
    /// Exact sum of recorded values.
    pub total: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], total: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The quantile estimate: the upper bound of the bucket containing
    /// the sample of rank `⌈q·count⌉` (1-based, `q` clamped to [0, 1]).
    /// 0 on an empty histogram; exact for a histogram whose samples all
    /// share one bucket. Deterministic: depends only on bucket counts,
    /// so merged shards answer exactly like a single histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum.
                return bucket_hi(b).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Deterministic text rendering: one line per non-empty bucket with
    /// its range, count, and a proportional bar, followed by a summary
    /// line. Stable across runs for identical counts.
    pub fn render(&self) -> String {
        let count = self.count();
        if count == 0 {
            return "(empty histogram)".to_string();
        }
        let peak = *self.buckets.iter().max().expect("fixed-size buckets");
        let mut out = String::new();
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            out.push_str(&format!(
                "[{:>20} .. {:>20}] {:>10} {}\n",
                bucket_lo(b),
                bucket_hi(b),
                c,
                bar
            ));
        }
        out.push_str(&format!(
            "count={} total={} max={} p50={} p90={} p99={} p999={}",
            count,
            self.total,
            self.max,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999()
        ));
        out
    }
}

/// Fixed number of shards in a [`ShardedHistogram`] — enough that the
/// handful of batcher workers and connection threads of one server
/// rarely collide on a cache line.
const SHARDS: usize = 8;

/// Hands each thread a stable shard slot (round-robin over first use).
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s % SHARDS)
}

/// A [`Histogram`] split into per-thread shards so concurrent recorders
/// do not contend on the same counters; reads merge the shards into one
/// [`HistogramSnapshot`]. Because merging is exact (see module docs),
/// the sharding is invisible to every consumer.
#[derive(Debug, Default)]
pub struct ShardedHistogram {
    shards: [Histogram; SHARDS],
}

impl ShardedHistogram {
    /// An empty sharded histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const EMPTY: Histogram = Histogram::new();
        ShardedHistogram { shards: [EMPTY; SHARDS] }
    }

    /// Counts one value into the calling thread's shard.
    #[inline]
    pub fn record(&self, value: u64) {
        self.shards[shard_slot()].record(value);
    }

    /// Merges every shard into one point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for shard in &self.shards {
            merged.merge(&shard.snapshot());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_zero_everywhere() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.total, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.quantile(0.999), 0);
        assert_eq!(snap.render(), "(empty histogram)");
    }

    #[test]
    fn one_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(1500);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.total, 1500);
        assert_eq!(snap.max, 1500);
        // 1500 ∈ [1024, 2047]; the quantile reports min(bucket_hi, max).
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 1500);
        }
    }

    #[test]
    fn powers_of_two_land_on_their_own_lower_bound() {
        for k in 0..63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(bucket_lo(k as usize + 1), v, "2^{k} is its bucket's lower bound");
            if v > 1 {
                assert_eq!(bucket_index(v - 1), k as usize, "2^{k}-1 stays one bucket below");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = Histogram::new();
        // 90 fast samples in [8,15], 10 slow ones in [1024,2047].
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.p50(), 15); // bucket_hi of [8,15]
        assert_eq!(snap.p90(), 15); // rank 90 is the last fast sample
        assert_eq!(snap.p99(), 1500); // bucket_hi(11)=2047 capped at max
        assert_eq!(snap.p999(), 1500);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [0u64, 1, 7, 64, 65, 4096] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 3, 100_000] {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn sharded_recording_merges_exactly() {
        let sharded = ShardedHistogram::new();
        let reference = Histogram::new();
        let values: Vec<u64> = (0..500).map(|i| i * i % 10_000).collect();
        std::thread::scope(|scope| {
            let sharded = &sharded;
            for chunk in values.chunks(100) {
                scope.spawn(move || {
                    for &v in chunk {
                        sharded.record(v);
                    }
                });
            }
        });
        for &v in &values {
            reference.record(v);
        }
        assert_eq!(sharded.snapshot(), reference.snapshot());
    }

    #[test]
    fn render_is_deterministic_and_names_the_quantiles() {
        let h = Histogram::new();
        for v in [3u64, 3, 900, 901, 902] {
            h.record(v);
        }
        let a = h.snapshot().render();
        let b = h.snapshot().render();
        assert_eq!(a, b);
        assert!(a.contains("count=5"), "{a}");
        assert!(a.contains("p999="), "{a}");
    }
}
