//! The pipeline vocabulary: named [`Stage`]s, the [`Recorder`] trait
//! instrumented code reports through, the [`StageClock`] lap timer, and
//! the [`StageSet`] aggregating one histogram per stage.
//!
//! Stage semantics (who records, and over what unit):
//!
//! | stage    | unit        | interval                                         |
//! |----------|-------------|--------------------------------------------------|
//! | `queue`  | per request | submission → popped from the submission queue    |
//! | `window` | per batch   | micro-batch window opened → batch fired          |
//! | `plan`   | per batch   | macro-query expansion + canonicalization          |
//! | `dedup`  | per batch   | interning atoms into the unique evaluation set    |
//! | `cache`  | per batch   | result-cache probes + insertions                  |
//! | `exec`   | per batch   | parallel evaluation + sequential effects          |
//! | `route`  | per request | reply produced → released in per-connection order |
//!
//! `queue` and `window` overlap by construction — the window is the
//! batch-formation view of the same wait the first queued request
//! experiences — so end-to-end accounting sums `queue` (not `window`)
//! with the per-batch engine stages and `route`.

use crate::histogram::{HistogramSnapshot, ShardedHistogram};
use std::time::Instant;

/// One stage of the request pipeline. The order here is the canonical
/// reporting order everywhere (wire records, expositions, docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Admission → popped from the submission queue (per request).
    Queue,
    /// Micro-batch window open → batch fired (per batch).
    Window,
    /// Macro-query expansion and canonicalization (per batch).
    Plan,
    /// Interning atoms into the unique evaluation set (per batch).
    Dedup,
    /// Result-cache probes and insertions (per batch).
    Cache,
    /// Parallel evaluation plus sequential effects (per batch).
    Exec,
    /// Reply produced → released in per-connection order (per request).
    Route,
}

impl Stage {
    /// Every stage, in canonical pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Queue,
        Stage::Window,
        Stage::Plan,
        Stage::Dedup,
        Stage::Cache,
        Stage::Exec,
        Stage::Route,
    ];

    /// The stage's wire name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Window => "window",
            Stage::Plan => "plan",
            Stage::Dedup => "dedup",
            Stage::Cache => "cache",
            Stage::Exec => "exec",
            Stage::Route => "route",
        }
    }

    /// Index into [`Stage::ALL`] (and any per-stage array).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a wire name back into a stage.
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// What instrumented code reports through: one duration attributed to
/// one stage. Implementations must be cheap and non-blocking — the
/// callers sit on hot paths.
pub trait Recorder: Send + Sync {
    /// Attributes `nanos` of latency to `stage`.
    fn record(&self, stage: Stage, nanos: u64);
}

/// The default recorder: does nothing. Code instrumented against an
/// `Option<Arc<dyn Recorder>>` (the engine) skips even the clock reads
/// when no recorder is installed, so the library path costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _stage: Stage, _nanos: u64) {}
}

/// A lap timer for attributing consecutive phases of one code path:
/// each [`lap`](StageClock::lap) returns the nanoseconds since the
/// previous lap (or construction) and restarts the interval.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    origin: Instant,
    last: Instant,
}

impl StageClock {
    /// Starts the clock.
    pub fn start() -> Self {
        let now = Instant::now();
        StageClock { origin: now, last: now }
    }

    /// Nanoseconds since the last lap (or start); restarts the interval.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let nanos = now.saturating_duration_since(self.last).as_nanos() as u64;
        self.last = now;
        nanos
    }

    /// Nanoseconds since the clock started (laps do not reset this).
    pub fn elapsed_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// One sharded histogram per pipeline stage — the aggregation a server
/// (or a CLI batch run) owns. Implements [`Recorder`], so it can be
/// installed directly into the engine.
#[derive(Debug, Default)]
pub struct StageSet {
    stages: [ShardedHistogram; Stage::ALL.len()],
}

impl StageSet {
    /// An empty stage set.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const EMPTY: ShardedHistogram = ShardedHistogram::new();
        StageSet { stages: [EMPTY; Stage::ALL.len()] }
    }

    /// Attributes `nanos` to `stage`.
    #[inline]
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.stages[stage.index()].record(nanos);
    }

    /// Point-in-time snapshot of one stage's histogram.
    pub fn snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }

    /// One summary per stage, in canonical order.
    pub fn summaries(&self) -> Vec<(Stage, StageSummary)> {
        Stage::ALL.into_iter().map(|s| (s, StageSummary::of(&self.snapshot(s)))).collect()
    }
}

impl Recorder for StageSet {
    fn record(&self, stage: Stage, nanos: u64) {
        StageSet::record(self, stage, nanos);
    }
}

/// The reduced form of one stage histogram that travels on the wire and
/// into benchmarks: exact count/total/max plus the quantile estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSummary {
    /// Exact number of recorded samples.
    pub count: u64,
    /// Exact sum of recorded nanoseconds.
    pub total_ns: u64,
    /// Largest recorded value.
    pub max_ns: u64,
    /// Median estimate (bucket upper bound).
    pub p50_ns: u64,
    /// 90th percentile estimate.
    pub p90_ns: u64,
    /// 99th percentile estimate.
    pub p99_ns: u64,
    /// 99.9th percentile estimate.
    pub p999_ns: u64,
}

impl StageSummary {
    /// Reduces a snapshot to its summary.
    pub fn of(snapshot: &HistogramSnapshot) -> StageSummary {
        StageSummary {
            count: snapshot.count(),
            total_ns: snapshot.total,
            max_ns: snapshot.max,
            p50_ns: snapshot.p50(),
            p90_ns: snapshot.p90(),
            p99_ns: snapshot.p99(),
            p999_ns: snapshot.p999(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.name()), Some(stage));
        }
        assert_eq!(Stage::parse("nonsense"), None);
        assert_eq!(Stage::ALL[Stage::Exec.index()], Stage::Exec);
    }

    #[test]
    fn stage_set_keeps_stages_apart() {
        let set = StageSet::new();
        set.record(Stage::Queue, 100);
        set.record(Stage::Queue, 200);
        set.record(Stage::Exec, 5000);
        let summaries = set.summaries();
        let get = |s: Stage| summaries.iter().find(|(x, _)| *x == s).unwrap().1;
        assert_eq!(get(Stage::Queue).count, 2);
        assert_eq!(get(Stage::Queue).total_ns, 300);
        assert_eq!(get(Stage::Exec).count, 1);
        assert_eq!(get(Stage::Plan).count, 0);
    }

    #[test]
    fn clock_laps_are_disjoint_and_cover_elapsed() {
        let mut clock = StageClock::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let a = clock.lap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.lap();
        assert!(a >= 1_000_000, "first lap covers the first sleep: {a}");
        assert!(b >= 1_000_000, "second lap covers the second sleep: {b}");
        assert!(clock.elapsed_ns() >= a + b, "laps never exceed total elapsed");
    }

    #[test]
    fn noop_recorder_is_callable() {
        NoopRecorder.record(Stage::Plan, 1);
    }
}
