//! Resilience counters: the failure-path twin of the stage histograms.
//!
//! The stage pipeline decomposes where *successful* requests spend
//! time; these counters decompose what the serving tier did when a
//! shard died, stalled, or lied. Every count is a recovery action the
//! router or server took on the caller's behalf — a retry, a failover
//! to the ring successor, a deadline answered in-slot, a shed under
//! brownout — so the `metrics` op can expose the fault story with the
//! same fidelity the happy path gets.
//!
//! [`ResilienceCounters`] is the live atomic record (shared via `Arc`
//! between the dispatch and gather sides); [`ResilienceSnapshot`] is
//! the frozen copy renderers serialize. The snapshot's
//! [`fields`](ResilienceSnapshot::fields) iteration is the single
//! source of field names and order, so the server's JSON and the
//! router's JSON cannot drift apart.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counts of every recovery action the serving tier has taken.
///
/// All methods are lock-free increments; reading is a
/// [`snapshot`](ResilienceCounters::snapshot). The default value is
/// all-zero.
#[derive(Debug, Default)]
pub struct ResilienceCounters {
    /// Requests re-submitted after a failure (every attempt past the
    /// first counts once).
    pub retries: AtomicU64,
    /// Requests re-routed to a different shard after their original
    /// owner was lost or tripped.
    pub failovers: AtomicU64,
    /// Requests answered `deadline_exceeded` in-slot.
    pub deadline_missed: AtomicU64,
    /// Cold requests shed as `overloaded` while in brownout mode.
    pub shed: AtomicU64,
    /// Worker panics caught by the batcher's panic shield.
    pub worker_panics: AtomicU64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opened: AtomicU64,
    /// Circuit-breaker readmissions (half-open probe succeeded and the
    /// shard rejoined the ring).
    pub breaker_reclosed: AtomicU64,
    /// Duplicate replies detected at the gather side and suppressed.
    pub duplicates_suppressed: AtomicU64,
    /// Replies dropped in flight (the request was recovered by retry,
    /// but the original answer never arrived).
    pub replies_dropped: AtomicU64,
    /// Shards respawned by the supervisor (a replacement backend was
    /// started for a lost shard).
    pub respawns: AtomicU64,
    /// Hot keys replayed into a replacement shard during cache-warm
    /// rejoin (keys only — the shard recomputes through the engine).
    pub warmup_keys_replayed: AtomicU64,
    /// Solver checkpoints taken at check boundaries.
    pub checkpoints_taken: AtomicU64,
    /// Solves resumed from a checkpoint instead of restarting at
    /// iteration zero.
    pub resumes: AtomicU64,
    /// Replies routed to an already-answered reply slot and dropped
    /// (the first answer is kept; a second route for the same sequence
    /// number is a frontend bug surfaced here instead of silently
    /// overwriting the original reply).
    pub reorder_drops: AtomicU64,
}

impl ResilienceCounters {
    /// A fresh all-zero set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A consistent-enough copy for rendering (each field is read
    /// atomically; the set as a whole is not a transaction, matching
    /// every other counter surface in the workspace).
    pub fn snapshot(&self) -> ResilienceSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ResilienceSnapshot {
            retries: load(&self.retries),
            failovers: load(&self.failovers),
            deadline_missed: load(&self.deadline_missed),
            shed: load(&self.shed),
            worker_panics: load(&self.worker_panics),
            breaker_opened: load(&self.breaker_opened),
            breaker_reclosed: load(&self.breaker_reclosed),
            duplicates_suppressed: load(&self.duplicates_suppressed),
            replies_dropped: load(&self.replies_dropped),
            respawns: load(&self.respawns),
            warmup_keys_replayed: load(&self.warmup_keys_replayed),
            checkpoints_taken: load(&self.checkpoints_taken),
            resumes: load(&self.resumes),
            reorder_drops: load(&self.reorder_drops),
        }
    }

    /// Adds one to `counter` — sugar for the common increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A frozen copy of [`ResilienceCounters`] for serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSnapshot {
    /// See [`ResilienceCounters::retries`].
    pub retries: u64,
    /// See [`ResilienceCounters::failovers`].
    pub failovers: u64,
    /// See [`ResilienceCounters::deadline_missed`].
    pub deadline_missed: u64,
    /// See [`ResilienceCounters::shed`].
    pub shed: u64,
    /// See [`ResilienceCounters::worker_panics`].
    pub worker_panics: u64,
    /// See [`ResilienceCounters::breaker_opened`].
    pub breaker_opened: u64,
    /// See [`ResilienceCounters::breaker_reclosed`].
    pub breaker_reclosed: u64,
    /// See [`ResilienceCounters::duplicates_suppressed`].
    pub duplicates_suppressed: u64,
    /// See [`ResilienceCounters::replies_dropped`].
    pub replies_dropped: u64,
    /// See [`ResilienceCounters::respawns`].
    pub respawns: u64,
    /// See [`ResilienceCounters::warmup_keys_replayed`].
    pub warmup_keys_replayed: u64,
    /// See [`ResilienceCounters::checkpoints_taken`].
    pub checkpoints_taken: u64,
    /// See [`ResilienceCounters::resumes`].
    pub resumes: u64,
    /// See [`ResilienceCounters::reorder_drops`].
    pub reorder_drops: u64,
}

impl ResilienceSnapshot {
    /// Every field as `(wire name, value)`, in the frozen wire order.
    /// All renderers build from this list so field names never drift
    /// between the server's and the router's `metrics` replies.
    pub fn fields(&self) -> [(&'static str, u64); 14] {
        [
            ("retries", self.retries),
            ("failovers", self.failovers),
            ("deadline_missed", self.deadline_missed),
            ("shed", self.shed),
            ("worker_panics", self.worker_panics),
            ("breaker_opened", self.breaker_opened),
            ("breaker_reclosed", self.breaker_reclosed),
            ("duplicates_suppressed", self.duplicates_suppressed),
            ("replies_dropped", self.replies_dropped),
            ("respawns", self.respawns),
            ("warmup_keys_replayed", self.warmup_keys_replayed),
            ("checkpoints_taken", self.checkpoints_taken),
            ("resumes", self.resumes),
            ("reorder_drops", self.reorder_drops),
        ]
    }

    /// True when nothing unusual has happened — renderers may compress
    /// an all-quiet section.
    pub fn is_quiet(&self) -> bool {
        self.fields().iter().all(|(_, v)| *v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps_and_fields_stay_aligned() {
        let c = ResilienceCounters::new();
        assert!(c.snapshot().is_quiet());

        ResilienceCounters::bump(&c.retries);
        ResilienceCounters::bump(&c.retries);
        ResilienceCounters::bump(&c.failovers);
        ResilienceCounters::bump(&c.deadline_missed);
        ResilienceCounters::bump(&c.shed);
        ResilienceCounters::bump(&c.worker_panics);
        ResilienceCounters::bump(&c.breaker_opened);
        ResilienceCounters::bump(&c.breaker_reclosed);
        ResilienceCounters::bump(&c.duplicates_suppressed);
        ResilienceCounters::bump(&c.replies_dropped);
        ResilienceCounters::bump(&c.respawns);
        ResilienceCounters::bump(&c.warmup_keys_replayed);
        ResilienceCounters::bump(&c.checkpoints_taken);
        ResilienceCounters::bump(&c.resumes);
        ResilienceCounters::bump(&c.reorder_drops);

        let snap = c.snapshot();
        assert!(!snap.is_quiet());
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.failovers, 1);

        // The wire-name list is the contract: fixed names, fixed order,
        // one entry per counter.
        let names: Vec<&str> = snap.fields().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "retries",
                "failovers",
                "deadline_missed",
                "shed",
                "worker_panics",
                "breaker_opened",
                "breaker_reclosed",
                "duplicates_suppressed",
                "replies_dropped",
                "respawns",
                "warmup_keys_replayed",
                "checkpoints_taken",
                "resumes",
                "reorder_drops",
            ]
        );
        let total: u64 = snap.fields().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 15);
    }
}
