//! The shared Prometheus-style text exposition for per-stage summaries.
//!
//! One formatter serves every human-facing surface — `parspeed serve
//! --metrics-human`, `parspeed metrics --human`, and the stage
//! breakdown `parspeed batch --stats` prints — so operators read the
//! same lines whether they scraped a live server or ran a file batch.

use crate::stage::StageSummary;

/// Renders stage summaries in Prometheus text-exposition style: one
/// `summary`-family metric, `parspeed_stage_latency_ns`, with a `stage`
/// label, quantile series, and `_count`/`_sum`/`_max` companions.
/// Stages with zero samples are skipped (Prometheus convention: absent,
/// not zero). Deterministic for identical summaries.
pub fn render_exposition(stages: &[(&str, StageSummary)]) -> String {
    render_exposition_labeled(stages, &[])
}

/// [`render_exposition`] with extra constant labels appended to every
/// series — how a sharded frontend attributes the same stage metric to
/// each backend (`extra = [("shard", "2")]` yields
/// `…{stage="route",shard="2",quantile="0.5"}`). Label values are
/// emitted verbatim; callers pass plain identifiers, not user input.
pub fn render_exposition_labeled(
    stages: &[(&str, StageSummary)],
    extra: &[(&str, &str)],
) -> String {
    let suffix: String = extra.iter().map(|(k, v)| format!(",{k}=\"{v}\"")).collect();
    let mut out = String::from(
        "# HELP parspeed_stage_latency_ns per-stage pipeline latency (log2-bucket histogram)\n\
         # TYPE parspeed_stage_latency_ns summary\n",
    );
    for (name, s) in stages {
        if s.count == 0 {
            continue;
        }
        for (q, v) in
            [("0.5", s.p50_ns), ("0.9", s.p90_ns), ("0.99", s.p99_ns), ("0.999", s.p999_ns)]
        {
            out.push_str(&format!(
                "parspeed_stage_latency_ns{{stage=\"{name}\"{suffix},quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "parspeed_stage_latency_ns_count{{stage=\"{name}\"{suffix}}} {}\n",
            s.count
        ));
        out.push_str(&format!(
            "parspeed_stage_latency_ns_sum{{stage=\"{name}\"{suffix}}} {}\n",
            s.total_ns
        ));
        out.push_str(&format!(
            "parspeed_stage_latency_ns_max{{stage=\"{name}\"{suffix}}} {}\n",
            s.max_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_names_stages_and_skips_empty_ones() {
        let busy = StageSummary {
            count: 10,
            total_ns: 1000,
            max_ns: 200,
            p50_ns: 100,
            p90_ns: 150,
            p99_ns: 200,
            p999_ns: 200,
        };
        let text = render_exposition(&[("queue", busy), ("plan", StageSummary::default())]);
        assert!(text.contains("# TYPE parspeed_stage_latency_ns summary"));
        assert!(text.contains("{stage=\"queue\",quantile=\"0.999\"} 200"), "{text}");
        assert!(text.contains("parspeed_stage_latency_ns_count{stage=\"queue\"} 10"), "{text}");
        assert!(!text.contains("stage=\"plan\""), "empty stages are absent: {text}");
    }

    #[test]
    fn labeled_exposition_appends_constant_labels_to_every_series() {
        let busy = StageSummary {
            count: 3,
            total_ns: 300,
            max_ns: 150,
            p50_ns: 100,
            p90_ns: 120,
            p99_ns: 150,
            p999_ns: 150,
        };
        let text = render_exposition_labeled(&[("route", busy)], &[("shard", "2")]);
        assert!(text.contains("{stage=\"route\",shard=\"2\",quantile=\"0.5\"} 100"), "{text}");
        assert!(
            text.contains("parspeed_stage_latency_ns_count{stage=\"route\",shard=\"2\"} 3"),
            "{text}"
        );
        // No extra labels reproduces the plain exposition byte-for-byte.
        assert_eq!(
            render_exposition_labeled(&[("route", busy)], &[]),
            render_exposition(&[("route", busy)])
        );
    }
}
