//! `parspeed-obs` — the dependency-free observability core of the
//! workspace: latency histograms, pipeline stage attribution, and
//! ring-buffered request traces.
//!
//! The paper's entire argument is about *where time goes* — useful
//! computation vs the per-iteration overhead `k(P,S)` — and this crate
//! gives the running system the same decomposition. Every request
//! through the serving layer transits a fixed pipeline:
//!
//! ```text
//! accept → queue wait → window residency → plan → dedup → cache → execute → reply route
//! ```
//!
//! Each named [`Stage`] owns a lock-free log2-bucketed [`Histogram`]
//! (grouped in a [`StageSet`]), so the split between coordination time
//! (queue, window, plan, dedup, route) and computation time (exec) can
//! be read off a live server exactly like the paper reads `k(P,S)` off
//! its closed forms. See `EXPERIMENTS.md` for the mapping.
//!
//! Layers:
//!
//! * [`histogram`] — the core: fixed-bucket log2 [`Histogram`] with
//!   atomic counters, mergeable per-thread shards
//!   ([`ShardedHistogram`]), exact counts, p50/p90/p99/p999 estimation,
//!   and deterministic text rendering;
//! * [`stage`] — the pipeline vocabulary: [`Stage`], the [`Recorder`]
//!   trait instrumented code reports through (no-op by default, so the
//!   library path costs nothing when disabled), [`StageClock`] for
//!   lap-style attribution, and [`StageSet`] aggregating one histogram
//!   per stage;
//! * [`trace`] — [`TraceRing`], a bounded ring of per-request
//!   [`TraceEvent`]s rendered as JSONL;
//! * [`render`] — the shared Prometheus-style text exposition used by
//!   `parspeed serve --metrics-human`, `parspeed metrics --human`, and
//!   `parspeed batch --stats`.
//!
//! The crate depends on nothing (crates.io is unreachable here) and
//! knows nothing about the engine or the server: the engine reports
//! through [`Recorder`], the server owns the [`StageSet`] and the
//! [`TraceRing`], and neither needs the other.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod render;
pub mod resilience;
pub mod stage;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, ShardedHistogram, BUCKETS};
pub use render::{render_exposition, render_exposition_labeled};
pub use resilience::{ResilienceCounters, ResilienceSnapshot};
pub use stage::{NoopRecorder, Recorder, Stage, StageClock, StageSet, StageSummary};
pub use trace::{TraceEvent, TraceRing};
