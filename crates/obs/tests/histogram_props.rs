//! Property tests for the histogram core: sharded recording must be
//! observationally identical to single-threaded recording, quantiles
//! must agree with a sorted-sample reference at bucket resolution, and
//! bucket boundaries must be exact at powers of two.

use parspeed_obs::{Histogram, HistogramSnapshot, ShardedHistogram};
use proptest::prelude::*;

/// The bucket upper bound a value maps to: what `quantile` reports when
/// that value is the rank sample (before the max cap).
fn bucket_hi_of(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        let b = 64 - v.leading_zeros() as usize;
        if b == 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }
}

/// The sorted-sample reference for `quantile(q)`: the bucket upper
/// bound of the rank-`⌈q·n⌉` sample, capped at the true maximum.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    bucket_hi_of(sorted[rank - 1]).min(*sorted.last().unwrap())
}

proptest! {
    fn merged_shards_quantile_match_a_single_threaded_reference(
        values in prop::collection::vec(0u64..5_000_000_000, 0..400),
        threads in 1usize..7,
    ) {
        // Shard the values across real threads (round-robin deal).
        let sharded = ShardedHistogram::new();
        std::thread::scope(|scope| {
            let sharded = &sharded;
            for t in 0..threads {
                let chunk: Vec<u64> =
                    values.iter().copied().skip(t).step_by(threads).collect();
                scope.spawn(move || {
                    for v in chunk {
                        sharded.record(v);
                    }
                });
            }
        });

        // Single-threaded reference over the same multiset.
        let single = Histogram::new();
        for &v in &values {
            single.record(v);
        }

        let merged = sharded.snapshot();
        let reference = single.snapshot();
        prop_assert_eq!(merged, reference);

        // And both agree with the sorted-sample reference quantiles.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), reference_quantile(&sorted, q));
        }
    }

    fn merging_snapshots_is_exact(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        // Snapshot-level merge and atomic-level merge agree with the
        // all-in-one histogram exactly.
        let mut snap = ha.snapshot();
        snap.merge(&hb.snapshot());
        prop_assert_eq!(snap, hall.snapshot());
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), hall.snapshot());
    }

    fn power_of_two_boundaries_are_exact(k in 0u32..63) {
        // 2^k and 2^k - 1 must land in adjacent buckets: recording each
        // alone gives p50 = value's own bucket_hi (capped at max).
        let v = 1u64 << k;
        let at = Histogram::new();
        at.record(v);
        prop_assert_eq!(at.snapshot().p50(), v, "2^{} reports itself", k);
        if v > 1 {
            let below = Histogram::new();
            below.record(v - 1);
            // v-1 is its bucket's upper bound: reported exactly.
            prop_assert_eq!(below.snapshot().p50(), v - 1);
            // And the two buckets are distinct: together, p50 of the
            // 2-sample histogram is the lower value, p999 the upper.
            let both = Histogram::new();
            both.record(v);
            both.record(v - 1);
            prop_assert_eq!(both.snapshot().p50(), v - 1);
            prop_assert_eq!(both.snapshot().p999(), v);
        }
    }

    fn count_and_total_are_exact(values in prop::collection::vec(0u64..10_000_000, 0..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.total, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
    }
}

#[test]
fn empty_and_one_sample_edges() {
    let empty = HistogramSnapshot::default();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.quantile(0.5), 0);
    assert_eq!(empty.render(), "(empty histogram)");

    for v in [0u64, 1, 2, 3, 1023, 1024, u64::MAX] {
        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        // A single sample is every quantile, reported exactly (the max
        // cap collapses the bucket bound onto the sample).
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(snap.quantile(q), v, "single sample {v} at q={q}");
        }
    }
}
