//! Name-based selection of stencils, shapes, architectures, and machine
//! parameter overrides shared by every subcommand.

use crate::args::{err, Args, CliError};
use parspeed_core::{ArchModel, MachineParams};
use parspeed_stencil::{PartitionShape, Stencil};

/// Stencil by CLI name (delegates to the engine's table; parsed specs are
/// always catalog stencils, so the expect cannot fire).
pub fn stencil(name: &str) -> Result<Stencil, CliError> {
    Ok(stencil_spec(name)?.to_stencil().expect("parsed specs are catalog stencils"))
}

/// Partition shape by CLI name (delegates to the engine's table).
pub fn shape(name: &str) -> Result<PartitionShape, CliError> {
    shape_key(name).map(parspeed_engine::ShapeKey::to_shape)
}

/// The architecture names every subcommand accepts.
pub const ARCHITECTURES: &[&str] =
    &["hypercube", "mesh", "sync-bus", "async-bus", "scheduled-bus", "banyan"];

/// Analytic model by CLI name. The name→model table lives in
/// [`parspeed_engine::ArchKind`]; this is the only resolver, so CLI and
/// engine can never accept different alias sets.
pub fn arch_model(name: &str, m: &MachineParams) -> Result<Box<dyn ArchModel>, CliError> {
    Ok(arch_kind(name)?.model(m))
}

/// Engine-level architecture kind by CLI name.
pub fn arch_kind(name: &str) -> Result<parspeed_engine::ArchKind, CliError> {
    parspeed_engine::ArchKind::parse(name).map_err(err)
}

/// Engine-level stencil spec by CLI name.
pub fn stencil_spec(name: &str) -> Result<parspeed_engine::StencilSpec, CliError> {
    parspeed_engine::StencilSpec::parse(name).map_err(err)
}

/// Engine-level shape by CLI name.
pub fn shape_key(name: &str) -> Result<parspeed_engine::ShapeKey, CliError> {
    parspeed_engine::ShapeKey::parse(name).map_err(err)
}

/// Builds an engine [`MachineSpec`](parspeed_engine::MachineSpec) from the
/// same machine flags as [`machine`]; the spec resolves to bit-identical
/// [`MachineParams`].
pub fn machine_spec(args: &Args) -> Result<parspeed_engine::MachineSpec, CliError> {
    Ok(parspeed_engine::MachineSpec {
        flex32: args.switch("flex32"),
        tfp: args.f64_opt("tfp")?,
        b: args.f64_opt("b")?,
        c: args.f64_opt("c")?,
        alpha: args.f64_opt("alpha")?,
        beta: args.f64_opt("beta")?,
        packet: args.usize_opt("packet")?,
        w: args.f64_opt("w")?,
    })
}

/// Builds [`MachineParams`] from the calibrated defaults plus any
/// command-line overrides (`--flex32` swaps in the measured `c/b ≈ 1000`
/// overhead regime before overrides apply).
pub fn machine(args: &Args) -> Result<MachineParams, CliError> {
    let mut m = if args.switch("flex32") {
        MachineParams::flex32_defaults()
    } else {
        MachineParams::paper_defaults()
    };
    if let Some(tfp) = args.f64_opt("tfp")? {
        m.tfp = tfp;
    }
    if let Some(b) = args.f64_opt("b")? {
        m.bus.b = b;
    }
    if let Some(c) = args.f64_opt("c")? {
        m.bus.c = c;
    }
    if let Some(alpha) = args.f64_opt("alpha")? {
        m.hypercube.alpha = alpha;
        m.mesh.alpha = alpha;
    }
    if let Some(beta) = args.f64_opt("beta")? {
        m.hypercube.beta = beta;
        m.mesh.beta = beta;
    }
    if let Some(packet) = args.usize_opt("packet")? {
        m.hypercube.packet_words = packet;
        m.mesh.packet_words = packet;
    }
    if let Some(w) = args.f64_opt("w")? {
        m.switch.w = w;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_and_shape_names_resolve() {
        assert_eq!(stencil("5pt").unwrap().name(), "5-point");
        assert_eq!(stencil("9pt-box").unwrap().name(), "9-point box");
        assert_eq!(shape("strip").unwrap(), PartitionShape::Strip);
        assert!(stencil("7pt").is_err());
        assert!(shape("hexagon").is_err());
    }

    #[test]
    fn every_listed_architecture_constructs() {
        let m = MachineParams::paper_defaults();
        for name in ARCHITECTURES {
            let model = arch_model(name, &m).unwrap();
            assert!(!model.name().is_empty());
        }
        assert!(arch_model("torus", &m).is_err());
    }

    const MACHINE_KEYS: &[&str] = &["tfp", "b", "c", "alpha", "beta", "packet", "w"];

    #[test]
    fn machine_overrides_apply() {
        let args = Args::parse(
            &["--b".into(), "2e-6".into(), "--c".into(), "1e-7".into()],
            MACHINE_KEYS,
            &["flex32"],
        )
        .unwrap();
        let m = machine(&args).unwrap();
        assert_eq!(m.bus.b, 2e-6);
        assert_eq!(m.bus.c, 1e-7);
        assert_eq!(m.tfp, MachineParams::paper_defaults().tfp);
    }

    #[test]
    fn flex32_regime_applies_before_overrides() {
        let args = Args::parse(&["--flex32".into()], MACHINE_KEYS, &["flex32"]).unwrap();
        let m = machine(&args).unwrap();
        assert!((m.bus.c / m.bus.b - 1000.0).abs() < 1e-9);
    }
}
