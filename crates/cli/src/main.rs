//! `parspeed` — command-line interface to the models, simulators, and
//! solvers of the Nicol & Willard (1987) reproduction. Run `parspeed help`
//! for the command list.

mod args;
mod commands;
mod select;

use std::sync::OnceLock;

/// The process-wide query engine, the service surface every command talks
/// to: commands share one result cache, so repeated work within a process
/// (or a test run) short-circuits. The experiment harness is registered
/// here so `Query::Experiment` requests route back through
/// `parspeed-bench` (which depends on the engine, not vice versa).
fn engine() -> &'static parspeed_engine::Engine {
    static ENGINE: OnceLock<parspeed_engine::Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        parspeed_engine::Engine::builder().experiment_runner(commands::experiment::runner).build()
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
