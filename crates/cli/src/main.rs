//! `parspeed` — command-line interface to the models, simulators, and
//! solvers of the Nicol & Willard (1987) reproduction. Run `parspeed help`
//! for the command list.

mod args;
mod commands;
mod select;

use std::sync::OnceLock;

/// The process-wide query engine: commands that evaluate model queries
/// share one result cache, so repeated work within a process (or a test
/// run) short-circuits.
fn engine() -> &'static parspeed_engine::Engine {
    static ENGINE: OnceLock<parspeed_engine::Engine> = OnceLock::new();
    ENGINE.get_or_init(|| parspeed_engine::Engine::builder().build())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
