//! `parspeed` — command-line interface to the models, simulators, and
//! solvers of the Nicol & Willard (1987) reproduction. Run `parspeed help`
//! for the command list.

mod args;
mod commands;
mod select;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
