//! `parspeed table1` — the paper's closing Table I at a chosen grid size,
//! served through the engine (one cacheable evaluation for all four rows).

use crate::args::{Args, CliError};
use crate::commands::eval_single;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{EvalValue, Request};

pub const KEYS: &[&str] = &["n", "stencil", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help table1`.
pub const USAGE: &str = "parspeed table1 [--n 1024] [--stencil 5pt] [machine overrides]

Evaluates Table I's optimal-speedup formulas (square partitions, one point
per processor where appropriate) at the chosen grid size.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let n = args.usize_or("n", 1024)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let query = Request::table1(n)
        .machine(select::machine_spec(args)?)
        .stencil(select::stencil_spec(args.str_or("stencil", "5pt"))?)
        .query();
    let EvalValue::Table1 { rows } = eval_single(query)? else {
        unreachable!("table1 queries produce table1 values")
    };

    let mut t = Table::new(
        format!("Table I · n={n} · {}", stencil.name()),
        &["architecture", "optimal speedup", "formula"],
    );
    for row in rows {
        t.row(vec![
            row.architecture.into(),
            format!("{:.1}", row.optimal_speedup),
            row.formula.into(),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_four_architectures() {
        let args = Args::parse(&[], KEYS, SWITCHES).unwrap();
        let out = run(&args).unwrap();
        for name in ["Hypercube", "Synchronous bus", "Asynchronous bus", "Switching network"] {
            assert!(out.to_lowercase().contains(&name.to_lowercase()), "missing {name}: {out}");
        }
    }
}
