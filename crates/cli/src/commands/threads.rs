//! `parspeed threads` — measure the real rayon-partitioned executor on the
//! host CPU (the workspace's stand-in for the paper's machine-room runs).
//!
//! Routed through the engine as an *effect* query: never deduplicated or
//! cached (it is a wall-clock measurement), and executed after the
//! engine's parallel phase so timings see a quiet machine.

use crate::args::{Args, CliError};
use crate::commands::eval_single;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{EvalValue, Request};

pub const KEYS: &[&str] = &["n", "stencil", "shape", "threads", "iters", "repeats"];
pub const SWITCHES: &[&str] = &[];

/// Usage shown by `parspeed help threads`.
pub const USAGE: &str = "parspeed threads [--n 512] [--threads 1,2,4,8] [--stencil 5pt]
    [--shape strip] [--iters 20] [--repeats 3]

Times real partitioned-Jacobi iterations on a dedicated rayon pool per
thread count and reports measured speedup — the host-CPU validation of the
model's shape claims (convexity, saturation, strips vs squares).";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let n = args.usize_or("n", 512)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let shape = select::shape(args.str_or("shape", "strip"))?;
    let threads = args.usize_list_or("threads", &[1, 2, 4, 8])?;
    if threads.is_empty() || threads.contains(&0) {
        return Err(CliError("--threads needs a list of positive counts".into()));
    }
    let iters = args.usize_or("iters", 20)?.max(1);
    let repeats = args.usize_or("repeats", 3)?.max(1);

    let query = Request::threads(n)
        .stencil(select::stencil_spec(args.str_or("stencil", "5pt"))?)
        .shape(select::shape_key(args.str_or("shape", "strip"))?)
        .threads(threads)
        .iters(iters)
        .repeats(repeats)
        .query();
    let EvalValue::Threads { points } = eval_single(query)? else {
        unreachable!("threads queries produce measurement values")
    };

    let mut t = Table::new(
        format!("Measured partitioned Jacobi · n={n} · {} · {}", stencil.name(), shape.name()),
        &["threads", "s/iter", "speedup", "efficiency"],
    );
    for p in &points {
        t.row(vec![
            p.threads.to_string(),
            format!("{:.3e}", p.secs_per_iter),
            format!("{:.2}", p.speedup),
            format!("{:.1}%", 100.0 * p.speedup / p.threads as f64),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_measurement_runs() {
        let toks: Vec<String> = ["--n", "64", "--threads", "1,2", "--iters", "2", "--repeats", "1"]
            .iter()
            .map(|t| t.to_string())
            .collect();
        let args = Args::parse(&toks, KEYS, SWITCHES).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("threads"), "{out}");
        assert!(out.lines().count() >= 5, "{out}");
    }

    #[test]
    fn rejects_zero_thread_counts() {
        let toks: Vec<String> = ["--threads", "0,2"].iter().map(|t| t.to_string()).collect();
        let args = Args::parse(&toks, KEYS, SWITCHES).unwrap();
        assert!(run(&args).is_err());
    }
}
