//! `parspeed optimize` — the paper's headline question for one instance:
//! how many processors, and what speedup?
//!
//! Routed through the engine's service surface: the command builds one
//! [`Request`], so repeated optimizes in a process share the result cache
//! and answers stay bit-identical to direct model calls.

use crate::args::{Args, CliError};
use crate::commands::eval_single;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_core::{MemoryBudget, Workload};
use parspeed_engine::{EvalValue, Request};

pub const KEYS: &[&str] =
    &["n", "stencil", "shape", "procs", "memory", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help optimize`.
pub const USAGE: &str = "parspeed optimize --arch <name> [--n 256] [--stencil 5pt] [--shape square]
    [--procs N] [--memory WORDS] [machine overrides: --tfp --b --c --alpha --beta --packet --w --flex32]

Finds the optimal processor count and speedup for one problem instance on
one architecture (any of: hypercube, mesh, sync-bus, async-bus,
scheduled-bus, banyan). --procs caps the machine (default: unlimited);
--memory adds a per-processor capacity in words, which can force spreading
(§3/§4).";

/// Runs the subcommand.
pub fn run(arch: &str, args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let model = select::arch_model(arch, &m)?;
    let n = args.usize_or("n", 256)?;
    let stencil_spec = select::stencil_spec(args.str_or("stencil", "5pt"))?;
    let stencil = stencil_spec.to_stencil().expect("CLI stencil names are catalog stencils");
    let shape_key = select::shape_key(args.str_or("shape", "square"))?;
    let shape = shape_key.to_shape();
    let memory = args.f64_opt("memory")?.map(MemoryBudget::words);

    let mut builder = Request::optimize(select::arch_kind(arch)?, n)
        .machine(select::machine_spec(args)?)
        .stencil(stencil_spec)
        .shape(shape_key);
    if let Some(p) = args.usize_opt("procs")? {
        builder = builder.procs(p);
    }
    if let Some(mem) = memory {
        builder = builder.memory_words(mem.words_per_processor);
    }
    let EvalValue::Optimum { processors, area, cycle_time, speedup, efficiency, used_all } =
        eval_single(builder.query())?
    else {
        unreachable!("optimize queries produce optimum values")
    };

    let mut t = Table::new(
        format!("{} · n={n} · {} · {}", model.name(), stencil.name(), shape.name()),
        &["quantity", "value"],
    );
    t.row(vec!["optimal processors".into(), processors.to_string()]);
    t.row(vec!["largest partition (points)".into(), format!("{area:.0}")]);
    t.row(vec!["cycle time".into(), format!("{cycle_time:.3e} s")]);
    t.row(vec!["speedup".into(), format!("{speedup:.2}")]);
    t.row(vec!["efficiency".into(), format!("{:.1}%", efficiency * 100.0)]);
    t.row(vec!["uses every processor".into(), if used_all { "yes" } else { "no" }.into()]);
    if let Some(mem) = memory {
        let w = Workload::new(n, &stencil, shape);
        t.row(vec![
            "largest partition memory (words)".into(),
            format!(
                "{:.0} of {:.0}",
                MemoryBudget::partition_words(&w, processors),
                mem.words_per_processor
            ),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn paper_anchor_appears_in_output() {
        // 256² squares on the sync bus: the §6.1 anchor of ~14 processors.
        let out = run("sync-bus", &parse(&["--procs", "64"])).unwrap();
        assert!(out.contains("14"), "{out}");
        assert!(out.contains("no"), "interior optimum leaves processors idle: {out}");
    }

    #[test]
    fn memory_floor_shows_in_output() {
        let out = run("sync-bus", &parse(&["--procs", "64", "--memory", "20000"])).unwrap();
        assert!(out.contains("partition memory"), "{out}");
    }

    #[test]
    fn infeasible_memory_is_a_clean_error() {
        let e = run("sync-bus", &parse(&["--memory", "10"])).unwrap_err();
        assert!(e.0.contains("does not fit"));
    }

    #[test]
    fn unknown_architecture_is_an_error() {
        let e = run("torus", &parse(&[])).unwrap_err();
        assert!(e.0.contains("torus"));
    }
}
