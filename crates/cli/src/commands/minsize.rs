//! `parspeed minsize` — the smallest grid that gainfully uses all N
//! processors (Fig. 7's question, for arbitrary N).
//!
//! One engine query per bus variant, submitted as a single batch so the
//! closed-form evaluations dedup and cache with the rest of the process.

use crate::args::{Args, CliError};
use crate::commands::service_call;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{EvalValue, MinSizeVariant, Request, Response};
use parspeed_stencil::PartitionShape;

pub const KEYS: &[&str] = &["stencil", "procs", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help minsize`.
pub const USAGE: &str = "parspeed minsize [--procs 16] [--stencil 5pt] [machine overrides]

The smallest grid side n whose optimal bus allocation uses all --procs
processors, for each bus variant and partition shape (Fig. 7). Below that
size, buying more processors buys nothing.";

/// The variants in Fig. 7 presentation order (matching
/// `BusVariant::all()`).
const VARIANTS: [MinSizeVariant; 4] = [
    MinSizeVariant::SyncStrip,
    MinSizeVariant::AsyncStrip,
    MinSizeVariant::SyncSquare,
    MinSizeVariant::AsyncSquare,
];

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let n_procs = args.usize_or("procs", 16)?;
    if n_procs < 2 {
        return Err(CliError("--procs must be at least 2".into()));
    }
    let machine_spec = select::machine_spec(args)?;
    let e = stencil.calibrated_e().unwrap_or_else(|| stencil.flops_per_point());

    let queries = VARIANTS
        .iter()
        .map(|&mv| {
            let k = stencil.perimeters(mv.to_variant().shape()) as f64;
            Request::minsize(mv, n_procs).machine(machine_spec).e(e).k(k).query()
        })
        .collect();
    let responses = service_call(queries)?;

    let mut t = Table::new(
        format!("Minimal grid using all {n_procs} processors · {}", stencil.name()),
        &["bus variant", "shape", "min n", "min log2(n²)"],
    );
    for (mv, response) in VARIANTS.iter().zip(responses) {
        let side = match response {
            Response::Single(Ok(EvalValue::MinSize { n_side, .. })) => n_side,
            Response::Single(Err(e)) | Response::Invalid(e) => return Err(CliError(e.to_string())),
            other => unreachable!("minsize queries produce minsize values, got {other:?}"),
        };
        let v = mv.to_variant();
        t.row(vec![
            v.label().into(),
            match v.shape() {
                PartitionShape::Strip => "strip".into(),
                PartitionShape::Square => "square".into(),
            },
            format!("{:.0}", side.ceil()),
            format!("{:.1}", 2.0 * side.log2()),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn paper_anchor_14_processors_at_256() {
        // §6.1: 256² with 5-point squares should use 1–14 processors, so
        // the minimal grid for 14 must be ≈ 256.
        let out = run(&parse(&["--procs", "14"])).unwrap();
        let sync_square =
            out.lines().find(|l| l.contains("synchronous") && l.contains("square")).unwrap();
        let min_n: f64 = sync_square.split_whitespace().rev().nth(1).unwrap().parse().unwrap();
        assert!((min_n - 256.0).abs() / 256.0 < 0.05, "{sync_square}");
    }

    #[test]
    fn strips_need_larger_grids_than_squares() {
        let out = run(&parse(&["--procs", "16"])).unwrap();
        let min_of = |needle: &str| -> f64 {
            out.lines()
                .find(|l| l.contains(needle))
                .and_then(|l| l.split_whitespace().rev().nth(1).map(|s| s.parse().unwrap()))
                .unwrap()
        };
        assert!(min_of("strip") > min_of("square"), "{out}");
    }

    #[test]
    fn rejects_single_processor() {
        assert!(run(&parse(&["--procs", "1"])).is_err());
    }
}
