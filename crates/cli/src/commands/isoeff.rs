//! `parspeed isoeff` — isoefficiency: how fast must the problem grow to
//! keep the machine efficient? (The modern framing of the paper's
//! fixed-N results.)
//!
//! One engine query per processor count — threshold searches dedup and
//! cache like any other traffic — and the exponent is fitted locally from
//! the returned thresholds with the same least-squares the core applies.

use crate::args::{Args, CliError};
use crate::commands::service_call;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_core::isoefficiency::fit_work_exponent;
use parspeed_engine::{EvalValue, Query, Request, Response};

pub const KEYS: &[&str] =
    &["stencil", "shape", "efficiency", "procs", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help isoeff`.
pub const USAGE: &str = "parspeed isoeff --arch <name> [--efficiency 0.5] [--stencil 5pt]
    [--shape square] [--procs 8,16,32,64] [machine overrides]

For each processor count, the smallest grid side reaching the target
efficiency, and the fitted isoefficiency exponent d(log W)/d(log N)
(W = n²). Hypercube squares ≈ 1 (ideal), banyan ≈ 1 + log factor, bus
squares ≈ 3, bus strips ≈ 4.";

/// Runs the subcommand.
pub fn run(arch: &str, args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let model = select::arch_model(arch, &m)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let shape = select::shape(args.str_or("shape", "square"))?;
    let efficiency = args.f64_or("efficiency", 0.5)?;
    if !(0.0..1.0).contains(&efficiency) || efficiency == 0.0 {
        return Err(CliError(format!("--efficiency must be in (0, 1); got {efficiency}")));
    }
    let procs = args.usize_list_or("procs", &[8, 16, 32, 64])?;
    if procs.len() < 2 || procs.contains(&0) {
        return Err(CliError("--procs needs at least two positive counts".into()));
    }

    let query = |p: usize| -> Query {
        Request::isoeff(select::arch_kind(arch).expect("validated above"), p, efficiency)
            .machine(select::machine_spec(args).expect("validated above"))
            .stencil(select::stencil_spec(args.str_or("stencil", "5pt")).expect("validated above"))
            .shape(select::shape_key(args.str_or("shape", "square")).expect("validated above"))
            .query()
    };
    let responses = service_call(procs.iter().map(|&p| query(p)).collect())?;
    let mut thresholds = Vec::with_capacity(procs.len());
    for (&p, response) in procs.iter().zip(responses) {
        let n = match response {
            Response::Single(Ok(EvalValue::Isoefficiency { n })) => n,
            Response::Single(Err(e)) | Response::Invalid(e) => return Err(CliError(e.to_string())),
            other => unreachable!("isoeff queries produce isoefficiency values, got {other:?}"),
        };
        thresholds.push((p, n));
    }
    let mut t = Table::new(
        format!(
            "Isoefficiency · {} · {} · {} · target {:.0}%",
            model.name(),
            stencil.name(),
            shape.name(),
            efficiency * 100.0
        ),
        &["N", "min n", "work n²", "points/processor"],
    );
    for &(p, n) in &thresholds {
        t.row(vec![
            p.to_string(),
            n.to_string(),
            (n * n).to_string(),
            format!("{:.0}", (n * n) as f64 / p as f64),
        ]);
    }
    let exponent = fit_work_exponent(&thresholds);
    let mut out = t.render();
    out.push_str(&format!(
        "Fitted isoefficiency exponent: {exponent:.2} (W ∝ N^{exponent:.2}; lower = more scalable).\n"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn bus_squares_fit_cubic() {
        let out = run("sync-bus", &parse(&["--procs", "8,16,32,64"])).unwrap();
        let exp: f64 = out
            .lines()
            .find(|l| l.contains("exponent"))
            .and_then(|l| l.split_whitespace().nth(3).map(|s| s.parse().unwrap()))
            .unwrap();
        assert!((exp - 3.0).abs() < 0.2, "{out}");
    }

    #[test]
    fn exponent_matches_the_unbatched_core_fit() {
        use parspeed_core::isoefficiency::isoefficiency_exponent;
        use parspeed_core::Workload;
        let out = run("sync-bus", &parse(&["--procs", "8,16,32,64"])).unwrap();
        let m = parspeed_core::MachineParams::paper_defaults();
        let model = select::arch_model("sync-bus", &m).unwrap();
        let template = Workload::new(
            2,
            &parspeed_stencil::Stencil::five_point(),
            parspeed_stencil::PartitionShape::Square,
        );
        let direct = isoefficiency_exponent(model.as_ref(), &template, &[8, 16, 32, 64], 0.5);
        assert!(out.contains(&format!("{direct:.2}")), "{out}");
    }

    #[test]
    fn rejects_bad_targets_and_sweeps() {
        assert!(run("sync-bus", &parse(&["--efficiency", "1.5"])).is_err());
        assert!(run("sync-bus", &parse(&["--procs", "8"])).is_err());
    }
}
