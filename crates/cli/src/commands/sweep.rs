//! `parspeed sweep` — optimal speedup and processor count as the problem
//! grows (the paper's central question).

use crate::args::{Args, CliError};
use crate::select;
use parspeed_bench::report::Table;
use parspeed_core::{ProcessorBudget, Workload};

pub const KEYS: &[&str] = &["stencil", "shape", "procs", "n-from", "n-to", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help sweep`.
pub const USAGE: &str = "parspeed sweep --arch <name> [--n-from 64] [--n-to 4096] [--stencil 5pt]
    [--shape square] [--procs N] [machine overrides]

Doubles the grid side from --n-from to --n-to and reports the optimal
allocation at each size: how speedup scales when the machine grows with
the problem (Table I) or is fixed at --procs (speedup → N, §6.1).";

/// Runs the subcommand.
pub fn run(arch: &str, args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let model = select::arch_model(arch, &m)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let shape = select::shape(args.str_or("shape", "square"))?;
    let n_from = args.usize_or("n-from", 64)?;
    let n_to = args.usize_or("n-to", 4096)?;
    if n_from == 0 || n_to < n_from {
        return Err(CliError(format!("bad sweep range {n_from}..{n_to}")));
    }
    let budget = match args.usize_opt("procs")? {
        Some(p) => ProcessorBudget::Limited(p),
        None => ProcessorBudget::Unlimited,
    };

    let mut t = Table::new(
        format!("{} scaling sweep · {} · {}", model.name(), stencil.name(), shape.name()),
        &["n", "log2(n²)", "processors", "speedup", "efficiency", "speedup ratio"],
    );
    let mut n = n_from;
    let mut prev: Option<f64> = None;
    while n <= n_to {
        let w = Workload::new(n, &stencil, shape);
        let opt = parspeed_core::optimize_constrained(model.as_ref(), &w, budget, None)
            .expect("no memory budget");
        t.row(vec![
            n.to_string(),
            format!("{:.0}", 2.0 * (n as f64).log2()),
            opt.processors.to_string(),
            format!("{:.2}", opt.speedup),
            format!("{:.1}%", opt.efficiency * 100.0),
            prev.map_or("—".into(), |p| format!("{:.3}", opt.speedup / p)),
        ]);
        prev = Some(opt.speedup);
        if n > n_to / 2 {
            break;
        }
        n *= 2;
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn sync_bus_square_ratio_approaches_cube_root_of_four() {
        let out = run("sync-bus", &parse(&["--n-from", "512", "--n-to", "4096"])).unwrap();
        // Θ((n²)^⅓): doubling n multiplies speedup by ∛4 ≈ 1.587.
        assert!(out.contains("1.58") || out.contains("1.59"), "{out}");
    }

    #[test]
    fn fixed_machine_speedup_approaches_n() {
        let out = run("hypercube", &parse(&["--procs", "16", "--n-from", "256", "--n-to", "8192"])).unwrap();
        assert!(out.contains("16  "), "{out}");
        let last = out.lines().last().unwrap();
        assert!(last.contains("15.") || last.contains("16.0"), "{last}");
    }

    #[test]
    fn bad_range_is_an_error() {
        assert!(run("hypercube", &parse(&["--n-from", "512", "--n-to", "256"])).is_err());
    }
}
