//! `parspeed sweep` — optimal speedup and processor count as the problem
//! grows (the paper's central question).
//!
//! The sweep is one [`Query::Sweep`](parspeed_engine::Query::Sweep)
//! macro-query through the service surface: the engine expands, dedups,
//! and fans the grid across its thread pool, and this command renders the
//! points. Engine responses are bit-identical to the direct model calls
//! this command used to make, so the rendered table is unchanged.

use crate::args::{Args, CliError};
use crate::commands::eval_points;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{EvalValue, Query, Request, Response, Service as _};

pub const KEYS: &[&str] = &[
    "stencil",
    "shape",
    "procs",
    "n-from",
    "n-to",
    "cache-capacity",
    "tfp",
    "b",
    "c",
    "alpha",
    "beta",
    "packet",
    "w",
];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help sweep`.
pub const USAGE: &str = "parspeed sweep --arch <name> [--n-from 64] [--n-to 4096] [--stencil 5pt]
    [--shape square] [--procs N] [--cache-capacity N] [machine overrides]

Doubles the grid side from --n-from to --n-to and reports the optimal
allocation at each size: how speedup scales when the machine grows with
the problem (Table I) or is fixed at --procs (speedup → N, §6.1).
--cache-capacity runs the sweep on a dedicated engine with that many
cached results instead of the shared process-wide cache.";

/// Runs the subcommand.
pub fn run(arch: &str, args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let model = select::arch_model(arch, &m)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let shape = select::shape(args.str_or("shape", "square"))?;
    let n_from = args.usize_or("n-from", 64)?;
    let n_to = args.usize_or("n-to", 4096)?;
    if n_from == 0 || n_to < n_from {
        return Err(CliError(format!("bad sweep range {n_from}..{n_to}")));
    }

    let query: Query = Request::sweep(n_from, n_to)
        .archs(vec![select::arch_kind(arch)?])
        .machine(select::machine_spec(args)?)
        .stencils(vec![select::stencil_spec(args.str_or("stencil", "5pt"))?])
        .shapes(vec![select::shape_key(args.str_or("shape", "square"))?])
        .budgets(vec![args.usize_opt("procs")?])
        .query();

    // --cache-capacity isolates this sweep on a dedicated engine; the
    // default path shares the process-wide cache with every other command.
    let points = match args.usize_opt("cache-capacity")? {
        None => eval_points(query)?,
        Some(capacity) => {
            let engine = parspeed_engine::Engine::builder().cache_capacity(capacity).build();
            let reply =
                engine.call(&Request::single(query)).map_err(|e| CliError(e.to_string()))?;
            match reply.responses.into_iter().next().expect("one response") {
                Response::Sweep(points) => points,
                Response::Invalid(e) => return Err(CliError(e.to_string())),
                Response::Single(_) => unreachable!("sweep queries produce sweep responses"),
            }
        }
    };

    let mut t = Table::new(
        format!("{} scaling sweep · {} · {}", model.name(), stencil.name(), shape.name()),
        &["n", "log2(n²)", "processors", "speedup", "efficiency", "speedup ratio"],
    );
    let mut prev: Option<f64> = None;
    for (label, outcome) in &points {
        let opt = match outcome {
            Ok(EvalValue::Optimum { processors, speedup, efficiency, .. }) => {
                (*processors, *speedup, *efficiency)
            }
            Ok(other) => unreachable!("sweep points are optimizer runs, got {other:?}"),
            Err(e) => return Err(CliError(e.to_string())),
        };
        let (processors, speedup, efficiency) = opt;
        t.row(vec![
            label.n.to_string(),
            format!("{:.0}", 2.0 * (label.n as f64).log2()),
            processors.to_string(),
            format!("{speedup:.2}"),
            format!("{:.1}%", efficiency * 100.0),
            prev.map_or("—".into(), |p| format!("{:.3}", speedup / p)),
        ]);
        prev = Some(speedup);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn sync_bus_square_ratio_approaches_cube_root_of_four() {
        let out = run("sync-bus", &parse(&["--n-from", "512", "--n-to", "4096"])).unwrap();
        // Θ((n²)^⅓): doubling n multiplies speedup by ∛4 ≈ 1.587.
        assert!(out.contains("1.58") || out.contains("1.59"), "{out}");
    }

    #[test]
    fn fixed_machine_speedup_approaches_n() {
        let out = run("hypercube", &parse(&["--procs", "16", "--n-from", "256", "--n-to", "8192"]))
            .unwrap();
        assert!(out.contains("16  "), "{out}");
        let last = out.lines().last().unwrap();
        assert!(last.contains("15.") || last.contains("16.0"), "{last}");
    }

    #[test]
    fn bad_range_is_an_error() {
        assert!(run("hypercube", &parse(&["--n-from", "512", "--n-to", "256"])).is_err());
    }

    #[test]
    fn dedicated_cache_capacity_matches_shared_engine_output() {
        let shared = run("sync-bus", &parse(&["--n-from", "64", "--n-to", "512"])).unwrap();
        let dedicated =
            run("sync-bus", &parse(&["--n-from", "64", "--n-to", "512", "--cache-capacity", "4"]))
                .unwrap();
        assert_eq!(shared, dedicated);
    }

    #[test]
    fn engine_sweep_matches_direct_model_calls_exactly() {
        use parspeed_core::{optimize_constrained, ProcessorBudget, Workload};
        use parspeed_stencil::{PartitionShape, Stencil};
        let args = parse(&["--n-from", "64", "--n-to", "1024", "--procs", "32"]);
        let out = run("async-bus", &args).unwrap();
        let m = parspeed_core::MachineParams::paper_defaults();
        let model = crate::select::arch_model("async-bus", &m).unwrap();
        let mut n = 64usize;
        while n <= 1024 {
            let w = Workload::new(n, &Stencil::five_point(), PartitionShape::Square);
            let direct =
                optimize_constrained(model.as_ref(), &w, ProcessorBudget::Limited(32), None)
                    .unwrap();
            let row = out
                .lines()
                .find(|l| l.trim_start().starts_with(&format!("{n} ")))
                .unwrap_or_else(|| panic!("no row for n={n} in {out}"));
            assert!(row.contains(&format!("{:.2}", direct.speedup)), "n={n}: {row}");
            n *= 2;
        }
    }
}
