//! `parspeed batch` — run a JSONL request batch through the query engine.

use crate::args::{err, Args, CliError};
use parspeed_engine::{jsonl, Engine};
use parspeed_obs::{render_exposition, StageSet, StageSummary};
use std::io::Read as _;
use std::sync::Arc;

pub const KEYS: &[&str] = &["input", "cache", "cache-capacity", "shards", "threads"];
pub const SWITCHES: &[&str] = &["stats"];

/// Usage shown by `parspeed help batch`.
pub const USAGE: &str =
    "parspeed batch [--input FILE] [--cache-capacity N] [--shards N] [--threads N] [--stats]

Reads one JSON request per line from --input (default: stdin, also `-`),
evaluates the whole batch through the parspeed-engine pipeline
(plan → dedup → cache → parallel execute), and writes one JSON response
per line in input order. --stats appends a final telemetry record to
stdout and prints the per-stage latency breakdown (plan, dedup, cache,
exec — the same text exposition `parspeed serve --metrics-human`
renders) on stderr.

Request ops: optimize, minsize, isoeff, leverage, sweep, table1, compare,
simulate, solve, threads — see crates/engine/src/README.md for the full
wire-v2 schema (add \"version\":2 to request lines; v1 lines are still
accepted with a deprecation note on stderr). Lines that fail to parse
produce an {\"ok\":false,\"line\":N,...} response in their slot; they
never abort the rest of the batch.

  --cache-capacity N   cached results kept across the run (default 65536;
                       --cache is a deprecated alias)
  --shards N           cache shards (default 16)
  --threads N          worker threads; 0 = machine default (default 0)";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let input = args.str_or("input", "-");
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| err(format!("cannot read stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(input).map_err(|e| err(format!("cannot read `{input}`: {e}")))?
    };

    let capacity = match (args.usize_opt("cache-capacity")?, args.usize_opt("cache")?) {
        (Some(_), Some(_)) => {
            return Err(err("give either --cache-capacity or its alias --cache, not both"))
        }
        (Some(c), None) | (None, Some(c)) => c,
        (None, None) => parspeed_engine::DEFAULT_CACHE_CAPACITY,
    };
    let engine = Engine::builder()
        .cache_capacity(capacity)
        .cache_shards(args.usize_or("shards", 16)?)
        .threads(args.usize_or("threads", 0)?)
        .experiment_runner(crate::commands::experiment::runner)
        .build();

    // With --stats, also attribute engine time per stage; the recorder
    // costs nothing when absent, so plain runs stay uninstrumented.
    let stages = args.switch("stats").then(|| Arc::new(StageSet::new()));
    if let Some(stages) = &stages {
        engine.set_recorder(Some(Arc::clone(stages) as _));
    }
    let reply = run_lines(&engine, &text, args.switch("stats"));
    if let Some(stages) = &stages {
        eprint!("{}", render_stage_breakdown(stages));
    }
    if reply.v1_lines > 0 {
        eprintln!(
            "note: {} request line(s) used deprecated wire v1; add \"version\":2 \
             (see crates/engine/src/README.md)",
            reply.v1_lines
        );
    }
    Ok(reply.stdout)
}

/// The rendered reply of one JSONL batch.
pub struct BatchReply {
    /// One response line per non-empty input line (plus telemetry with
    /// `--stats`), joined with newlines.
    pub stdout: String,
    /// How many input lines spoke deprecated wire v1.
    pub v1_lines: usize,
}

/// Evaluates the JSONL payload and renders the JSONL reply (separated from
/// [`run`] so tests can drive it without touching stdin or files).
pub fn run_lines(engine: &Engine, text: &str, stats: bool) -> BatchReply {
    // Parse every line first; parse failures keep their slot so responses
    // line up with requests. Line numbers are 1-based over the raw input
    // (blank lines count, so an error's `line` matches the user's editor).
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut parsed = Vec::with_capacity(lines.len());
    for (line_no, line) in &lines {
        parsed.push((*line_no, jsonl::parse_query(line)));
    }
    let queries: Vec<parspeed_engine::Query> =
        parsed.iter().filter_map(|(_, p)| p.as_ref().ok().map(|pl| pl.query.clone())).collect();
    let out = engine.run_batch(&queries);

    let mut v1_lines = 0usize;
    let mut rendered = Vec::with_capacity(lines.len() + 1);
    let mut responses = out.responses.iter();
    for (line_no, p) in &parsed {
        match p {
            Ok(parsed_line) => {
                if parsed_line.version < parspeed_engine::WIRE_VERSION {
                    v1_lines += 1;
                }
                let response = responses.next().expect("one response per parsed query");
                rendered.push(jsonl::render_response(
                    &parsed_line.query,
                    response,
                    parsed_line.version,
                    *line_no,
                ));
            }
            Err(e) => rendered.push(jsonl::render_parse_error(e, *line_no)),
        }
    }
    if stats {
        rendered.push(jsonl::render_telemetry(&out.telemetry));
    }
    BatchReply { stdout: rendered.join("\n"), v1_lines }
}

/// The per-stage breakdown of a `--stats` run, in the same text
/// exposition the serving layer's `--metrics-human` uses (file mode has
/// no serving stages, so only the engine's show up).
fn render_stage_breakdown(stages: &StageSet) -> String {
    let summaries: Vec<(&str, StageSummary)> =
        stages.summaries().iter().map(|&(stage, summary)| (stage.name(), summary)).collect();
    render_exposition(&summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(text: &str, stats: bool) -> Vec<String> {
        let engine = Engine::builder().build();
        run_lines(&engine, text, stats).stdout.lines().map(String::from).collect()
    }

    #[test]
    fn responses_line_up_with_requests() {
        let text = r#"
            {"op":"optimize","arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64}
            this is not json
            {"op":"minsize","variant":"sync-square","e":6.0,"k":1.0,"procs":14}
        "#;
        let out = lines(text, false);
        assert_eq!(out.len(), 3);
        assert!(out[0].contains("\"op\":\"optimize\"") && out[0].contains("\"ok\":true"));
        assert!(out[0].contains("\"processors\":14"), "{}", out[0]);
        assert!(out[1].contains("\"ok\":false"));
        assert!(out[2].contains("\"op\":\"minsize\"") && out[2].contains("\"n_side\""));
    }

    #[test]
    fn error_slots_carry_their_one_based_input_line_number() {
        // Line 1 is blank, line 2 parses, line 3 is garbage, line 4 is a
        // well-formed but invalid query, line 5 parses — the error slots
        // must point at lines 3 and 4 of the raw input.
        let text = "\n{\"op\":\"minsize\",\"variant\":\"sync-square\",\"e\":6.0,\"k\":1.0,\"procs\":14}\nnot json\n{\"op\":\"optimize\",\"arch\":\"sync-bus\",\"n\":0,\"stencil\":\"5pt\",\"shape\":\"square\"}\n{\"op\":\"isoeff\",\"arch\":\"sync-bus\",\"stencil\":\"5pt\",\"shape\":\"square\",\"procs\":16,\"efficiency\":0.5}\n";
        let out = lines(text, false);
        assert_eq!(out.len(), 4);
        assert!(!out[0].contains("\"line\""), "successes carry no line: {}", out[0]);
        assert!(out[1].contains("\"ok\":false") && out[1].contains("\"line\":3"), "{}", out[1]);
        assert!(out[2].contains("\"ok\":false") && out[2].contains("\"line\":4"), "{}", out[2]);
        assert!(out[3].contains("\"ok\":true"), "{}", out[3]);
    }

    #[test]
    fn v2_lines_answer_v2_and_are_not_counted_deprecated() {
        let engine = Engine::builder().build();
        let text = "{\"op\":\"table1\",\"version\":2,\"n\":512,\"stencil\":\"5pt\"}\n{\"op\":\"minsize\",\"variant\":\"sync-square\",\"e\":6.0,\"k\":1.0,\"procs\":14}\n";
        let reply = run_lines(&engine, text, false);
        let out: Vec<&str> = reply.stdout.lines().collect();
        assert!(out[0].starts_with("{\"version\":2,\"op\":\"table1\""), "{}", out[0]);
        assert!(out[1].starts_with("{\"op\":\"minsize\""), "v1 keeps its legacy shape: {}", out[1]);
        assert_eq!(reply.v1_lines, 1);
    }

    #[test]
    fn stats_line_reports_dedup() {
        let q = r#"{"op":"optimize","arch":"sync-bus","n":128,"stencil":"5pt","shape":"square"}"#;
        let text = format!("{q}\n{q}\n{q}\n");
        let out = lines(&text, true);
        assert_eq!(out.len(), 4);
        let stats = &out[3];
        assert!(stats.contains("\"op\":\"telemetry\""));
        assert!(stats.contains("\"atoms\":3"));
        assert!(stats.contains("\"unique\":1"));
    }

    #[test]
    fn sweep_points_stream_inline() {
        let text = r#"{"op":"sweep","arch":["sync-bus"],"stencil":["5pt"],"shape":["square"],
            "procs":[64],"n_from":64,"n_to":256}"#
            .replace('\n', " ");
        let out = lines(&text, false);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"points\":["));
        assert_eq!(out[0].matches("\"arch\":\"sync-bus\"").count(), 3); // 64, 128, 256
    }

    #[test]
    fn new_ops_answer_inline() {
        let text = "{\"op\":\"table1\",\"n\":256,\"stencil\":\"5pt\"}\n{\"op\":\"compare\",\"n\":64,\"stencil\":\"5pt\",\"shape\":\"square\"}\n{\"op\":\"solve\",\"n\":15,\"solver\":\"cg\",\"tol\":1e-6}\n";
        let out = lines(text, false);
        assert_eq!(out.len(), 3);
        assert!(out[0].contains("\"rows\":[") && out[0].contains("hypercube"), "{}", out[0]);
        assert_eq!(out[1].matches("\"ok\":true").count(), 7, "compare + 6 points: {}", out[1]);
        assert!(out[2].contains("\"converged\":true"), "{}", out[2]);
    }

    #[test]
    fn stats_stage_breakdown_shows_engine_stages_only() {
        let engine = Engine::builder().build();
        let stages = Arc::new(StageSet::new());
        engine.set_recorder(Some(Arc::clone(&stages) as _));
        let q = r#"{"op":"optimize","arch":"sync-bus","n":128,"stencil":"5pt","shape":"square"}"#;
        run_lines(&engine, q, true);
        let text = render_stage_breakdown(&stages);
        for stage in ["plan", "dedup", "cache", "exec"] {
            assert!(
                text.contains(&format!("stage=\"{stage}\",quantile=\"0.5\"")),
                "missing {stage}: {text}"
            );
        }
        // File mode never touches the serving stages; the shared
        // renderer skips empty histograms rather than printing zeros.
        assert!(!text.contains("stage=\"queue\""), "{text}");
        assert!(!text.contains("stage=\"route\""), "{text}");
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(lines("", false).len(), 0);
        assert_eq!(lines("\n\n", true).len(), 1); // telemetry only
    }
}
