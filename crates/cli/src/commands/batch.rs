//! `parspeed batch` — run a JSONL request batch through the query engine.

use crate::args::{err, Args, CliError};
use parspeed_engine::{jsonl, Engine};
use std::io::Read as _;

pub const KEYS: &[&str] = &["input", "cache", "shards", "threads"];
pub const SWITCHES: &[&str] = &["stats"];

/// Usage shown by `parspeed help batch`.
pub const USAGE: &str =
    "parspeed batch [--input FILE] [--cache N] [--shards N] [--threads N] [--stats]

Reads one JSON request per line from --input (default: stdin, also `-`),
evaluates the whole batch through the parspeed-engine pipeline
(plan → dedup → cache → parallel execute), and writes one JSON response
per line in input order. --stats appends a final telemetry record.

Request ops: optimize, minsize, isoeff, leverage, sweep — see
crates/engine/src/README.md for the full schema. Lines that fail to parse
produce an {\"ok\":false,...} response in their slot; they never abort the
rest of the batch.

  --cache N     cached results kept across the run (default 65536)
  --shards N    cache shards (default 16)
  --threads N   worker threads; 0 = machine default (default 0)";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let input = args.str_or("input", "-");
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| err(format!("cannot read stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(input).map_err(|e| err(format!("cannot read `{input}`: {e}")))?
    };

    let engine = Engine::builder()
        .cache_capacity(args.usize_or("cache", 65_536)?)
        .cache_shards(args.usize_or("shards", 16)?)
        .threads(args.usize_or("threads", 0)?)
        .build();

    Ok(run_lines(&engine, &text, args.switch("stats")))
}

/// Evaluates the JSONL payload and renders the JSONL reply (separated from
/// [`run`] so tests can drive it without touching stdin or files).
pub fn run_lines(engine: &Engine, text: &str, stats: bool) -> String {
    // Parse every line first; parse failures keep their slot so responses
    // line up with requests.
    let lines: Vec<&str> = text.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    let mut parsed = Vec::with_capacity(lines.len());
    for line in &lines {
        parsed.push(jsonl::parse_query(line));
    }
    let queries: Vec<parspeed_engine::Query> =
        parsed.iter().filter_map(|p| p.as_ref().ok().cloned()).collect();
    let out = engine.run_batch(&queries);

    let mut rendered = Vec::with_capacity(lines.len() + 1);
    let mut responses = out.responses.iter();
    for p in &parsed {
        match p {
            Ok(query) => {
                let response = responses.next().expect("one response per parsed query");
                rendered.push(jsonl::render_response(query, response));
            }
            Err(msg) => rendered.push(jsonl::render_parse_error(msg)),
        }
    }
    if stats {
        rendered.push(jsonl::render_telemetry(&out.telemetry));
    }
    rendered.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(text: &str, stats: bool) -> Vec<String> {
        let engine = Engine::builder().build();
        run_lines(&engine, text, stats).lines().map(String::from).collect()
    }

    #[test]
    fn responses_line_up_with_requests() {
        let text = r#"
            {"op":"optimize","arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64}
            this is not json
            {"op":"minsize","variant":"sync-square","e":6.0,"k":1.0,"procs":14}
        "#;
        let out = lines(text, false);
        assert_eq!(out.len(), 3);
        assert!(out[0].contains("\"op\":\"optimize\"") && out[0].contains("\"ok\":true"));
        assert!(out[0].contains("\"processors\":14"), "{}", out[0]);
        assert!(out[1].contains("\"ok\":false"));
        assert!(out[2].contains("\"op\":\"minsize\"") && out[2].contains("\"n_side\""));
    }

    #[test]
    fn stats_line_reports_dedup() {
        let q = r#"{"op":"optimize","arch":"sync-bus","n":128,"stencil":"5pt","shape":"square"}"#;
        let text = format!("{q}\n{q}\n{q}\n");
        let out = lines(&text, true);
        assert_eq!(out.len(), 4);
        let stats = &out[3];
        assert!(stats.contains("\"op\":\"telemetry\""));
        assert!(stats.contains("\"atoms\":3"));
        assert!(stats.contains("\"unique\":1"));
    }

    #[test]
    fn sweep_points_stream_inline() {
        let text = r#"{"op":"sweep","arch":["sync-bus"],"stencil":["5pt"],"shape":["square"],
            "procs":[64],"n_from":64,"n_to":256}"#
            .replace('\n', " ");
        let out = lines(&text, false);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"points\":["));
        assert_eq!(out[0].matches("\"arch\":\"sync-bus\"").count(), 3); // 64, 128, 256
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(lines("", false).len(), 0);
        assert_eq!(lines("\n\n", true).len(), 1); // telemetry only
    }
}
