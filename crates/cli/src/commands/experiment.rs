//! `parspeed experiment` — regenerate the paper's tables and figures.
//!
//! Routed through the engine as an effect query. The experiment harness
//! (`parspeed-bench`) sits *above* the engine in the dependency graph, so
//! the engine cannot call it directly; instead [`runner`] is registered on
//! the process-wide engine at construction (dependency inversion), and
//! `Query::Experiment` requests — from this command or from a JSONL batch —
//! are served through it.

use crate::args::{Args, CliError};
use crate::commands::eval_single;
use parspeed_bench::experiments;
use parspeed_engine::{EvalValue, Request};

pub const KEYS: &[&str] = &["id"];
pub const SWITCHES: &[&str] = &["quick"];

/// Usage shown by `parspeed help experiment`.
pub const USAGE: &str = "parspeed experiment [--id e1..e16|all] [--quick]

Regenerates a reproduction experiment (the DESIGN.md §5 index: e1 = the
k-table, e2 = Fig 6, e3 = Fig 7, e4 = Fig 8, e5 = Table I, e6–e12 the
per-section analyses, e13/e14 validation, e15 scheduling, e16 embeddings)
or all of them. --quick trims the sweeps.";

/// The experiment runner registered on the process-wide engine: maps an
/// id to its `parspeed-bench` harness.
pub fn runner(id: &str, quick: bool) -> Result<String, String> {
    Ok(match id {
        "all" => experiments::run_all(quick),
        "e1" => experiments::table_k::run(quick),
        "e2" => experiments::fig6::run(quick),
        "e3" => experiments::fig7::run(quick),
        "e4" => experiments::fig8::run(quick),
        "e5" => experiments::table1::run(quick),
        "e6" => experiments::sec4_hypercube::run(quick),
        "e7" => experiments::sec4_convergence::run(quick),
        "e8" => experiments::sec5_fem::run(quick),
        "e9" => experiments::sec61_worked::run(quick),
        "e10" => experiments::sec61_leverage::run(quick),
        "e11" => experiments::sec62_async::run(quick),
        "e12" => experiments::sec7_switching::run(quick),
        "e13" => experiments::validate_desim::run(quick),
        "e14" => experiments::validate_threads::run(quick),
        "e15" => experiments::sec8_scheduling::run(quick),
        "e16" => experiments::sec4_embedding::run(quick),
        other => return Err(format!("unknown experiment `{other}`; e1..e16 or all")),
    })
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let quick = args.switch("quick");
    let id = args.str_or("id", "all").to_lowercase();
    let EvalValue::Report(text) = eval_single(Request::experiment(id).quick(quick).query())? else {
        unreachable!("experiment queries produce reports")
    };
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn single_experiment_runs() {
        let out = run(&parse(&["--id", "e1", "--quick"])).unwrap();
        assert!(out.contains("k("), "{out}");
    }

    #[test]
    fn unknown_id_is_an_error() {
        assert!(run(&parse(&["--id", "e99"])).is_err());
    }
}
