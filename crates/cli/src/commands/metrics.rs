//! `parspeed metrics` — probe a running `parspeed serve` for its
//! observability snapshot over the wire, once or on an interval.

use crate::args::{err, Args, CliError};
use parspeed_engine::jsonl;
use parspeed_server::MetricsSnapshot;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

pub const KEYS: &[&str] = &["addr", "interval"];
pub const SWITCHES: &[&str] = &["human", "trace"];

/// Usage shown by `parspeed help metrics`.
pub const USAGE: &str = "parspeed metrics --addr HOST:PORT [--human] [--trace] [--interval SECS]

Connects to a running `parspeed serve`, sends the serving-only
`{\"op\":\"metrics\"}` request, and prints the reply: the server's
counters (everything `{\"op\":\"stats\"}` reports, plus engine time and
the dedup factor) and one latency-histogram summary per pipeline stage
(queue, window, plan, dedup, cache, exec, route) with p50/p90/p99/p999.

  --addr HOST:PORT  the serve address (printed at startup as
                    `listening on HOST:PORT`)
  --human           render the Prometheus-style text exposition instead
                    of the raw wire JSON (byte-identical to what
                    `parspeed serve --metrics-human` prints on drain)
  --trace           send `{\"op\":\"trace\"}` instead: the last N request
                    traces kept by a server running with --trace N
  --interval SECS   keep watching: re-probe every SECS seconds until the
                    server goes away. Plain mode streams one snapshot
                    line (or exposition block with --human --trace off)
                    per tick; --human redraws the terminal in place.
                    Exits cleanly when the server drains.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let Some(addr) = args.str_opt("addr") else {
        return Err(err("flag `--addr HOST:PORT` is required; try `parspeed help metrics`"));
    };
    let op = if args.switch("trace") { r#"{"op":"trace"}"# } else { r#"{"op":"metrics"}"# };
    let human = args.switch("human") && !args.switch("trace");
    match args.usize_opt("interval")? {
        None => {
            let line = probe(addr, op)?;
            if human {
                return render_human(&line);
            }
            Ok(line)
        }
        Some(0) => Err(err("flag `--interval` must be at least 1 second")),
        Some(secs) => {
            // First probe: a dead address is a hard error, like one-shot
            // mode. After that the server going away ends the watch.
            let mut line = probe(addr, op)?;
            loop {
                let text = if human { render_human(&line)? } else { line };
                if human {
                    // Redraw in place: clear, home, repaint.
                    println!("\x1b[2J\x1b[H{text}");
                } else {
                    println!("{text}");
                }
                std::io::stdout().flush().map_err(|e| err(format!("cannot flush stdout: {e}")))?;
                std::thread::sleep(Duration::from_secs(secs as u64));
                line = match probe(addr, op) {
                    Ok(line) => line,
                    // The server drained between ticks: a clean end to
                    // the watch, not an error.
                    Err(_) => return Ok(format!("server at {addr} went away; watch ended")),
                };
            }
        }
    }
}

/// Renders one metrics wire line as the Prometheus-style exposition.
fn render_human(line: &str) -> Result<String, CliError> {
    let v = jsonl::parse(line).map_err(|e| err(format!("server reply is not valid JSON: {e}")))?;
    MetricsSnapshot::render_human_wire(&v)
        .map(|text| text.trim_end().to_string())
        .ok_or_else(|| err(format!("server reply is not a metrics record: {line}")))
}

/// One request line in, one reply line out.
fn probe(addr: &str, request: &str) -> Result<String, CliError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| err(format!("cannot connect to `{addr}`: {e}")))?;
    stream
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| stream.shutdown(Shutdown::Write))
        .map_err(|e| err(format!("cannot send request: {e}")))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| err(format!("cannot read reply: {e}")))?;
    if reply.trim().is_empty() {
        return Err(err(format!("`{addr}` closed the connection without replying")));
    }
    Ok(reply.trim_end().to_string())
}
