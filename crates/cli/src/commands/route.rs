//! `parspeed route` — the sharded serving tier: a consistent-hash
//! router over a fleet of shard servers, plus the paper-driven fleet
//! sizing (`--predict`).

use crate::args::{err, Args, CliError};
use parspeed_engine::{CheckpointPolicy, CheckpointStore, Engine};
use parspeed_router::predict::{predict, FleetModel, SweepPoint, WorkloadProfile};
use parspeed_router::{BreakerPolicy, RetryPolicy, Router, RouterConfig, SupervisorPolicy};
use parspeed_server::ServerConfig;
use std::io::{BufRead as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

pub const KEYS: &[&str] = &[
    "addr",
    "shards",
    "replicas",
    "window-us",
    "max-batch",
    "workers",
    "queue-depth",
    "cache-capacity",
    "threads",
    "poll-ms",
    "accept-poll-us",
    "deadline-ms",
    "retry-max",
    "backoff-base-ms",
    "backoff-cap-ms",
    "breaker-threshold",
    "probe-after-ms",
    "stall-after-ms",
    "fault-plan",
    "fault-seed",
    "respawn-after-ms",
    "max-respawns",
    "warm-fraction",
    "checkpoint-every",
    "distinct",
    "capacity",
    "max-shards",
    "sweep",
    "io",
    "wbuf-shed-kib",
    "wbuf-stop-kib",
];
pub const SWITCHES: &[&str] = &["predict", "stats"];

/// Usage shown by `parspeed help route`.
pub const USAGE: &str = "parspeed route [--addr HOST:PORT] [--shards N] [--replicas N]
               [--window-us N] [--max-batch N] [--workers N]
               [--queue-depth N] [--cache-capacity N] [--threads N]
               [--poll-ms N] [--accept-poll-us N] [--deadline-ms N]
               [--retry-max N] [--backoff-base-ms N] [--backoff-cap-ms N]
               [--breaker-threshold N] [--probe-after-ms N]
               [--stall-after-ms N] [--fault-plan SPEC] [--fault-seed N]
               [--respawn-after-ms N] [--max-respawns N]
               [--warm-fraction F] [--checkpoint-every N] [--stats]
               [--io event-loop|threads] [--wbuf-shed-kib N]
               [--wbuf-stop-kib N]
       parspeed route --predict --distinct D --capacity C
               [--max-shards N] [--sweep P:SECS,P:SECS,...]

Serving mode: fronts N full shard servers (each its own engine and
result cache) behind one wire-v2 JSONL address. Every request is routed
by consistent-hashing its canonical cache key onto a hash ring, so
duplicated traffic always lands on the same warm shard and the fleet's
aggregate cache holds N times the keys. The wire is `parspeed serve`'s
wire, with router-level differences: `{\"op\":\"topology\"}` answers
the live fleet (members, ring replicas, per-shard resident keys),
`{\"op\":\"metrics\"}` answers the router-scoped record — the
resilience counters plus each shard's breaker state — and
`{\"op\":\"stats\"}`/`trace` refuse with
\"error_kind\":\"unsupported\" (per-shard state; probe a shard).
`{\"op\":\"health\"}` answers with \"shard\":null — backends answer
theirs with their shard id. Prints `routing on HOST:PORT`, serves until
stdin reaches EOF (Ctrl-D), drains every in-flight reply, and exits.

A lost or tripped shard does not lose requests: in-flight idempotent
work fails over around the ring with capped, deterministically jittered
backoff; per-shard circuit breakers open on consecutive failures or a
reply stall and readmit the shard through a half-open probe. Requests
may carry \"deadline_ms\"; an expired budget answers its own slot with
\"error_kind\":\"deadline_exceeded\".

Predict mode (--predict): the paper sizes the fleet. A workload with D
distinct cache keys over C-entry shard caches is the paper's bounded-
memory allocation problem: the memory floor is ceil(D/C) shards, and a
measured shard sweep fits the serving curve T(P) = W/P + gamma*P + beta
onto the synchronous-bus strip machine, which `Query::Optimize`
minimizes — quantization, memory floor, and infeasibility included.

  --addr HOST:PORT     listen address (default 127.0.0.1:0)
  --shards N           fleet size (default 4)
  --replicas N         ring points per shard (default 64)
  --window-us N        per-shard micro-batch window (default 200)
  --max-batch N        per-shard batch bound (default 512)
  --workers N          per-shard batcher workers (default 2)
  --queue-depth N      per-shard submission-queue bound (default 4096)
  --cache-capacity N   per-shard result-cache entries (default 65536)
  --threads N          per-shard engine executor threads (0 = default)
  --poll-ms N          gather/park poll interval in milliseconds
                       (default 50)
  --accept-poll-us N   sleep between accept attempts on the nonblocking
                       listener (default 200; threads frontend only)
  --io MODE            router TCP frontend: `event-loop` (default) or
                       `threads` (see `parspeed help serve`)
  --wbuf-shed-kib N    event loop: write-buffer KiB above which new
                       requests shed as overloaded (default 256)
  --wbuf-stop-kib N    event loop: write-buffer KiB above which the
                       connection stops being read (default 1024)
  --deadline-ms N      default per-request deadline budget applied to
                       requests that carry none (default off)
  --retry-max N        dispatch attempts per request before the slot
                       refuses with the rebalance hint (default 3)
  --backoff-base-ms N  base of the capped exponential retry backoff
                       (default 2)
  --backoff-cap-ms N   backoff ceiling in milliseconds (default 50)
  --breaker-threshold N  consecutive shard failures that open its
                       circuit breaker (default 3)
  --probe-after-ms N   how long an open breaker waits before the
                       half-open readmission probe (default 250)
  --stall-after-ms N   reply silence on a lane that counts as a stall
                       and trips the breaker (default 1000)
  --fault-plan SPEC    install a deterministic fault plan, e.g.
                       `kill:0@3,drop:1@7` — ACTION@REQUEST pairs
                       (kill:S, delay:S:MS, drop:S, dup:S, wedge:S,
                       respawn-deny:S, crashloop:S:N) firing at 1-based
                       request indices
  --fault-seed N       seed for the fault plan's deterministic jitter
                       (default 0); the same seed replays the same trace
  --respawn-after-ms N run the self-healing supervisor: a shard lost
                       this long is respawned — fresh server + engine,
                       readiness probe, cache-warm replay of its hot
                       keys — and readmitted to the ring (default off;
                       a killed shard stays dead)
  --max-respawns N     respawn attempts per shard before permanent
                       eviction (default 3)
  --warm-fraction F    fraction (0..=1) of a shard's hot keys the
                       replacement replays before rejoining (default
                       0.5)
  --checkpoint-every N checkpoint long solves every N convergence
                       checks into a fleet-shared store, so an
                       interrupted solve resumes on its failover shard
                       instead of restarting (default off)
  --stats              print per-shard telemetry after draining
  --predict            predict the optimal fleet size and exit
  --distinct D         distinct cache keys the workload touches
  --capacity C         result-cache entries one shard holds
  --max-shards N       largest fleet to consider (default 16)
  --sweep P:S,...      measured sweep, `shards:seconds` pairs; suffix a
                       pair with `!` (e.g. `3:14.9!`) to mark it
                       degraded — taken with shards lost mid-run — so
                       the fit excludes it; with fewer than three clean
                       sizes the prediction degrades to the memory
                       floor ceil(D/C)";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    if args.switch("predict") {
        return run_predict(args);
    }
    let backend = ServerConfig {
        window: Duration::from_micros(args.usize_or("window-us", 200)? as u64),
        max_batch: args.usize_or("max-batch", 512)?,
        workers: args.usize_or("workers", 2)?,
        queue_depth: args.usize_or("queue-depth", 4096)?,
        ..ServerConfig::default()
    };
    let retry_defaults = RetryPolicy::default();
    let breaker_defaults = BreakerPolicy::default();
    let sup_defaults = SupervisorPolicy::default();
    let warm_fraction = args.f64_or("warm-fraction", sup_defaults.warm_fraction)?;
    if !(0.0..=1.0).contains(&warm_fraction) {
        return Err(err("flag `--warm-fraction` must be between 0 and 1"));
    }
    let supervisor = args.usize_opt("respawn-after-ms")?.map(|ms| SupervisorPolicy {
        respawn_after: Duration::from_millis(ms as u64),
        max_respawns: sup_defaults.max_respawns,
        respawn_backoff: sup_defaults.respawn_backoff,
        warm_fraction,
    });
    let supervisor = match (supervisor, args.usize_opt("max-respawns")?) {
        (Some(s), Some(n)) => Some(SupervisorPolicy { max_respawns: n as u32, ..s }),
        (None, Some(_)) => {
            return Err(err(
                "flag `--max-respawns` needs the supervisor; add `--respawn-after-ms N`",
            ))
        }
        (s, None) => s,
    };
    let config = RouterConfig {
        shards: args.usize_or("shards", 4)?,
        replicas: args.usize_or("replicas", 64)?,
        backend,
        poll: Duration::from_millis(args.usize_or("poll-ms", 50)? as u64),
        accept_poll: Duration::from_micros(args.usize_or("accept-poll-us", 200)? as u64),
        default_deadline: args.usize_opt("deadline-ms")?.map(|ms| Duration::from_millis(ms as u64)),
        retry: RetryPolicy {
            max_attempts: args.usize_or("retry-max", retry_defaults.max_attempts as usize)? as u32,
            backoff_base_ms: args
                .usize_or("backoff-base-ms", retry_defaults.backoff_base_ms as usize)?
                as u64,
            backoff_cap_ms: args
                .usize_or("backoff-cap-ms", retry_defaults.backoff_cap_ms as usize)?
                as u64,
            seed: args.usize_or("fault-seed", retry_defaults.seed as usize)? as u64,
        },
        breaker: BreakerPolicy {
            failure_threshold: args
                .usize_or("breaker-threshold", breaker_defaults.failure_threshold as usize)?
                as u32,
            probe_after: Duration::from_millis(
                args.usize_or("probe-after-ms", breaker_defaults.probe_after.as_millis() as usize)?
                    as u64,
            ),
            stall_after: Duration::from_millis(
                args.usize_or("stall-after-ms", breaker_defaults.stall_after.as_millis() as usize)?
                    as u64,
            ),
        },
        supervisor,
        io: super::serve::io_model(args)?,
        event_loop: super::serve::event_loop_config(args)?,
    };
    for (flag, value) in [
        ("shards", config.shards),
        ("replicas", config.replicas),
        ("max-batch", backend.max_batch),
        ("workers", backend.workers),
        ("queue-depth", backend.queue_depth),
        ("retry-max", config.retry.max_attempts as usize),
        ("breaker-threshold", config.breaker.failure_threshold as usize),
    ] {
        if value == 0 {
            return Err(err(format!("flag `--{flag}` must be at least 1")));
        }
    }
    let plan = super::serve::fault_plan(args)?;
    let cache_capacity =
        args.usize_or("cache-capacity", parspeed_engine::DEFAULT_CACHE_CAPACITY)?;
    let threads = args.usize_or("threads", 0)?;
    // One checkpoint store for the whole fleet: a solve interrupted on
    // a dying shard resumes from its last checkpoint on the failover
    // (or respawned) shard instead of restarting from iteration zero.
    let checkpoints = match args.usize_opt("checkpoint-every")? {
        Some(0) => return Err(err("flag `--checkpoint-every` must be at least 1")),
        Some(every) => Some((Arc::new(CheckpointStore::new(64)), CheckpointPolicy::every(every))),
        None => None,
    };
    let mut router = Router::start_with(config, move |_shard| {
        let mut builder = Engine::builder()
            .cache_capacity(cache_capacity)
            .threads(threads)
            .experiment_runner(crate::commands::experiment::runner);
        if let Some((store, policy)) = &checkpoints {
            builder = builder.checkpoints(Arc::clone(store), *policy);
        }
        Arc::new(builder.build())
    });
    if plan.is_some() {
        router.install_fault_plan(plan);
    }
    let addr = args.str_or("addr", "127.0.0.1:0");
    let local = router.listen(addr).map_err(|e| err(format!("cannot bind `{addr}`: {e}")))?;

    println!("routing on {local} ({} shards)", config.shards);
    println!("serving; close stdin (Ctrl-D) to drain and exit");
    std::io::stdout().flush().map_err(|e| err(format!("cannot flush stdout: {e}")))?;

    for line in std::io::stdin().lock().lines() {
        if line.is_err() {
            break;
        }
    }
    let resilience = router.resilience();
    let stats = router.shutdown();
    if args.switch("stats") {
        let mut out = String::from("drained");
        let snap = resilience.snapshot();
        for (name, value) in snap.fields() {
            if value > 0 {
                out.push_str(&format!("\nresilience {name}: {value}"));
            }
        }
        for (shard, s) in &stats {
            out.push_str(&format!("\nshard {shard}: {s}"));
        }
        Ok(out)
    } else {
        Ok("drained".into())
    }
}

/// `--predict`: profile + optional sweep → the optimizer's fleet size.
fn run_predict(args: &Args) -> Result<String, CliError> {
    let Some(distinct) = args.usize_opt("distinct")? else {
        return Err(err("--predict needs `--distinct D`; try `parspeed help route`"));
    };
    let Some(capacity) = args.usize_opt("capacity")? else {
        return Err(err("--predict needs `--capacity C`; try `parspeed help route`"));
    };
    if distinct == 0 || capacity == 0 {
        return Err(err("--distinct and --capacity must be at least 1"));
    }
    let max_shards = args.usize_or("max-shards", 16)?;
    let sweep = parse_sweep(args.str_opt("sweep").unwrap_or(""))?;
    let degraded = sweep.iter().filter(|p| p.degraded).count();
    let profile = WorkloadProfile { distinct_keys: distinct, shard_capacity: capacity };
    let p = predict(profile, &sweep, max_shards).map_err(|e| err(e.to_string()))?;
    let mut out = format!(
        "predicted shards  {}\nmemory floor      {} ({} distinct keys / {}-entry shard cache)\n\
         model speedup     {:.2}x over one shard",
        p.shards, p.memory_floor, distinct, capacity, p.speedup
    );
    match p.model {
        Some(FleetModel { scatter, coordination, floor }) => out.push_str(&format!(
            "\nfitted curve      T(P) = {scatter:.4}/P + {coordination:.4}*P + {floor:.4}  \
             ({} sweep points, {} degraded excluded)",
            sweep.len() - degraded,
            degraded
        )),
        None => out.push_str(
            "\nfitted curve      none (fewer than three clean feasible sweep sizes); \
             the memory floor decides",
        ),
    }
    Ok(out)
}

/// Parses `--sweep 4:12.3,6:10.1,8:11.0` into sweep points. A trailing
/// `!` on a pair (`3:14.9!`) marks the sample degraded — measured with
/// shards lost mid-run — so the fit excludes it.
fn parse_sweep(text: &str) -> Result<Vec<SweepPoint>, CliError> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|pair| {
            let bad = || err(format!("--sweep: `{pair}` is not `shards:seconds`"));
            let (clean, degraded) = match pair.trim().strip_suffix('!') {
                Some(rest) => (rest, true),
                None => (pair.trim(), false),
            };
            let (p, s) = clean.split_once(':').ok_or_else(bad)?;
            let shards: usize = p.trim().parse().map_err(|_| bad())?;
            let seconds: f64 = s.trim().parse().map_err(|_| bad())?;
            if shards == 0 || !seconds.is_finite() || seconds <= 0.0 {
                return Err(bad());
            }
            Ok(SweepPoint { shards, seconds, degraded })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_pairs_parse_with_the_degraded_suffix() {
        let points = parse_sweep("4:12.3, 6:10.1!, 8:11.0").expect("parses");
        assert_eq!(points.len(), 3);
        assert!(!points[0].degraded && points[1].degraded && !points[2].degraded);
        assert_eq!(points[1].shards, 6);
        assert_eq!(points[1].seconds, 10.1);
    }

    #[test]
    fn malformed_sweep_pairs_refuse() {
        for bad in ["4", "0:1.0", "4:-1.0", "4:NaN", "4:1.0!!", "!4:1.0"] {
            assert!(parse_sweep(bad).is_err(), "{bad} should refuse");
        }
    }
}
