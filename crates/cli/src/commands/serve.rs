//! `parspeed serve` — the concurrent serving frontend: many TCP clients,
//! wire-v2 JSONL framing, cross-client micro-batching into the engine.

use crate::args::{err, Args, CliError};
use parspeed_chaos::FaultPlan;
use parspeed_engine::Engine;
use parspeed_server::{BrownoutConfig, EventLoopConfig, IoModel, Server, ServerConfig};
use std::io::{BufRead as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

pub const KEYS: &[&str] = &[
    "addr",
    "window-us",
    "max-batch",
    "workers",
    "queue-depth",
    "cache-capacity",
    "shards",
    "threads",
    "trace",
    "accept-poll-us",
    "brownout-enter",
    "brownout-exit",
    "fault-plan",
    "fault-seed",
    "io",
    "wbuf-shed-kib",
    "wbuf-stop-kib",
];
pub const SWITCHES: &[&str] = &["stats", "metrics-human", "no-observe"];

/// Usage shown by `parspeed help serve`.
pub const USAGE: &str = "parspeed serve [--addr HOST:PORT] [--window-us N] [--max-batch N]
               [--workers N] [--queue-depth N] [--cache-capacity N]
               [--shards N] [--threads N] [--trace N] [--stats]
               [--metrics-human] [--no-observe] [--accept-poll-us N]
               [--brownout-enter N --brownout-exit N]
               [--fault-plan SPEC] [--fault-seed N]
               [--io event-loop|threads] [--wbuf-shed-kib N]
               [--wbuf-stop-kib N]

Serves the wire-v2 JSONL request schema of `parspeed batch` over TCP to
many simultaneous clients: one JSON request per line in, one JSON
response per non-empty line out, in per-connection order. In-flight
requests from all connections are coalesced by a micro-batching window
into single engine batches, so dedup and the result cache amortize
across clients. Serving-only ops: `{\"op\":\"stats\"}` answers a live
telemetry snapshot, `{\"op\":\"metrics\"}` adds per-stage latency
histograms plus the resilience counters (see `parspeed help metrics`),
`{\"op\":\"trace\"}` answers the recent-request trace ring.

Prints `listening on HOST:PORT` (so `--addr 127.0.0.1:0` works), then
serves until stdin reaches EOF (Ctrl-D), drains — every accepted request
is answered before connections close — and exits. Requests refused by
admission control (full submission queue, draining server, brownout
shedding) are answered in their own reply slot with
\"error_kind\":\"overloaded\", never by disconnecting the client. Any
request line may carry \"deadline_ms\": if the budget expires before the
result is produced the slot answers \"error_kind\":\"deadline_exceeded\"
(see crates/engine/src/README.md, Failure semantics).

  --addr HOST:PORT     listen address (default 127.0.0.1:0)
  --window-us N        micro-batch window in microseconds: how long the
                       first request of a quiet period waits for company
                       (default 200; 0 = dispatch immediately)
  --max-batch N        requests per engine batch; reaching it fires the
                       batch before the window closes (default 512)
  --workers N          batcher worker threads (default 2)
  --queue-depth N      submission-queue bound; beyond it requests answer
                       the overloaded error (default 4096)
  --cache-capacity N   engine result cache size (default 65536)
  --shards N           cache shards (default 16)
  --threads N          engine executor threads; 0 = machine default
  --trace N            keep the last N request traces (default 0 = off);
                       served by `{\"op\":\"trace\"}` and flushed as
                       JSONL to stderr on drain
  --accept-poll-us N   sleep between accept attempts on the nonblocking
                       listener (default 200; threads frontend only)
  --io MODE            TCP frontend: `event-loop` (default) multiplexes
                       every connection on one readiness-driven thread
                       with reusable buffers and write backpressure;
                       `threads` keeps the original two-OS-threads-per-
                       connection frontend
  --wbuf-shed-kib N    event loop: per-connection write-buffer KiB above
                       which new engine-bound requests answer the
                       overloaded error instead of being admitted — the
                       client is not reading replies (default 256)
  --wbuf-stop-kib N    event loop: write-buffer KiB above which the
                       connection stops being read entirely until it
                       drains back below the shed watermark
                       (default 1024)
  --brownout-enter N   queue depth at which brownout degradation starts:
                       cold requests shed as overloaded, cached requests
                       still answer (default off)
  --brownout-exit N    queue depth at which full service resumes; must
                       be below --brownout-enter
  --fault-plan SPEC    install a deterministic fault plan, e.g.
                       `panic@3,delay:0:5@7` — ACTION@REQUEST pairs
                       (kill:S, delay:S:MS, drop:S, dup:S, wedge:S,
                       panic) firing at 1-based request indices
  --fault-seed N       seed for the fault plan's deterministic jitter
                       (default 0); the same seed replays the same trace
  --stats              print the final telemetry snapshot after draining
  --metrics-human      print the final per-stage latency histograms as a
                       Prometheus-style text exposition after draining
  --no-observe         disable stage-latency recording and tracing
                       (counters and the stats op stay on)";

/// Parses the shared `--io` flag (`event-loop` | `threads`).
pub(crate) fn io_model(args: &Args) -> Result<IoModel, CliError> {
    match args.str_or("io", "event-loop") {
        "event-loop" => Ok(IoModel::EventLoop),
        "threads" => Ok(IoModel::Threads),
        other => Err(err(format!("--io must be `event-loop` or `threads`, got `{other}`"))),
    }
}

/// Parses the event-loop watermark flags over the defaults, keeping the
/// shed-below-stop invariant.
pub(crate) fn event_loop_config(args: &Args) -> Result<EventLoopConfig, CliError> {
    let mut cfg = EventLoopConfig::default();
    if let Some(kib) = args.usize_opt("wbuf-shed-kib")? {
        cfg.shed_watermark = kib * 1024;
    }
    if let Some(kib) = args.usize_opt("wbuf-stop-kib")? {
        cfg.stop_watermark = kib * 1024;
    }
    if cfg.shed_watermark == 0 || cfg.stop_watermark < cfg.shed_watermark {
        return Err(err("--wbuf-stop-kib must be at least --wbuf-shed-kib (and shed at least 1)"));
    }
    Ok(cfg)
}

/// Parses the optional brownout watermark pair.
fn brownout_config(args: &Args) -> Result<Option<BrownoutConfig>, CliError> {
    match (args.usize_opt("brownout-enter")?, args.usize_opt("brownout-exit")?) {
        (None, None) => Ok(None),
        (Some(enter), Some(exit)) => {
            if enter == 0 || exit >= enter {
                return Err(err(
                    "--brownout-exit must be below --brownout-enter (and enter at least 1)",
                ));
            }
            Ok(Some(BrownoutConfig { enter, exit }))
        }
        _ => Err(err("brownout needs both --brownout-enter and --brownout-exit")),
    }
}

/// Parses the optional `--fault-plan SPEC` (+ `--fault-seed N`).
pub(crate) fn fault_plan(args: &Args) -> Result<Option<Arc<FaultPlan>>, CliError> {
    let Some(spec) = args.str_opt("fault-plan") else {
        if args.usize_opt("fault-seed")?.is_some() {
            return Err(err("--fault-seed needs --fault-plan"));
        }
        return Ok(None);
    };
    let seed = args.usize_or("fault-seed", 0)? as u64;
    let plan = FaultPlan::parse(spec, seed).map_err(|e| err(format!("--fault-plan: {e}")))?;
    Ok(Some(Arc::new(plan)))
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let config = ServerConfig {
        window: Duration::from_micros(args.usize_or("window-us", 200)? as u64),
        max_batch: args.usize_or("max-batch", 512)?,
        workers: args.usize_or("workers", 2)?,
        queue_depth: args.usize_or("queue-depth", 4096)?,
        observe: !args.switch("no-observe"),
        trace: args.usize_or("trace", 0)?,
        shard: None,
        accept_poll: Duration::from_micros(args.usize_or("accept-poll-us", 200)? as u64),
        brownout: brownout_config(args)?,
        io: io_model(args)?,
        event_loop: event_loop_config(args)?,
    };
    if args.switch("metrics-human") && !config.observe {
        return Err(err("--metrics-human needs stage recording; drop --no-observe"));
    }
    for (flag, value) in [
        ("max-batch", config.max_batch),
        ("workers", config.workers),
        ("queue-depth", config.queue_depth),
    ] {
        if value == 0 {
            return Err(err(format!("flag `--{flag}` must be at least 1")));
        }
    }
    let plan = fault_plan(args)?;
    let engine = Engine::builder()
        .cache_capacity(args.usize_or("cache-capacity", parspeed_engine::DEFAULT_CACHE_CAPACITY)?)
        .cache_shards(args.usize_or("shards", 16)?)
        .threads(args.usize_or("threads", 0)?)
        .experiment_runner(crate::commands::experiment::runner)
        .build();
    let mut server = Server::start(Arc::new(engine), config);
    if plan.is_some() {
        server.install_fault_plan(plan);
    }
    let addr = args.str_or("addr", "127.0.0.1:0");
    let local = server.listen(addr).map_err(|e| err(format!("cannot bind `{addr}`: {e}")))?;

    // Announce the bound address immediately (stdout may be a pipe).
    println!("listening on {local}");
    println!("serving; close stdin (Ctrl-D) to drain and exit");
    std::io::stdout().flush().map_err(|e| err(format!("cannot flush stdout: {e}")))?;

    // Serve until the operator closes stdin; everything interesting
    // happens on the server's own threads.
    for line in std::io::stdin().lock().lines() {
        if line.is_err() {
            break;
        }
    }
    // The obs handle outlives shutdown; grab it first so the final
    // histograms and the trace ring survive the drain. Same for the
    // resilience counters.
    let obs = server.observability();
    let resilience = server.resilience();
    let stats = server.shutdown();
    if obs.trace_capacity() > 0 {
        // Flush the trace ring as JSONL on stderr, oldest first, so a
        // piped stdout stays pure reply lines.
        for event in obs.trace_events() {
            eprintln!("{}", event.to_jsonl());
        }
    }
    let mut out = if args.switch("stats") { format!("drained; {stats}") } else { "drained".into() };
    if args.switch("metrics-human") {
        let snapshot = parspeed_server::MetricsSnapshot {
            stats,
            stages: obs.stage_summaries(),
            resilience: resilience.snapshot(),
            // The server has drained: brownout is necessarily over.
            brownout: false,
            latency: obs.latency_summary(),
        };
        out.push('\n');
        out.push_str(snapshot.render_human().trim_end());
    }
    Ok(out)
}
