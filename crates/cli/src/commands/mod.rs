//! Subcommand dispatch, and the one road from commands to the models:
//! every subcommand builds [`Query`] values and routes them through the
//! process-wide [`Engine`](parspeed_engine::Engine)'s [`Service`] surface,
//! so every entry point is planned, deduplicated, and cached.

use crate::args::{err, Args, CliError};
use parspeed_engine::{EvalOutcome, EvalValue, PointLabel, Query, Request, Response, Service as _};

pub mod batch;
pub mod compare;
pub mod experiment;
pub mod isoeff;
pub mod metrics;
pub mod minsize;
pub mod optimize;
pub mod route;
pub mod serve;
pub mod simulate;
pub mod solve;
pub mod sweep;
pub mod table1;
pub mod threads;

/// Top-level usage text.
pub const USAGE: &str = "parspeed — problem size, parallel architecture, and optimal speedup
(reproduction of Nicol & Willard, ICASE 87-7 / ICPP 1987)

USAGE: parspeed <command> [flags]

COMMANDS:
  optimize    optimal processor count and speedup for one instance
  batch       evaluate a JSONL request batch through the query engine
  serve       serve JSONL batches over TCP with cross-client micro-batching
  route       front a sharded fleet of serves behind a consistent-hash ring
  metrics     probe a running serve for per-stage latency histograms
  compare     every architecture side by side
  sweep       optimal speedup as the problem grows
  isoeff      isoefficiency: problem growth needed to hold efficiency
  minsize     smallest grid that gainfully uses all N processors (Fig 7)
  table1      the paper's closing Table I at a chosen grid size
  simulate    one event-level iteration beside the closed form
  solve       actually solve a Poisson problem (sequential or rayon)
  threads     time the real rayon executor across thread counts
  experiment  regenerate a reproduction experiment (e1..e16 or all)
  help        this text, or `parspeed help <command>` for details

Architectures: hypercube, mesh, sync-bus, async-bus, scheduled-bus, banyan.
Stencils: 5pt, 9pt-box, 9pt-star, 13pt. Shapes: strip, square.";

/// Routes a batch of queries through the process-wide engine's service
/// surface; responses come back in query order. Envelope-level failures
/// (which the CLI cannot produce — it always speaks the current version)
/// surface as command errors.
pub(crate) fn service_call(queries: Vec<Query>) -> Result<Vec<Response>, CliError> {
    let reply = crate::engine().call(&Request::new(queries)).map_err(|e| err(e.to_string()))?;
    Ok(reply.responses)
}

/// One atomic query → its successful value; planner and model errors
/// become command errors carrying the engine's message verbatim.
pub(crate) fn eval_single(query: Query) -> Result<EvalValue, CliError> {
    match service_call(vec![query])?.remove(0) {
        Response::Single(Ok(value)) => Ok(value),
        Response::Single(Err(e)) | Response::Invalid(e) => Err(err(e.to_string())),
        Response::Sweep(_) => Err(err("internal: unexpected multi-point response")),
    }
}

/// One macro-query (sweep, compare) → its expanded points.
pub(crate) fn eval_points(query: Query) -> Result<Vec<(PointLabel, EvalOutcome)>, CliError> {
    match service_call(vec![query])?.remove(0) {
        Response::Sweep(points) => Ok(points),
        Response::Invalid(e) => Err(err(e.to_string())),
        Response::Single(_) => Err(err("internal: unexpected single response")),
    }
}

/// Dispatches a full argument vector (without the program name).
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Ok(USAGE.to_string());
    };
    let rest = &argv[1..];
    // `optimize`, `sweep`, and `simulate` take the architecture through
    // --arch so every command reads uniformly.
    match command.as_str() {
        "help" | "--help" | "-h" => {
            let topic = rest.first().map(String::as_str).unwrap_or("");
            Ok(match topic {
                "optimize" => optimize::USAGE.into(),
                "batch" => batch::USAGE.into(),
                "serve" => serve::USAGE.into(),
                "route" => route::USAGE.into(),
                "metrics" => metrics::USAGE.into(),
                "compare" => compare::USAGE.into(),
                "sweep" => sweep::USAGE.into(),
                "isoeff" => isoeff::USAGE.into(),
                "minsize" => minsize::USAGE.into(),
                "table1" => table1::USAGE.into(),
                "simulate" => simulate::USAGE.into(),
                "solve" => solve::USAGE.into(),
                "threads" => threads::USAGE.into(),
                "experiment" => experiment::USAGE.into(),
                _ => USAGE.into(),
            })
        }
        "optimize" => {
            let (arch, tokens) = split_arch(rest)?;
            let args = Args::parse(&tokens, optimize::KEYS, optimize::SWITCHES)?;
            optimize::run(&arch, &args)
        }
        "sweep" => {
            let (arch, tokens) = split_arch(rest)?;
            let args = Args::parse(&tokens, sweep::KEYS, sweep::SWITCHES)?;
            sweep::run(&arch, &args)
        }
        "simulate" => {
            let (arch, tokens) = split_arch(rest)?;
            let args = Args::parse(&tokens, simulate::KEYS, simulate::SWITCHES)?;
            simulate::run(&arch, &args)
        }
        "isoeff" => {
            let (arch, tokens) = split_arch(rest)?;
            let args = Args::parse(&tokens, isoeff::KEYS, isoeff::SWITCHES)?;
            isoeff::run(&arch, &args)
        }
        "batch" => {
            let args = Args::parse(rest, batch::KEYS, batch::SWITCHES)?;
            batch::run(&args)
        }
        "serve" => {
            let args = Args::parse(rest, serve::KEYS, serve::SWITCHES)?;
            serve::run(&args)
        }
        "route" => {
            let args = Args::parse(rest, route::KEYS, route::SWITCHES)?;
            route::run(&args)
        }
        "metrics" => {
            let args = Args::parse(rest, metrics::KEYS, metrics::SWITCHES)?;
            metrics::run(&args)
        }
        "compare" => {
            let args = Args::parse(rest, compare::KEYS, compare::SWITCHES)?;
            compare::run(&args)
        }
        "minsize" => {
            let args = Args::parse(rest, minsize::KEYS, minsize::SWITCHES)?;
            minsize::run(&args)
        }
        "table1" => {
            let args = Args::parse(rest, table1::KEYS, table1::SWITCHES)?;
            table1::run(&args)
        }
        "solve" => {
            let args = Args::parse(rest, solve::KEYS, solve::SWITCHES)?;
            solve::run(&args)
        }
        "threads" => {
            let args = Args::parse(rest, threads::KEYS, threads::SWITCHES)?;
            threads::run(&args)
        }
        "experiment" => {
            let args = Args::parse(rest, experiment::KEYS, experiment::SWITCHES)?;
            experiment::run(&args)
        }
        other => Err(err(format!("unknown command `{other}`; try `parspeed help`"))),
    }
}

/// Extracts `--arch <name>` from the token stream (required for the
/// architecture-specific commands) and returns the remaining tokens.
fn split_arch(tokens: &[String]) -> Result<(String, Vec<String>), CliError> {
    let mut arch = None;
    let mut rest = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i] == "--arch" {
            let Some(v) = tokens.get(i + 1) else {
                return Err(err("flag `--arch` needs a value"));
            };
            if arch.replace(v.clone()).is_some() {
                return Err(err("flag `--arch` given twice"));
            }
            i += 2;
        } else {
            rest.push(tokens[i].clone());
            i += 1;
        }
    }
    let arch = arch.ok_or_else(|| {
        err(format!(
            "this command needs --arch <name>; one of: {}",
            crate::select::ARCHITECTURES.join(", ")
        ))
    })?;
    Ok((arch, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(tokens: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        dispatch(&argv)
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(d(&[]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn help_topics_resolve() {
        assert!(d(&["help"]).unwrap().contains("COMMANDS"));
        assert!(d(&["help", "sweep"]).unwrap().contains("n-from"));
        assert!(d(&["help", "nonsense"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn arch_commands_require_arch() {
        let e = d(&["optimize"]).unwrap_err();
        assert!(e.0.contains("--arch"));
        assert!(e.0.contains("hypercube"));
    }

    #[test]
    fn end_to_end_optimize() {
        let out = d(&["optimize", "--arch", "sync-bus", "--n", "128", "--procs", "16"]).unwrap();
        assert!(out.contains("optimal processors"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(d(&["frobnicate"]).is_err());
    }

    #[test]
    fn route_predict_sizes_the_fleet_from_a_sweep() {
        let out = d(&[
            "route",
            "--predict",
            "--distinct",
            "144",
            "--capacity",
            "36",
            "--max-shards",
            "8",
            "--sweep",
            "4:10.5,6:9.2,8:9.6",
        ])
        .unwrap();
        assert!(out.contains("predicted shards  6"), "{out}");
        assert!(out.contains("memory floor      4"), "{out}");
        assert!(out.contains("fitted curve"), "{out}");
    }

    #[test]
    fn route_predict_without_a_sweep_answers_the_memory_floor() {
        let out = d(&["route", "--predict", "--distinct", "144", "--capacity", "36"]).unwrap();
        assert!(out.contains("predicted shards  4"), "{out}");
        assert!(out.contains("the memory floor decides"), "{out}");
    }

    #[test]
    fn route_predict_rejects_malformed_sweeps() {
        let e =
            d(&["route", "--predict", "--distinct", "64", "--capacity", "16", "--sweep", "4;1.0"])
                .unwrap_err();
        assert!(e.0.contains("shards:seconds"), "{}", e.0);
    }

    #[test]
    fn arch_flag_position_is_free() {
        let a = d(&["simulate", "--n", "64", "--arch", "mesh", "--procs", "4"]).unwrap();
        let b = d(&["simulate", "--arch", "mesh", "--n", "64", "--procs", "4"]).unwrap();
        assert_eq!(a, b);
    }
}
