//! `parspeed compare` — every architecture side by side on one instance.
//!
//! One [`Query::Compare`](parspeed_engine::Query::Compare) macro-query:
//! the engine expands it into six optimizer atoms that dedup against any
//! other optimize traffic in the process.

use crate::args::{Args, CliError};
use crate::commands::eval_points;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{EvalValue, Request};

pub const KEYS: &[&str] =
    &["n", "stencil", "shape", "procs", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help compare`.
pub const USAGE: &str = "parspeed compare [--n 256] [--stencil 5pt] [--shape square] [--procs N]
    [machine overrides]

Optimizes the same problem on every architecture class and tabulates the
optimal processor counts and speedups — the paper's Table I, for your
instance instead of asymptotically.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let n = args.usize_or("n", 256)?;
    let stencil_spec = select::stencil_spec(args.str_or("stencil", "5pt"))?;
    let stencil = stencil_spec.to_stencil().expect("CLI stencil names are catalog stencils");
    let shape_key = select::shape_key(args.str_or("shape", "square"))?;
    let shape = shape_key.to_shape();

    let mut builder = Request::compare(n)
        .machine(select::machine_spec(args)?)
        .stencil(stencil_spec)
        .shape(shape_key);
    if let Some(p) = args.usize_opt("procs")? {
        builder = builder.procs(p);
    }
    let points = eval_points(builder.query())?;

    let mut t = Table::new(
        format!("All architectures · n={n} · {} · {}", stencil.name(), shape.name()),
        &["architecture", "processors", "cycle time", "speedup", "efficiency"],
    );
    for (label, outcome) in &points {
        // Display names come from the models (the labels carry the short
        // wire names).
        let model = select::arch_model(label.arch, &m)?;
        let EvalValue::Optimum { processors, cycle_time, speedup, efficiency, .. } =
            outcome.as_ref().expect("no memory budget, cannot be infeasible")
        else {
            unreachable!("compare points are optimizer runs")
        };
        t.row(vec![
            model.name().into(),
            processors.to_string(),
            format!("{cycle_time:.3e} s"),
            format!("{speedup:.2}"),
            format!("{:.1}%", efficiency * 100.0),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_every_architecture() {
        let toks: Vec<String> = ["--n", "128"].iter().map(|t| t.to_string()).collect();
        let args = Args::parse(&toks, KEYS, SWITCHES).unwrap();
        let out = run(&args).unwrap();
        for name in [
            "hypercube",
            "mesh",
            "synchronous bus",
            "asynchronous bus",
            "scheduled bus",
            "switching network",
        ] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn hypercube_dominates_the_bus_on_large_grids() {
        let args = Args::parse(&[], KEYS, SWITCHES).unwrap();
        let out = run(&args).unwrap();
        // The hypercube row should show a larger speedup than the sync bus
        // row — crude but effective: parse the speedup column.
        let speedup = |needle: &str| -> f64 {
            out.lines()
                .find(|l| l.contains(needle))
                .and_then(|l| l.split_whitespace().rev().nth(1).map(|s| s.parse().unwrap()))
                .unwrap()
        };
        assert!(speedup("hypercube") > speedup("synchronous bus"), "{out}");
    }
}
