//! `parspeed compare` — every architecture side by side on one instance.

use crate::args::{Args, CliError};
use crate::select;
use parspeed_bench::report::Table;
use parspeed_core::{ProcessorBudget, Workload};

pub const KEYS: &[&str] =
    &["n", "stencil", "shape", "procs", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help compare`.
pub const USAGE: &str = "parspeed compare [--n 256] [--stencil 5pt] [--shape square] [--procs N]
    [machine overrides]

Optimizes the same problem on every architecture class and tabulates the
optimal processor counts and speedups — the paper's Table I, for your
instance instead of asymptotically.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let n = args.usize_or("n", 256)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let shape = select::shape(args.str_or("shape", "square"))?;
    let w = Workload::new(n, &stencil, shape);
    let budget = match args.usize_opt("procs")? {
        Some(p) => ProcessorBudget::Limited(p),
        None => ProcessorBudget::Unlimited,
    };

    let mut t = Table::new(
        format!("All architectures · n={n} · {} · {}", stencil.name(), shape.name()),
        &["architecture", "processors", "cycle time", "speedup", "efficiency"],
    );
    for name in select::ARCHITECTURES {
        let model = select::arch_model(name, &m)?;
        let opt = parspeed_core::optimize_constrained(model.as_ref(), &w, budget, None)
            .expect("no memory budget, cannot be infeasible");
        t.row(vec![
            model.name().into(),
            opt.processors.to_string(),
            format!("{:.3e} s", opt.cycle_time),
            format!("{:.2}", opt.speedup),
            format!("{:.1}%", opt.efficiency * 100.0),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_every_architecture() {
        let toks: Vec<String> = ["--n", "128"].iter().map(|t| t.to_string()).collect();
        let args = Args::parse(&toks, KEYS, SWITCHES).unwrap();
        let out = run(&args).unwrap();
        for name in [
            "hypercube",
            "mesh",
            "synchronous bus",
            "asynchronous bus",
            "scheduled bus",
            "switching network",
        ] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn hypercube_dominates_the_bus_on_large_grids() {
        let args = Args::parse(&[], KEYS, SWITCHES).unwrap();
        let out = run(&args).unwrap();
        // The hypercube row should show a larger speedup than the sync bus
        // row — crude but effective: parse the speedup column.
        let speedup = |needle: &str| -> f64 {
            out.lines()
                .find(|l| l.contains(needle))
                .and_then(|l| l.split_whitespace().rev().nth(1).map(|s| s.parse().unwrap()))
                .unwrap()
        };
        assert!(speedup("hypercube") > speedup("synchronous bus"), "{out}");
    }
}
