//! `parspeed simulate` — one event-level iteration beside the closed form.

use crate::args::{Args, CliError};
use crate::select;
use parspeed_arch::{
    AsyncBusSim, BanyanSim, IterationSpec, Mesh2dSim, NeighborExchangeSim, ScheduledBusSim,
    SyncBusSim,
};
use parspeed_bench::report::Table;
use parspeed_core::Workload;
use parspeed_grid::{Decomposition, RectDecomposition, StripDecomposition};
use parspeed_stencil::PartitionShape;

pub const KEYS: &[&str] =
    &["n", "stencil", "shape", "procs", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help simulate`.
pub const USAGE: &str = "parspeed simulate --arch <name> [--n 256] [--procs 16] [--stencil 5pt]
    [--shape strip] [machine overrides]

Simulates one iteration event by event on the chosen machine (real
decomposition, exact halo volumes, emergent contention) and prints the
cycle time next to the analytic model's prediction. Besides the six model
architectures, `--arch mesh2d` runs the XY-routed store-and-forward mesh,
where box-stencil corner traffic pays real transit.";

/// Runs the subcommand.
pub fn run(arch: &str, args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let n = args.usize_or("n", 256)?;
    let p = args.usize_or("procs", 16)?;
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let shape = select::shape(args.str_or("shape", "strip"))?;
    let model = select::arch_model(arch, &m)?;

    let decomp: Box<dyn Decomposition> = match shape {
        PartitionShape::Strip => {
            if p > n {
                return Err(CliError(format!("{p} strips need a grid of at least {p} rows")));
            }
            Box::new(StripDecomposition::new(n, p))
        }
        PartitionShape::Square => RectDecomposition::near_square(n, p)
            .map(|d| Box::new(d) as Box<dyn Decomposition>)
            .ok_or_else(|| {
                CliError(format!(
                    "no near-square decomposition of a {n}×{n} grid into {p} blocks; \
                     try a processor count with a factor dividing {n}"
                ))
            })?,
    };
    let spec = IterationSpec::new(decomp.as_ref(), &stencil);

    let report = match arch {
        "hypercube" => NeighborExchangeSim::hypercube(&m).simulate(&spec),
        "mesh" => NeighborExchangeSim::mesh(&m).simulate(&spec),
        "mesh2d" => Mesh2dSim::new(&m).simulate(&spec).cycle,
        "sync-bus" => SyncBusSim::new(&m).simulate(&spec),
        "async-bus" => AsyncBusSim::new(&m).simulate(&spec),
        "scheduled-bus" => ScheduledBusSim::new(&m).simulate(&spec),
        "banyan" => BanyanSim::new(&m).simulate(&spec).cycle,
        other => return Err(CliError(format!("no simulator for `{other}`"))),
    };

    let w = Workload::new(n, &stencil, shape);
    let predicted = model.cycle_time(&w, w.points() / p as f64);
    let mut t = Table::new(
        format!("{} · n={n} · P={p} · {} · {}", model.name(), stencil.name(), shape.name()),
        &["quantity", "value"],
    );
    t.row(vec!["simulated cycle time".into(), format!("{:.3e} s", report.cycle_time)]);
    t.row(vec!["model cycle time".into(), format!("{:.3e} s", predicted)]);
    t.row(vec![
        "relative difference".into(),
        format!("{:.1}%", 100.0 * (report.cycle_time - predicted).abs() / predicted),
    ]);
    t.row(vec!["longest pure compute".into(), format!("{:.3e} s", report.max_compute)]);
    t.row(vec!["communication fraction".into(), format!("{:.1}%", 100.0 * report.comm_fraction())]);
    t.row(vec![
        "simulated speedup".into(),
        format!("{:.2}", model.seq_time(&w) / report.cycle_time),
    ]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn every_architecture_simulates() {
        for arch in crate::select::ARCHITECTURES.iter().chain(&["mesh2d"]) {
            let out = run(arch, &parse(&["--n", "64", "--procs", "4"])).unwrap();
            assert!(out.contains("simulated cycle time"), "{arch}: {out}");
        }
    }

    #[test]
    fn hypercube_strips_track_the_model_closely() {
        let out = run("hypercube", &parse(&["--n", "256", "--procs", "8"])).unwrap();
        let diff_line = out.lines().find(|l| l.contains("relative difference")).unwrap();
        let pct: f64 =
            diff_line.split_whitespace().last().unwrap().trim_end_matches('%').parse().unwrap();
        assert!(pct < 5.0, "{out}");
    }

    #[test]
    fn impossible_decompositions_error_cleanly() {
        // More strips than rows.
        assert!(run("hypercube", &parse(&["--n", "8", "--procs", "16"])).is_err());
        // 97 blocks on an 8-grid: the only factorization 97×1 exceeds the
        // rows, so no near-square decomposition exists.
        let e = run("sync-bus", &parse(&["--n", "8", "--procs", "97", "--shape", "square"]));
        assert!(e.is_err());
    }

    #[test]
    fn prime_grids_fall_back_to_bands() {
        // 13 blocks on a prime 97-grid: near_square degrades to 13×1 bands
        // rather than failing.
        let out = run("sync-bus", &parse(&["--n", "97", "--procs", "13", "--shape", "square"]));
        assert!(out.is_ok());
    }
}
