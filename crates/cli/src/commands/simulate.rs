//! `parspeed simulate` — one event-level iteration beside the closed form,
//! served through the engine: simulations are deterministic, so they
//! canonicalize, dedup, and cache exactly like analytic queries.

use crate::args::{Args, CliError};
use crate::commands::eval_single;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{EvalValue, Request, SimArchKind};

pub const KEYS: &[&str] =
    &["n", "stencil", "shape", "procs", "tfp", "b", "c", "alpha", "beta", "packet", "w"];
pub const SWITCHES: &[&str] = &["flex32"];

/// Usage shown by `parspeed help simulate`.
pub const USAGE: &str = "parspeed simulate --arch <name> [--n 256] [--procs 16] [--stencil 5pt]
    [--shape strip] [machine overrides]

Simulates one iteration event by event on the chosen machine (real
decomposition, exact halo volumes, emergent contention) and prints the
cycle time next to the analytic model's prediction. Besides the six model
architectures, `--arch mesh2d` runs the XY-routed store-and-forward mesh,
where box-stencil corner traffic pays real transit.";

/// Runs the subcommand.
pub fn run(arch: &str, args: &Args) -> Result<String, CliError> {
    let m = select::machine(args)?;
    let n = args.usize_or("n", 256)?;
    let p = args.usize_or("procs", 16)?;
    let stencil_spec = select::stencil_spec(args.str_or("stencil", "5pt"))?;
    let stencil = stencil_spec.to_stencil().expect("CLI stencil names are catalog stencils");
    let shape_key = select::shape_key(args.str_or("shape", "strip"))?;
    let shape = shape_key.to_shape();
    let model = select::arch_model(arch, &m)?;
    let sim_arch = SimArchKind::parse(arch).map_err(CliError)?;

    let query = Request::simulate(sim_arch, n, p)
        .machine(select::machine_spec(args)?)
        .stencil(stencil_spec)
        .shape(shape_key)
        .query();
    let EvalValue::Simulate { cycle_time, max_compute, comm_fraction, predicted, seq_time } =
        eval_single(query)?
    else {
        unreachable!("simulate queries produce simulate values")
    };

    let mut t = Table::new(
        format!("{} · n={n} · P={p} · {} · {}", model.name(), stencil.name(), shape.name()),
        &["quantity", "value"],
    );
    t.row(vec!["simulated cycle time".into(), format!("{cycle_time:.3e} s")]);
    t.row(vec!["model cycle time".into(), format!("{predicted:.3e} s")]);
    t.row(vec![
        "relative difference".into(),
        format!("{:.1}%", 100.0 * (cycle_time - predicted).abs() / predicted),
    ]);
    t.row(vec!["longest pure compute".into(), format!("{max_compute:.3e} s")]);
    t.row(vec!["communication fraction".into(), format!("{:.1}%", 100.0 * comm_fraction)]);
    t.row(vec!["simulated speedup".into(), format!("{:.2}", seq_time / cycle_time)]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn every_architecture_simulates() {
        for arch in crate::select::ARCHITECTURES.iter().chain(&["mesh2d"]) {
            let out = run(arch, &parse(&["--n", "64", "--procs", "4"])).unwrap();
            assert!(out.contains("simulated cycle time"), "{arch}: {out}");
        }
    }

    #[test]
    fn hypercube_strips_track_the_model_closely() {
        let out = run("hypercube", &parse(&["--n", "256", "--procs", "8"])).unwrap();
        let diff_line = out.lines().find(|l| l.contains("relative difference")).unwrap();
        let pct: f64 =
            diff_line.split_whitespace().last().unwrap().trim_end_matches('%').parse().unwrap();
        assert!(pct < 5.0, "{out}");
    }

    #[test]
    fn impossible_decompositions_error_cleanly() {
        // More strips than rows.
        assert!(run("hypercube", &parse(&["--n", "8", "--procs", "16"])).is_err());
        // 97 blocks on an 8-grid: the only factorization 97×1 exceeds the
        // rows, so no near-square decomposition exists.
        let e = run("sync-bus", &parse(&["--n", "8", "--procs", "97", "--shape", "square"]));
        assert!(e.is_err());
    }

    #[test]
    fn prime_grids_fall_back_to_bands() {
        // 13 blocks on a prime 97-grid: near_square degrades to 13×1 bands
        // rather than failing.
        let out = run("sync-bus", &parse(&["--n", "97", "--procs", "13", "--shape", "square"]));
        assert!(out.is_ok());
    }
}
