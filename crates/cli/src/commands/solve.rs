//! `parspeed solve` — actually solve a Poisson problem with the numerical
//! substrate, served through the engine: solves are deterministic (the
//! partitioned executor is bit-identical to sequential Jacobi), so
//! repeated solves dedup and cache like any other query.

use crate::args::{Args, CliError};
use crate::commands::eval_single;
use crate::select;
use parspeed_bench::report::Table;
use parspeed_engine::{CheckSpec, EvalValue, Request, SolverKind};

pub const KEYS: &[&str] =
    &["n", "solver", "tol", "stencil", "partitions", "max-iters", "check-policy"];
pub const SWITCHES: &[&str] = &[];

/// Usage shown by `parspeed help solve`.
pub const USAGE: &str = "parspeed solve [--n 63] [--solver jacobi|sor|rbsor|cg|multigrid|parallel]
    [--tol 1e-8] [--stencil 5pt] [--partitions 4] [--max-iters 200000]
    [--check-policy every:N|geometric|geometric:start,factor,max]

Solves the manufactured sin·sin Poisson problem on an n×n grid and reports
iterations, convergence, and the exact-solution error. `parallel` runs the
rayon-partitioned Jacobi executor with --partitions strips (bit-identical
to sequential Jacobi); `multigrid` needs n = 2^k − 1. --check-policy sets
the convergence-check schedule for jacobi/sor/parallel (default: every
iteration; geometric for parallel) — sparse schedules also widen the
temporal-tiling and deep-halo blocks the solver runs between checks.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let n = args.usize_or("n", 63)?;
    let tol = args.f64_or("tol", 1e-8)?;
    let max_iters = args.usize_or("max-iters", 200_000)?;
    let solver = SolverKind::parse(args.str_or("solver", "jacobi")).map_err(CliError)?;
    let parts = args.usize_or("partitions", 4)?.clamp(1, n.max(1));

    let mut builder = Request::solve(n)
        .solver(solver)
        .tol(tol)
        .stencil(select::stencil_spec(args.str_or("stencil", "5pt"))?)
        .partitions(parts)
        .max_iters(max_iters);
    if let Some(policy) = args.str_opt("check-policy") {
        builder = builder.check_policy(CheckSpec::parse(policy).map_err(CliError)?);
    }
    let query = builder.query();
    let EvalValue::Solve {
        converged, iterations, final_diff, max_error, global_reductions, ..
    } = eval_single(query)?
    else {
        unreachable!("solve queries produce solve values")
    };

    let label = match solver {
        SolverKind::Jacobi => "point Jacobi".to_string(),
        SolverKind::Sor => "SOR (optimal ω)".to_string(),
        SolverKind::RedBlack => "red-black SOR".to_string(),
        SolverKind::Cg => format!(
            "conjugate gradient ({} global reductions)",
            global_reductions.expect("cg reports reductions")
        ),
        SolverKind::Multigrid => "geometric multigrid V-cycles".to_string(),
        SolverKind::Parallel => format!("partitioned Jacobi ({parts} strips, rayon)"),
    };

    let mut t = Table::new(format!("{label} · n={n} · tol={tol:.0e}"), &["quantity", "value"]);
    t.row(vec!["converged".into(), if converged { "yes" } else { "no" }.into()]);
    t.row(vec!["iterations".into(), iterations.to_string()]);
    t.row(vec!["final update diff".into(), format!("{final_diff:.3e}")]);
    t.row(vec!["max error vs exact".into(), format!("{max_error:.3e}")]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn all_solvers_converge_on_a_small_grid() {
        for solver in ["jacobi", "sor", "rbsor", "cg", "multigrid", "parallel"] {
            let out = run(&parse(&["--n", "31", "--solver", solver, "--tol", "1e-9"])).unwrap();
            assert!(out.contains("yes"), "{solver} did not converge: {out}");
        }
    }

    #[test]
    fn multigrid_rejects_bad_sides() {
        let e = run(&parse(&["--n", "64", "--solver", "multigrid"])).unwrap_err();
        assert!(e.0.contains("2^k"));
    }

    #[test]
    fn sor_beats_jacobi_on_iterations() {
        let iters = |solver: &str| -> usize {
            let out = run(&parse(&["--n", "31", "--solver", solver])).unwrap();
            out.lines()
                .find(|l| l.contains("iterations"))
                .and_then(|l| l.split_whitespace().last().unwrap().parse().ok())
                .unwrap()
        };
        assert!(iters("sor") < iters("jacobi") / 4);
    }

    #[test]
    fn unknown_solver_is_an_error() {
        assert!(run(&parse(&["--solver", "adi"])).is_err());
    }

    #[test]
    fn check_policy_converges_with_the_same_answer() {
        let iters_and_err = |extra: &[&str]| {
            let mut toks = vec!["--n", "31", "--solver", "jacobi", "--tol", "1e-9"];
            toks.extend_from_slice(extra);
            let out = run(&parse(&toks)).unwrap();
            assert!(out.contains("yes"), "{out}");
            out.lines().find(|l| l.contains("max error")).unwrap().to_string()
        };
        // Lazy schedules overshoot a little but land on the same solution
        // quality; the error row is identical to three printed digits.
        let eager = iters_and_err(&[]);
        let lazy = iters_and_err(&["--check-policy", "geometric"]);
        assert_eq!(
            eager.split_whitespace().last().unwrap(),
            lazy.split_whitespace().last().unwrap()
        );
    }

    #[test]
    fn bad_check_policy_is_an_error() {
        let e = run(&parse(&["--check-policy", "fibonacci"])).unwrap_err();
        assert!(e.0.contains("check policy"), "{}", e.0);
    }
}
