//! `parspeed solve` — actually solve a Poisson problem with the numerical
//! substrate (sequential solvers or the rayon-partitioned executor).

use crate::args::{Args, CliError};
use crate::select;
use parspeed_bench::report::Table;
use parspeed_exec::{CheckPolicy, PartitionedJacobi};
use parspeed_grid::StripDecomposition;
use parspeed_solver::{
    CgSolver, JacobiSolver, Manufactured, MultigridSolver, PoissonProblem, RedBlackSolver,
    SolveStatus, SorSolver,
};

pub const KEYS: &[&str] = &["n", "solver", "tol", "stencil", "partitions", "max-iters"];
pub const SWITCHES: &[&str] = &[];

/// Usage shown by `parspeed help solve`.
pub const USAGE: &str = "parspeed solve [--n 63] [--solver jacobi|sor|rbsor|cg|multigrid|parallel]
    [--tol 1e-8] [--stencil 5pt] [--partitions 4] [--max-iters 200000]

Solves the manufactured sin·sin Poisson problem on an n×n grid and reports
iterations, convergence, and the exact-solution error. `parallel` runs the
rayon-partitioned Jacobi executor with --partitions strips (bit-identical
to sequential Jacobi); `multigrid` needs n = 2^k − 1.";

fn error_vs_exact(problem: &PoissonProblem, u: &parspeed_grid::Grid2D) -> f64 {
    let exact = Manufactured::SinSin;
    let h = problem.h();
    let mut worst = 0.0f64;
    for r in 0..problem.n() {
        for c in 0..problem.n() {
            let x = (c as f64 + 1.0) * h;
            let y = (r as f64 + 1.0) * h;
            worst = worst.max((u.get(r, c) - exact.u(x, y)).abs());
        }
    }
    worst
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let n = args.usize_or("n", 63)?;
    let tol = args.f64_or("tol", 1e-8)?;
    let max_iters = args.usize_or("max-iters", 200_000)?;
    let solver_name = args.str_or("solver", "jacobi");
    let stencil = select::stencil(args.str_or("stencil", "5pt"))?;
    let problem = PoissonProblem::manufactured(n, Manufactured::SinSin);

    let (u, status, label): (parspeed_grid::Grid2D, SolveStatus, String) = match solver_name {
        "jacobi" => {
            let (u, s) =
                JacobiSolver { tol, max_iters, ..Default::default() }.solve(&problem, &stencil);
            (u, s, "point Jacobi".into())
        }
        "sor" => {
            let (u, s) =
                SorSolver { max_iters, ..SorSolver::optimal(n, tol) }.solve(&problem, &stencil);
            (u, s, "SOR (optimal ω)".into())
        }
        "rbsor" => {
            let (u, s) =
                RedBlackSolver { max_iters, ..RedBlackSolver::optimal(n, tol) }.solve(&problem);
            (u, s, "red-black SOR".into())
        }
        "cg" => {
            let (u, s, stats) = CgSolver { tol, max_iters }.solve(&problem);
            let label =
                format!("conjugate gradient ({} global reductions)", stats.global_reductions);
            (u, s, label)
        }
        "multigrid" => {
            if !parspeed_solver::multigrid_valid_side(n) {
                return Err(CliError(format!(
                    "multigrid needs n = 2^k − 1 (e.g. 63, 127, 255); got {n}"
                )));
            }
            let (u, s) =
                MultigridSolver { tol, max_cycles: max_iters.min(1000), ..Default::default() }
                    .solve(&problem);
            (u, s, "geometric multigrid V-cycles".into())
        }
        "parallel" => {
            let parts = args.usize_or("partitions", 4)?.clamp(1, n);
            let d = StripDecomposition::new(n, parts);
            let mut exec = PartitionedJacobi::new(&problem, &stencil, &d);
            let run = exec.solve(tol, max_iters, CheckPolicy::geometric());
            let status = SolveStatus {
                converged: run.converged,
                iterations: run.iterations,
                final_diff: run.final_diff,
            };
            (exec.solution(), status, format!("partitioned Jacobi ({parts} strips, rayon)"))
        }
        other => {
            return Err(CliError(format!(
                "unknown solver `{other}`; one of: jacobi, sor, rbsor, cg, multigrid, parallel"
            )))
        }
    };

    let mut t = Table::new(format!("{label} · n={n} · tol={tol:.0e}"), &["quantity", "value"]);
    t.row(vec!["converged".into(), if status.converged { "yes" } else { "no" }.into()]);
    t.row(vec!["iterations".into(), status.iterations.to_string()]);
    t.row(vec!["final update diff".into(), format!("{:.3e}", status.final_diff)]);
    t.row(vec!["max error vs exact".into(), format!("{:.3e}", error_vs_exact(&problem, &u))]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        Args::parse(&toks, KEYS, SWITCHES).unwrap()
    }

    #[test]
    fn all_solvers_converge_on_a_small_grid() {
        for solver in ["jacobi", "sor", "rbsor", "cg", "multigrid", "parallel"] {
            let out = run(&parse(&["--n", "31", "--solver", solver, "--tol", "1e-9"])).unwrap();
            assert!(out.contains("yes"), "{solver} did not converge: {out}");
        }
    }

    #[test]
    fn multigrid_rejects_bad_sides() {
        let e = run(&parse(&["--n", "64", "--solver", "multigrid"])).unwrap_err();
        assert!(e.0.contains("2^k"));
    }

    #[test]
    fn sor_beats_jacobi_on_iterations() {
        let iters = |solver: &str| -> usize {
            let out = run(&parse(&["--n", "31", "--solver", solver])).unwrap();
            out.lines()
                .find(|l| l.contains("iterations"))
                .and_then(|l| l.split_whitespace().last().unwrap().parse().ok())
                .unwrap()
        };
        assert!(iters("sor") < iters("jacobi") / 4);
    }

    #[test]
    fn unknown_solver_is_an_error() {
        assert!(run(&parse(&["--solver", "adi"])).is_err());
    }
}
