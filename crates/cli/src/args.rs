//! A small `--key value` argument parser.
//!
//! Commands declare the flags they accept; anything else is an error that
//! names the valid set, so typos fail loudly instead of silently falling
//! back to defaults. Values never start with `--` (negative numbers are
//! fine: `-1.5` parses as a value).

use std::collections::BTreeMap;

/// A command-line parsing or validation error, with the message shown to
/// the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor for error messages.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed `--key value` / `--flag` arguments for one command.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `tokens` against the allowed `keys` (value flags) and
    /// `switches` (boolean flags).
    pub fn parse(tokens: &[String], keys: &[&str], switches: &[&str]) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut i = 0usize;
        while i < tokens.len() {
            let tok = &tokens[i];
            let Some(name) = tok.strip_prefix("--") else {
                return Err(err(format!("unexpected argument `{tok}` (flags start with --)")));
            };
            if switches.contains(&name) {
                out.flags.push(name.to_string());
                i += 1;
                continue;
            }
            if !keys.contains(&name) {
                let mut all: Vec<&str> = keys.iter().chain(switches.iter()).copied().collect();
                all.sort_unstable();
                return Err(err(format!(
                    "unknown flag `--{name}`; valid flags: {}",
                    all.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", ")
                )));
            }
            let Some(value) = tokens.get(i + 1) else {
                return Err(err(format!("flag `--{name}` needs a value")));
            };
            if value.starts_with("--") {
                return Err(err(format!("flag `--{name}` needs a value, got `{value}`")));
            }
            if out.values.insert(name.to_string(), value.clone()).is_some() {
                return Err(err(format!("flag `--{name}` given twice")));
            }
            i += 2;
        }
        Ok(out)
    }

    /// Whether a boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value with a default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.values.get(name).map(String::as_str).unwrap_or(default)
    }

    /// `usize` value with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("flag `--{name}`: `{v}` is not a positive integer"))),
        }
    }

    /// Optional string value (`None` when the flag was not given).
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Optional `usize` value.
    pub fn usize_opt(&self, name: &str) -> Result<Option<usize>, CliError> {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| err(format!("flag `--{name}`: `{v}` is not a positive integer")))
            })
            .transpose()
    }

    /// `f64` value with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| err(format!("flag `--{name}`: `{v}` is not a number")))
            }
        }
    }

    /// Optional `f64` value.
    pub fn f64_opt(&self, name: &str) -> Result<Option<f64>, CliError> {
        self.values
            .get(name)
            .map(|v| v.parse().map_err(|_| err(format!("flag `--{name}`: `{v}` is not a number"))))
            .transpose()
    }

    /// Comma-separated list of `usize` with a default.
    pub fn usize_list_or(&self, name: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
        match self.values.get(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim().parse().map_err(|_| {
                        err(format!("flag `--{name}`: `{s}` is not a positive integer"))
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(&toks(&["--n", "256", "--quick"]), &["n"], &["quick"]).unwrap();
        assert_eq!(a.usize_or("n", 64).unwrap(), 256);
        assert!(a.switch("quick"));
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(&[], &["n", "tol"], &[]).unwrap();
        assert_eq!(a.usize_or("n", 64).unwrap(), 64);
        assert_eq!(a.f64_or("tol", 1e-8).unwrap(), 1e-8);
        assert_eq!(a.str_or("arch", "sync-bus"), "sync-bus");
    }

    #[test]
    fn rejects_unknown_flags_and_names_the_valid_set() {
        let e = Args::parse(&toks(&["--grid", "9"]), &["n"], &["quick"]).unwrap_err();
        assert!(e.0.contains("--grid"));
        assert!(e.0.contains("--n"));
        assert!(e.0.contains("--quick"));
    }

    #[test]
    fn rejects_missing_and_double_values() {
        assert!(Args::parse(&toks(&["--n"]), &["n"], &[]).is_err());
        assert!(Args::parse(&toks(&["--n", "--quick"]), &["n"], &["quick"]).is_err());
        assert!(Args::parse(&toks(&["--n", "1", "--n", "2"]), &["n"], &[]).is_err());
    }

    #[test]
    fn rejects_bad_numbers_with_the_flag_name() {
        let a = Args::parse(&toks(&["--n", "abc"]), &["n"], &[]).unwrap();
        let e = a.usize_or("n", 1).unwrap_err();
        assert!(e.0.contains("--n") && e.0.contains("abc"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::parse(&toks(&["--shift", "-1.5"]), &["shift"], &[]).unwrap();
        assert_eq!(a.f64_or("shift", 0.0).unwrap(), -1.5);
    }

    #[test]
    fn parses_lists() {
        let a = Args::parse(&toks(&["--threads", "1,2, 4,8"]), &["threads"], &[]).unwrap();
        assert_eq!(a.usize_list_or("threads", &[1]).unwrap(), vec![1, 2, 4, 8]);
        let b = Args::parse(&[], &["threads"], &[]).unwrap();
        assert_eq!(b.usize_list_or("threads", &[1, 2]).unwrap(), vec![1, 2]);
    }

    #[test]
    fn rejects_positional_arguments() {
        let e = Args::parse(&toks(&["256"]), &["n"], &[]).unwrap_err();
        assert!(e.0.contains("256"));
    }
}
