//! End-to-end observability: spawn the real `parspeed serve`, drive 100
//! requests over a real socket, and check that `parspeed metrics` (the
//! wire `metrics`/`trace` ops) reports populated per-stage histograms,
//! that `--metrics-human` renders the exposition on drain, and that the
//! trace ring flushes as JSONL. This is the CI metrics smoke.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::process::{Command, Stdio};

const STAGES: [&str; 7] = ["queue", "window", "plan", "dedup", "cache", "exec", "route"];

fn spawn_serve(
    extra: &[&str],
) -> (std::process::Child, BufReader<std::process::ChildStdout>, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_parspeed"))
        .args(["serve", "--addr", "127.0.0.1:0", "--window-us", "200"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn parspeed serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read announce line");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .parse()
        .expect("bound address");
    line.clear();
    stdout.read_line(&mut line).expect("read info line");
    (child, stdout, addr)
}

fn run_metrics_cli(addr: SocketAddr, extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_parspeed"))
        .args(["metrics", "--addr", &addr.to_string()])
        .args(extra)
        .output()
        .expect("spawn parspeed metrics");
    assert!(out.status.success(), "parspeed metrics failed: {:?}", out);
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

#[test]
fn metrics_smoke_100_requests_populate_every_stage() {
    let (mut child, mut stdout, addr) =
        spawn_serve(&["--metrics-human", "--trace", "8", "--stats"]);

    // Drive 100 requests — mixed ops, enough duplicates for cache hits —
    // and wait for every reply so all stages have definitely recorded.
    let mut stream = TcpStream::connect(addr).expect("connect");
    for i in 0..100 {
        let line = match i % 3 {
            0 => format!(
                r#"{{"op":"optimize","version":2,"arch":"sync-bus","n":{},"stencil":"5pt","shape":"square","procs":64}}"#,
                128 + (i % 7) * 64
            ),
            1 => format!(
                r#"{{"op":"table1","version":2,"n":{},"stencil":"5pt"}}"#,
                64 + (i % 5) * 64
            ),
            _ => r#"{"op":"solve","version":2,"n":15,"solver":"cg","tol":1e-6}"#.to_string(),
        };
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.shutdown(Shutdown::Write).unwrap();
    let replies: Vec<String> =
        BufReader::new(stream).lines().map(|l| l.expect("reply line")).collect();
    assert_eq!(replies.len(), 100, "lost replies");
    assert!(replies.iter().all(|r| r.contains("\"ok\":true")), "a request failed");

    // The metrics subcommand sees populated histograms for every stage.
    let raw = run_metrics_cli(addr, &[]);
    assert!(raw.starts_with("{\"version\":2,\"op\":\"metrics\""), "{raw}");
    for stage in STAGES {
        assert!(raw.contains(&format!("\"{stage}\":{{\"count\":")), "missing stage {stage}: {raw}");
        let count_field = format!("\"{stage}\":{{\"count\":0,");
        assert!(!raw.contains(&count_field), "stage {stage} is empty: {raw}");
    }
    for field in
        ["\"p50_ns\":", "\"p99_ns\":", "\"p999_ns\":", "\"engine_seconds\":", "\"dedup_factor\":"]
    {
        assert!(raw.contains(field), "missing {field}: {raw}");
    }

    // --human renders the shared exposition from the same wire record.
    let human = run_metrics_cli(addr, &["--human"]);
    assert!(human.contains("parspeed_completed 100"), "{human}");
    for stage in STAGES {
        assert!(
            human.contains(&format!(
                "parspeed_stage_latency_ns{{stage=\"{stage}\",quantile=\"0.99\"}}"
            )),
            "missing {stage} quantiles: {human}"
        );
    }

    // --trace answers the ring: capacity 8, kept 8, events carry slots.
    let trace = run_metrics_cli(addr, &["--trace"]);
    assert!(trace.contains("\"op\":\"trace\"") && trace.contains("\"capacity\":8"), "{trace}");
    assert!(trace.contains("\"kept\":8"), "{trace}");
    assert!(trace.contains("\"queue_ns\":") && trace.contains("\"batch\":"), "{trace}");

    // Drain: stdout gets the stats line plus the human exposition;
    // stderr gets the 8 trace events as JSONL.
    drop(child.stdin.take());
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read final output");
    assert!(rest.contains("drained;"), "{rest}");
    assert!(rest.contains("parspeed_stage_latency_ns{stage=\"exec\",quantile=\"0.5\"}"), "{rest}");
    let mut stderr_text = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr_text).expect("read stderr");
    let trace_lines: Vec<&str> =
        stderr_text.lines().filter(|l| l.starts_with("{\"op\":\"trace\"")).collect();
    assert_eq!(trace_lines.len(), 8, "trace ring not flushed on drain: {stderr_text}");
    let status = child.wait().expect("child exit");
    assert!(status.success(), "{status:?}");
}

#[test]
fn no_observe_serves_empty_histograms() {
    let (mut child, mut stdout, addr) = spawn_serve(&["--no-observe"]);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"{\"op\":\"table1\",\"version\":2,\"n\":64,\"stencil\":\"5pt\"}\n{\"op\":\"metrics\"}\n",
        )
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let replies: Vec<String> =
        BufReader::new(stream).lines().map(|l| l.expect("reply line")).collect();
    assert_eq!(replies.len(), 2);
    assert!(replies[1].contains("\"op\":\"metrics\""), "{}", replies[1]);
    for stage in STAGES {
        assert!(
            replies[1].contains(&format!("\"{stage}\":{{\"count\":0,")),
            "stage {stage} recorded despite --no-observe: {}",
            replies[1]
        );
    }
    drop(child.stdin.take());
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read final output");
    assert!(child.wait().expect("child exit").success());
}
