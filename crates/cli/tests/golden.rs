//! Golden stdout tests: every CLI command's output, byte-for-byte.
//!
//! The expected files under `tests/golden/` were captured from the binary
//! *before* the commands were rerouted through the engine's `Service`
//! surface; these tests prove the reroute changed nothing a user sees.
//! (`threads` is excluded — it prints wall-clock measurements — and the
//! `batch` golden pins the legacy wire-v1 response shape, which v1 request
//! lines must keep receiving under the v2 schema.)

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_cli(args: &[&str]) -> String {
    let out =
        Command::new(env!("CARGO_BIN_EXE_parspeed")).args(args).output().expect("spawn parspeed");
    assert!(
        out.status.success(),
        "parspeed {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn assert_golden(file: &str, args: &[&str]) {
    let expected = std::fs::read_to_string(golden_dir().join(file))
        .unwrap_or_else(|e| panic!("missing golden {file}: {e}"));
    let actual = run_cli(args);
    assert_eq!(
        actual,
        expected,
        "stdout of `parspeed {}` drifted from pre-reroute golden {file}",
        args.join(" ")
    );
}

#[test]
fn optimize_golden() {
    assert_golden(
        "optimize_syncbus.txt",
        &["optimize", "--arch", "sync-bus", "--n", "256", "--procs", "64"],
    );
    assert_golden(
        "optimize_hypercube_mem.txt",
        &["optimize", "--arch", "hypercube", "--n", "512", "--memory", "20000"],
    );
}

#[test]
fn compare_golden() {
    assert_golden("compare_128.txt", &["compare", "--n", "128"]);
    assert_golden("compare_flex32.txt", &["compare", "--n", "256", "--procs", "32", "--flex32"]);
}

#[test]
fn sweep_golden() {
    assert_golden(
        "sweep_syncbus.txt",
        &["sweep", "--arch", "sync-bus", "--n-from", "64", "--n-to", "512"],
    );
    assert_golden(
        "sweep_banyan.txt",
        &[
            "sweep",
            "--arch",
            "banyan",
            "--n-from",
            "128",
            "--n-to",
            "1024",
            "--procs",
            "16",
            "--stencil",
            "9pt-box",
            "--shape",
            "strip",
        ],
    );
}

#[test]
fn isoeff_golden() {
    assert_golden("isoeff_syncbus.txt", &["isoeff", "--arch", "sync-bus", "--procs", "8,16,32,64"]);
    assert_golden(
        "isoeff_hypercube.txt",
        &[
            "isoeff",
            "--arch",
            "hypercube",
            "--efficiency",
            "0.8",
            "--procs",
            "4,8,16",
            "--stencil",
            "13pt",
        ],
    );
}

#[test]
fn minsize_golden() {
    assert_golden("minsize_14.txt", &["minsize", "--procs", "14"]);
    assert_golden(
        "minsize_flex32.txt",
        &["minsize", "--procs", "64", "--stencil", "9pt-star", "--flex32"],
    );
}

#[test]
fn table1_golden() {
    assert_golden("table1_default.txt", &["table1"]);
    assert_golden(
        "table1_overrides.txt",
        &["table1", "--n", "4096", "--stencil", "9pt-box", "--w", "1e-6"],
    );
}

#[test]
fn simulate_golden() {
    assert_golden(
        "simulate_mesh2d.txt",
        &["simulate", "--arch", "mesh2d", "--n", "64", "--procs", "4"],
    );
    assert_golden(
        "simulate_syncbus.txt",
        &[
            "simulate",
            "--arch",
            "sync-bus",
            "--n",
            "96",
            "--procs",
            "6",
            "--shape",
            "square",
            "--stencil",
            "9pt-box",
        ],
    );
    assert_golden(
        "simulate_schedbus.txt",
        &["simulate", "--arch", "scheduled-bus", "--n", "128", "--procs", "8"],
    );
}

#[test]
fn solve_golden() {
    assert_golden("solve_cg.txt", &["solve", "--n", "31", "--solver", "cg", "--tol", "1e-9"]);
    assert_golden("solve_multigrid.txt", &["solve", "--n", "31", "--solver", "multigrid"]);
    assert_golden(
        "solve_parallel.txt",
        &["solve", "--n", "31", "--solver", "parallel", "--partitions", "3"],
    );
}

#[test]
fn help_golden() {
    assert_golden("help.txt", &["help"]);
}

#[test]
fn experiment_golden() {
    assert_golden("experiment_e1.txt", &["experiment", "--id", "e1", "--quick"]);
    assert_golden("experiment_e3.txt", &["experiment", "--id", "e3", "--quick"]);
}

/// `batch` keeps answering wire-v1 request lines in the legacy v1 response
/// shape, byte for byte.
#[test]
fn batch_v1_golden() {
    let input = golden_dir().join("batch_v1_input.jsonl");
    let expected =
        std::fs::read_to_string(golden_dir().join("batch_v1_output.jsonl")).expect("golden");
    let actual = run_cli(&["batch", "--input", input.to_str().unwrap()]);
    assert_eq!(actual, expected, "wire-v1 batch responses drifted");
}

/// `threads` measures wall time, so only its structure is pinned.
#[test]
fn threads_structure() {
    let out =
        run_cli(&["threads", "--n", "64", "--threads", "1,2", "--iters", "1", "--repeats", "1"]);
    assert!(out.contains("Measured partitioned Jacobi"), "{out}");
    let data_rows: Vec<&str> = out
        .lines()
        .filter(|l| {
            let mut cols = l.split_whitespace();
            matches!(cols.next(), Some("1" | "2"))
        })
        .collect();
    assert_eq!(data_rows.len(), 2, "{out}");
}
