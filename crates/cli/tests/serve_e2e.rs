//! End-to-end `parspeed serve`: spawn the real binary, talk wire-v2
//! JSONL over a real socket, close stdin, and watch it drain.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::process::{Command, Stdio};

#[test]
fn serve_round_trips_drains_and_reports_stats() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_parspeed"))
        .args(["serve", "--addr", "127.0.0.1:0", "--window-us", "300", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn parspeed serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read announce line");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .parse()
        .expect("bound address");
    line.clear();
    stdout.read_line(&mut line).expect("read info line");

    // One connection exercising the whole wire: v2, garbage, v1, stats.
    let mut stream = TcpStream::connect(addr).expect("connect");
    for request in [
        r#"{"op":"optimize","version":2,"arch":"sync-bus","n":256,"stencil":"5pt","shape":"square","procs":64}"#,
        "definitely not json",
        r#"{"op":"minsize","variant":"sync-square","e":6.0,"k":1.0,"procs":14}"#,
        r#"{"op":"stats"}"#,
    ] {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.shutdown(Shutdown::Write).unwrap();
    let replies: Vec<String> =
        BufReader::new(stream).lines().map(|l| l.expect("reply line")).collect();
    assert_eq!(replies.len(), 4, "{replies:?}");
    assert!(replies[0].contains("\"version\":2") && replies[0].contains("\"processors\":14"));
    assert!(replies[1].contains("\"ok\":false") && replies[1].contains("\"line\":2"));
    assert!(replies[2].contains("\"op\":\"minsize\"") && !replies[2].contains("\"version\""));
    assert!(replies[3].contains("\"op\":\"stats\"") && replies[3].contains("\"v1_lines\":1"));

    // Closing stdin asks the server to drain and exit.
    drop(child.stdin.take());
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read final output");
    assert!(rest.contains("drained;"), "{rest}");
    assert!(rest.contains("submitted"), "--stats must print the snapshot: {rest}");
    let status = child.wait().expect("child exit");
    assert!(status.success(), "{status:?}");
}
