//! The consistent-hash ring: canonical routing hashes onto shard ids.
//!
//! Each shard owns [`HashRing::replicas`] virtual points on a 64-bit
//! circle; a query routes to the owner of the first point at or after
//! its [`routing_hash`](parspeed_engine::routing_hash). Consistency is
//! the whole point: removing one shard moves only the keys that shard
//! owned (they fall through to the next point clockwise) — every other
//! key keeps its warm backend, so a shard loss costs one shard's worth
//! of cache, not the fleet's.
//!
//! Virtual-point hashes use the engine's [`FxHasher`] with the shard and
//! replica indices as input, so ring placement is a pure function of the
//! member set — two routers configured alike route alike, with no state
//! to synchronize.
//!
//! [`FxHasher`]: parspeed_engine::FxHasher

use parspeed_engine::FxBuildHasher;
use std::hash::BuildHasher as _;

/// A consistent-hash ring over shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Virtual points per shard. More replicas smooth the load split
    /// (the spread of arc lengths shrinks like 1/√replicas) at the cost
    /// of a larger point table; 64–128 is the practical sweet spot.
    replicas: usize,
    /// `(point hash, shard id)`, sorted by hash. Binary-searched on
    /// every route.
    points: Vec<(u64, usize)>,
    /// Live members, sorted, deduplicated.
    members: Vec<usize>,
}

impl HashRing {
    /// An empty ring with `replicas` virtual points per future member.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas >= 1, "a shard needs at least one ring point");
        HashRing { replicas, points: Vec::new(), members: Vec::new() }
    }

    /// A ring over shards `0..shards`.
    pub fn with_shards(shards: usize, replicas: usize) -> Self {
        let mut ring = Self::new(replicas);
        for shard in 0..shards {
            ring.add(shard);
        }
        ring
    }

    /// Virtual points per member.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Live members, sorted ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether no member is left to route to.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The hash of one virtual point. A pure function of `(shard,
    /// replica)`, so placement never depends on insertion order or ring
    /// history. FxHash alone clusters on small sequential inputs (its
    /// arcs come out wildly uneven), so its output goes through a
    /// splitmix64 finalizer for full avalanche.
    fn point_hash(shard: usize, replica: usize) -> u64 {
        let mut x = FxBuildHasher::default().hash_one((shard as u64, replica as u64));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Adds a member (no-op if already present).
    pub fn add(&mut self, shard: usize) {
        if self.members.contains(&shard) {
            return;
        }
        self.members.push(shard);
        self.members.sort_unstable();
        for replica in 0..self.replicas {
            self.points.push((Self::point_hash(shard, replica), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a member (no-op if absent). Only the removed member's
    /// keys change owner.
    pub fn remove(&mut self, shard: usize) {
        self.members.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Routes a key hash to the owning shard: the first virtual point at
    /// or after the hash, wrapping at the top of the circle. `None` only
    /// on an empty ring.
    pub fn route(&self, key_hash: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(h, _)| h < key_hash);
        let (_, shard) = self.points[if idx == self.points.len() { 0 } else { idx }];
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn owners(ring: &HashRing, keys: &[u64]) -> Vec<usize> {
        keys.iter().map(|&k| ring.route(k).unwrap()).collect()
    }

    fn test_keys(count: usize) -> Vec<u64> {
        // An LCG spread over the full 64-bit circle.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        (0..count)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                x
            })
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_independent_of_history() {
        let keys = test_keys(500);
        let fresh = HashRing::with_shards(4, 64);
        let mut grown = HashRing::new(64);
        // Insert in a different order; placement must not care.
        for shard in [2, 0, 3, 1] {
            grown.add(shard);
        }
        assert_eq!(owners(&fresh, &keys), owners(&grown, &keys));
        assert_eq!(fresh.members(), &[0, 1, 2, 3]);
    }

    #[test]
    fn removal_only_remaps_the_lost_shards_keys() {
        let keys = test_keys(2000);
        let mut ring = HashRing::with_shards(4, 64);
        let before = owners(&ring, &keys);
        ring.remove(2);
        let after = owners(&ring, &keys);
        let mut moved = 0usize;
        for ((&key, &was), &now) in keys.iter().zip(&before).zip(&after) {
            if was == 2 {
                assert_ne!(now, 2, "key {key:#x} still routes to the removed shard");
            } else {
                assert_eq!(was, now, "key {key:#x} moved although its shard survived");
            }
            if was != now {
                moved += 1;
            }
        }
        // Roughly a quarter of the keys lived on the lost shard.
        assert!(moved > 0 && moved < keys.len() / 2, "moved {moved} of {}", keys.len());
    }

    #[test]
    fn load_splits_roughly_evenly_with_enough_replicas() {
        let keys = test_keys(8000);
        let ring = HashRing::with_shards(4, 128);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for owner in owners(&ring, &keys) {
            *counts.entry(owner).or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every shard owns some keys");
        let ideal = keys.len() / 4;
        for (&shard, &count) in &counts {
            assert!(
                count > ideal / 2 && count < ideal * 2,
                "shard {shard} owns {count} of {} keys (ideal {ideal})",
                keys.len()
            );
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let mut ring = HashRing::with_shards(1, 8);
        assert_eq!(ring.route(42), Some(0));
        ring.remove(0);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
    }
}
