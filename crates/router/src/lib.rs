//! `parspeed-router` — the sharded serving tier: a consistent-hash
//! scatter/gather frontend over a fleet of [`parspeed_server::Server`]
//! backends, whose size the paper's own optimizer predicts.
//!
//! A single server already amortizes coordination cost across clients
//! (the micro-batcher) and across duplicate work (the engine's dedup and
//! result cache). What it cannot amortize is **capacity**: one backend
//! holds one result cache, and a workload with more distinct hot keys
//! than the cache holds thrashes — exactly the paper's per-processor
//! memory constraint (§3–§4) surfacing at the serving layer. The fix is
//! the paper's fix: partition the problem. The router owns `P` shard
//! backends, each a full server + engine, and routes every request by
//! consistent-hashing its **canonical cache key**
//! ([`parspeed_engine::routing_hash`]) onto a hash ring
//! ([`ring::HashRing`]). Duplicate traffic — however it is spelled —
//! always lands on the same shard, so the fleet's aggregate cache keeps
//! `P×` the keys warm and each shard's hit rate is what a dedicated
//! machine would see.
//!
//! The serving guarantees are the server's, extended across the fleet:
//!
//! * **per-connection ordered replies** — gathered backend replies go
//!   through the exact seq-keyed reorder machinery
//!   ([`parspeed_server::ConnShared`]) a local server uses,
//!   so scattering across shards never reorders a connection's stream;
//! * **shard loss is an answer, not a disconnect** — killing a shard
//!   rebalances the ring (only the lost shard's keys move) and answers
//!   every in-flight request on it in its own reply slot with the
//!   documented `overloaded` error; no connection is ever dropped;
//! * **graceful drain** — router shutdown refuses new work in-slot,
//!   flushes every in-flight reply, then drains each backend.
//!
//! The fleet is *self-sizing*: [`predict`] fits a measured shard sweep
//! to the paper's execution-time shape and runs `Query::Optimize` over
//! the fitted machine, so the same §5 machinery that sizes a processor
//! fleet sizes this one. `parspeed route --predict` exposes it, and the
//! serving-only `{"op":"topology"}` wire record reports the live fleet
//! (members, ring replicas, per-shard resident keys) that feeds it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod predict;
pub mod ring;

use parspeed_engine::{jsonl, routing_hash, Engine, ParspeedError, Query, Response, WIRE_VERSION};
use parspeed_server::{
    health_to_json, Client, ConnShared, Delivery, Server, ServerConfig, ServerStats,
};
use ring::HashRing;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fleet shape and per-backend configuration. `parspeed route` exposes
/// every field as a flag.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Number of shard backends (`--shards`). The paper predicts this
    /// number — see [`predict`].
    pub shards: usize,
    /// Virtual ring points per shard (`--replicas`); more points smooth
    /// the key split across shards.
    pub replicas: usize,
    /// The configuration every shard's server runs with
    /// ([`ServerConfig::shard`] is overridden per backend).
    pub backend: ServerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { shards: 4, replicas: 64, backend: ServerConfig::default() }
    }
}

/// One scattered request waiting for its shard's reply: the origin
/// reply slot plus everything needed to render into it.
struct Pending {
    conn: Arc<ConnShared>,
    seq: u64,
    query: Query,
    version: u32,
    line_no: usize,
    render: bool,
}

/// Routes one response into its origin reply slot, rendering for TCP
/// connections — the router-side twin of the batcher's `deliver`.
fn deliver(p: &Pending, response: Response) {
    let delivery = if p.render {
        Delivery::Line(jsonl::render_response(&p.query, &response, p.version, p.line_no))
    } else {
        Delivery::Typed(response)
    };
    p.conn.route(p.seq, delivery);
}

fn deliver_refusal(p: &Pending, msg: String) {
    deliver(p, Response::Invalid(ParspeedError::overloaded(msg)));
}

/// One shard's scatter lane: the in-process client into its server plus
/// the FIFO of origin slots awaiting replies. The backend answers a
/// connection's requests in submission order, so pushing and submitting
/// under one lock keeps `inflight` aligned with the reply stream — the
/// gather thread pops the front for each reply.
struct Lane {
    shard: usize,
    client: Client,
    inflight: Mutex<VecDeque<Pending>>,
    /// Signals the gather thread (work arrived) and the drain loop
    /// (lane emptied).
    cv: Condvar,
    /// The shard was killed: the ring no longer routes here, every
    /// pending slot has been answered, late backend replies are noise.
    lost: AtomicBool,
}

/// Everything the dispatchers, gather threads, and frontends share.
struct Core {
    cfg: RouterConfig,
    ring: Mutex<HashRing>,
    lanes: Vec<Arc<Lane>>,
    engines: Vec<Arc<Engine>>,
    servers: Mutex<Vec<Option<Server>>>,
    epoch: Instant,
    draining: AtomicBool,
}

impl Core {
    /// Scatter: hash the query's canonical key onto the ring and hand it
    /// to the owning lane. Every refusal is answered in the request's
    /// own reply slot — dispatch never blocks beyond the lane lock and
    /// never drops a slot.
    fn dispatch(&self, pending: Pending) {
        if self.draining.load(Ordering::SeqCst) {
            deliver_refusal(
                &pending,
                "router is draining for shutdown; request refused (not evaluated)".into(),
            );
            return;
        }
        let hash = routing_hash(&pending.query);
        loop {
            let Some(shard) = self.ring.lock().unwrap().route(hash) else {
                deliver_refusal(
                    &pending,
                    "no shard available: every backend was lost; \
                     request refused (not evaluated)"
                        .into(),
                );
                return;
            };
            let lane = &self.lanes[shard];
            let mut q = lane.inflight.lock().unwrap();
            if lane.lost.load(Ordering::SeqCst) {
                // Lost between the ring lookup and the lane lock; the
                // ring has already rebalanced — route again.
                continue;
            }
            // Submit under the lane lock: the backend replies to this
            // client in submission order, so the FIFO and the reply
            // stream can never disagree.
            lane.client.submit(pending.query.clone());
            q.push_back(pending);
            lane.cv.notify_all();
            return;
        }
    }

    /// The router's own `health` record: uptime and drain flag, shard
    /// `null` (the router is the front, not a backend).
    fn health(&self) -> jsonl::Json {
        health_to_json(
            self.epoch.elapsed().as_secs_f64(),
            self.draining.load(Ordering::SeqCst),
            None,
        )
    }

    /// The serving-only `topology` record: the live fleet as the ring
    /// sees it, plus each member's resident cache keys — the live
    /// workload profile [`predict`] sizes fleets from.
    fn topology(&self) -> jsonl::Json {
        let (members, replicas) = {
            let ring = self.ring.lock().unwrap();
            (ring.members().to_vec(), ring.replicas())
        };
        let lost: Vec<jsonl::Json> = (0..self.cfg.shards)
            .filter(|s| !members.contains(s))
            .map(|s| jsonl::Json::Num(s as f64))
            .collect();
        let resident: Vec<jsonl::Json> =
            members.iter().map(|&s| jsonl::Json::Num(self.engines[s].cache_len() as f64)).collect();
        jsonl::Json::Obj(vec![
            ("version".into(), jsonl::Json::Num(WIRE_VERSION as f64)),
            ("op".into(), jsonl::Json::Str("topology".into())),
            ("shards".into(), jsonl::Json::Num(members.len() as f64)),
            ("replicas".into(), jsonl::Json::Num(replicas as f64)),
            (
                "members".into(),
                jsonl::Json::Arr(members.iter().map(|&s| jsonl::Json::Num(s as f64)).collect()),
            ),
            ("lost".into(), jsonl::Json::Arr(lost)),
            ("resident".into(), jsonl::Json::Arr(resident)),
        ])
    }

    /// Gather: pump one lane's replies back into their origin slots, in
    /// lane-FIFO order. Exits when the lane is lost, or when the router
    /// is draining and nothing is in flight.
    fn gather_loop(&self, lane: &Lane) {
        loop {
            // Park until something is in flight (or the lane is done).
            {
                let mut q = lane.inflight.lock().unwrap();
                loop {
                    if lane.lost.load(Ordering::SeqCst) {
                        return;
                    }
                    if !q.is_empty() {
                        break;
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    q = lane.cv.wait_timeout(q, Duration::from_millis(50)).unwrap().0;
                }
            }
            // Short poll, not a blocking recv: a kill can answer the
            // pending slots out from under us, and the next park
            // iteration must notice the lost flag.
            let Some((_, response)) = lane.client.recv_timeout(Duration::from_millis(50)) else {
                continue;
            };
            let popped = {
                let mut q = lane.inflight.lock().unwrap();
                if lane.lost.load(Ordering::SeqCst) {
                    // The kill already answered every pending slot;
                    // this reply (flushed by the backend's drain) has
                    // no waiter.
                    None
                } else {
                    Some(q.pop_front().expect("backend reply without a pending request"))
                }
            };
            match popped {
                Some(p) => {
                    deliver(&p, response);
                    lane.cv.notify_all();
                }
                None => return,
            }
        }
    }
}

struct RouterIo {
    conn_threads: Vec<JoinHandle<()>>,
    streams: Vec<TcpStream>,
    next_conn_id: u64,
}

/// The running router: shard servers, gather threads, and any TCP
/// frontends attached. Dropping it without [`shutdown`](Router::shutdown)
/// leaks the fleet's threads — call `shutdown`.
pub struct Router {
    core: Arc<Core>,
    gathers: Vec<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
    io: Arc<Mutex<RouterIo>>,
}

impl Router {
    /// Starts a fleet of `config.shards` backends, each over its own
    /// default [`Engine`].
    pub fn start(config: RouterConfig) -> Router {
        Self::start_with(config, |_| Arc::new(Engine::default()))
    }

    /// Starts the fleet with one engine per shard from `factory` —
    /// benches and tests use this to pin per-shard cache capacity (the
    /// paper's per-processor memory constraint).
    pub fn start_with(config: RouterConfig, factory: impl Fn(usize) -> Arc<Engine>) -> Router {
        assert!(config.shards >= 1, "router needs at least one shard");
        let mut engines = Vec::with_capacity(config.shards);
        let mut servers = Vec::with_capacity(config.shards);
        let mut lanes = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let engine = factory(shard);
            let server = Server::start(
                engine.clone(),
                ServerConfig { shard: Some(shard), ..config.backend },
            );
            let client = server.client();
            engines.push(engine);
            servers.push(Some(server));
            lanes.push(Arc::new(Lane {
                shard,
                client,
                inflight: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                lost: AtomicBool::new(false),
            }));
        }
        let core = Arc::new(Core {
            cfg: config,
            ring: Mutex::new(HashRing::with_shards(config.shards, config.replicas)),
            lanes,
            engines,
            servers: Mutex::new(servers),
            epoch: Instant::now(),
            draining: AtomicBool::new(false),
        });
        let gathers = core
            .lanes
            .iter()
            .map(|lane| {
                let core = Arc::clone(&core);
                let lane = Arc::clone(lane);
                std::thread::Builder::new()
                    .name(format!("parspeed-gather-{}", lane.shard))
                    .spawn(move || core.gather_loop(&lane))
                    .expect("spawn gather thread")
            })
            .collect();
        Router {
            core,
            gathers,
            acceptors: Vec::new(),
            io: Arc::new(Mutex::new(RouterIo {
                conn_threads: Vec::new(),
                streams: Vec::new(),
                next_conn_id: 0,
            })),
        }
    }

    /// The fleet configuration this router was started with.
    pub fn config(&self) -> &RouterConfig {
        &self.core.cfg
    }

    /// Live cached outcomes per ring member, `(shard, resident keys)` —
    /// the affinity evidence: with key-affinity routing the sum equals
    /// the workload's distinct key count, with no key cached twice.
    pub fn resident_keys(&self) -> Vec<(usize, usize)> {
        let members = self.core.ring.lock().unwrap().members().to_vec();
        members.into_iter().map(|s| (s, self.core.engines[s].cache_len())).collect()
    }

    /// The serving-only `topology` record (also answered on the wire).
    pub fn topology(&self) -> jsonl::Json {
        self.core.topology()
    }

    /// Opens an in-process connection: typed queries scattered across
    /// the fleet, replies gathered back in submission order — the exact
    /// semantics of a TCP connection, without the wire.
    pub fn client(&self) -> RouterClient {
        let id = {
            let mut io = self.io.lock().unwrap();
            let id = io.next_conn_id;
            io.next_conn_id += 1;
            id
        };
        RouterClient { conn: Arc::new(ConnShared::new(id)), core: Arc::clone(&self.core) }
    }

    /// Kills one shard: removes it from the ring (only its keys remap —
    /// every other key keeps its warm backend), answers every request
    /// in flight on it in its own reply slot with the documented
    /// `overloaded` error, and drains its server. Returns the backend's
    /// final stats, or `None` if the shard was already gone.
    pub fn kill_shard(&self, shard: usize) -> Option<ServerStats> {
        assert!(shard < self.core.cfg.shards, "shard {shard} out of range");
        {
            let mut ring = self.core.ring.lock().unwrap();
            if !ring.members().contains(&shard) {
                return None;
            }
            ring.remove(shard);
        }
        let lane = &self.core.lanes[shard];
        {
            // Flag and fail under the lane lock: dispatchers that chose
            // this shard before the ring update re-route instead of
            // enqueueing behind a dead backend.
            let mut q = lane.inflight.lock().unwrap();
            lane.lost.store(true, Ordering::SeqCst);
            while let Some(p) = q.pop_front() {
                deliver_refusal(
                    &p,
                    format!(
                        "shard {shard} was lost with the request in flight; \
                         not evaluated — the ring has rebalanced, retry"
                    ),
                );
            }
            lane.cv.notify_all();
        }
        let server = self.core.servers.lock().unwrap()[shard].take();
        server.map(Server::shutdown)
    }

    /// Binds `addr` and accepts wire-v2 JSONL connections on a
    /// background thread — the same wire a single server speaks, so
    /// clients cannot tell a router from a server (except by asking:
    /// `topology` only answers here, `stats`/`metrics`/`trace` only
    /// answer on a shard). Returns the bound address (so `:0` works).
    pub fn listen(&mut self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = Arc::clone(&self.core);
        let io_state = Arc::clone(&self.io);
        let acceptor = std::thread::Builder::new()
            .name("parspeed-route-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Err(e) = spawn_conn(stream, &core, &io_state) {
                            eprintln!("note: dropping connection: {e}");
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if core.draining.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn route acceptor");
        self.acceptors.push(acceptor);
        Ok(local)
    }

    /// Graceful drain: refuses new work in-slot, flushes every in-flight
    /// reply through its origin slot, drains every surviving backend,
    /// tears down connections, joins every thread. Returns each
    /// surviving shard's final server stats.
    pub fn shutdown(self) -> Vec<(usize, ServerStats)> {
        self.core.draining.store(true, Ordering::SeqCst);
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        // Wait for every live lane to flush: backends are still running,
        // so every pending slot gets its real reply.
        for lane in &self.core.lanes {
            if lane.lost.load(Ordering::SeqCst) {
                continue;
            }
            let mut q = lane.inflight.lock().unwrap();
            while !q.is_empty() {
                q = lane.cv.wait_timeout(q, Duration::from_millis(50)).unwrap().0;
            }
        }
        for gather in self.gathers {
            let _ = gather.join();
        }
        let servers = std::mem::take(&mut *self.core.servers.lock().unwrap());
        let stats: Vec<(usize, ServerStats)> = servers
            .into_iter()
            .enumerate()
            .filter_map(|(shard, server)| server.map(|s| (shard, s.shutdown())))
            .collect();
        // Every reply slot is answered; unblock the readers (EOF) so the
        // writers flush and exit.
        let (streams, conn_threads) = {
            let mut io = self.io.lock().unwrap();
            (std::mem::take(&mut io.streams), std::mem::take(&mut io.conn_threads))
        };
        for stream in &streams {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for thread in conn_threads {
            let _ = thread.join();
        }
        stats
    }
}

/// An in-process connection to the router: typed queries in, typed
/// responses out, gathered in submission order — the router-side twin
/// of [`parspeed_server::Client`].
pub struct RouterClient {
    conn: Arc<ConnShared>,
    core: Arc<Core>,
}

impl RouterClient {
    /// Submits one query, returning its connection-local sequence
    /// number. Never blocks beyond the lane lock: refusals (draining
    /// router, empty ring) are answered in the reply slot like any
    /// other reply.
    pub fn submit(&self, query: Query) -> u64 {
        let seq = self.conn.alloc_seq();
        self.core.dispatch(Pending {
            conn: Arc::clone(&self.conn),
            seq,
            query,
            version: WIRE_VERSION,
            line_no: seq as usize + 1,
            render: false,
        });
        seq
    }

    /// Receives the next reply in submission order, blocking until it
    /// is released. Panics if nothing is outstanding.
    pub fn recv(&self) -> (u64, Response) {
        assert!(!self.conn.idle(), "recv with no outstanding submission");
        match self.conn.next_released() {
            Some((seq, Delivery::Typed(response))) => (seq, response),
            Some((_, Delivery::Line(_))) => unreachable!("rendered delivery on a typed client"),
            None => unreachable!("in-process connections never reach EOF"),
        }
    }

    /// [`recv`](Self::recv) with a deadline; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(u64, Response)> {
        match self.conn.next_released_timeout(timeout)? {
            (seq, Delivery::Typed(response)) => Some((seq, response)),
            (_, Delivery::Line(_)) => unreachable!("rendered delivery on a typed client"),
        }
    }

    /// Submit one query and wait for its reply.
    pub fn call(&self, query: Query) -> Response {
        let seq = self.submit(query);
        let (got, response) = self.recv();
        assert_eq!(got, seq, "per-connection ordering violated");
        response
    }
}

/// Registers an accepted stream and spawns its reader/writer pair.
fn spawn_conn(
    stream: TcpStream,
    core: &Arc<Core>,
    io_state: &Arc<Mutex<RouterIo>>,
) -> io::Result<()> {
    let reader_stream = stream.try_clone()?;
    let teardown_clone = stream.try_clone()?;
    let mut io = io_state.lock().unwrap();
    let id = io.next_conn_id;
    io.next_conn_id += 1;
    let conn = Arc::new(ConnShared::new(id));

    let reader_conn = Arc::clone(&conn);
    let reader_core = Arc::clone(core);
    let reader = std::thread::Builder::new()
        .name(format!("parspeed-route-read-{id}"))
        .spawn(move || reader_loop(reader_stream, reader_conn, reader_core))?;
    let writer_conn = Arc::clone(&conn);
    let writer = std::thread::Builder::new()
        .name(format!("parspeed-route-write-{id}"))
        .spawn(move || writer_loop(stream, writer_conn))?;

    io.streams.push(teardown_clone);
    io.conn_threads.push(reader);
    io.conn_threads.push(writer);
    Ok(())
}

/// Drives one connection's read half: parse lines, intercept the
/// router-level ops, scatter everything else. The wire is the server's
/// wire; the two router-only differences are `topology` (answered here,
/// unknown to a shard) and `stats`/`metrics`/`trace` (per-shard state
/// the router refuses to misattribute — probe a shard directly).
fn reader_loop(stream: TcpStream, conn: Arc<ConnShared>, core: Arc<Core>) {
    let mut line_no = 0usize;
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        line_no += 1;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let seq = conn.alloc_seq();
        let parsed = match jsonl::parse(text) {
            Ok(v) => match v.get("op").and_then(jsonl::Json::as_str) {
                Some("health") => {
                    conn.route(seq, Delivery::Line(core.health().render()));
                    continue;
                }
                Some("topology") => {
                    conn.route(seq, Delivery::Line(core.topology().render()));
                    continue;
                }
                Some(op @ ("stats" | "metrics" | "trace")) => {
                    let e = jsonl::LineError {
                        version: WIRE_VERSION,
                        error: ParspeedError::unsupported(format!(
                            "op \"{op}\" reports per-shard state; \
                             probe a shard's own serving address"
                        )),
                    };
                    conn.route(seq, Delivery::Line(jsonl::render_parse_error(&e, line_no)));
                    continue;
                }
                _ => jsonl::parse_query_value(&v),
            },
            Err(e) => Err(jsonl::LineError { version: 1, error: ParspeedError::parse(e) }),
        };
        match parsed {
            Ok(parsed) => core.dispatch(Pending {
                conn: Arc::clone(&conn),
                seq,
                query: parsed.query,
                version: parsed.version,
                line_no,
                render: true,
            }),
            Err(e) => conn.route(seq, Delivery::Line(jsonl::render_parse_error(&e, line_no))),
        }
    }
    conn.mark_eof();
}

/// Drives one connection's write half: emit released replies in
/// sequence order until the stream is flushed-and-done.
fn writer_loop(stream: TcpStream, conn: Arc<ConnShared>) {
    let mut out = BufWriter::new(&stream);
    while let Some((_seq, delivery)) = conn.next_released() {
        let line = match delivery {
            Delivery::Line(line) => line,
            Delivery::Typed(_) => unreachable!("typed delivery on a TCP connection"),
        };
        if out.write_all(line.as_bytes()).is_err()
            || out.write_all(b"\n").is_err()
            || out.flush().is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_engine::{ArchKind, EvalValue, Request};

    fn optimize(n: usize) -> Query {
        Request::optimize(ArchKind::SyncBus, n).procs(64).query()
    }

    #[test]
    fn round_trip_through_the_fleet_matches_the_engine() {
        let router = Router::start(RouterConfig { shards: 3, ..RouterConfig::default() });
        let client = router.client();
        match client.call(optimize(256)) {
            Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
                assert_eq!(processors, 14) // the paper's §6.1 anchor
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = router.shutdown();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|(_, s)| s.completed).sum::<u64>(), 1);
    }

    #[test]
    fn topology_wire_shape_is_frozen() {
        let router = Router::start(RouterConfig { shards: 2, ..RouterConfig::default() });
        let client = router.client();
        client.call(optimize(256));
        let json = router.topology();
        // The shape contract wire clients depend on: field order included.
        let jsonl::Json::Obj(fields) = &json else { panic!("topology is not an object") };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["version", "op", "shards", "replicas", "members", "lost", "resident"]);
        let rendered = json.render();
        assert!(rendered.starts_with(r#"{"version":2,"op":"topology","shards":2,"#), "{rendered}");
        assert!(rendered.contains(r#""members":[0,1],"lost":[]"#), "{rendered}");
        // One query was cached somewhere in the fleet.
        let total: usize = router.resident_keys().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1);
        router.shutdown();
    }

    #[test]
    fn submissions_while_draining_get_the_refusal_in_slot() {
        let router = Router::start(RouterConfig { shards: 2, ..RouterConfig::default() });
        let client = router.client();
        client.call(optimize(128));
        router.shutdown();
        match client.call(optimize(256)) {
            Response::Invalid(e) => {
                assert_eq!(e.kind(), "overloaded");
                assert!(e.to_string().contains("draining"), "{e}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
