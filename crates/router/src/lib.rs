//! `parspeed-router` — the sharded serving tier: a consistent-hash
//! scatter/gather frontend over a fleet of [`parspeed_server::Server`]
//! backends, whose size the paper's own optimizer predicts.
//!
//! A single server already amortizes coordination cost across clients
//! (the micro-batcher) and across duplicate work (the engine's dedup and
//! result cache). What it cannot amortize is **capacity**: one backend
//! holds one result cache, and a workload with more distinct hot keys
//! than the cache holds thrashes — exactly the paper's per-processor
//! memory constraint (§3–§4) surfacing at the serving layer. The fix is
//! the paper's fix: partition the problem. The router owns `P` shard
//! backends, each a full server + engine, and routes every request by
//! consistent-hashing its **canonical cache key**
//! ([`parspeed_engine::routing_hash`]) onto a hash ring
//! ([`ring::HashRing`]). Duplicate traffic — however it is spelled —
//! always lands on the same shard, so the fleet's aggregate cache keeps
//! `P×` the keys warm and each shard's hit rate is what a dedicated
//! machine would see.
//!
//! The serving guarantees are the server's, extended across the fleet:
//!
//! * **per-connection ordered replies** — gathered backend replies go
//!   through the exact seq-keyed reorder machinery
//!   ([`parspeed_server::ConnShared`]) a local server uses,
//!   so scattering across shards never reorders a connection's stream;
//! * **shard loss fails over, not disconnects** — killing a shard
//!   rebalances the ring (only the lost shard's keys move) and
//!   *redispatches* every retry-safe request in flight on it to the
//!   key's ring successor, with deterministic capped backoff
//!   ([`RetryPolicy`]); retry-unsafe requests (wall-clock measurements)
//!   answer the documented `overloaded` refusal carrying a
//!   machine-readable `retry_after_ms=` hint. No connection is ever
//!   dropped;
//! * **deadlines are answered, not dropped** — a request whose
//!   `deadline_ms` budget expires answers the `deadline_exceeded` kind
//!   in its own reply slot; the remaining budget travels with every
//!   (re)dispatch so a backend never computes an answer nobody waits
//!   for;
//! * **sick shards trip a breaker** — a shard that stalls or fails
//!   repeatedly is tripped out of the ring ([`BreakerPolicy`]),
//!   readmitted half-open after a probe interval, and reclosed on the
//!   first healthy reply (failed probes double the interval);
//! * **graceful drain** — router shutdown refuses new work in-slot,
//!   flushes every in-flight reply, then drains each backend.
//!
//! Every recovery action counts into the fleet-level
//! [`parspeed_obs::ResilienceCounters`], answered on the wire by the
//! router-scoped `{"op":"metrics"}` record, and all of it is
//! deterministically testable: a seeded [`parspeed_chaos::FaultPlan`]
//! installed with [`Router::install_fault_plan`] kills shards, delays,
//! drops, or duplicates replies, and wedges lanes at scripted request
//! indices — the same seed replays the same event trace.
//!
//! The fleet is *self-sizing*: [`predict`] fits a measured shard sweep
//! to the paper's execution-time shape and runs `Query::Optimize` over
//! the fitted machine, so the same §5 machinery that sizes a processor
//! fleet sizes this one. `parspeed route --predict` exposes it, and the
//! serving-only `{"op":"topology"}` wire record reports the live fleet
//! (members, ring replicas, per-shard resident keys) that feeds it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod predict;
pub mod ring;

pub use fault::{BreakerPolicy, RetryPolicy, SupervisorPolicy};

use fault::BreakerState;
use parspeed_chaos::{mix, FaultAction, FaultPlan};
use parspeed_engine::{
    jsonl, routing_hash, ArchKind, CheckpointStore, Engine, ParspeedError, Query, Request,
    Response, WIRE_VERSION,
};
use parspeed_obs::ResilienceCounters;
use parspeed_server::{
    health_to_json, spawn_event_loop, Client, ConnShared, Delivery, EventLoopConfig, IoModel,
    Server, ServerConfig, ServerStats, WireHandler,
};
use ring::HashRing;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fleet shape and per-backend configuration. `parspeed route` exposes
/// every field as a flag.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Number of shard backends (`--shards`). The paper predicts this
    /// number — see [`predict`].
    pub shards: usize,
    /// Virtual ring points per shard (`--replicas`); more points smooth
    /// the key split across shards.
    pub replicas: usize,
    /// The configuration every shard's server runs with
    /// ([`ServerConfig::shard`] is overridden per backend).
    pub backend: ServerConfig,
    /// Park/poll interval for the gather threads and the shutdown drain
    /// (`--poll-ms`) — formerly three hard-coded 50 ms constants.
    pub poll: Duration,
    /// Sleep between accept attempts on the nonblocking listener
    /// (`--accept-poll-us`).
    pub accept_poll: Duration,
    /// Deadline granted to every request that does not carry its own
    /// `deadline_ms` (`--deadline-ms`); `None` means no default.
    pub default_deadline: Option<Duration>,
    /// Retry/failover policy for requests lost with their shard.
    pub retry: RetryPolicy,
    /// Per-shard circuit-breaker policy.
    pub breaker: BreakerPolicy,
    /// Shard supervision: `Some` runs the self-healing supervisor
    /// (respawn, cache-warm rejoin, eviction); `None` — the default —
    /// keeps the pre-supervision behavior where a killed shard stays
    /// dead.
    pub supervisor: Option<SupervisorPolicy>,
    /// Which TCP frontend [`Router::listen`] attaches (`--io`): the
    /// readiness-driven event loop (default) or the original
    /// thread-per-connection pair.
    pub io: IoModel,
    /// Event-loop tuning for the router's own frontend — ignored under
    /// [`IoModel::Threads`]. (The shard backends' frontends are
    /// configured through [`RouterConfig::backend`].)
    pub event_loop: EventLoopConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 4,
            replicas: 64,
            backend: ServerConfig::default(),
            poll: Duration::from_millis(50),
            accept_poll: Duration::from_micros(200),
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            supervisor: None,
            io: IoModel::default(),
            event_loop: EventLoopConfig::default(),
        }
    }
}

/// Most recent distinct keys remembered per shard for cache-warm
/// rejoin. Keys only — the values are recomputed by the replacement —
/// so the memory bound is a ring of queries, not a result cache.
const HOT_KEYS_PER_SHARD: usize = 128;

/// One scattered request waiting for its shard's reply: the origin
/// reply slot plus everything needed to render into it — and the
/// resilience state (deadline budget, attempt count, jitter token) that
/// travels with the slot across failovers.
struct Pending {
    conn: Arc<ConnShared>,
    seq: u64,
    query: Query,
    version: u32,
    line_no: usize,
    render: bool,
    /// Absolute budget: expire answers `deadline_exceeded` in-slot.
    deadline: Option<Instant>,
    /// Dispatch attempts already burned (0 on first dispatch).
    attempts: u32,
    /// Stable per-request token feeding the deterministic backoff
    /// jitter — the same request retries on the same schedule.
    token: u64,
    /// When this slot was last submitted to a lane (stall detection).
    submitted: Instant,
}

/// Routes one response into its origin reply slot, rendering for TCP
/// connections — the router-side twin of the batcher's `deliver`.
fn deliver(p: &Pending, response: Response) {
    let delivery = if p.render {
        Delivery::Line(jsonl::render_response(&p.query, &response, p.version, p.line_no))
    } else {
        Delivery::Typed(response)
    };
    p.conn.route(p.seq, delivery);
}

fn deliver_refusal(p: &Pending, msg: String) {
    deliver(p, Response::Invalid(ParspeedError::overloaded(msg)));
}

fn deliver_deadline(p: &Pending, msg: String) {
    deliver(p, Response::Invalid(ParspeedError::deadline_exceeded(msg)));
}

/// One shard's scatter lane: the in-process client into its server plus
/// the FIFO of origin slots awaiting replies. The backend answers a
/// connection's requests in submission order, so pushing and submitting
/// under one lock keeps `inflight` aligned with the reply stream — the
/// gather thread pops the front for each reply.
struct Lane {
    shard: usize,
    /// The in-process client into this shard's *current* server. A
    /// respawn swaps it for a client into the replacement; readers take
    /// the lock only long enough to clone the `Arc`.
    client: Mutex<Arc<Client>>,
    inflight: Mutex<VecDeque<Pending>>,
    /// Signals the gather thread (work arrived) and the drain loop
    /// (lane emptied).
    cv: Condvar,
    /// The shard was killed: the ring no longer routes here, every
    /// pending slot has been answered, late backend replies are noise.
    lost: AtomicBool,
    /// Backend replies to discard on arrival: answers for slots a
    /// breaker trip already redispatched. Skipping them keeps the FIFO
    /// aligned with the reply stream after readmission.
    skip: AtomicU64,
    /// Injected fault (one-shot): milliseconds to stall the next reply.
    delay_ms: AtomicU64,
    /// Injected fault: replies to drop (the slot redispatches).
    drop_next: AtomicU64,
    /// Injected fault: replies to treat as duplicated (the second copy
    /// is suppressed).
    dup_next: AtomicU64,
    /// Injected fault: the lane stops consuming replies entirely, like
    /// a hung connection — only the stall breaker gets it out.
    wedged: AtomicBool,
    /// Bounded ring of the most recent distinct keys routed here,
    /// newest at the back (see [`HOT_KEYS_PER_SHARD`]): the warmup set
    /// a replacement shard replays before rejoining the ring.
    hot: Mutex<VecDeque<(u64, Query)>>,
    /// Injected fault: deny this many upcoming respawn attempts (each
    /// denial burns one attempt from the respawn budget).
    respawn_deny: AtomicU64,
    /// Injected fault: kill the replacement this many more times right
    /// after it rejoins — the deterministic crash-loop driver.
    crashloop: AtomicU64,
}

impl Lane {
    fn client(&self) -> Arc<Client> {
        Arc::clone(&self.client.lock().unwrap())
    }
}

/// Per-shard supervision state (under `Core::sup`).
#[derive(Debug, Clone, Copy, Default)]
struct SupState {
    /// When the supervisor first observed this shard lost (`None` while
    /// healthy).
    lost_at: Option<Instant>,
    /// Respawn attempts burned (denied, failed, or successful).
    respawns: u32,
    /// Budget exhausted: the shard is out of the fleet for good.
    evicted: bool,
}

/// Per-shard warmup progress (the `warmup` wire op).
#[derive(Debug, Clone, Copy, Default)]
struct WarmupStatus {
    /// A warmup replay is running right now.
    active: bool,
    /// Keys this replay will push through the replacement.
    target: u64,
    /// Keys replayed so far (equal to `target` once complete).
    replayed: u64,
}

/// Everything the dispatchers, gather threads, and frontends share.
struct Core {
    cfg: RouterConfig,
    ring: Mutex<HashRing>,
    lanes: Vec<Arc<Lane>>,
    /// Each shard's engine; a respawn swaps in the replacement's.
    engines: Vec<Mutex<Arc<Engine>>>,
    servers: Mutex<Vec<Option<Server>>>,
    epoch: Instant,
    draining: AtomicBool,
    /// Fleet-level recovery counters (the router-scoped `metrics` op).
    resilience: Arc<ResilienceCounters>,
    /// Per-shard circuit breakers. Lock order: sup → breaker → ring →
    /// lane.
    breakers: Vec<Mutex<BreakerState>>,
    /// The installed deterministic fault plan, if any.
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Builds a shard's engine — kept so the supervisor can build
    /// replacements with the caller's exact wiring (cache capacity,
    /// shared checkpoint store, …).
    factory: Box<dyn Fn(usize) -> Arc<Engine> + Send + Sync>,
    /// Per-shard supervision state.
    sup: Mutex<Vec<SupState>>,
    /// Per-shard warmup progress.
    warmups: Vec<Mutex<WarmupStatus>>,
    /// Gather threads spawned for respawned shards, joined at shutdown.
    extra_gathers: Mutex<Vec<JoinHandle<()>>>,
}

impl Core {
    fn plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().unwrap().clone()
    }

    fn engine(&self, shard: usize) -> Arc<Engine> {
        Arc::clone(&self.engines[shard].lock().unwrap())
    }

    /// Scatter: hash the query's canonical key onto the ring and hand it
    /// to the owning lane. Every refusal is answered in the request's
    /// own reply slot — dispatch never blocks beyond the lane lock and
    /// never drops a slot.
    fn dispatch(&self, mut pending: Pending) {
        if self.draining.load(Ordering::SeqCst) {
            deliver_refusal(
                &pending,
                "router is draining for shutdown; request refused (not evaluated)".into(),
            );
            return;
        }
        if pending.attempts == 0 {
            // First dispatch only: tick the fault plan (one scripted
            // index per admitted request) and grant the default budget.
            self.tick_faults();
            if pending.deadline.is_none() {
                // `checked_add` so an absurd configured budget saturates
                // to "no deadline" instead of panicking the frontend.
                pending.deadline =
                    self.cfg.default_deadline.and_then(|d| Instant::now().checked_add(d));
            }
        }
        self.admit_probes();
        if pending.deadline.is_some_and(|d| Instant::now() >= d) {
            ResilienceCounters::bump(&self.resilience.deadline_missed);
            deliver_deadline(
                &pending,
                "deadline expired before any shard was reached; \
                 request refused (not evaluated)"
                    .into(),
            );
            return;
        }
        let hash = routing_hash(&pending.query);
        loop {
            let Some(shard) = self.ring.lock().unwrap().route(hash) else {
                deliver_refusal(
                    &pending,
                    "no shard available: every backend was lost; \
                     request refused (not evaluated)"
                        .into(),
                );
                return;
            };
            let lane = &self.lanes[shard];
            self.record_hot(lane, hash, &pending.query);
            let mut q = lane.inflight.lock().unwrap();
            if lane.lost.load(Ordering::SeqCst) {
                // Lost between the ring lookup and the lane lock; the
                // ring has already rebalanced — route again.
                continue;
            }
            // Submit under the lane lock: the backend replies to this
            // client in submission order, so the FIFO and the reply
            // stream can never disagree. The remaining deadline budget
            // travels with the submission.
            pending.submitted = Instant::now();
            lane.client().submit_with_deadline(pending.query.clone(), pending.deadline);
            q.push_back(pending);
            lane.cv.notify_all();
            return;
        }
    }

    /// Remembers `query` in the shard's hot-key ring (keys only, newest
    /// at the back, distinct by routing hash). Effect queries are
    /// excluded — replaying a wall-clock measurement is not a warmup.
    fn record_hot(&self, lane: &Lane, hash: u64, query: &Query) {
        if !query.retry_safe() {
            return;
        }
        let mut hot = lane.hot.lock().unwrap();
        if let Some(pos) = hot.iter().position(|&(h, _)| h == hash) {
            hot.remove(pos);
        } else if hot.len() >= HOT_KEYS_PER_SHARD {
            hot.pop_front();
        }
        hot.push_back((hash, query.clone()));
    }

    /// Fires any fault-plan triggers due at this request index. Called
    /// once per admitted request (never on retries).
    fn tick_faults(&self) {
        let Some(plan) = self.plan() else { return };
        for action in plan.on_request() {
            let in_range = match action {
                FaultAction::KillShard { shard }
                | FaultAction::DelayLane { shard, .. }
                | FaultAction::DropReply { shard }
                | FaultAction::DuplicateReply { shard }
                | FaultAction::WedgeLane { shard }
                | FaultAction::RespawnDeny { shard }
                | FaultAction::CrashLoop { shard, .. } => shard < self.cfg.shards,
                FaultAction::PanicWorker => true,
            };
            if !in_range {
                plan.record(format!("router: ignoring fault {action} (shard out of range)"));
                continue;
            }
            match action {
                FaultAction::KillShard { shard } => {
                    self.kill_shard(shard);
                }
                FaultAction::DelayLane { shard, millis } => {
                    self.lanes[shard].delay_ms.fetch_add(millis, Ordering::SeqCst);
                    plan.record(format!("router: armed {millis} ms reply delay on lane {shard}"));
                }
                FaultAction::DropReply { shard } => {
                    self.lanes[shard].drop_next.fetch_add(1, Ordering::SeqCst);
                    plan.record(format!("router: armed a reply drop on lane {shard}"));
                }
                FaultAction::DuplicateReply { shard } => {
                    self.lanes[shard].dup_next.fetch_add(1, Ordering::SeqCst);
                    plan.record(format!("router: armed a duplicate reply on lane {shard}"));
                }
                FaultAction::WedgeLane { shard } => {
                    self.lanes[shard].wedged.store(true, Ordering::SeqCst);
                    plan.record(format!("router: wedged lane {shard} (replies will stall)"));
                }
                FaultAction::RespawnDeny { shard } => {
                    self.lanes[shard].respawn_deny.fetch_add(1, Ordering::SeqCst);
                    plan.record(format!("router: armed a respawn denial on shard {shard}"));
                }
                FaultAction::CrashLoop { shard, times } => {
                    // One kill now, `times - 1` more armed against each
                    // future rejoin: the deterministic crash-loop.
                    self.lanes[shard].crashloop.store(times.saturating_sub(1), Ordering::SeqCst);
                    plan.record(format!("router: crash-looping shard {shard} ({times} kill(s))"));
                    self.kill_shard(shard);
                }
                FaultAction::PanicWorker => {
                    plan.record(
                        "router: ignoring worker-level fault \
                         (install the plan on a shard server)",
                    );
                }
            }
        }
    }

    /// Readmits breaker-opened shards whose probe time has arrived:
    /// half-open, back in the ring, lane unwedged. Cheap (one mutex try
    /// per shard), called on every dispatch.
    fn admit_probes(&self) {
        let now = Instant::now();
        for (shard, slot) in self.breakers.iter().enumerate() {
            let mut state = slot.lock().unwrap();
            let BreakerState::Open { probe_at, probe_interval } = *state else { continue };
            if now < probe_at || self.lanes[shard].lost.load(Ordering::SeqCst) {
                continue;
            }
            *state = BreakerState::HalfOpen { probe_interval };
            // A readmitted lane consumes replies again (an injected
            // wedge is healed by the probe).
            self.lanes[shard].wedged.store(false, Ordering::SeqCst);
            self.ring.lock().unwrap().add(shard);
            if let Some(plan) = self.plan() {
                plan.record(format!("router: shard {shard} readmitted half-open for a probe"));
            }
        }
    }

    /// Records the health of one delivered reply into the shard's
    /// breaker: a healthy reply recloses a half-open breaker (or resets
    /// the failure streak); an `internal`-kind reply counts toward the
    /// trip threshold, and fails a probe outright.
    fn note_reply(&self, shard: usize, healthy: bool) {
        let mut state = self.breakers[shard].lock().unwrap();
        match (*state, healthy) {
            (BreakerState::HalfOpen { .. }, true) => {
                *state = BreakerState::Closed { failures: 0 };
                ResilienceCounters::bump(&self.resilience.breaker_reclosed);
                drop(state);
                if let Some(plan) = self.plan() {
                    plan.record(format!(
                        "router: breaker reclosed on shard {shard} (probe succeeded)"
                    ));
                }
            }
            (BreakerState::Closed { failures }, true) if failures > 0 => {
                *state = BreakerState::Closed { failures: 0 };
            }
            (BreakerState::Closed { failures }, false) => {
                if failures + 1 >= self.cfg.breaker.failure_threshold {
                    *state = BreakerState::Closed { failures: 0 };
                    drop(state);
                    self.trip_shard(shard, "consecutive failures");
                } else {
                    *state = BreakerState::Closed { failures: failures + 1 };
                }
            }
            (BreakerState::HalfOpen { .. }, false) => {
                drop(state);
                self.trip_shard(shard, "probe failed");
            }
            // Late replies from an already-open breaker, and healthy
            // replies on a clean closed breaker: nothing to record.
            _ => {}
        }
    }

    /// Trips one shard's breaker open: out of the ring, in-flight slots
    /// redispatched, stale backend replies marked for skipping. The
    /// shard's server keeps running — readmission is the probe's job.
    fn trip_shard(&self, shard: usize, why: &str) {
        let lane = &self.lanes[shard];
        if lane.lost.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut state = self.breakers[shard].lock().unwrap();
            let interval = match *state {
                BreakerState::Open { .. } => return, // already tripped
                BreakerState::Closed { .. } => self.cfg.breaker.probe_after,
                // A failed probe doubles the wait before the next one.
                BreakerState::HalfOpen { probe_interval } => probe_interval * 2,
            };
            *state = BreakerState::Open {
                probe_at: Instant::now() + interval,
                probe_interval: interval,
            };
            let mut ring = self.ring.lock().unwrap();
            if ring.members().contains(&shard) {
                ring.remove(shard);
            }
        }
        ResilienceCounters::bump(&self.resilience.breaker_opened);
        let drained: Vec<Pending> = {
            let mut q = lane.inflight.lock().unwrap();
            // The backend will still answer these submissions
            // eventually; skip those stale replies so the FIFO stays
            // aligned when the shard is readmitted.
            lane.skip.fetch_add(q.len() as u64, Ordering::SeqCst);
            let v: Vec<Pending> = q.drain(..).collect();
            lane.cv.notify_all();
            v
        };
        if let Some(plan) = self.plan() {
            plan.record(format!(
                "router: breaker opened on shard {shard} ({why}); \
                 {} in-flight redispatched",
                drained.len()
            ));
        }
        for p in drained {
            self.redispatch(p, shard);
        }
    }

    /// Retries one slot whose shard failed under it: immediate failover
    /// on the first attempt, deterministic capped backoff after, with
    /// the documented in-slot refusals when the budget, the attempt
    /// cap, or retry-safety says stop.
    fn redispatch(&self, mut p: Pending, from_shard: usize) {
        p.attempts += 1;
        let r = self.cfg.retry;
        if p.deadline.is_some_and(|d| Instant::now() >= d) {
            ResilienceCounters::bump(&self.resilience.deadline_missed);
            deliver_deadline(
                &p,
                format!(
                    "deadline expired while failing over from shard {from_shard}; \
                     result not produced (the request may or may not have been evaluated)"
                ),
            );
            return;
        }
        // The client-facing hint: the deterministic wait the next
        // attempt would use — never zero, which would read as "hammer
        // the router immediately".
        let hint = parspeed_chaos::backoff_ms(
            r.backoff_base_ms,
            r.backoff_cap_ms,
            p.attempts + 1,
            r.seed,
            p.token,
        )
        .max(1);
        if !p.query.retry_safe() {
            deliver_refusal(
                &p,
                format!(
                    "shard {from_shard} was lost with the request in flight; not evaluated — \
                     this query measures wall-clock time and is not retry-safe; \
                     the ring has rebalanced, retry_after_ms={hint}"
                ),
            );
            return;
        }
        if p.attempts >= r.max_attempts {
            deliver_refusal(
                &p,
                format!(
                    "shard {from_shard} was lost with the request in flight; not evaluated — \
                     {} dispatch attempts exhausted; \
                     the ring has rebalanced, retry_after_ms={hint}",
                    p.attempts
                ),
            );
            return;
        }
        ResilienceCounters::bump(&self.resilience.retries);
        if !self.ring.lock().unwrap().members().contains(&from_shard) {
            // The shard left the ring: this retry lands on the key's
            // ring successor, not the same backend.
            ResilienceCounters::bump(&self.resilience.failovers);
        }
        let wait = parspeed_chaos::backoff_ms(
            r.backoff_base_ms,
            r.backoff_cap_ms,
            p.attempts,
            r.seed,
            p.token,
        );
        if wait > 0 {
            std::thread::sleep(Duration::from_millis(wait));
        }
        self.dispatch(p);
    }

    /// Kills one shard: ring removal, in-flight redispatch, backend
    /// drain. Returns the backend's final stats, or `None` if the shard
    /// was already out of the ring.
    fn kill_shard(&self, shard: usize) -> Option<ServerStats> {
        assert!(shard < self.cfg.shards, "shard {shard} out of range");
        {
            let mut ring = self.ring.lock().unwrap();
            if !ring.members().contains(&shard) {
                return None;
            }
            ring.remove(shard);
        }
        let lane = &self.lanes[shard];
        let drained: Vec<Pending> = {
            // Flag and drain under the lane lock: dispatchers that chose
            // this shard before the ring update re-route instead of
            // enqueueing behind a dead backend.
            let mut q = lane.inflight.lock().unwrap();
            lane.lost.store(true, Ordering::SeqCst);
            let v: Vec<Pending> = q.drain(..).collect();
            lane.cv.notify_all();
            v
        };
        if let Some(plan) = self.plan() {
            plan.record(format!(
                "router: shard {shard} lost; {} in-flight slot(s) redispatched",
                drained.len()
            ));
        }
        // Claim the backend before redispatching (so a concurrent
        // supervisor respawn can never install a replacement we would
        // then tear down), but shut it down only after: failovers
        // answer at the survivors' speed, not the corpse's.
        let server = self.servers.lock().unwrap()[shard].take();
        for p in drained {
            self.redispatch(p, shard);
        }
        server.map(Server::shutdown)
    }

    /// The router's own `health` record: uptime and drain flag, shard
    /// `null` (the router is the front, not a backend) — plus the
    /// additive `breakers` summary (one state word per shard). New
    /// fields append after the frozen six-field prefix; positional
    /// parsers of the original record keep working.
    fn health(&self) -> jsonl::Json {
        let mut json = health_to_json(
            self.epoch.elapsed().as_secs_f64(),
            self.draining.load(Ordering::SeqCst),
            None,
        );
        if let jsonl::Json::Obj(fields) = &mut json {
            fields.push((
                "breakers".into(),
                jsonl::Json::Arr(
                    self.shard_states().into_iter().map(|s| jsonl::Json::Str(s.into())).collect(),
                ),
            ));
        }
        json
    }

    /// The router-scoped `metrics` record: the fleet-level resilience
    /// counters plus each shard's breaker state. Per-shard serving
    /// metrics still live on the shards (`stats`/`trace` refuse here).
    fn metrics(&self) -> jsonl::Json {
        let breakers: Vec<jsonl::Json> = self
            .shard_states()
            .into_iter()
            .enumerate()
            .map(|(shard, state)| {
                jsonl::Json::Obj(vec![
                    ("shard".into(), jsonl::Json::Num(shard as f64)),
                    ("state".into(), jsonl::Json::Str(state.into())),
                ])
            })
            .collect();
        // The checkpoint counters live on the (typically fleet-shared)
        // store, not the router; fold them in, counting each distinct
        // store once.
        let mut snapshot = self.resilience.snapshot();
        let mut seen: Vec<*const CheckpointStore> = Vec::new();
        for shard in 0..self.cfg.shards {
            let engine = self.engine(shard);
            if let Some(store) = engine.checkpoint_store() {
                let ptr = Arc::as_ptr(store);
                if seen.contains(&ptr) {
                    continue;
                }
                seen.push(ptr);
                snapshot.checkpoints_taken += store.taken();
                snapshot.resumes += store.resumes();
            }
        }
        let resilience = jsonl::Json::Obj(
            snapshot
                .fields()
                .iter()
                .map(|&(k, v)| (k.to_string(), jsonl::Json::Num(v as f64)))
                .collect(),
        );
        jsonl::Json::Obj(vec![
            ("version".into(), jsonl::Json::Num(WIRE_VERSION as f64)),
            ("op".into(), jsonl::Json::Str("metrics".into())),
            ("scope".into(), jsonl::Json::Str("router".into())),
            ("resilience".into(), resilience),
            ("breakers".into(), jsonl::Json::Arr(breakers)),
        ])
    }

    /// The serving-only `topology` record: the live fleet as the ring
    /// sees it, plus each member's resident cache keys — the live
    /// workload profile [`predict`] sizes fleets from.
    fn topology(&self) -> jsonl::Json {
        let (members, replicas) = {
            let ring = self.ring.lock().unwrap();
            (ring.members().to_vec(), ring.replicas())
        };
        let lost: Vec<jsonl::Json> = (0..self.cfg.shards)
            .filter(|s| !members.contains(s))
            .map(|s| jsonl::Json::Num(s as f64))
            .collect();
        let resident: Vec<jsonl::Json> =
            members.iter().map(|&s| jsonl::Json::Num(self.engine(s).cache_len() as f64)).collect();
        jsonl::Json::Obj(vec![
            ("version".into(), jsonl::Json::Num(WIRE_VERSION as f64)),
            ("op".into(), jsonl::Json::Str("topology".into())),
            ("shards".into(), jsonl::Json::Num(members.len() as f64)),
            ("replicas".into(), jsonl::Json::Num(replicas as f64)),
            (
                "members".into(),
                jsonl::Json::Arr(members.iter().map(|&s| jsonl::Json::Num(s as f64)).collect()),
            ),
            ("lost".into(), jsonl::Json::Arr(lost)),
            ("resident".into(), jsonl::Json::Arr(resident)),
        ])
    }

    /// Trips the stall breaker if the lane's oldest in-flight slot has
    /// waited past the stall threshold with no reply at all.
    fn check_stall(&self, lane: &Lane) {
        let stalled = {
            let q = lane.inflight.lock().unwrap();
            !lane.lost.load(Ordering::SeqCst)
                && q.front().is_some_and(|p| p.submitted.elapsed() >= self.cfg.breaker.stall_after)
        };
        if stalled {
            self.trip_shard(lane.shard, "reply stall");
        }
    }

    /// Gather: pump one lane's replies back into their origin slots, in
    /// lane-FIFO order, applying any armed injected faults on the way.
    /// Exits when the lane is lost, or when the router is draining and
    /// nothing is in flight.
    fn gather_loop(&self, lane: &Lane) {
        let poll = self.cfg.poll;
        // The client can only change between gather generations (a
        // respawn swaps it after this loop has exited on `lost`), so
        // one clone up front is safe.
        let client = lane.client();
        loop {
            // Park until something is in flight (or the lane is done).
            {
                let mut q = lane.inflight.lock().unwrap();
                loop {
                    if lane.lost.load(Ordering::SeqCst) {
                        return;
                    }
                    if !q.is_empty() {
                        break;
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    q = lane.cv.wait_timeout(q, poll).unwrap().0;
                }
            }
            // An injected wedge: stop consuming replies, as a hung
            // backend connection would — only the stall breaker (which
            // redispatches the waiting slots) gets the lane out.
            if lane.wedged.load(Ordering::SeqCst) {
                self.check_stall(lane);
                std::thread::sleep(poll.min(Duration::from_millis(5)));
                continue;
            }
            // Short poll, not a blocking recv: a kill can answer the
            // pending slots out from under us, and the next park
            // iteration must notice the lost flag.
            let Some((_, response)) = client.recv_timeout(poll) else {
                // No reply inside the window: a slow backend is fine,
                // a stalled one must trip.
                self.check_stall(lane);
                continue;
            };
            let delay = lane.delay_ms.swap(0, Ordering::SeqCst);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            enum Got {
                Deliver(Box<Pending>),
                Stale,
                Done,
            }
            let got = {
                let mut q = lane.inflight.lock().unwrap();
                if lane.lost.load(Ordering::SeqCst) {
                    // The kill already answered every pending slot;
                    // this reply (flushed by the backend's drain) has
                    // no waiter.
                    Got::Done
                } else if lane
                    .skip
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    // A stale answer for a slot a breaker trip already
                    // redispatched: discard to keep the FIFO aligned.
                    Got::Stale
                } else {
                    Got::Deliver(Box::new(
                        q.pop_front().expect("backend reply without a pending request"),
                    ))
                }
            };
            let p = match got {
                Got::Done => return,
                Got::Stale => continue,
                Got::Deliver(p) => *p,
            };
            if lane
                .drop_next
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                // Injected reply drop: the backend's answer evaporates;
                // the slot retries instead of waiting forever.
                ResilienceCounters::bump(&self.resilience.replies_dropped);
                if let Some(plan) = self.plan() {
                    plan.record(format!(
                        "router: dropped a reply on lane {}; slot redispatched",
                        lane.shard
                    ));
                }
                self.redispatch(p, lane.shard);
                lane.cv.notify_all();
                continue;
            }
            if lane
                .dup_next
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                // Injected duplicate: the reply "arrives twice"; the
                // second copy is suppressed — every slot is delivered
                // exactly once, never routed twice.
                ResilienceCounters::bump(&self.resilience.duplicates_suppressed);
                if let Some(plan) = self.plan() {
                    plan.record(format!(
                        "router: suppressed a duplicate reply on lane {}",
                        lane.shard
                    ));
                }
            }
            // Book-keep before delivering: a closed-loop client that
            // just saw its reply must also see the counters it caused.
            let healthy = !matches!(&response, Response::Invalid(e) if e.kind() == "internal");
            self.note_reply(lane.shard, healthy);
            deliver(&p, response);
            lane.cv.notify_all();
        }
    }

    /// The supervisor thread: scans for lost shards and heals them.
    /// Wedged-but-alive shards are deliberately not its business — the
    /// stall breaker already trips, probes, and recloses those; the
    /// supervisor handles the one failure the breaker cannot: the
    /// server is *gone*.
    fn supervisor_loop(self: &Arc<Self>) {
        let Some(policy) = self.cfg.supervisor else { return };
        let tick = self.cfg.poll.min(Duration::from_millis(10));
        while !self.draining.load(Ordering::SeqCst) {
            for shard in 0..self.cfg.shards {
                self.supervise_shard(shard, policy);
            }
            std::thread::sleep(tick);
        }
    }

    /// One supervision step for one shard: observe loss, debounce,
    /// spend (or exhaust) the respawn budget, respawn.
    fn supervise_shard(self: &Arc<Self>, shard: usize, policy: SupervisorPolicy) {
        let lane = &self.lanes[shard];
        if !lane.lost.load(Ordering::SeqCst) {
            self.sup.lock().unwrap()[shard].lost_at = None;
            return;
        }
        let attempt = {
            let mut sup = self.sup.lock().unwrap();
            let st = &mut sup[shard];
            if st.evicted {
                return;
            }
            if st.respawns >= policy.max_respawns {
                st.evicted = true;
                let spent = st.respawns;
                drop(sup);
                // Machine-readable: the one line an operator's tooling
                // greps for when a shard leaves the fleet for good.
                if let Some(plan) = self.plan() {
                    plan.record(format!(
                        "{{\"event\":\"shard-evicted\",\"shard\":{shard},\"respawns\":{spent}}}"
                    ));
                }
                return;
            }
            let lost_at = *st.lost_at.get_or_insert_with(Instant::now);
            let attempt = st.respawns + 1;
            // Deterministic-jitter backoff on top of the debounce floor:
            // attempt 1 waits only `respawn_after`, later attempts add
            // the capped `backoff_ms` schedule.
            let base = policy.respawn_backoff.as_millis() as u64;
            let jitter = parspeed_chaos::backoff_ms(
                base,
                base.saturating_mul(32),
                attempt,
                self.cfg.retry.seed,
                mix(shard as u64),
            );
            if lost_at.elapsed() < policy.respawn_after + Duration::from_millis(jitter) {
                return;
            }
            st.respawns = attempt; // every attempt spends budget
            attempt
        };
        // A scripted denial (chaos `respawn-deny:S`): the attempt burns
        // with no replacement — capacity was refused.
        if lane
            .respawn_deny
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            self.sup.lock().unwrap()[shard].lost_at = Some(Instant::now());
            if let Some(plan) = self.plan() {
                plan.record(format!("router: respawn of shard {shard} denied (attempt {attempt})"));
            }
            return;
        }
        self.respawn_shard(shard, attempt, policy);
    }

    /// Spawns a replacement shard: fresh server + engine from the
    /// factory, readiness probe, cache-warm replay, and — only once all
    /// of that held — readmission to the ring. A failure at any step
    /// abandons the replacement and leaves the ring exactly as it was:
    /// the ring changes at most once per successful respawn, never
    /// half-way.
    fn respawn_shard(self: &Arc<Self>, shard: usize, attempt: u32, policy: SupervisorPolicy) {
        let lane = &self.lanes[shard];
        let abandon = |server: Server, why: &str| {
            server.shutdown();
            self.sup.lock().unwrap()[shard].lost_at = Some(Instant::now());
            if let Some(plan) = self.plan() {
                plan.record(format!(
                    "router: respawn of shard {shard} abandoned ({why}, attempt {attempt})"
                ));
            }
        };
        let engine = (self.factory)(shard);
        let server =
            Server::start(engine.clone(), ServerConfig { shard: Some(shard), ..self.cfg.backend });
        let client = server.client();

        // Readiness: the replacement must answer a real query before it
        // can own keys.
        client.submit(Request::optimize(ArchKind::SyncBus, 64).procs(4).query());
        if client.recv_timeout(self.cfg.breaker.stall_after).is_none() {
            abandon(server, "readiness probe stalled");
            return;
        }

        // Cache-warm rejoin: replay the warm fraction of the shard's
        // hot keys, newest first. Keys only — the replacement computes
        // every value through the normal engine path, so its replies
        // are bit-identical to any other shard's.
        let keys: Vec<Query> = {
            let hot = lane.hot.lock().unwrap();
            let want = ((hot.len() as f64) * policy.warm_fraction.clamp(0.0, 1.0)).ceil() as usize;
            hot.iter().rev().take(want).map(|(_, q)| q.clone()).collect()
        };
        *self.warmups[shard].lock().unwrap() =
            WarmupStatus { active: true, target: keys.len() as u64, replayed: 0 };
        for query in &keys {
            client.submit(query.clone());
            if client.recv_timeout(self.cfg.breaker.stall_after).is_none() {
                self.warmups[shard].lock().unwrap().active = false;
                abandon(server, "warmup replay stalled");
                return;
            }
            ResilienceCounters::bump(&self.resilience.warmup_keys_replayed);
            self.warmups[shard].lock().unwrap().replayed += 1;
        }
        self.warmups[shard].lock().unwrap().active = false;

        // Install: server and client in place, injected faults cleared,
        // breaker closed, gather thread running — and only then the
        // ring readmission that routes traffic here.
        self.servers.lock().unwrap()[shard] = Some(server);
        *self.engines[shard].lock().unwrap() = engine;
        *lane.client.lock().unwrap() = Arc::new(client);
        lane.skip.store(0, Ordering::SeqCst);
        lane.delay_ms.store(0, Ordering::SeqCst);
        lane.drop_next.store(0, Ordering::SeqCst);
        lane.dup_next.store(0, Ordering::SeqCst);
        lane.wedged.store(false, Ordering::SeqCst);
        *self.breakers[shard].lock().unwrap() = BreakerState::Closed { failures: 0 };
        lane.lost.store(false, Ordering::SeqCst);
        let gather = {
            let core = Arc::clone(self);
            let lane = Arc::clone(&self.lanes[shard]);
            std::thread::Builder::new()
                .name(format!("parspeed-gather-{shard}-r{attempt}"))
                .spawn(move || core.gather_loop(&lane))
                .expect("spawn gather thread")
        };
        self.extra_gathers.lock().unwrap().push(gather);
        {
            let mut ring = self.ring.lock().unwrap();
            if !ring.members().contains(&shard) {
                ring.add(shard);
            }
        }
        ResilienceCounters::bump(&self.resilience.respawns);
        if let Some(plan) = self.plan() {
            plan.record(format!(
                "router: shard {shard} respawned and rejoined the ring \
                 (attempt {attempt}, {} key(s) warm)",
                keys.len()
            ));
        }
        // An armed crash-loop (chaos `crashloop:S:N`): the replacement
        // dies on arrival, spending another respawn from the budget.
        if lane
            .crashloop
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            if let Some(plan) = self.plan() {
                plan.record(format!("router: crash-loop killed shard {shard} again"));
            }
            self.kill_shard(shard);
            self.sup.lock().unwrap()[shard].lost_at = Some(Instant::now());
        }
    }

    /// Each shard's one-word condition for `metrics` and `health`:
    /// `evicted` dominates `lost` dominates the breaker state.
    fn shard_states(&self) -> Vec<&'static str> {
        let sup = self.sup.lock().unwrap();
        (0..self.cfg.shards)
            .map(|shard| {
                if sup[shard].evicted {
                    "evicted"
                } else if self.lanes[shard].lost.load(Ordering::SeqCst) {
                    "lost"
                } else {
                    self.breakers[shard].lock().unwrap().name()
                }
            })
            .collect()
    }

    /// The `warmup` wire record: per-shard cache-warm rejoin progress.
    fn warmup(&self) -> jsonl::Json {
        let shards: Vec<jsonl::Json> = (0..self.cfg.shards)
            .map(|shard| {
                let w = *self.warmups[shard].lock().unwrap();
                jsonl::Json::Obj(vec![
                    ("shard".into(), jsonl::Json::Num(shard as f64)),
                    ("active".into(), jsonl::Json::Bool(w.active)),
                    ("target".into(), jsonl::Json::Num(w.target as f64)),
                    ("replayed".into(), jsonl::Json::Num(w.replayed as f64)),
                ])
            })
            .collect();
        jsonl::Json::Obj(vec![
            ("version".into(), jsonl::Json::Num(WIRE_VERSION as f64)),
            ("op".into(), jsonl::Json::Str("warmup".into())),
            ("shards".into(), jsonl::Json::Arr(shards)),
        ])
    }
}

struct RouterIo {
    conn_threads: Vec<JoinHandle<()>>,
    streams: Vec<TcpStream>,
    next_conn_id: u64,
}

/// The running router: shard servers, gather threads, and any TCP
/// frontends attached. Dropping it without [`shutdown`](Router::shutdown)
/// leaks the fleet's threads — call `shutdown`.
pub struct Router {
    core: Arc<Core>,
    gathers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
    io: Arc<Mutex<RouterIo>>,
}

impl Router {
    /// Starts a fleet of `config.shards` backends, each over its own
    /// default [`Engine`].
    pub fn start(config: RouterConfig) -> Router {
        Self::start_with(config, |_| Arc::new(Engine::default()))
    }

    /// Starts the fleet with one engine per shard from `factory` —
    /// benches and tests use this to pin per-shard cache capacity (the
    /// paper's per-processor memory constraint).
    pub fn start_with(
        config: RouterConfig,
        factory: impl Fn(usize) -> Arc<Engine> + Send + Sync + 'static,
    ) -> Router {
        assert!(config.shards >= 1, "router needs at least one shard");
        let mut engines = Vec::with_capacity(config.shards);
        let mut servers = Vec::with_capacity(config.shards);
        let mut lanes = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let engine = factory(shard);
            let server = Server::start(
                engine.clone(),
                ServerConfig { shard: Some(shard), ..config.backend },
            );
            let client = server.client();
            engines.push(Mutex::new(engine));
            servers.push(Some(server));
            lanes.push(Arc::new(Lane {
                shard,
                client: Mutex::new(Arc::new(client)),
                inflight: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                lost: AtomicBool::new(false),
                skip: AtomicU64::new(0),
                delay_ms: AtomicU64::new(0),
                drop_next: AtomicU64::new(0),
                dup_next: AtomicU64::new(0),
                wedged: AtomicBool::new(false),
                hot: Mutex::new(VecDeque::new()),
                respawn_deny: AtomicU64::new(0),
                crashloop: AtomicU64::new(0),
            }));
        }
        let core = Arc::new(Core {
            cfg: config,
            ring: Mutex::new(HashRing::with_shards(config.shards, config.replicas)),
            lanes,
            engines,
            servers: Mutex::new(servers),
            epoch: Instant::now(),
            draining: AtomicBool::new(false),
            resilience: Arc::new(ResilienceCounters::new()),
            breakers: (0..config.shards)
                .map(|_| Mutex::new(BreakerState::Closed { failures: 0 }))
                .collect(),
            faults: Mutex::new(None),
            factory: Box::new(factory),
            sup: Mutex::new(vec![SupState::default(); config.shards]),
            warmups: (0..config.shards).map(|_| Mutex::new(WarmupStatus::default())).collect(),
            extra_gathers: Mutex::new(Vec::new()),
        });
        let gathers = core
            .lanes
            .iter()
            .map(|lane| {
                let core = Arc::clone(&core);
                let lane = Arc::clone(lane);
                std::thread::Builder::new()
                    .name(format!("parspeed-gather-{}", lane.shard))
                    .spawn(move || core.gather_loop(&lane))
                    .expect("spawn gather thread")
            })
            .collect();
        let supervisor = core.cfg.supervisor.is_some().then(|| {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("parspeed-supervisor".into())
                .spawn(move || core.supervisor_loop())
                .expect("spawn supervisor thread")
        });
        Router {
            core,
            gathers,
            supervisor,
            acceptors: Vec::new(),
            io: Arc::new(Mutex::new(RouterIo {
                conn_threads: Vec::new(),
                streams: Vec::new(),
                next_conn_id: 0,
            })),
        }
    }

    /// The fleet configuration this router was started with.
    pub fn config(&self) -> &RouterConfig {
        &self.core.cfg
    }

    /// The fleet-level resilience counters: every retry, failover,
    /// missed deadline, breaker transition, and suppressed duplicate.
    pub fn resilience(&self) -> Arc<ResilienceCounters> {
        Arc::clone(&self.core.resilience)
    }

    /// The router-scoped `metrics` record (also answered on the wire).
    pub fn metrics(&self) -> jsonl::Json {
        self.core.metrics()
    }

    /// The `warmup` record: per-shard cache-warm rejoin progress (also
    /// answered on the wire).
    pub fn warmup(&self) -> jsonl::Json {
        self.core.warmup()
    }

    /// Shards the supervisor permanently evicted (respawn budget
    /// exhausted). Empty without a supervisor.
    pub fn evicted_shards(&self) -> Vec<usize> {
        let sup = self.core.sup.lock().unwrap();
        (0..self.core.cfg.shards).filter(|&s| sup[s].evicted).collect()
    }

    /// Installs (or clears, with `None`) a deterministic fault plan:
    /// scripted kills, delays, drops, duplicates, and wedges fire at
    /// their request indices, and every recovery action is recorded to
    /// the plan's event trace — the same seed replays the same trace.
    pub fn install_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.core.faults.lock().unwrap() = plan;
    }

    /// Live cached outcomes per ring member, `(shard, resident keys)` —
    /// the affinity evidence: with key-affinity routing the sum equals
    /// the workload's distinct key count, with no key cached twice.
    pub fn resident_keys(&self) -> Vec<(usize, usize)> {
        let members = self.core.ring.lock().unwrap().members().to_vec();
        members.into_iter().map(|s| (s, self.core.engine(s).cache_len())).collect()
    }

    /// The serving-only `topology` record (also answered on the wire).
    pub fn topology(&self) -> jsonl::Json {
        self.core.topology()
    }

    /// Opens an in-process connection: typed queries scattered across
    /// the fleet, replies gathered back in submission order — the exact
    /// semantics of a TCP connection, without the wire.
    pub fn client(&self) -> RouterClient {
        let id = {
            let mut io = self.io.lock().unwrap();
            let id = io.next_conn_id;
            io.next_conn_id += 1;
            id
        };
        RouterClient { conn: Arc::new(ConnShared::new(id)), core: Arc::clone(&self.core) }
    }

    /// Kills one shard: removes it from the ring (only its keys remap —
    /// every other key keeps its warm backend), *redispatches* every
    /// retry-safe request in flight on it to the key's ring successor
    /// (retry-unsafe ones answer the documented `overloaded` refusal
    /// with a `retry_after_ms=` hint), and drains its server. Returns
    /// the backend's final stats, or `None` if the shard was already
    /// gone.
    pub fn kill_shard(&self, shard: usize) -> Option<ServerStats> {
        self.core.kill_shard(shard)
    }

    /// Binds `addr` and accepts wire-v2 JSONL connections on a
    /// background thread — the same wire a single server speaks, so
    /// clients cannot tell a router from a server (except by asking:
    /// `topology` and the router-scoped `metrics` answer here,
    /// `stats`/`trace` only answer on a shard). Returns the bound
    /// address (so `:0` works).
    pub fn listen(&mut self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        match self.core.cfg.io {
            IoModel::EventLoop => {
                let handler: Arc<dyn WireHandler> = Arc::new(RouterHandler {
                    core: Arc::clone(&self.core),
                    io: Arc::clone(&self.io),
                });
                let thread = spawn_event_loop(
                    listener,
                    handler,
                    self.core.cfg.event_loop,
                    "parspeed-route-eventloop".into(),
                )?;
                self.acceptors.push(thread);
            }
            IoModel::Threads => {
                listener.set_nonblocking(true)?;
                let core = Arc::clone(&self.core);
                let io_state = Arc::clone(&self.io);
                let accept_poll = self.core.cfg.accept_poll;
                let acceptor = std::thread::Builder::new()
                    .name("parspeed-route-accept".into())
                    .spawn(move || loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if let Err(e) = spawn_conn(stream, &core, &io_state) {
                                    eprintln!("note: dropping connection: {e}");
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                if core.draining.load(Ordering::SeqCst) {
                                    return;
                                }
                                std::thread::sleep(accept_poll);
                            }
                            Err(_) => return,
                        }
                    })
                    .expect("spawn route acceptor");
                self.acceptors.push(acceptor);
            }
        }
        Ok(local)
    }

    /// Graceful drain: refuses new work in-slot, flushes every in-flight
    /// reply through its origin slot, drains every surviving backend,
    /// tears down connections, joins every thread. Returns each
    /// surviving shard's final server stats.
    pub fn shutdown(self) -> Vec<(usize, ServerStats)> {
        self.core.draining.store(true, Ordering::SeqCst);
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        // The supervisor exits on the drain flag; stop it first so no
        // respawn races the teardown below.
        if let Some(supervisor) = self.supervisor {
            let _ = supervisor.join();
        }
        // Wait for every live lane to flush: backends are still running,
        // so every pending slot gets its real reply.
        let poll = self.core.cfg.poll;
        for lane in &self.core.lanes {
            if lane.lost.load(Ordering::SeqCst) {
                continue;
            }
            let mut q = lane.inflight.lock().unwrap();
            while !q.is_empty() {
                q = lane.cv.wait_timeout(q, poll).unwrap().0;
            }
        }
        for gather in self.gathers {
            let _ = gather.join();
        }
        for gather in std::mem::take(&mut *self.core.extra_gathers.lock().unwrap()) {
            let _ = gather.join();
        }
        let servers = std::mem::take(&mut *self.core.servers.lock().unwrap());
        let stats: Vec<(usize, ServerStats)> = servers
            .into_iter()
            .enumerate()
            .filter_map(|(shard, server)| server.map(|s| (shard, s.shutdown())))
            .collect();
        // Every reply slot is answered; unblock the readers (EOF) so the
        // writers flush and exit.
        let (streams, conn_threads) = {
            let mut io = self.io.lock().unwrap();
            (std::mem::take(&mut io.streams), std::mem::take(&mut io.conn_threads))
        };
        for stream in &streams {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for thread in conn_threads {
            let _ = thread.join();
        }
        stats
    }
}

/// An in-process connection to the router: typed queries in, typed
/// responses out, gathered in submission order — the router-side twin
/// of [`parspeed_server::Client`].
pub struct RouterClient {
    conn: Arc<ConnShared>,
    core: Arc<Core>,
}

impl RouterClient {
    /// Submits one query, returning its connection-local sequence
    /// number. Never blocks beyond the lane lock: refusals (draining
    /// router, empty ring) are answered in the reply slot like any
    /// other reply.
    pub fn submit(&self, query: Query) -> u64 {
        self.submit_with_deadline(query, None)
    }

    /// [`submit`](Self::submit) with an absolute deadline: if the
    /// budget expires before any shard answers — across queueing,
    /// batching, and failover — the slot answers the
    /// `deadline_exceeded` kind instead of blocking forever.
    pub fn submit_with_deadline(&self, query: Query, deadline: Option<Instant>) -> u64 {
        let seq = self.conn.alloc_seq();
        self.core.dispatch(Pending {
            conn: Arc::clone(&self.conn),
            seq,
            query,
            version: WIRE_VERSION,
            line_no: seq as usize + 1,
            render: false,
            deadline,
            attempts: 0,
            token: mix(self.conn.id).wrapping_add(seq),
            submitted: Instant::now(),
        });
        seq
    }

    /// Receives the next reply in submission order, blocking until it
    /// is released. Panics if nothing is outstanding.
    pub fn recv(&self) -> (u64, Response) {
        assert!(!self.conn.idle(), "recv with no outstanding submission");
        match self.conn.next_released() {
            Some((seq, Delivery::Typed(response))) => (seq, response),
            Some((_, Delivery::Line(_))) => unreachable!("rendered delivery on a typed client"),
            None => unreachable!("in-process connections never reach EOF"),
        }
    }

    /// [`recv`](Self::recv) with a deadline; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(u64, Response)> {
        match self.conn.next_released_timeout(timeout)? {
            (seq, Delivery::Typed(response)) => Some((seq, response)),
            (_, Delivery::Line(_)) => unreachable!("rendered delivery on a typed client"),
        }
    }

    /// Submit one query and wait for its reply.
    pub fn call(&self, query: Query) -> Response {
        let seq = self.submit(query);
        let (got, response) = self.recv();
        assert_eq!(got, seq, "per-connection ordering violated");
        response
    }

    /// Submit one query with a deadline and wait for its reply (which
    /// may be the in-slot `deadline_exceeded` answer).
    pub fn call_with_deadline(&self, query: Query, deadline: Instant) -> Response {
        let seq = self.submit_with_deadline(query, Some(deadline));
        let (got, response) = self.recv();
        assert_eq!(got, seq, "per-connection ordering violated");
        response
    }
}

/// Registers an accepted stream and spawns its reader/writer pair.
fn spawn_conn(
    stream: TcpStream,
    core: &Arc<Core>,
    io_state: &Arc<Mutex<RouterIo>>,
) -> io::Result<()> {
    let reader_stream = stream.try_clone()?;
    let teardown_clone = stream.try_clone()?;
    let mut io = io_state.lock().unwrap();
    let id = io.next_conn_id;
    io.next_conn_id += 1;
    let conn = Arc::new(ConnShared::new(id));

    let reader_conn = Arc::clone(&conn);
    let reader_core = Arc::clone(core);
    let reader = std::thread::Builder::new()
        .name(format!("parspeed-route-read-{id}"))
        .spawn(move || reader_loop(reader_stream, reader_conn, reader_core))?;
    let writer_conn = Arc::clone(&conn);
    let writer = std::thread::Builder::new()
        .name(format!("parspeed-route-write-{id}"))
        .spawn(move || writer_loop(stream, writer_conn))?;

    io.streams.push(teardown_clone);
    io.conn_threads.push(reader);
    io.conn_threads.push(writer);
    Ok(())
}

/// Handles one trimmed, non-empty wire line for a router connection —
/// shared by both frontends (thread-per-connection and the event loop)
/// so the router's wire semantics cannot drift between them. The wire
/// is the server's wire; the router-only differences are `topology`
/// (answered here, unknown to a shard), `metrics` (answered here with
/// the router-scoped resilience record), `warmup`, and `stats`/`trace`
/// (per-shard state the router refuses to misattribute — probe a shard
/// directly).
///
/// `shed` carries the event-loop write-backpressure verdict, exactly as
/// in the server: engine-bound queries are refused in-slot with the
/// `overloaded` answer; the cheap router ops still answer.
fn process_line(
    core: &Arc<Core>,
    conn: &Arc<ConnShared>,
    text: &str,
    line_no: usize,
    shed: Option<&str>,
) {
    let seq = conn.alloc_seq();
    let parsed = match jsonl::parse(text) {
        Ok(v) => match v.get("op").and_then(jsonl::Json::as_str) {
            Some("health") => {
                conn.route(seq, Delivery::Line(core.health().render()));
                return;
            }
            Some("topology") => {
                conn.route(seq, Delivery::Line(core.topology().render()));
                return;
            }
            Some("metrics") => {
                conn.route(seq, Delivery::Line(core.metrics().render()));
                return;
            }
            Some("warmup") => {
                conn.route(seq, Delivery::Line(core.warmup().render()));
                return;
            }
            Some(op @ ("stats" | "trace")) => {
                let e = jsonl::LineError {
                    version: WIRE_VERSION,
                    error: ParspeedError::unsupported(format!(
                        "op \"{op}\" reports per-shard state; \
                         probe a shard's own serving address"
                    )),
                };
                conn.route(seq, Delivery::Line(jsonl::render_parse_error(&e, line_no)));
                return;
            }
            _ => jsonl::parse_query_value(&v),
        },
        // A line that is not JSON at all has no version field to honor,
        // so it answers in the *current* wire shape (carrying
        // `error_kind`), not the legacy v1 one — same rule as the
        // server's frontend.
        Err(e) => Err(jsonl::LineError { version: WIRE_VERSION, error: ParspeedError::parse(e) }),
    };
    match parsed {
        Ok(parsed) => {
            let now = Instant::now();
            let pending = Pending {
                conn: Arc::clone(conn),
                seq,
                query: parsed.query,
                version: parsed.version,
                line_no,
                render: true,
                // The budget starts at admission: queueing, batching,
                // and failover all spend from it. A budget too large to
                // represent (`u64::MAX` ms) is no deadline at all —
                // `checked_add` saturates to `None` instead of
                // panicking the frontend on `Instant` overflow.
                deadline: parsed
                    .deadline_ms
                    .and_then(|ms| now.checked_add(Duration::from_millis(ms))),
                attempts: 0,
                token: mix(conn.id).wrapping_add(seq),
                submitted: now,
            };
            match shed {
                Some(msg) => deliver_refusal(&pending, msg.to_string()),
                None => core.dispatch(pending),
            }
        }
        Err(e) => conn.route(seq, Delivery::Line(jsonl::render_parse_error(&e, line_no))),
    }
}

/// Drives one connection's read half: parse lines, intercept the
/// router-level ops, scatter everything else (the thread-per-connection
/// frontend; the event loop calls the same [`process_line`]).
fn reader_loop(stream: TcpStream, conn: Arc<ConnShared>, core: Arc<Core>) {
    let mut line_no = 0usize;
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        line_no += 1;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        process_line(&core, &conn, text, line_no, None);
    }
    conn.mark_eof();
}

/// Glues the shared event loop to the router core: same accept, buffer,
/// and backpressure machinery as a server's frontend, dispatching into
/// the scatter/gather fleet instead of a batcher.
struct RouterHandler {
    core: Arc<Core>,
    io: Arc<Mutex<RouterIo>>,
}

impl WireHandler for RouterHandler {
    fn connect(&self) -> Arc<ConnShared> {
        let mut io = self.io.lock().unwrap();
        let id = io.next_conn_id;
        io.next_conn_id += 1;
        Arc::new(ConnShared::new(id).with_resilience(Arc::clone(&self.core.resilience)))
    }

    fn line(
        &self,
        conn: &Arc<ConnShared>,
        text: &str,
        line_no: usize,
        _v1_lines: &mut u64,
        shed: Option<&str>,
    ) {
        process_line(&self.core, conn, text, line_no, shed);
    }

    fn disconnect(&self, conn: &Arc<ConnShared>, _v1_lines: u64) {
        conn.mark_eof();
    }

    fn draining(&self) -> bool {
        self.core.draining.load(Ordering::SeqCst)
    }
}

/// Drives one connection's write half: emit released replies in
/// sequence order until the stream is flushed-and-done.
fn writer_loop(stream: TcpStream, conn: Arc<ConnShared>) {
    let mut out = BufWriter::new(&stream);
    while let Some((_seq, delivery)) = conn.next_released() {
        let line = match delivery {
            Delivery::Line(line) => line,
            Delivery::Typed(_) => unreachable!("typed delivery on a TCP connection"),
        };
        if out.write_all(line.as_bytes()).is_err()
            || out.write_all(b"\n").is_err()
            || out.flush().is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parspeed_engine::{ArchKind, EvalValue, Request};

    fn optimize(n: usize) -> Query {
        Request::optimize(ArchKind::SyncBus, n).procs(64).query()
    }

    #[test]
    fn round_trip_through_the_fleet_matches_the_engine() {
        let router = Router::start(RouterConfig { shards: 3, ..RouterConfig::default() });
        let client = router.client();
        match client.call(optimize(256)) {
            Response::Single(Ok(EvalValue::Optimum { processors, .. })) => {
                assert_eq!(processors, 14) // the paper's §6.1 anchor
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = router.shutdown();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|(_, s)| s.completed).sum::<u64>(), 1);
    }

    #[test]
    fn topology_wire_shape_is_frozen() {
        let router = Router::start(RouterConfig { shards: 2, ..RouterConfig::default() });
        let client = router.client();
        client.call(optimize(256));
        let json = router.topology();
        // The shape contract wire clients depend on: field order included.
        let jsonl::Json::Obj(fields) = &json else { panic!("topology is not an object") };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["version", "op", "shards", "replicas", "members", "lost", "resident"]);
        let rendered = json.render();
        assert!(rendered.starts_with(r#"{"version":2,"op":"topology","shards":2,"#), "{rendered}");
        assert!(rendered.contains(r#""members":[0,1],"lost":[]"#), "{rendered}");
        // One query was cached somewhere in the fleet.
        let total: usize = router.resident_keys().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1);
        router.shutdown();
    }

    #[test]
    fn router_metrics_reports_resilience_and_breakers() {
        let router = Router::start(RouterConfig { shards: 2, ..RouterConfig::default() });
        let json = router.metrics();
        let jsonl::Json::Obj(fields) = &json else { panic!("metrics is not an object") };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["version", "op", "scope", "resilience", "breakers"]);
        let rendered = json.render();
        assert!(rendered.contains(r#""scope":"router""#), "{rendered}");
        assert!(rendered.contains(r#""retries":0"#), "{rendered}");
        assert!(rendered.contains(r#"{"shard":0,"state":"closed"}"#), "{rendered}");
        router.kill_shard(1);
        let rendered = router.metrics().render();
        assert!(rendered.contains(r#"{"shard":1,"state":"lost"}"#), "{rendered}");
        router.shutdown();
    }

    #[test]
    fn submissions_while_draining_get_the_refusal_in_slot() {
        let router = Router::start(RouterConfig { shards: 2, ..RouterConfig::default() });
        let client = router.client();
        client.call(optimize(128));
        router.shutdown();
        match client.call(optimize(256)) {
            Response::Invalid(e) => {
                assert_eq!(e.kind(), "overloaded");
                assert!(e.to_string().contains("draining"), "{e}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
