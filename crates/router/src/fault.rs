//! Retry, failover, and circuit-breaker policy for the router.
//!
//! The router's resilience story has three deterministic pieces, all
//! configured here and executed in `lib.rs`:
//!
//! * **Retry with capped exponential backoff** ([`RetryPolicy`]): when a
//!   shard is lost with a request in flight, a retry-safe request
//!   ([`parspeed_engine::Query::retry_safe`]) fails over to the key's
//!   ring successor. The first failover is immediate; later attempts
//!   back off on the deterministic schedule of
//!   [`parspeed_chaos::backoff_ms`], so the same seed replays the same
//!   waits.
//! * **Per-shard circuit breaker** ([`BreakerPolicy`]):
//!   a shard that stalls (its oldest in-flight request exceeds
//!   `stall_after` with no reply) or fails repeatedly (consecutive
//!   `internal`-kind replies reach `failure_threshold`) is tripped out
//!   of the ring. In-flight requests on the tripped shard redispatch;
//!   after `probe_after` the shard is readmitted half-open, and one
//!   successful reply recloses the breaker. A failed probe re-opens it
//!   with a doubled probe interval.
//! * **Deadlines**: a request whose budget expires before any shard
//!   answers is refused in-slot with the `deadline_exceeded` kind; the
//!   remaining budget travels to the backend with every (re)dispatch.
//! * **Shard supervision** ([`SupervisorPolicy`]): a *lost* shard (its
//!   server is gone — a wedged-but-alive shard is the breaker's
//!   problem) is respawned by the router's supervisor: a fresh
//!   server + engine, a readiness probe, a cache-warm replay of the
//!   shard's hot keys, and only then readmission to the ring. Respawn
//!   attempts are budgeted and backed off on the same deterministic
//!   schedule as retries; a shard that keeps dying is permanently
//!   evicted — the ring shrinks once, it never flaps.

use std::time::Duration;

/// Retry/failover policy for requests lost with a shard
/// (`parspeed route` exposes every field as a flag).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total dispatch attempts per request (first try included); when
    /// exhausted the request answers `overloaded` with a
    /// machine-readable `retry_after_ms=` hint.
    pub max_attempts: u32,
    /// Backoff base in milliseconds: attempt 3 waits up to `base`,
    /// attempt 4 up to `2×base`, … (the first failover never waits).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic backoff jitter — the same seed and
    /// the same traffic replay the same waits.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff_base_ms: 2, backoff_cap_ms: 50, seed: 0 }
    }
}

/// Per-shard circuit-breaker policy.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive `internal`-kind replies that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker waits before readmitting the shard
    /// half-open for a probe. Doubles on every failed probe.
    pub probe_after: Duration,
    /// A shard whose oldest in-flight request has waited this long with
    /// no reply at all is declared stalled and tripped.
    pub stall_after: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            probe_after: Duration::from_millis(250),
            stall_after: Duration::from_secs(1),
        }
    }
}

/// Shard supervision: when and how the router respawns a lost shard.
///
/// `parspeed route` exposes these as `--respawn-after-ms`,
/// `--max-respawns`, and `--warm-fraction`.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// How long a shard must have been continuously lost before the
    /// first respawn attempt (debounce — also the floor between
    /// attempts).
    pub respawn_after: Duration,
    /// Respawn attempts granted per shard over the router's lifetime.
    /// A shard observed lost with its budget spent is permanently
    /// evicted: a machine-readable event is recorded and the ring
    /// never readmits it.
    pub max_respawns: u32,
    /// Backoff base between consecutive respawn attempts of the same
    /// shard; later attempts wait on the deterministic
    /// [`parspeed_chaos::backoff_ms`] schedule (capped at 32× the
    /// base), so a crash-looping shard degrades to eviction without
    /// ever flapping the ring.
    pub respawn_backoff: Duration,
    /// Fraction (`0.0`..=`1.0`) of the shard's recorded hot keys the
    /// replacement must have replayed — recomputed through the normal
    /// engine path, so replies stay bit-identical — before it rejoins
    /// the ring.
    pub warm_fraction: f64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            respawn_after: Duration::from_millis(50),
            max_respawns: 3,
            respawn_backoff: Duration::from_millis(100),
            warm_fraction: 0.5,
        }
    }
}

/// One shard's breaker state. `Closed` routes normally; `Open` is out
/// of the ring awaiting its probe time; `HalfOpen` is back in the ring
/// on probation — the next reply decides.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BreakerState {
    /// Healthy; counts consecutive failed replies toward the threshold.
    Closed { failures: u32 },
    /// Tripped out of the ring until the probe instant.
    Open { probe_at: std::time::Instant, probe_interval: Duration },
    /// Readmitted on probation; carries the interval to double if the
    /// probe fails.
    HalfOpen { probe_interval: Duration },
}

impl BreakerState {
    /// The wire name of this state (router `metrics` record).
    pub(crate) fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_state_wire_names_are_stable() {
        let now = std::time::Instant::now();
        let states = [
            BreakerState::Closed { failures: 0 },
            BreakerState::Open { probe_at: now, probe_interval: Duration::from_millis(250) },
            BreakerState::HalfOpen { probe_interval: Duration::from_millis(500) },
        ];
        let names: Vec<&str> = states.iter().map(BreakerState::name).collect();
        assert_eq!(names, ["closed", "open", "half-open"]);
    }
}
