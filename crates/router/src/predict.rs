//! Self-sizing: the paper's optimizer predicts the fleet size.
//!
//! The sharded tier has exactly the structure of the paper's
//! processor-allocation problem. A serving workload with `D` distinct
//! hot keys is the problem instance; a shard with room for `C` cached
//! results is a processor with bounded local memory (§3–§4); and the
//! measured serving time over a fleet of `P` shards decomposes the way
//! eq. (2) decomposes a parallel iteration:
//!
//! ```text
//! T(P) = W/P  +  γ·P  +  β
//!        ↑work that   ↑per-shard     ↑per-request floor no
//!        shards split  coordination   fleet size removes
//! ```
//!
//! The synchronous-bus **strip** model is *literally this curve*: with an
//! `n×n` grid, 5-point stencil (`E = 6`, `k = 1`) and strip area
//! `A = n²/P`,
//!
//! ```text
//! t(A) = 6·A·tfp + 4n³·b/A + 4n·c  =  (6n²tfp)/P + (4n·b)·P + 4n·c
//! ```
//!
//! So pick `n = √D` (one grid point per distinct key), least-squares fit
//! `(W, γ, β)` to a measured sweep, and the machine override
//! `{tfp = W/6D, b = γ/4n, c = β/4n}` makes `Query::Optimize` minimize
//! the *fitted serving curve* — under the per-shard memory budget
//! `3C + 4n` words, which is exactly [`MemoryBudget::partition_words`]
//! at `A = C`: a fleet is memory-feasible iff every shard's key share
//! fits its cache (`D/P ≤ C`). The §5 machinery that sizes a processor
//! fleet — interior optimum, strip quantization, memory floor,
//! infeasibility — sizes the serving fleet unchanged.
//!
//! [`MemoryBudget::partition_words`]: parspeed_core::MemoryBudget::partition_words

use parspeed_engine::{
    ArchKind, Engine, EvalValue, MachineSpec, ParspeedError, Query, Request, Response, ShapeKey,
    StencilSpec,
};

/// What the fleet serves: the workload's cache-relevant profile. The
/// live numbers come from the router's `topology` record (`resident`
/// per member) or from a planned deployment.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Distinct canonical cache keys the workload touches (`D`).
    pub distinct_keys: usize,
    /// Result-cache entries one shard holds (`C`) — the per-processor
    /// memory constraint.
    pub shard_capacity: usize,
}

impl WorkloadProfile {
    /// The memory floor: the fewest shards whose aggregate cache holds
    /// every distinct key, `⌈D/C⌉` — the serving twin of
    /// `MemoryBudget::min_processors`.
    pub fn memory_floor(&self) -> usize {
        assert!(self.shard_capacity >= 1, "a shard needs a nonzero cache");
        self.distinct_keys.div_ceil(self.shard_capacity).max(1)
    }

    /// The grid side the profile maps onto: `n = √D`, one grid point
    /// per distinct key (rounded — exact when `D` is a perfect square).
    pub fn grid_side(&self) -> usize {
        (self.distinct_keys as f64).sqrt().round().max(1.0) as usize
    }
}

/// One measured point of a shard sweep: the same workload served by a
/// `shards`-backend fleet in `seconds`.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Fleet size this point was measured at.
    pub shards: usize,
    /// Wall-clock seconds to serve the workload.
    pub seconds: f64,
    /// The measurement raced a fleet degradation (a shard lost or
    /// breaker-opened mid-run, visible as a non-empty `lost` list in
    /// the `topology` record): the time is real but was not served by
    /// `shards` healthy backends, so [`fit`] excludes it.
    pub degraded: bool,
}

/// The fitted serving curve `T(P) = scatter/P + coordination·P + floor`.
#[derive(Debug, Clone, Copy)]
pub struct FleetModel {
    /// `W`: work that divides across shards (cache-miss evaluation).
    pub scatter: f64,
    /// `γ`: per-shard cost of running a wider fleet (scatter/gather
    /// coordination, colder per-shard batches).
    pub coordination: f64,
    /// `β`: per-workload floor no fleet size removes.
    pub floor: f64,
}

impl FleetModel {
    /// The fitted curve evaluated at a fleet size.
    pub fn seconds_at(&self, shards: usize) -> f64 {
        let p = shards as f64;
        self.scatter / p + self.coordination * p + self.floor
    }
}

/// Least-squares fit of `T(P) = W/P + γ·P + β` over a measured sweep
/// (basis `1/P, P, 1`). Samples flagged [`SweepPoint::degraded`] are
/// excluded first — a time measured against a partially-lost fleet is
/// not a point on the healthy curve. Needs at least three distinct
/// *clean* fleet sizes; `None` otherwise. Coefficients are clamped to
/// the model's domain (`tfp, b > 0`, `c ≥ 0` downstream), so a noisy
/// sweep still maps to a valid machine.
pub fn fit(points: &[SweepPoint]) -> Option<FleetModel> {
    let clean: Vec<SweepPoint> = points.iter().copied().filter(|p| !p.degraded).collect();
    let mut distinct: Vec<usize> = clean.iter().map(|p| p.shards).collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 3 {
        return None;
    }
    // Normal equations for the 3-parameter basis.
    let basis = |p: f64| [1.0 / p, p, 1.0];
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for pt in &clean {
        let row = basis(pt.shards as f64);
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * pt.seconds;
        }
    }
    let x = solve3(ata, atb)?;
    Some(FleetModel { scatter: x[0], coordination: x[1], floor: x[2] })
}

/// Gaussian elimination with partial pivoting on a 3×3 system.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in col + 1..3 {
            let f = a[row][col] / pivot_row[col];
            for (k, &pv) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for k in row + 1..3 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// The `Query::Optimize` whose answer is the predicted fleet size: the
/// profile becomes the grid and the memory budget, the fitted curve
/// becomes the machine. With `model: None` (no sweep measured yet) the
/// machine is communication-dominated, so the optimizer answers the
/// pure memory floor — the smallest fleet whose aggregate cache holds
/// the workload.
///
/// The query is an ordinary wire query: send it through the router
/// itself (or any server) and the fleet sizes itself over its own
/// serving stack.
pub fn sizing_query(
    profile: WorkloadProfile,
    model: Option<FleetModel>,
    max_shards: usize,
) -> Query {
    let n = profile.grid_side();
    let d = (n * n) as f64;
    let machine = match model {
        Some(m) => MachineSpec {
            tfp: Some((m.scatter / (6.0 * d)).max(1e-30)),
            b: Some((m.coordination / (4.0 * n as f64)).max(1e-30)),
            c: Some((m.floor / (4.0 * n as f64)).max(0.0)),
            ..MachineSpec::default()
        },
        // Neutral: communication dwarfs computation, so smaller fleets
        // always win and the memory floor decides alone.
        None => {
            MachineSpec { tfp: Some(1e-12), b: Some(1.0), c: Some(0.0), ..MachineSpec::default() }
        }
    };
    Request::optimize(ArchKind::SyncBus, n)
        .shape(ShapeKey::Strip)
        .stencil(StencilSpec::FivePoint)
        .procs(max_shards)
        .memory_words((3 * profile.shard_capacity + 4 * n) as f64)
        .machine(machine)
        .query()
}

/// The optimizer's answer, translated back into serving terms.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// The predicted optimal fleet size.
    pub shards: usize,
    /// The memory floor the answer respected (`⌈D/C⌉`).
    pub memory_floor: usize,
    /// Model speedup of the predicted fleet over one shard.
    pub speedup: f64,
    /// The fitted curve the prediction minimized, when a sweep was
    /// measured.
    pub model: Option<FleetModel>,
}

/// Predicts the optimal fleet size for a workload profile: fit the
/// sweep (points below the memory floor are excluded — the model does
/// not apply where the problem does not fit memory), map onto the strip
/// machine, and let `Query::Optimize` answer. With fewer than three
/// feasible sweep sizes the prediction degrades to the memory floor.
///
/// `Err` is the optimizer's own verdict — notably `infeasible` when
/// even `max_shards` caches cannot hold the workload, with the paper's
/// "problem does not fit" taxonomy intact.
pub fn predict(
    profile: WorkloadProfile,
    sweep: &[SweepPoint],
    max_shards: usize,
) -> Result<Prediction, ParspeedError> {
    let floor = profile.memory_floor();
    let feasible: Vec<SweepPoint> = sweep.iter().copied().filter(|p| p.shards >= floor).collect();
    let model = fit(&feasible);
    let query = sizing_query(profile, model, max_shards);
    match Engine::default().run_batch(&[query]).responses.pop() {
        Some(Response::Single(Ok(EvalValue::Optimum { processors, speedup, .. }))) => {
            Ok(Prediction { shards: processors, memory_floor: floor, speedup, model })
        }
        Some(Response::Single(Err(e))) => Err(e),
        other => {
            Err(ParspeedError::invalid(format!("sizing query answered unexpectedly: {other:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic sweep straight off the curve.
    fn sweep_from(model: FleetModel, sizes: &[usize]) -> Vec<SweepPoint> {
        sizes
            .iter()
            .map(|&shards| SweepPoint {
                shards,
                seconds: model.seconds_at(shards),
                degraded: false,
            })
            .collect()
    }

    #[test]
    fn fit_recovers_exact_coefficients() {
        let truth = FleetModel { scatter: 12.0, coordination: 0.25, floor: 3.0 };
        let got = fit(&sweep_from(truth, &[2, 3, 4, 6, 8])).unwrap();
        assert!((got.scatter - truth.scatter).abs() < 1e-9, "{got:?}");
        assert!((got.coordination - truth.coordination).abs() < 1e-9, "{got:?}");
        assert!((got.floor - truth.floor).abs() < 1e-9, "{got:?}");
    }

    #[test]
    fn fit_needs_three_distinct_fleet_sizes() {
        let truth = FleetModel { scatter: 12.0, coordination: 0.25, floor: 3.0 };
        assert!(fit(&sweep_from(truth, &[2, 4])).is_none());
        // Repeats of the same size do not count as new information.
        assert!(fit(&sweep_from(truth, &[2, 2, 4, 4])).is_none());
    }

    #[test]
    fn degraded_samples_are_excluded_from_the_fit() {
        let truth = FleetModel { scatter: 12.0, coordination: 0.25, floor: 3.0 };
        let mut sweep = sweep_from(truth, &[2, 3, 4, 6]);
        // A wildly wrong time measured while a shard was lost: flagged
        // degraded, it must not bend the fitted curve at all.
        sweep.push(SweepPoint { shards: 8, seconds: 1e6, degraded: true });
        let got = fit(&sweep).unwrap();
        assert!((got.scatter - truth.scatter).abs() < 1e-9, "{got:?}");
        assert!((got.coordination - truth.coordination).abs() < 1e-9, "{got:?}");
        assert!((got.floor - truth.floor).abs() < 1e-9, "{got:?}");
        // Degraded points do not count toward the three-size minimum.
        let mut thin = sweep_from(truth, &[2, 4]);
        thin.push(SweepPoint { shards: 6, seconds: truth.seconds_at(6), degraded: true });
        assert!(fit(&thin).is_none(), "a degraded point must not satisfy the minimum");
    }

    #[test]
    fn shard_loss_mid_sweep_flags_the_sample_as_degraded() {
        use crate::{Router, RouterConfig};
        use parspeed_server::ServerConfig;
        use std::time::{Duration, Instant};

        // Three clean synthetic points, plus one measured *live* against
        // a real fleet that loses a shard mid-measurement. The topology
        // record's `lost` list is the degradation signal the measuring
        // client reads.
        let profile = WorkloadProfile { distinct_keys: 144, shard_capacity: 36 };
        let truth = FleetModel { scatter: 36.0, coordination: 1.0, floor: 0.5 };
        let mut sweep = sweep_from(truth, &[4, 6, 8]);

        let router = Router::start(RouterConfig {
            shards: 6,
            backend: ServerConfig { window: Duration::from_micros(200), ..ServerConfig::default() },
            ..RouterConfig::default()
        });
        let client = router.client();
        let t0 = Instant::now();
        for (i, n) in (64..96).enumerate() {
            if i == 16 {
                router.kill_shard(0).expect("shard 0 was live");
            }
            let q = Request::optimize(ArchKind::SyncBus, n).procs(32).query();
            assert!(matches!(client.call(q), Response::Single(Ok(_))));
        }
        let seconds = t0.elapsed().as_secs_f64().max(1e-9);
        let lost = {
            let topo = router.topology();
            !matches!(topo.get("lost"), Some(parspeed_engine::jsonl::Json::Arr(l)) if l.is_empty())
        };
        assert!(lost, "the kill must be visible in the topology record");
        sweep.push(SweepPoint { shards: 6, seconds, degraded: lost });
        router.shutdown();

        // The degraded live sample changes nothing: the prediction is
        // the clean sweep's prediction.
        let with = predict(profile, &sweep, 8).unwrap();
        let without = predict(profile, &sweep[..3], 8).unwrap();
        assert_eq!(with.shards, without.shards);
        assert_eq!(with.shards, 6, "{with:?}");
    }

    #[test]
    fn prediction_matches_the_curves_interior_optimum() {
        // W/P + γP is minimized at P* = √(W/γ); pick W = 36γ → P* = 6,
        // a strip-feasible size for n = 12 and above the floor ⌈144/36⌉ = 4.
        let profile = WorkloadProfile { distinct_keys: 144, shard_capacity: 36 };
        let truth = FleetModel { scatter: 36.0, coordination: 1.0, floor: 0.5 };
        let sweep = sweep_from(truth, &[4, 6, 8]);
        let p = predict(profile, &sweep, 8).unwrap();
        assert_eq!(p.memory_floor, 4);
        assert_eq!(p.shards, 6, "{p:?}");
        assert!(p.speedup > 1.0);
    }

    #[test]
    fn memory_floor_overrides_a_smaller_interior_optimum() {
        // W = 4γ → P* = 2, but 144 keys over 36-entry caches need 4 shards.
        let profile = WorkloadProfile { distinct_keys: 144, shard_capacity: 36 };
        let truth = FleetModel { scatter: 4.0, coordination: 1.0, floor: 0.5 };
        let sweep = sweep_from(truth, &[4, 6, 8]);
        let p = predict(profile, &sweep, 8).unwrap();
        assert_eq!(p.shards, 4, "{p:?}");
    }

    #[test]
    fn no_sweep_degrades_to_the_memory_floor() {
        let profile = WorkloadProfile { distinct_keys: 144, shard_capacity: 36 };
        let p = predict(profile, &[], 8).unwrap();
        assert!(p.model.is_none());
        assert_eq!(p.shards, p.memory_floor);
        assert_eq!(p.shards, 4);
    }

    #[test]
    fn an_unholdable_workload_is_the_papers_infeasibility() {
        // 1024 keys, 16-entry caches, at most 4 shards: 64 cached keys
        // total can never hold the workload.
        let profile = WorkloadProfile { distinct_keys: 1024, shard_capacity: 16 };
        let err = predict(profile, &[], 4).unwrap_err();
        assert_eq!(err.kind(), "infeasible");
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn sizing_query_is_an_ordinary_wire_query() {
        // The prediction can ride the serving stack it predicts for.
        let profile = WorkloadProfile { distinct_keys: 64, shard_capacity: 16 };
        let query = sizing_query(profile, None, 8);
        let hash = parspeed_engine::routing_hash(&query);
        assert_eq!(hash, parspeed_engine::routing_hash(&query.clone()));
    }
}
